// Regenerates Figure 3: payment and utility for each of the 16 computers in
// the all-truthful experiment True1.  Faster computers earn strictly larger
// bonuses (their marginal contribution to the optimum is larger), and every
// truthful computer has non-negative utility (voluntary participation).

#include <cstdio>

#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/analysis/report.h"
#include "lbmv/core/comp_bonus.h"

int main() {
  const auto config = lbmv::analysis::paper_table1_config();
  const lbmv::core::CompBonusMechanism mechanism;
  const auto result = lbmv::analysis::run_experiment(
      mechanism, config, lbmv::analysis::paper_experiment("True1"));
  std::printf(
      "%s\n",
      lbmv::analysis::render_per_computer_figure(result, "Figure 3").c_str());
  return 0;
}

// Bench A13: price of anarchy on the paper's parallel-link topology.
//
// Connects the paper to the routing-game literature it cites ([1] Altman
// et al., [19] Roughgarden): when *jobs* route selfishly instead of being
// assigned, how much does the system lose?  Answer: nothing at all for the
// paper's pure linear latencies (equal latency == equal marginal latency,
// PoA = 1), up to the classic 4/3 as constant terms are mixed in.  So in
// the paper's world the entire inefficiency to fight comes from computers
// *misreporting*, not from decentralised routing — which is exactly the
// problem the mechanism addresses.

#include <cstdio>
#include <memory>
#include <vector>

#include "lbmv/game/wardrop.h"
#include "lbmv/model/latency.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  // Sweep the weight of the constant term: links l_i(x) = w * a_i + b_i x.
  const std::vector<double> a{2.0, 1.0, 0.5, 0.25};
  const std::vector<double> b{0.25, 0.5, 1.0, 2.0};
  Table table({"Constant weight w", "Equilibrium L", "Optimal L", "PoA"});
  for (double w : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    std::vector<std::unique_ptr<model::LatencyFunction>> links;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (w == 0.0) {
        links.push_back(std::make_unique<model::LinearLatency>(b[i]));
      } else {
        links.push_back(
            std::make_unique<model::AffineLatency>(w * a[i], b[i]));
      }
    }
    const auto poa = game::price_of_anarchy(links, 6.0);
    table.add_row({Table::num(w, 1), Table::num(poa.equilibrium_latency, 4),
                   Table::num(poa.optimal_latency, 4),
                   Table::num(poa.price_of_anarchy(), 4)});
  }
  std::printf(
      "Bench A13: price of anarchy vs constant-latency weight (4 links, "
      "R = 6)\n%s\n",
      table.to_markdown().c_str());

  // The Pigou construction: worst case for affine links.
  std::vector<std::unique_ptr<model::LatencyFunction>> pigou;
  pigou.push_back(std::make_unique<model::AffineLatency>(1.0, 1e-6));
  pigou.push_back(std::make_unique<model::LinearLatency>(1.0));
  const auto worst = game::price_of_anarchy(pigou, 1.0);
  std::printf("Pigou example: PoA = %.4f (theory: 4/3 = 1.3333)\n\n",
              worst.price_of_anarchy());
  std::printf(
      "w = 0 (the paper's pure linear model) gives PoA = 1: selfish job\n"
      "routing is harmless there, so the mechanism's whole battle is\n"
      "against misreported speeds — and the affine rows show how quickly\n"
      "that changes once latencies have fixed components.\n");
  return 0;
}

// Ablation A3: what verification buys.
//
// Four mechanisms on the same system — the paper's verified
// compensation-and-bonus, VCG (truthful in bids, blind to execution),
// Archer–Tardos (same blindness, different payment form) and the classical
// no-payment protocol — evaluated on:
//   1. audit: the largest utility gain any unilateral deviation gives an
//      agent (~0 => empirically truthful);
//   2. slack accounting: agent C1 bids the truth but executes 2x slower.
//      A structural identity (proved in EXPERIMENTS.md) makes the verified
//      mechanism's payment *to the slacker itself* equal the Clarke
//      payment, so the discriminating observable is the payment to a
//      *bystander*: the verified mechanism re-anchors everyone's bonus to
//      the measured latency, while the unverified mechanisms keep paying
//      the bid-predicted amount — overpaying the bystander relative to its
//      actual (verified) marginal contribution.

#include <cstdio>
#include <vector>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/archer_tardos.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/vcg.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  const model::SystemConfig config({1.0, 1.0, 2.0, 5.0, 10.0}, 12.0);
  const core::CompBonusMechanism comp_bonus;
  const core::VcgMechanism vcg;
  const core::ArcherTardosMechanism archer_tardos;
  const core::NoPaymentMechanism no_payment;
  const std::vector<const core::Mechanism*> mechanisms{
      &comp_bonus, &vcg, &archer_tardos, &no_payment};

  // Slack scenario: agent 0 bids the truth but executes 2x slower; agent 1
  // (same speed, fully honest) is the bystander we track.
  const auto honest = model::BidProfile::truthful(config);
  const auto slack = model::BidProfile::deviate(config, 0, 1.0, 2.0);
  const std::size_t bystander = 1;

  Table table({"Mechanism", "Verif.", "Audit max gain", "P1 honest",
               "P1 slack", "Bystander overpayment"});
  for (const auto* mechanism : mechanisms) {
    const core::TruthfulnessAuditor auditor(*mechanism);
    const auto report = auditor.audit_agent(config, 0);
    const auto h = mechanism->run(config, honest);
    const auto s = mechanism->run(config, slack);
    // Correct transfer to the bystander at observed behaviour: its verified
    // cost plus its actual marginal contribution L_{-j} - L_measured.
    const double l_minus_j = mechanism->allocator().optimal_latency(
        config.family(), slack.without(bystander).bids,
        config.arrival_rate());
    const double correct = -s.agents[bystander].valuation +
                           (l_minus_j - s.actual_latency);
    table.add_row({mechanism->name(),
                   mechanism->uses_verification() ? "yes" : "no",
                   Table::num(report.max_gain, 4),
                   Table::num(h.agents[bystander].payment),
                   Table::num(s.agents[bystander].payment),
                   Table::num(s.agents[bystander].payment - correct)});
  }
  std::printf(
      "Ablation A3: the value of verification\n"
      "(C1 slacks 2x; C2 is an equally fast, fully honest bystander)\n%s\n",
      table.to_markdown().c_str());
  std::printf(
      "Reading: only no-payment fails the audit outright (positive gain).\n"
      "Under C1's slack, the verified mechanism keeps the bystander's\n"
      "payment anchored to measured behaviour (overpayment 0); VCG and\n"
      "Archer-Tardos keep paying the honest-execution amount and overpay\n"
      "the bystander relative to its actual contribution.\n");
  return 0;
}

// Ablation A7: the mechanism on the companion paper's M/M/1 model.
//
// Grosu & Chronopoulos (Cluster 2002) treat computers as M/M/1 queues with
// expected response time 1/(mu - x).  The compensation-and-bonus
// construction only needs an exact allocator; since PR-9 that allocator is
// the closed-form MM1Allocator riding the fused nonlinear round kernels
// (core/family_round.h, DESIGN.md §14) and the audit rides the M/M/1
// deviation-grid kernels — this bench is the qualitative story on top of
// that stack: truthful execution minimises total latency, the deviator's
// utility peaks at truth, and voluntary participation holds.

#include <cstdio>
#include <memory>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/util/error.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  // Service rates mu = 1/theta: {10, 10, 5, 2, 2}; R = 12 < sum mu = 29.
  auto family = std::make_shared<model::MM1Family>();
  const model::SystemConfig config({0.1, 0.1, 0.2, 0.5, 0.5}, 12.0,
                                   family);
  const core::CompBonusMechanism mechanism(
      std::make_shared<const alloc::MM1Allocator>());

  struct Case {
    const char* name;
    double bid_mult;
    double exec_mult;
  };
  const Case cases[] = {{"True1", 1.0, 1.0}, {"True2", 1.0, 1.5},
                        {"High1", 2.0, 2.0}, {"High2", 2.0, 1.0},
                        {"Low1", 0.6, 1.0},  {"Low2", 0.6, 1.5}};

  Table table({"Experiment", "Total latency", "x_1", "C1 payment",
               "C1 utility"});
  for (const auto& c : cases) {
    const auto profile =
        model::BidProfile::deviate(config, 0, c.bid_mult, c.exec_mult);
    try {
      const auto outcome = mechanism.run(config, profile);
      table.add_row({c.name, Table::num(outcome.actual_latency, 4),
                     Table::num(outcome.agents[0].allocation, 4),
                     Table::num(outcome.agents[0].payment, 4),
                     Table::num(outcome.agents[0].utility, 4)});
    } catch (const lbmv::util::PreconditionError&) {
      // A phenomenon the linear model cannot express: by underbidding and
      // then executing slowly, C1 is assigned more load than its *actual*
      // queue can serve (x >= mu), i.e. unbounded latency.
      table.add_row({c.name, "OVERLOAD", "> mu", "-", "-inf"});
    }
  }
  std::printf(
      "Ablation A7: M/M/1 extension (mu = {10,10,5,2,2}, R = 12)\n%s\n",
      table.to_markdown().c_str());
  std::printf(
      "OVERLOAD rows mark profiles where the deviator's verified capacity\n"
      "cannot serve its assignment (x_1 >= mu~_1): in the queueing model an\n"
      "underbid-and-slack lie does not just raise latency, it destabilises\n"
      "the deviator's queue — an even stronger deterrent than in the\n"
      "paper's linear model.\n\n");

  // Audit the deviator across a bid/execution grid kept inside the
  // stability region (see OVERLOAD note above).  With the MM1Allocator the
  // auditor holds an Mm1PrProfileContext, so these rows sweep four
  // candidate bids per instruction through the §14 grid kernels.
  const core::TruthfulnessAuditor auditor(mechanism);
  core::AuditOptions options;
  options.bid_multipliers = {0.85, 0.9, 1.0, 1.2, 1.5, 2.0, 3.0};
  options.exec_multipliers = {1.0, 1.1, 1.2};
  const auto report = auditor.audit_agent(config, 0, options);
  std::printf(
      "audit of C1: truthful utility %.4f, best deviation %.4f (bid x%.2f, "
      "exec x%.2f) => max gain %.2e (truth dominant: %s)\n",
      report.truthful_utility, report.best.utility, report.best.bid_mult,
      report.best.exec_mult, report.max_gain,
      report.truthful_dominant(1e-6) ? "yes" : "no");
  std::printf("voluntary participation: %s\n",
              core::voluntary_participation_holds(mechanism, config, 1e-6)
                  ? "holds"
                  : "VIOLATED");
  return 0;
}

// Bench A11: the paper's conjecture, quantified.
//
// §4 closes its Figure 1 discussion with: "We expect even larger increase
// if more than one computer does not report its true value and does not
// use its full processing capacity."  The paper never measures it; we do.
// On the Table 1 system we let k computers (the fastest first, then down
// the speed groups) repeat the Low2 deviation (bid 0.5x, execute 2x slower)
// and the High1 deviation (bid 3x, execute at the bid), and chart the total
// latency against k.

#include <cstdio>
#include <vector>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/util/ascii_chart.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  const auto config = analysis::paper_table1_config();
  const core::CompBonusMechanism mechanism;
  const double optimal =
      strategy::DeviationEvaluator(mechanism, config).actual_latency();

  struct DeviationKind {
    const char* name;
    double bid_mult;
    double exec_mult;
  };
  const DeviationKind kinds[] = {{"Low2-style (0.5x bid, 2x slower)", 0.5,
                                  2.0},
                                 {"High1-style (3x bid, exec = bid)", 3.0,
                                  3.0}};

  std::printf(
      "Bench A11: latency vs number of deviating computers (Table 1 system,"
      "\nR = 20, L* = %.2f)\n\n",
      optimal);

  for (const auto& kind : kinds) {
    Table table({"Deviators k", "Total latency", "Increase vs optimal"});
    std::vector<lbmv::util::Bar> bars;
    // One evaluator per deviation kind: k = j extends k = j - 1 by a single
    // agent, so each sweep step is one O(1) commit instead of a fresh
    // profile and mechanism run.
    strategy::DeviationEvaluator evaluator(mechanism, config);
    for (std::size_t k = 0; k <= config.size(); ++k) {
      if (k > 0) {
        const double t = config.true_value(k - 1);
        evaluator.commit(k - 1, t * kind.bid_mult, t * kind.exec_mult);
      }
      const double latency = evaluator.actual_latency();
      table.add_row({std::to_string(k), Table::num(latency),
                     Table::pct(latency / optimal - 1.0)});
      if (k % 2 == 0) {
        bars.push_back({"k=" + std::to_string(k), latency});
      }
    }
    std::printf("%s:\n%s%s\n", kind.name, table.to_markdown().c_str(),
                lbmv::util::bar_chart("", bars).c_str());
  }
  std::printf(
      "The conjecture holds with an interesting wrinkle: Low2-style mass\n"
      "deviation is worst at intermediate k (the deviating fast machines\n"
      "drag overload onto themselves), while if *every* machine deviates by\n"
      "the same consistent multiplier the proportions — and hence part of\n"
      "the damage — cancel.\n");
  return 0;
}

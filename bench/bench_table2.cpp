// Regenerates the paper's Table 2: the eight experiment definitions, i.e.
// how computer C1 deviates in bid and execution value in each run.

#include <cstdio>

#include "lbmv/analysis/report.h"

int main() {
  std::printf("%s\n", lbmv::analysis::render_table2().c_str());
  std::printf(
      "Values reconstructed from the paper's prose (the published scan's\n"
      "tables are OCR-damaged); see DESIGN.md for the validation of the\n"
      "reconstruction against five independent quantitative claims.\n");
  return 0;
}

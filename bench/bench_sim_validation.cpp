// Ablation A4: cross-validation of the analytic linear-latency model
// against the discrete-event simulator.
//
// The paper evaluates everything analytically and justifies l(x) = t x as
// the M/G/1 light-load waiting time.  Here we actually run the queueing
// system over a sweep of arrival rates and compare the measured total
// latency with the analytic L = sum t_i x_i^2, reporting where the linear
// approximation starts to bend (utilisation grows with R).
//
// Each point is a parallel Monte-Carlo estimate: independent replications
// fan out across the thread pool (distinct RNG streams split from one root
// seed), and we report the mean measured latency with a 95% half-width.
//
// With --obs-trace=FILE and/or --obs-snapshot=FILE the run also records
// observability data: recording is switched on, warmup is set to zero so
// the per-server completion counters are exactly comparable with the
// SystemMetrics job totals (the cross-check is asserted below), and the
// Chrome-trace JSON / metrics snapshot are written to the given files.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/obs/metrics.h"
#include "lbmv/obs/obs.h"
#include "lbmv/obs/trace.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/sim/replication.h"
#include "lbmv/util/ascii_chart.h"
#include "lbmv/util/table.h"

int main(int argc, char** argv) {
  using lbmv::util::Table;
  using namespace lbmv;

  std::string trace_path;
  std::string snapshot_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--obs-trace=", 12) == 0) {
      trace_path = arg + 12;
    } else if (std::strncmp(arg, "--obs-snapshot=", 15) == 0) {
      snapshot_path = arg + 15;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--obs-trace=FILE] [--obs-snapshot=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool observe = !trace_path.empty() || !snapshot_path.empty();
  if (observe) {
    obs::Registry::global().reset();
    obs::TraceRecorder::global().clear();
    obs::set_enabled(true);
  }

  // Light-load scaled version of a 4-computer heterogeneous system.
  const std::vector<double> types{0.01, 0.01, 0.02, 0.04};
  const core::CompBonusMechanism mechanism;

  sim::ReplicationOptions replication;
  replication.replications = 8;
  replication.root_seed = 5;

  Table table({"R (jobs/s)", "max rho", "analytic L", "measured L",
               "95% +/-", "rel. err"});
  util::Series analytic_series{"analytic", {}, {}};
  util::Series measured_series{"measured", {}, {}};

  // Expected per-server completion totals accumulated from SystemMetrics
  // across every rate and replication; the obs counters must match exactly.
  std::vector<std::size_t> expected_completions(types.size(), 0);

  for (double rate : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    const model::SystemConfig config(types, rate);
    sim::ProtocolOptions options;
    options.horizon = 10000.0;
    if (observe) options.warmup_fraction = 0.0;
    const sim::VerifiedProtocol protocol(mechanism, options);
    const sim::ReplicatedRoundReport merged = protocol.run_replicated(
        config, model::BidProfile::truthful(config), replication);
    for (const auto& round : merged.rounds) {
      for (std::size_t i = 0; i < round.metrics.servers.size(); ++i) {
        expected_completions[i] += round.metrics.servers[i].jobs_completed;
      }
    }
    const auto& first = merged.rounds.front();
    const double analytic = first.oracle_outcome.actual_latency;
    const double measured = merged.measured_latency.mean();
    const double half = merged.measured_latency.ci95_halfwidth();
    double max_rho = 0.0;
    for (const auto& sm : first.metrics.servers) {
      max_rho = std::max(max_rho, sm.utilization);
    }
    table.add_row({Table::num(rate, 1), Table::num(max_rho, 3),
                   Table::num(analytic, 4), Table::num(measured, 4),
                   Table::num(half, 4),
                   Table::pct(measured / analytic - 1.0)});
    analytic_series.xs.push_back(rate);
    analytic_series.ys.push_back(analytic);
    measured_series.xs.push_back(rate);
    measured_series.ys.push_back(measured);
  }

  std::printf(
      "Ablation A4: analytic linear model vs discrete-event simulation\n"
      "(truthful profile; %zu replications per point, mean +/- 95%% CI;\n"
      " measured L = sum_i throughput_i * mean waiting)\n%s\n",
      replication.replications, table.to_markdown().c_str());
  std::printf("%s", util::line_chart("total latency vs arrival rate",
                                     {analytic_series, measured_series})
                        .c_str());
  std::printf(
      "\nAt low utilisation the series coincide (the paper's modelling\n"
      "assumption); the measured curve bends above the quadratic model as\n"
      "rho grows, exactly the M/G/1 1/(1-rho) correction.\n");

  if (observe) {
    obs::set_enabled(false);
    const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
    bool mismatch = false;
    std::printf("\nobs cross-check (counter vs SystemMetrics):\n");
    for (std::size_t i = 0; i < expected_completions.size(); ++i) {
      const std::string family = obs::labeled(
          "lbmv_server_completions_total", "server",
          "C" + std::to_string(i + 1));
      const auto it = snap.counters.find(family);
      const std::uint64_t counted = it == snap.counters.end() ? 0 : it->second;
      const bool ok = counted == expected_completions[i];
      mismatch = mismatch || !ok;
      std::printf("  %s %llu %s %zu\n", family.c_str(),
                  static_cast<unsigned long long>(counted),
                  ok ? "==" : "!=", expected_completions[i]);
    }
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      out << obs::TraceRecorder::global().to_chrome_json();
      std::printf("wrote Chrome trace (%zu spans, %llu dropped) to %s\n",
                  obs::TraceRecorder::global().events().size(),
                  static_cast<unsigned long long>(
                      obs::TraceRecorder::global().dropped()),
                  trace_path.c_str());
    }
    if (!snapshot_path.empty()) {
      std::ofstream out(snapshot_path);
      out << snap.to_json();
      std::printf("wrote metrics snapshot to %s\n", snapshot_path.c_str());
    }
    if (obs::kCompiledIn && mismatch) return 1;
  }
  return 0;
}

// Ablation A4: cross-validation of the analytic linear-latency model
// against the discrete-event simulator.
//
// The paper evaluates everything analytically and justifies l(x) = t x as
// the M/G/1 light-load waiting time.  Here we actually run the queueing
// system over a sweep of arrival rates and compare the measured total
// latency with the analytic L = sum t_i x_i^2, reporting where the linear
// approximation starts to bend (utilisation grows with R).
//
// Each point is a parallel Monte-Carlo estimate: independent replications
// fan out across the thread pool (distinct RNG streams split from one root
// seed), and we report the mean measured latency with a 95% half-width.

#include <cstdio>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/sim/replication.h"
#include "lbmv/util/ascii_chart.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  // Light-load scaled version of a 4-computer heterogeneous system.
  const std::vector<double> types{0.01, 0.01, 0.02, 0.04};
  const core::CompBonusMechanism mechanism;

  sim::ReplicationOptions replication;
  replication.replications = 8;
  replication.root_seed = 5;

  Table table({"R (jobs/s)", "max rho", "analytic L", "measured L",
               "95% +/-", "rel. err"});
  util::Series analytic_series{"analytic", {}, {}};
  util::Series measured_series{"measured", {}, {}};

  for (double rate : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    const model::SystemConfig config(types, rate);
    sim::ProtocolOptions options;
    options.horizon = 10000.0;
    const sim::VerifiedProtocol protocol(mechanism, options);
    const sim::ReplicatedRoundReport merged = protocol.run_replicated(
        config, model::BidProfile::truthful(config), replication);
    const auto& first = merged.rounds.front();
    const double analytic = first.oracle_outcome.actual_latency;
    const double measured = merged.measured_latency.mean();
    const double half = merged.measured_latency.ci95_halfwidth();
    double max_rho = 0.0;
    for (const auto& sm : first.metrics.servers) {
      max_rho = std::max(max_rho, sm.utilization);
    }
    table.add_row({Table::num(rate, 1), Table::num(max_rho, 3),
                   Table::num(analytic, 4), Table::num(measured, 4),
                   Table::num(half, 4),
                   Table::pct(measured / analytic - 1.0)});
    analytic_series.xs.push_back(rate);
    analytic_series.ys.push_back(analytic);
    measured_series.xs.push_back(rate);
    measured_series.ys.push_back(measured);
  }

  std::printf(
      "Ablation A4: analytic linear model vs discrete-event simulation\n"
      "(truthful profile; %zu replications per point, mean +/- 95%% CI;\n"
      " measured L = sum_i throughput_i * mean waiting)\n%s\n",
      replication.replications, table.to_markdown().c_str());
  std::printf("%s", util::line_chart("total latency vs arrival rate",
                                     {analytic_series, measured_series})
                        .c_str());
  std::printf(
      "\nAt low utilisation the series coincide (the paper's modelling\n"
      "assumption); the measured curve bends above the quadratic model as\n"
      "rho grows, exactly the M/G/1 1/(1-rho) correction.\n");
  return 0;
}

// Extension bench A8: bandit learning dynamics.
//
// Epsilon-greedy learners that know nothing about the mechanism, playing a
// grid of (bid multiplier, execution multiplier) arms round after round.
// Three scenarios:
//   1. one learner among truthful machines under the verified mechanism —
//      converges exactly to the truthful arm;
//   2. everyone learning under the verified mechanism — verification
//      unambiguously teaches full-capacity execution, and the greedy
//      profile lands within a few percent of the optimum (bids wander a
//      little because co-learners' exploration is inconsistent behaviour,
//      the scope boundary documented in EXPERIMENTS.md);
//   3. everyone learning without payments — a bid-inflation race to the
//      grid ceiling.

#include <cstdio>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/sim/replication.h"
#include "lbmv/strategy/learning.h"
#include "lbmv/util/stats.h"
#include "lbmv/util/table.h"

namespace {

/// Run one scenario over independent learning seeds (parallel replications,
/// streams split from one root) and report the seed-averaged outcome along
/// with the first replication's detail table.
lbmv::strategy::LearningResult replicate(
    const lbmv::core::Mechanism& mechanism,
    const lbmv::model::SystemConfig& config,
    const lbmv::strategy::LearningOptions& base, double optimal,
    const char* title) {
  using namespace lbmv;
  sim::ReplicationOptions replication;
  replication.replications = 5;
  replication.root_seed = 17;
  const sim::ReplicationRunner runner(replication);
  const auto results = runner.map<strategy::LearningResult>(
      [&](std::size_t, util::Rng& rng) {
        strategy::LearningOptions options = base;
        options.seed = rng.seed();
        return strategy::run_learning(mechanism, config, options);
      });
  util::RunningStats truthful, latency;
  for (const auto& r : results) {
    truthful.add(r.truthful_fraction);
    latency.add(r.final_greedy_latency);
  }
  std::printf(
      "[%s]\n%zu seeds: mean truthful fraction %.2f, mean final latency "
      "%.3f +/- %.3f (optimal %.3f)\n",
      title, results.size(), truthful.mean(), latency.mean(),
      latency.ci95_halfwidth(), optimal);
  return results.front();
}

void describe(const char* title, const lbmv::model::SystemConfig& config,
              const lbmv::strategy::LearningResult& result, double optimal) {
  using lbmv::util::Table;
  std::printf("--- %s ---\n", title);
  Table table({"Agent", "Greedy bid mult", "Greedy exec mult"});
  for (std::size_t i = 0; i < config.size(); ++i) {
    table.add_row({"C" + std::to_string(i + 1),
                   Table::num(result.final_bid_mult[i], 2),
                   Table::num(result.final_exec_mult[i], 2)});
  }
  std::printf("%s", table.to_markdown().c_str());
  // Smoothed latency trace: mean over trailing windows.
  const auto& trace = result.latency_trace;
  std::printf("latency (mean of each fifth of the run):");
  const std::size_t chunk = trace.size() / 5;
  for (std::size_t c = 0; c < 5; ++c) {
    lbmv::util::RunningStats window;
    for (std::size_t k = c * chunk; k < (c + 1) * chunk; ++k) {
      window.add(trace[k]);
    }
    std::printf(" %.2f", window.mean());
  }
  std::printf("\nfinal greedy-profile latency: %.3f (optimal %.3f, +%.1f%%)\n\n",
              result.final_greedy_latency, optimal,
              (result.final_greedy_latency / optimal - 1.0) * 100.0);
}

}  // namespace

int main() {
  using namespace lbmv;
  const model::SystemConfig config({1.0, 1.5, 2.0, 5.0, 8.0}, 15.0);
  const double optimal = alloc::pr_optimal_latency(
      std::vector<double>(config.true_values().begin(),
                          config.true_values().end()),
      config.arrival_rate());

  core::CompBonusMechanism verified;
  strategy::LearningOptions single;
  single.single_learner = 0;
  single.rounds = 800;
  describe("one learner among truthful machines (verified mechanism)",
           config,
           replicate(verified, config, single, optimal,
                     "scenario 1, seed-replicated"),
           optimal);

  strategy::LearningOptions all;
  all.rounds = 1500;
  describe("all agents learning (verified mechanism)", config,
           replicate(verified, config, all, optimal,
                     "scenario 2, seed-replicated"),
           optimal);

  core::NoPaymentMechanism classical;
  describe("all agents learning (no payments)", config,
           replicate(classical, config, all, optimal,
                     "scenario 3, seed-replicated"),
           optimal);

  std::printf(
      "Note on scenario 3: every learner ends at the bid ceiling; since\n"
      "*uniform* inflation cancels in the PR proportions, the measured\n"
      "latency alone understates the failure — the race has no interior\n"
      "equilibrium and any asymmetry in caps or timing degrades the\n"
      "allocation (cf. bench_dynamics where bids diverge heterogeneously).\n");
  return 0;
}

// Regenerates Figure 4: payment and utility for each computer in High1
// (C1 bids 3x its true value and executes at the bid).  Paper claim: C1's
// utility is 62% below True1 while the *other* computers earn more than in
// True1 — they received more jobs and the mechanism pays them more.

#include <cstdio>

#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/analysis/report.h"
#include "lbmv/core/comp_bonus.h"

int main() {
  const auto config = lbmv::analysis::paper_table1_config();
  const lbmv::core::CompBonusMechanism mechanism;
  const auto result = lbmv::analysis::run_experiment(
      mechanism, config, lbmv::analysis::paper_experiment("High1"));
  std::printf(
      "%s\n",
      lbmv::analysis::render_per_computer_figure(result, "Figure 4").c_str());
  return 0;
}

// Extension bench (paper "future work"): distributed handling of payments
// and agent privacy.
//
// Four deployments of the mechanism — the paper's centralised star, a
// fully redundant broadcast, an O(n)-message tree aggregation, and a
// privacy-preserving variant using additive secret sharing — all compute
// identical payments; this bench maps their message / bandwidth / latency
// trade-offs as the system grows.

#include <cstdio>
#include <vector>

#include "lbmv/dist/protocols.h"
#include "lbmv/model/bids.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;
  using dist::Topology;

  const Topology all[] = {Topology::kStar, Topology::kBroadcast,
                          Topology::kTree, Topology::kPrivate};

  std::printf(
      "Distributed deployments of the verified mechanism (future work of\n"
      "the paper).  All four produce bit-identical payments to the\n"
      "centralised mechanism (private: up to 1e-9 fixed-point quantisation);\n"
      "they differ in trust and cost:\n\n");

  for (std::size_t n : {4, 16, 64, 256}) {
    const model::SystemConfig config(std::vector<double>(n, 1.0), 20.0);
    const auto intents = model::BidProfile::truthful(config);
    Table table({"Protocol", "Messages", "Doubles sent", "Protocol time (s)",
                 "Trust / privacy"});
    const char* notes[] = {
        "trusted coordinator sees all bids",
        "no coordinator; everyone audits all payments",
        "no coordinator; O(n) msgs, O(log n) depth",
        "no party ever sees another agent's bid or cost",
    };
    std::size_t k = 0;
    for (Topology topology : all) {
      const auto report =
          dist::run_distributed_round(topology, config, intents);
      table.add_row({report.protocol, std::to_string(report.messages),
                     std::to_string(report.doubles_transferred),
                     Table::num(report.completion_time, 3), notes[k++]});
    }
    std::printf("n = %zu computers:\n%s\n", n, table.to_markdown().c_str());
  }
  std::printf(
      "Caveat on privacy: the private protocol hides *declarations*; once\n"
      "jobs flow, relative speeds are observable from the allocation\n"
      "itself, an inherent property of the mechanism, not of the protocol.\n");
  return 0;
}

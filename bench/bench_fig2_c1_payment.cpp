// Regenerates Figure 2: payment and utility of the deviating computer C1
// in each of the eight experiments.
//
// Paper claims reproduced: C1's utility is maximal in True1; High1 utility
// is 62% lower and Low1 45% lower than True1; Low2's utility is negative
// (its bonus is negative because L > L_{-1}).  The paper also claims the
// Low2 *payment* is negative — that holds only under the bid-based
// compensation variant; see bench_ablation_compensation and EXPERIMENTS.md.

#include <cstdio>

#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/analysis/report.h"
#include "lbmv/core/comp_bonus.h"

int main() {
  const auto config = lbmv::analysis::paper_table1_config();
  const lbmv::core::CompBonusMechanism mechanism;
  const auto results =
      lbmv::analysis::run_paper_experiments(mechanism, config);
  std::printf("%s\n", lbmv::analysis::render_figure2(results).c_str());

  const double u_true1 = results.front().outcome.agents[0].utility;
  std::printf("utility drops vs True1:\n");
  for (const auto& r : results) {
    std::printf("  %-6s %+7.1f%%\n", r.experiment.name.c_str(),
                (r.outcome.agents[0].utility / u_true1 - 1.0) * 100.0);
  }
  std::printf("(paper: High1 -62%%, Low1 -45%%)\n");
  return 0;
}

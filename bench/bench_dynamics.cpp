// Ablation A5: best-response dynamics — behavioural convergence to truth.
//
// Boundedly-rational agents repeatedly optimise their own bid (and
// execution value).  Under the paper's verified mechanism the market
// settles on truth-telling and the optimal latency; under the classical
// no-payment protocol the bids diverge to the ceiling and latency degrades.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/sim/replication.h"
#include "lbmv/strategy/best_response.h"
#include "lbmv/util/stats.h"
#include "lbmv/util/table.h"

namespace {

void run_case(const char* title, const lbmv::core::Mechanism& mechanism,
              const lbmv::model::SystemConfig& config,
              lbmv::strategy::BestResponseOptions options) {
  using lbmv::util::Table;
  const auto result =
      lbmv::strategy::best_response_dynamics(mechanism, config, options);
  std::printf("--- %s ---\n", title);
  Table table({"Round", "max |b_i/t_i - 1|", "latency at profile"});
  for (std::size_t round = 0; round < result.bid_trajectory.size();
       ++round) {
    double max_dev = 0.0;
    lbmv::model::BidProfile profile =
        lbmv::model::BidProfile::truthful(config);
    profile.bids = result.bid_trajectory[round];
    for (std::size_t i = 0; i < config.size(); ++i) {
      max_dev = std::max(max_dev, std::fabs(profile.bids[i] /
                                                config.true_value(i) -
                                            1.0));
    }
    const auto outcome = mechanism.run(config, profile);
    table.add_row({std::to_string(round + 1), Table::num(max_dev, 4),
                   Table::num(outcome.actual_latency, 3)});
  }
  std::printf("%s", table.to_markdown().c_str());
  std::printf("converged: %s after %d rounds; final latency %.3f\n\n",
              result.converged ? "yes" : "no", result.rounds,
              result.final_actual_latency);
}

}  // namespace

int main() {
  using namespace lbmv;
  const model::SystemConfig config({1.0, 1.5, 2.0, 5.0, 8.0}, 15.0);
  const double optimal = alloc::pr_optimal_latency(
      std::vector<double>(config.true_values().begin(),
                          config.true_values().end()),
      config.arrival_rate());
  std::printf(
      "Ablation A5: best-response dynamics (5 machines, R = 15)\n"
      "optimal latency: %.3f\n\n",
      optimal);

  strategy::BestResponseOptions options;
  options.max_rounds = 10;

  const core::CompBonusMechanism verified;
  run_case("verified compensation-and-bonus mechanism", verified, config,
           options);

  const core::NoPaymentMechanism classical;
  options.optimize_execution = false;
  run_case("classical protocol (no payments)", classical, config, options);

  // Robustness: the showcase above is one hand-picked type vector.  Here we
  // Monte-Carlo over log-normally perturbed capacities (parallel
  // replications, split RNG streams) and check that convergence to truth
  // under the verified mechanism is a property of the mechanism, not of the
  // particular instance.
  sim::ReplicationOptions replication;
  replication.replications = 12;
  replication.root_seed = 7;
  const sim::ReplicationRunner runner(replication);
  struct Sample {
    bool converged;
    int rounds;
    double untruthfulness;
    double latency_vs_optimal;
  };
  const auto samples = runner.map<Sample>(
      [&](std::size_t, util::Rng& rng) {
        std::vector<double> types;
        types.reserve(config.size());
        for (std::size_t i = 0; i < config.size(); ++i) {
          // Log-normal multiplier, sigma 0.3: heterogeneity varies per path.
          types.push_back(config.true_value(i) *
                          std::exp(rng.normal(0.0, 0.3)));
        }
        const model::SystemConfig perturbed(types, config.arrival_rate());
        strategy::BestResponseOptions opt;
        opt.max_rounds = 10;
        const auto result =
            strategy::best_response_dynamics(verified, perturbed, opt);
        const double opt_latency = alloc::pr_optimal_latency(
            types, perturbed.arrival_rate());
        return Sample{result.converged, result.rounds,
                      result.max_relative_untruthfulness,
                      result.final_actual_latency / opt_latency - 1.0};
      });
  std::size_t converged = 0;
  util::RunningStats rounds_stats, untruth_stats, gap_stats;
  for (const auto& s : samples) {
    if (s.converged) ++converged;
    rounds_stats.add(static_cast<double>(s.rounds));
    untruth_stats.add(s.untruthfulness);
    gap_stats.add(s.latency_vs_optimal);
  }
  std::printf(
      "--- Monte-Carlo robustness (verified mechanism, %zu perturbed "
      "instances) ---\n"
      "converged: %zu/%zu | mean rounds %.1f | mean max untruthfulness "
      "%.2e | mean latency gap vs optimal %.2e\n",
      samples.size(), converged, samples.size(), rounds_stats.mean(),
      untruth_stats.mean(), gap_stats.mean());
  return 0;
}

// Ablation A1: compensation basis — Definition 3.3 (execution-based,
// C_i = t~_i x_i^2) versus the bid-based variant (C_i = b_i x_i^2).
//
// Motivation: the paper's Low2 discussion claims C1's *payment* goes
// negative because |bonus| > compensation.  Under Definition 3.3 exactly as
// written, compensation = 2 * 43.0 = 86.0 > |bonus| = 32.5 and the payment
// stays positive; the prose is only consistent with the bid-based variant
// (compensation = 0.5 * 43.0 = 21.5 < 32.5).  This bench prints both
// mechanisms side by side over the eight experiments so the discrepancy is
// reproducible at a glance.  Note the bid-based variant also loses the
// exact cancellation U_i = B_i, so it is *not* the mechanism the
// truthfulness proof covers.

#include <cstdio>

#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  const auto config = analysis::paper_table1_config();
  const core::CompBonusMechanism exec_basis;
  const core::CompBonusMechanism bid_basis(
      core::default_allocator(), core::CompensationBasis::kBid);

  Table table({"Experiment", "C (exec)", "P (exec)", "U (exec)", "C (bid)",
               "P (bid)", "U (bid)"});
  for (const auto& experiment : analysis::paper_table2_experiments()) {
    const auto a = analysis::run_experiment(exec_basis, config, experiment);
    const auto b = analysis::run_experiment(bid_basis, config, experiment);
    const auto& ca = a.outcome.agents[0];
    const auto& cb = b.outcome.agents[0];
    table.add_row({experiment.name, Table::num(ca.compensation),
                   Table::num(ca.payment), Table::num(ca.utility),
                   Table::num(cb.compensation), Table::num(cb.payment),
                   Table::num(cb.utility)});
  }
  std::printf(
      "Ablation A1: compensation basis, computer C1 across Table 2\n"
      "(C = compensation, P = payment, U = utility)\n%s\n",
      table.to_markdown().c_str());
  std::printf(
      "Low2 row: the execution-based payment is positive (+53.49) while\n"
      "the bid-based payment is negative (-11.01) — only the latter matches\n"
      "the paper's prose; only the former matches Definition 3.3.\n");
  return 0;
}

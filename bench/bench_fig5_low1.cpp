// Regenerates Figure 5: payment and utility for each computer in Low1
// (C1 bids half its true value and executes at full capacity).  Paper
// claim: C1's utility is 45% below True1 and the other computers obtain
// lower utilities — they receive fewer jobs and smaller payments.  (In our
// definition-faithful reconstruction those utilities actually go negative,
// because C1's underbid makes the measured latency exceed every
// bid-predicted optimum; see EXPERIMENTS.md.)

#include <cstdio>

#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/analysis/report.h"
#include "lbmv/core/comp_bonus.h"

int main() {
  const auto config = lbmv::analysis::paper_table1_config();
  const lbmv::core::CompBonusMechanism mechanism;
  const auto result = lbmv::analysis::run_experiment(
      mechanism, config, lbmv::analysis::paper_experiment("Low1"));
  std::printf(
      "%s\n",
      lbmv::analysis::render_per_computer_figure(result, "Figure 5").c_str());
  return 0;
}

// Regenerates Figure 6: the payment structure of the mechanism — total
// payment handed to the computers against the total (magnitude of)
// valuation, per experiment, plus an arrival-rate sweep at the truthful
// profile.  Paper claim: the total payment is at most ~2.5x the total
// valuation, with the total valuation as the lower bound (a consequence of
// voluntary participation).  Our reconstruction confirms the bound for the
// consistent experiments (True1: 2.14, High1: 2.13) and quantifies how the
// ratio leaves [1, 2.5] when C1's execution deviates from its bid.

#include <cstdio>
#include <vector>

#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/analysis/report.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/frugality.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  const auto config = lbmv::analysis::paper_table1_config();
  const lbmv::core::CompBonusMechanism mechanism;
  const auto results =
      lbmv::analysis::run_paper_experiments(mechanism, config);
  std::printf("%s\n", lbmv::analysis::render_figure6(results).c_str());

  // Truthful-profile sweep over the arrival rate: the ratio is exactly
  // scale-invariant (every term is quadratic in R), pinning the paper's
  // bound at 2.138 for the Table 1 system.
  const std::vector<double> rates{5.0, 10.0, 20.0, 40.0, 80.0};
  const auto sweep =
      lbmv::core::frugality_arrival_sweep(mechanism, config, rates);
  Table table({"R (jobs/s)", "Total payment", "Total |valuation|", "Ratio"});
  for (const auto& point : sweep) {
    table.add_row({Table::num(point.parameter, 0),
                   Table::num(point.report.total_payment),
                   Table::num(point.report.total_valuation),
                   Table::num(point.report.ratio(), 4)});
  }
  std::printf("Truthful-profile arrival-rate sweep:\n%s",
              table.to_markdown().c_str());
  return 0;
}

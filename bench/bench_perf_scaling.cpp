// Ablation A2: computational cost of the mechanism (google-benchmark).
//
// The paper's protocol is centralised with O(n) messages; the computational
// bottleneck is the payment rule, which evaluates n leave-one-out optima
// (O(n^2) for the naive PR evaluation).  These microbenchmarks measure:
//   * the PR closed-form allocation (O(n)),
//   * the numeric convex allocator on the same instances,
//   * full compensation-and-bonus payment computation,
//   * a truthfulness audit grid, serial vs thread-pool parallel.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/batch.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/simd_round.h"
#include "lbmv/dist/protocols.h"
#include "lbmv/game/wardrop.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"
#include "lbmv/model/system_config.h"
#include "lbmv/obs/obs.h"
#include "lbmv/sim/engine.h"
#include "lbmv/sim/job_source.h"
#include "lbmv/sim/legacy_engine.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/sim/replication.h"
#include "lbmv/sim/server.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/grid.h"
#include "lbmv/strategy/grid_eval.h"
#include "lbmv/util/rng.h"
#include "lbmv/util/thread_pool.h"

namespace {

std::vector<double> random_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
  }
  return t;
}

void BM_PrAllocate(benchmark::State& state) {
  const auto types = random_types(static_cast<std::size_t>(state.range(0)),
                                  42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lbmv::alloc::pr_allocate(types, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrAllocate)->RangeMultiplier(4)->Range(4, 65536)->Complexity();

void BM_ConvexAllocate(benchmark::State& state) {
  const auto types = random_types(static_cast<std::size_t>(state.range(0)),
                                  42);
  const lbmv::model::LinearFamily family;
  const lbmv::alloc::ConvexAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(family, types, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexAllocate)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_LeaveOneOutBatch(benchmark::State& state) {
  // The new payment-engine hot path: all n leave-one-out optima in one call
  // (closed form R^2 / (S - 1/t_i) for the PR/linear pairing — O(n) total).
  const auto types = random_types(static_cast<std::size_t>(state.range(0)),
                                  42);
  const lbmv::model::LinearFamily family;
  const lbmv::alloc::PRAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        allocator.leave_one_out_latencies(family, types, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LeaveOneOutBatch)
    ->RangeMultiplier(4)
    ->Range(4, 65536)
    ->Complexity();

void BM_LeaveOneOutPerAgent(benchmark::State& state) {
  // The seed's formulation: one profile copy and one fresh re-solve per
  // agent — O(n^2).  Kept as the baseline the batch API is measured against.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto types = random_types(n, 42);
  const lbmv::model::LinearFamily family;
  const lbmv::alloc::PRAllocator allocator;
  for (auto _ : state) {
    std::vector<double> out(n);
    std::vector<double> rest;
    for (std::size_t i = 0; i < n; ++i) {
      rest.assign(types.begin(), types.end());
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i));
      out[i] = allocator.optimal_latency(family, rest, 20.0);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LeaveOneOutPerAgent)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Complexity();

void BM_CompBonusRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 7), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const auto profile = lbmv::model::BidProfile::truthful(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(config, profile));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompBonusRound)->RangeMultiplier(4)->Range(4, 4096)->Complexity();

void BM_RunInto(benchmark::State& state) {
  // Allocation-free round kernel: same outcome as run() bit for bit, but
  // every scratch plane drawn from a caller-held workspace and the linear
  // family fused into closed forms (DESIGN.md §11).
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 7), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const auto profile = lbmv::model::BidProfile::truthful(config);
  lbmv::core::RoundWorkspace ws;
  lbmv::core::MechanismOutcome out;
  for (auto _ : state) {
    mechanism.run_into(config, profile, out, ws);
    benchmark::DoNotOptimize(out.actual_latency);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RunInto)->RangeMultiplier(4)->Range(4, 4096)->Complexity();

void BM_SingleRoundScalar(benchmark::State& state) {
  // The historical scalar kernels, pinned explicitly: the same-run baseline
  // the vectorized engine benchmarks below are measured against.
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::LinearFamily family;
  const auto bids = random_types(n, 7);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::core::RoundWorkspace ws;
  lbmv::core::MechanismOutcome out;
  const auto entry = lbmv::core::kernel_backend();
  lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kScalar);
  for (auto _ : state) {
    mechanism.run_into(family, 20.0, bids, bids, out, ws);
    benchmark::DoNotOptimize(out.actual_latency);
  }
  lbmv::core::set_kernel_backend(entry);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleRoundScalar)
    ->RangeMultiplier(4)
    ->Range(1024, 1 << 20)
    ->Complexity();

void BM_SingleRoundSimd(benchmark::State& state) {
  // The vectorized engine, serial (DESIGN.md §12): two blocked SIMD passes,
  // closed-form totals, transposed publish.
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::LinearFamily family;
  const auto bids = random_types(n, 7);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::core::RoundWorkspace ws;
  lbmv::core::MechanismOutcome out;
  const auto entry = lbmv::core::kernel_backend();
  lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kVectorized);
  const lbmv::core::RoundOptions serial{1, nullptr};
  for (auto _ : state) {
    mechanism.run_into(family, 20.0, bids, bids, out, ws, serial);
    benchmark::DoNotOptimize(out.actual_latency);
  }
  lbmv::core::set_kernel_backend(entry);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleRoundSimd)
    ->RangeMultiplier(4)
    ->Range(1024, 1 << 20)
    ->Complexity();

void BM_SingleRoundSimdSharded(benchmark::State& state) {
  // The vectorized engine with its agent axis fanned over the global pool
  // (auto shard count).  Bit-identical to the serial run by construction.
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::LinearFamily family;
  const auto bids = random_types(n, 7);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::core::RoundWorkspace ws;
  lbmv::core::MechanismOutcome out;
  const auto entry = lbmv::core::kernel_backend();
  lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kVectorized);
  const lbmv::core::RoundOptions sharded{0, nullptr};
  for (auto _ : state) {
    mechanism.run_into(family, 20.0, bids, bids, out, ws, sharded);
    benchmark::DoNotOptimize(out.actual_latency);
  }
  lbmv::core::set_kernel_backend(entry);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleRoundSimdSharded)
    ->RangeMultiplier(4)
    ->Range(1024, 1 << 20)
    ->Complexity();

void BM_BatchRound(benchmark::State& state) {
  // SoA batch fan-out: 64 profiles per call, fanned over the global pool
  // with one reusable workspace per worker.  items/sec = mechanism rounds.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t profiles = 64;
  const lbmv::model::SystemConfig config(random_types(n, 7), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::core::ProfileBatch batch(n);
  batch.reserve(profiles);
  for (std::size_t b = 0; b < profiles; ++b) {
    const auto bids = random_types(n, 100 + b);
    batch.push_back(bids, bids);
  }
  lbmv::core::BatchOutcomes outcomes;
  for (auto _ : state) {
    mechanism.run_batch(config, batch, outcomes);
    benchmark::DoNotOptimize(outcomes[0].actual_latency);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(profiles));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BatchRound)->RangeMultiplier(4)->Range(4, 4096)->Complexity();

void BM_WardropEquilibrium(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lbmv::util::Rng rng(9);
  std::vector<std::unique_ptr<lbmv::model::LatencyFunction>> links;
  for (std::size_t i = 0; i < n; ++i) {
    links.push_back(std::make_unique<lbmv::model::AffineLatency>(
        rng.uniform(0.0, 3.0), rng.uniform(0.1, 2.0)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lbmv::game::wardrop_equilibrium(links, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WardropEquilibrium)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void BM_TreeDistributedRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 5), 20.0);
  const auto intents = lbmv::model::BidProfile::truthful(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lbmv::dist::run_distributed_round(
        lbmv::dist::Topology::kTree, config, intents));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreeDistributedRound)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_AuditSerial(benchmark::State& state) {
  const lbmv::model::SystemConfig config(random_types(16, 3), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  options.parallel = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_agent(config, 0, options));
  }
}
BENCHMARK(BM_AuditSerial)->Unit(benchmark::kMillisecond);

void BM_AuditParallel(benchmark::State& state) {
  const lbmv::model::SystemConfig config(random_types(16, 3), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  options.parallel = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_agent(config, 0, options));
  }
}
BENCHMARK(BM_AuditParallel)->Unit(benchmark::kMillisecond);

void BM_AuditAll(benchmark::State& state) {
  // Full-system audit with the incremental per-audit context (O(1) per grid
  // point) and agent-level parallelism.
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 3), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_all(config, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AuditAll)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_AuditAllLegacy(benchmark::State& state) {
  // The pre-context path: every grid point re-runs the full mechanism.
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 3), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  options.incremental = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_all(config, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AuditAllLegacy)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_DeviationGridScalar(benchmark::State& state) {
  // Scalar baseline for the lane-parallel grid kernels (DESIGN.md §13):
  // 1000 candidate bids per agent scanned one DeviationEvaluator::utility
  // call at a time.  items/sec = candidate evaluations.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t grid_points = 1000;
  const lbmv::model::SystemConfig config(random_types(n, 13), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::strategy::DeviationEvaluator evaluator(mechanism, config);
  std::vector<std::vector<double>> grids(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = config.true_value(i);
    lbmv::strategy::make_bid_grid_into(0.05 * t, 20.0 * t, grid_points,
                                       lbmv::strategy::GridSpacing::kLinear,
                                       grids[i]);
  }
  for (auto _ : state) {
    double sink = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = config.true_value(i);
      double best = -1e300;
      for (double bid : grids[i]) {
        const double u = evaluator.utility(i, bid, t);
        if (u > best) best = u;
      }
      sink += best;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * grid_points));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeviationGridScalar)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

void BM_DeviationGridVector(benchmark::State& state) {
  // The same sweep through GridEvaluator's 4-lane kernels, serial.
  // Bit-identical argmax to the scalar scan by construction.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t grid_points = 1000;
  const lbmv::model::SystemConfig config(random_types(n, 13), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::strategy::DeviationEvaluator evaluator(mechanism, config);
  const lbmv::strategy::GridEvaluator grid_eval(evaluator);
  std::vector<std::vector<double>> grids(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = config.true_value(i);
    lbmv::strategy::make_bid_grid_into(0.05 * t, 20.0 * t, grid_points,
                                       lbmv::strategy::GridSpacing::kLinear,
                                       grids[i]);
  }
  for (auto _ : state) {
    double sink = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sink +=
          grid_eval.best_response(i, grids[i], config.true_value(i)).utility;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * grid_points));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeviationGridVector)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity();

// ---- Simulation throughput -------------------------------------------------
//
// Pure event-loop dispatch cost, isolated from RNG draws: a ring of sinks
// each re-scheduling itself with a fixed per-sink increment (log-spread over
// two decades, mirroring the paper's heterogeneous service rates), so the
// queue stays populated at the ring size and events interleave.  The typed
// loop hashes POD events into calendar buckets and dispatches through one
// virtual call; the seed loop heap-allocates a >SSO-sized std::function per
// event (the seed server's completion lambda captured this + Job + service
// time) and pays an O(log n) branchy sift per pop.  The range argument is
// the pending-event population.

double ring_increment(std::size_t i) {
  return 0.1 * std::pow(100.0, static_cast<double>(i % 997) / 997.0);
}

void BM_EventLoopTyped(benchmark::State& state) {
  struct Ticker final : lbmv::sim::EventSink {
    double increment = 1.0;
    std::size_t* budget = nullptr;
    void on_sim_event(lbmv::sim::Simulation& sim,
                      lbmv::sim::EventKind) override {
      if (*budget > 0) {
        --*budget;
        sim.schedule_event_after(increment,
                                 lbmv::sim::EventKind::kServiceCompletion,
                                 this);
      }
    }
  };
  const auto ring = static_cast<std::size_t>(state.range(0));
  const std::size_t events = ring * 8;
  lbmv::sim::Simulation sim;
  sim.reserve(ring + 8);
  std::vector<Ticker> sinks(ring);
  std::size_t budget = 0;
  for (std::size_t i = 0; i < ring; ++i) {
    sinks[i].increment = ring_increment(i);
    sinks[i].budget = &budget;
  }
  for (auto _ : state) {
    sim.reset();
    budget = events;
    for (auto& s : sinks) {
      sim.schedule_event_after(s.increment,
                               lbmv::sim::EventKind::kServiceCompletion, &s);
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventLoopTyped)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EventLoopTypedObsOn(benchmark::State& state) {
  // BM_EventLoopTyped with metric recording enabled: the delta against the
  // plain run is the full per-event probe cost (counter + kind counter +
  // queue-depth gauge per dispatched event).  With recording off the probes
  // are a single relaxed load, which is what the obs_overhead section of
  // BENCH_perf.json demonstrates against the same baseline.
  struct Ticker final : lbmv::sim::EventSink {
    double increment = 1.0;
    std::size_t* budget = nullptr;
    void on_sim_event(lbmv::sim::Simulation& sim,
                      lbmv::sim::EventKind) override {
      if (*budget > 0) {
        --*budget;
        sim.schedule_event_after(increment,
                                 lbmv::sim::EventKind::kServiceCompletion,
                                 this);
      }
    }
  };
  const auto ring = static_cast<std::size_t>(state.range(0));
  const std::size_t events = ring * 8;
  lbmv::sim::Simulation sim;
  sim.reserve(ring + 8);
  std::vector<Ticker> sinks(ring);
  std::size_t budget = 0;
  for (std::size_t i = 0; i < ring; ++i) {
    sinks[i].increment = ring_increment(i);
    sinks[i].budget = &budget;
  }
  lbmv::obs::set_enabled(true);
  for (auto _ : state) {
    sim.reset();
    budget = events;
    for (auto& s : sinks) {
      sim.schedule_event_after(s.increment,
                               lbmv::sim::EventKind::kServiceCompletion, &s);
    }
    sim.run();
  }
  lbmv::obs::set_enabled(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventLoopTypedObsOn)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EventLoopFunction(benchmark::State& state) {
  // Captures mirror the seed completion closure: object pointer + Job +
  // service time (40 bytes), past libstdc++'s 16-byte SSO buffer.
  struct Ticker {
    lbmv::sim::legacy::Simulation* sim;
    double increment;
    std::size_t* budget;
    lbmv::sim::Job job;
    void tick() {
      if (*budget > 0) {
        --*budget;
        Ticker self = *this;
        sim->schedule_after(increment, [self]() mutable { self.tick(); });
      }
    }
  };
  const auto ring = static_cast<std::size_t>(state.range(0));
  const std::size_t events = ring * 8;
  for (auto _ : state) {
    lbmv::sim::legacy::Simulation sim;
    std::size_t budget = events;
    std::vector<Ticker> sinks(ring);
    for (std::size_t i = 0; i < ring; ++i) {
      sinks[i] = Ticker{&sim, ring_increment(i), &budget, lbmv::sim::Job{}};
      sinks[i].tick();
    }
    budget += ring;  // the priming ticks above consumed budget
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventLoopFunction)->Arg(64)->Arg(4096)->Arg(65536);

void BM_SimStackTyped(benchmark::State& state) {
  // Full queueing stack (source + FCFS servers), typed loop.
  const std::vector<double> exec{0.02, 0.05, 0.11, 0.4};
  const std::vector<double> rates{2.0, 1.5, 1.0, 0.5};
  std::size_t events = 0;
  for (auto _ : state) {
    lbmv::util::Rng rng(11);
    lbmv::sim::Simulation sim;
    std::vector<std::unique_ptr<lbmv::sim::Server>> servers;
    std::vector<lbmv::sim::Server*> ptrs;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      servers.push_back(std::make_unique<lbmv::sim::Server>(
          sim, "C", exec[i], lbmv::sim::ServiceModel::kExponential,
          rng.split(i + 1)));
      servers.back()->reserve(4096);
      ptrs.push_back(servers.back().get());
    }
    lbmv::sim::JobSource source(sim, ptrs, rates, 2000.0, rng.split(0));
    source.start();
    sim.run();
    events = sim.processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimStackTyped);

void BM_SimStackLegacy(benchmark::State& state) {
  // Identical workload on the preserved seed loop.
  const std::vector<double> exec{0.02, 0.05, 0.11, 0.4};
  const std::vector<double> rates{2.0, 1.5, 1.0, 0.5};
  std::size_t events = 0;
  for (auto _ : state) {
    lbmv::util::Rng rng(11);
    lbmv::sim::legacy::Simulation sim;
    std::vector<std::unique_ptr<lbmv::sim::legacy::Server>> servers;
    std::vector<lbmv::sim::legacy::Server*> ptrs;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      servers.push_back(std::make_unique<lbmv::sim::legacy::Server>(
          sim, "C", exec[i], lbmv::sim::ServiceModel::kExponential,
          rng.split(i + 1)));
      ptrs.push_back(servers.back().get());
    }
    lbmv::sim::legacy::JobSource source(sim, ptrs, rates, 2000.0,
                                        rng.split(0));
    source.start();
    sim.run();
    events = sim.processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimStackLegacy);

void BM_ReplicatedRound(benchmark::State& state) {
  // Parallel Monte-Carlo protocol rounds; threads swept via the range arg.
  const auto threads = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config({0.01, 0.02, 0.04}, 2.0);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::sim::ProtocolOptions options;
  options.horizon = 500.0;
  const lbmv::sim::VerifiedProtocol protocol(mechanism, options);
  lbmv::util::ThreadPool pool(threads);
  lbmv::sim::ReplicationOptions replication;
  replication.replications = 8;
  replication.pool = &pool;
  const auto intents = lbmv::model::BidProfile::truthful(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        protocol.run_replicated(config, intents, replication));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replication.replications));
}
BENCHMARK(BM_ReplicatedRound)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

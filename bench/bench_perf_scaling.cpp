// Ablation A2: computational cost of the mechanism (google-benchmark).
//
// The paper's protocol is centralised with O(n) messages; the computational
// bottleneck is the payment rule, which evaluates n leave-one-out optima
// (O(n^2) for the naive PR evaluation).  These microbenchmarks measure:
//   * the PR closed-form allocation (O(n)),
//   * the numeric convex allocator on the same instances,
//   * full compensation-and-bonus payment computation,
//   * a truthfulness audit grid, serial vs thread-pool parallel.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/dist/protocols.h"
#include "lbmv/game/wardrop.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/rng.h"

namespace {

std::vector<double> random_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
  }
  return t;
}

void BM_PrAllocate(benchmark::State& state) {
  const auto types = random_types(static_cast<std::size_t>(state.range(0)),
                                  42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lbmv::alloc::pr_allocate(types, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PrAllocate)->RangeMultiplier(4)->Range(4, 65536)->Complexity();

void BM_ConvexAllocate(benchmark::State& state) {
  const auto types = random_types(static_cast<std::size_t>(state.range(0)),
                                  42);
  const lbmv::model::LinearFamily family;
  const lbmv::alloc::ConvexAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(family, types, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConvexAllocate)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_LeaveOneOutBatch(benchmark::State& state) {
  // The new payment-engine hot path: all n leave-one-out optima in one call
  // (closed form R^2 / (S - 1/t_i) for the PR/linear pairing — O(n) total).
  const auto types = random_types(static_cast<std::size_t>(state.range(0)),
                                  42);
  const lbmv::model::LinearFamily family;
  const lbmv::alloc::PRAllocator allocator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        allocator.leave_one_out_latencies(family, types, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LeaveOneOutBatch)
    ->RangeMultiplier(4)
    ->Range(4, 65536)
    ->Complexity();

void BM_LeaveOneOutPerAgent(benchmark::State& state) {
  // The seed's formulation: one profile copy and one fresh re-solve per
  // agent — O(n^2).  Kept as the baseline the batch API is measured against.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto types = random_types(n, 42);
  const lbmv::model::LinearFamily family;
  const lbmv::alloc::PRAllocator allocator;
  for (auto _ : state) {
    std::vector<double> out(n);
    std::vector<double> rest;
    for (std::size_t i = 0; i < n; ++i) {
      rest.assign(types.begin(), types.end());
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i));
      out[i] = allocator.optimal_latency(family, rest, 20.0);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LeaveOneOutPerAgent)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Complexity();

void BM_CompBonusRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 7), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const auto profile = lbmv::model::BidProfile::truthful(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanism.run(config, profile));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompBonusRound)->RangeMultiplier(4)->Range(4, 4096)->Complexity();

void BM_WardropEquilibrium(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  lbmv::util::Rng rng(9);
  std::vector<std::unique_ptr<lbmv::model::LatencyFunction>> links;
  for (std::size_t i = 0; i < n; ++i) {
    links.push_back(std::make_unique<lbmv::model::AffineLatency>(
        rng.uniform(0.0, 3.0), rng.uniform(0.1, 2.0)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lbmv::game::wardrop_equilibrium(links, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WardropEquilibrium)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void BM_TreeDistributedRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 5), 20.0);
  const auto intents = lbmv::model::BidProfile::truthful(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lbmv::dist::run_distributed_round(
        lbmv::dist::Topology::kTree, config, intents));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreeDistributedRound)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_AuditSerial(benchmark::State& state) {
  const lbmv::model::SystemConfig config(random_types(16, 3), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  options.parallel = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_agent(config, 0, options));
  }
}
BENCHMARK(BM_AuditSerial)->Unit(benchmark::kMillisecond);

void BM_AuditParallel(benchmark::State& state) {
  const lbmv::model::SystemConfig config(random_types(16, 3), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  options.parallel = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_agent(config, 0, options));
  }
}
BENCHMARK(BM_AuditParallel)->Unit(benchmark::kMillisecond);

void BM_AuditAll(benchmark::State& state) {
  // Full-system audit with the incremental per-audit context (O(1) per grid
  // point) and agent-level parallelism.
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 3), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_all(config, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AuditAll)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_AuditAllLegacy(benchmark::State& state) {
  // The pre-context path: every grid point re-runs the full mechanism.
  const auto n = static_cast<std::size_t>(state.range(0));
  const lbmv::model::SystemConfig config(random_types(n, 3), 20.0);
  const lbmv::core::CompBonusMechanism mechanism;
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions options;
  options.incremental = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_all(config, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AuditAllLegacy)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace

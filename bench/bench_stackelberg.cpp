// Bench A14: Stackelberg scheduling (paper reference [19]).
//
// A leader centrally routes a fraction alpha of the jobs; the rest route
// selfishly.  On affine links (where selfish routing hurts, unlike the
// paper's pure linear model) we sweep alpha for both leader strategies and
// chart how quickly central control buys back the optimum.

#include <cstdio>
#include <memory>
#include <vector>

#include "lbmv/game/stackelberg.h"
#include "lbmv/model/latency.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;
  using game::StackelbergStrategy;

  // A mix of fixed-cost and congestible links where selfish routing is
  // measurably suboptimal.
  std::vector<std::unique_ptr<model::LatencyFunction>> links;
  links.push_back(std::make_unique<model::AffineLatency>(4.0, 0.05));
  links.push_back(std::make_unique<model::AffineLatency>(2.0, 0.4));
  links.push_back(std::make_unique<model::AffineLatency>(0.5, 1.0));
  links.push_back(std::make_unique<model::LinearLatency>(2.0));
  const double demand = 8.0;

  const auto base = game::stackelberg(links, demand, 0.0);
  std::printf(
      "Bench A14: Stackelberg scheduling (4 affine links, R = %.0f)\n"
      "selfish latency %.4f, optimal %.4f (PoA %.4f)\n\n",
      demand, base.selfish_latency, base.optimal_latency,
      base.selfish_latency / base.optimal_latency);

  Table table({"alpha", "Scale: L", "Scale: ineff.", "LLF: L",
               "LLF: ineff."});
  for (double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto scale =
        game::stackelberg(links, demand, alpha, StackelbergStrategy::kScale);
    const auto llf = game::stackelberg(
        links, demand, alpha, StackelbergStrategy::kLargestLatencyFirst);
    table.add_row({Table::num(alpha, 1), Table::num(scale.total_latency, 4),
                   Table::num(scale.inefficiency(), 4),
                   Table::num(llf.total_latency, 4),
                   Table::num(llf.inefficiency(), 4)});
  }
  std::printf("%s\n", table.to_markdown().c_str());
  std::printf(
      "LLF dominates the naive scaled strategy at every alpha: loading the\n"
      "links the optimum runs hottest keeps the selfish followers on the\n"
      "cheap links.  Both recover the optimum at alpha = 1, and on the\n"
      "paper's pure linear links the whole sweep is flat at 1.0 (PoA = 1).\n");
  return 0;
}

// Regenerates Figure 1: "Performance degradation" — the total latency of
// the system in each of the eight Table 2 experiments at R = 20 jobs/s.
//
// Paper claims reproduced: True1 = 78.43 (minimum), True2 +17% (we discuss
// the 17%-vs-19.6% accounting in EXPERIMENTS.md), Low1 "about 11%",
// Low2 "about 66%", High2 < High3 < High1 < High4.

#include <cstdio>

#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/analysis/report.h"
#include "lbmv/core/comp_bonus.h"

int main() {
  const auto config = lbmv::analysis::paper_table1_config();
  const lbmv::core::CompBonusMechanism mechanism;
  const auto results =
      lbmv::analysis::run_paper_experiments(mechanism, config);
  std::printf("%s\n", lbmv::analysis::render_figure1(results).c_str());
  std::printf("CSV:\n%s", lbmv::analysis::results_csv(results).c_str());
  return 0;
}

// Extension bench A9: multi-epoch operation with drifting speeds.
//
// The mechanism re-runs every epoch while machine speeds follow a random
// walk.  Agents whose speed *measurements* are stale bid outdated values —
// unintentional misreporting.  We sweep the reporting lag and the drift
// rate and chart how system efficiency (optimal / achieved latency) decays,
// plus what staleness costs the stale agent itself.
//
// Every sweep cell averages independent drift paths: replications fan out
// across the thread pool with RNG streams split from one root seed, so the
// table is a Monte-Carlo mean rather than a single random walk.

#include <cstdio>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/sim/epochs.h"
#include "lbmv/sim/replication.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  const model::SystemConfig config({1.0, 1.0, 2.0, 5.0, 8.0}, 15.0);
  const core::CompBonusMechanism mechanism;

  sim::ReplicationOptions replication;
  replication.replications = 6;
  replication.root_seed = 99;

  std::printf(
      "Extension A9: epochs under drift (5 machines, R = 15, 60 epochs,\n"
      "%zu drift paths per cell, mean efficiency reported)\n\n",
      replication.replications);

  Table sweep({"Drift sigma", "Lag 0", "Lag 1", "Lag 2", "Lag 4"});
  for (double sigma : {0.05, 0.1, 0.2, 0.4}) {
    std::vector<std::string> row{Table::num(sigma, 2)};
    for (int lag : {0, 1, 2, 4}) {
      sim::EpochOptions options;
      options.epochs = 60;
      options.drift_sigma = sigma;
      options.bid_lags.assign(config.size(), lag);
      const auto merged =
          run_epochs_replicated(mechanism, config, options, replication);
      row.push_back(Table::num(merged.mean_efficiency.mean(), 4));
    }
    sweep.add_row(row);
  }
  std::printf("mean efficiency (optimal/achieved) by drift and bid lag:\n%s\n",
              sweep.to_markdown().c_str());

  // What staleness costs the stale agent: averaged over drift paths, one
  // agent lags while the rest stay fresh.
  Table cost({"Lag of C1", "C1 cumulative utility", "95% +/-", "vs fresh"});
  double fresh_utility = 0.0;
  for (int lag : {0, 1, 2, 4}) {
    sim::EpochOptions options;
    options.epochs = 60;
    options.drift_sigma = 0.25;
    options.bid_lags.assign(config.size(), 0);
    options.bid_lags[0] = lag;
    const auto merged =
        run_epochs_replicated(mechanism, config, options, replication);
    const double utility = merged.cumulative_utility[0].mean();
    const double half = merged.cumulative_utility[0].ci95_halfwidth();
    if (lag == 0) fresh_utility = utility;
    cost.add_row({std::to_string(lag), Table::num(utility, 2),
                  Table::num(half, 2),
                  Table::pct(utility / fresh_utility - 1.0)});
  }
  std::printf("staleness is self-punishing under the mechanism:\n%s\n",
              cost.to_markdown().c_str());
  std::printf(
      "Fresh bids keep every epoch exactly optimal regardless of drift;\n"
      "stale measurements act like unintentional lies, cost the system\n"
      "efficiency, and cost the stale agent utility — the incentive to\n"
      "keep measurements current is built into the payments.\n");
  return 0;
}

// Bench A12: coalition manipulability.
//
// Theorem 3.1 is a *unilateral* guarantee.  Like VCG, the compensation-and-
// bonus mechanism is not coalition-proof: agent B can inflate its bid to
// blow up agent A's leave-one-out counterfactual L_{-A}(b_{-A}) (which
// contains B's bid), raising A's bonus by more than the coalition loses
// elsewhere — a strictly positive joint gain that transferable utility lets
// them split.  This bench quantifies the best pairwise gain on the paper's
// system and shows which pairs collude best.

#include <cstdio>
#include <sstream>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  const auto config = analysis::paper_table1_config();
  const core::CompBonusMechanism mechanism;
  const core::CoalitionAuditor auditor(mechanism);

  core::AuditOptions options;
  options.bid_multipliers = {0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 8.0};
  options.exec_multipliers = {1.0, 1.5, 2.0};

  // Representative pairs: within and across speed groups of Table 1.
  struct Pair {
    std::size_t a, b;
    const char* label;
  };
  const Pair pairs[] = {
      {0, 1, "C1+C2   (fast + fast)"},
      {0, 2, "C1+C3   (fast + medium)"},
      {0, 10, "C1+C11  (fast + slow)"},
      {2, 3, "C3+C4   (medium + medium)"},
      {10, 11, "C11+C12 (slow + slow)"},
  };

  Table table({"Pair", "Joint truthful U", "Best joint U", "Gain",
               "Best joint deviation"});
  for (const auto& pair : pairs) {
    const auto report = auditor.audit_pair(config, pair.a, pair.b, options);
    std::ostringstream deviation;
    deviation << "A: bid x" << report.best.bid_mult_a << " exec x"
              << report.best.exec_mult_a << "; B: bid x"
              << report.best.bid_mult_b << " exec x"
              << report.best.exec_mult_b;
    table.add_row({pair.label, Table::num(report.truthful_joint_utility, 3),
                   Table::num(report.best.joint_utility, 3),
                   Table::num(report.max_joint_gain, 3), deviation.str()});
  }
  std::printf(
      "Bench A12: pairwise coalition audit (Table 1 system, R = 20)\n%s\n",
      table.to_markdown().c_str());
  std::printf(
      "Positive gains confirm the mechanism is not coalition-proof — the\n"
      "standard limitation of marginal-contribution payments (VCG shares\n"
      "it).  The winning pattern: one partner inflates its bid, which\n"
      "inflates the *other* partner's leave-one-out counterfactual and\n"
      "hence its bonus.  Execution multipliers stay at 1 in every best\n"
      "deviation: verification closes the execution channel even for\n"
      "coalitions.\n");
  return 0;
}

// Ablation A6: frugality vs system shape.
//
// The paper reports a single frugality number (payment at most ~2.5x
// valuation) for its one 16-computer testbed.  This bench maps the measure:
// (a) versus heterogeneity — true values geometrically spread over
//     [1, spread] — where the closed form is ratio = 1 + sum s_i/(S - s_i);
// (b) versus system size n for a homogeneous system, where the ratio is
//     1 + n/(n-1) and tends to 2 from above.

#include <cstdio>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/frugality.h"
#include "lbmv/model/bids.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/util/table.h"

int main() {
  using lbmv::util::Table;
  using namespace lbmv;

  const core::CompBonusMechanism mechanism;

  const std::vector<double> spreads{1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0};
  const auto by_spread =
      core::frugality_heterogeneity_sweep(mechanism, 16, 20.0, spreads);
  Table spread_table({"Spread t_max/t_min", "Total payment",
                      "Total |valuation|", "Ratio"});
  for (const auto& point : by_spread) {
    spread_table.add_row({Table::num(point.parameter, 0),
                          Table::num(point.report.total_payment),
                          Table::num(point.report.total_valuation),
                          Table::num(point.report.ratio(), 4)});
  }
  std::printf(
      "Ablation A6a: frugality vs heterogeneity (n = 16, R = 20, truthful)\n"
      "%s\n",
      spread_table.to_markdown().c_str());

  Table size_table({"n (homogeneous)", "Ratio", "1 + n/(n-1)"});
  core::MechanismOutcome outcome;  // reused across sizes
  for (std::size_t n : {2, 4, 8, 16, 32, 64, 128}) {
    const model::SystemConfig config(std::vector<double>(n, 1.0), 20.0);
    strategy::DeviationEvaluator(mechanism, config).outcome_into(outcome);
    const auto report = core::frugality_of(outcome);
    size_table.add_row(
        {std::to_string(n), Table::num(report.ratio(), 4),
         Table::num(1.0 + static_cast<double>(n) /
                              static_cast<double>(n - 1), 4)});
  }
  std::printf(
      "Ablation A6b: frugality vs system size (homogeneous, truthful)\n%s\n",
      size_table.to_markdown().c_str());
  std::printf(
      "The paper's 2.5 bound is a property of its particular testbed: the\n"
      "ratio is ~2 + epsilon for homogeneous systems and grows with\n"
      "heterogeneity as the fast machines become more pivotal.\n");
  return 0;
}

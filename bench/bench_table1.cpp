// Regenerates the paper's Table 1: the simulated system configuration.
// 16 heterogeneous computers in four speed groups, R = 20 jobs/s.

#include <cstdio>

#include "lbmv/analysis/report.h"

int main() {
  const auto config = lbmv::analysis::paper_table1_config();
  std::printf("%s\n", lbmv::analysis::render_table1(config).c_str());
  std::printf(
      "sum(1/t) = 5.1; closed-form optimal latency at R = 20:\n"
      "L* = R^2 / sum(1/t) = 400 / 5.1 = 78.43 (paper: 78.43)\n");
  return 0;
}

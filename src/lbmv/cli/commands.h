#pragma once

/// \file commands.h
/// Implementation of the `lbmv` command-line tool.
///
/// The tool makes the whole library drivable without writing C++:
///
///   lbmv paper                      # regenerate the paper's evaluation
///   lbmv run --types 1,2,5 --rate 20 --deviate 0:3:1.5
///   lbmv audit --types 1,2,5 --rate 20 --mechanism vcg
///   lbmv frugality --types 1,1,2,4 --rate 12
///   lbmv dynamics --types 1,2,5 --rate 10 --mechanism no-payment
///   lbmv learn --types 1,2,5 --rate 10 --rounds 800
///   lbmv protocol --types 0.01,0.02 --rate 2 --horizon 20000
///   lbmv dist --types 1,2,5 --rate 10 --topology private
///   lbmv config --file system.json  # JSON-described round (+ --json out)
///
/// Kept in a library (rather than in main) so the commands are unit
/// testable; the binary in tools/ is a two-line dispatcher.

#include <ostream>
#include <string>
#include <vector>

namespace lbmv::cli {

/// Run the tool on \p args (argv without the program name).  Normal and
/// error output go to \p out / \p err.  Returns the process exit code
/// (0 on success, 2 on usage errors, 1 on runtime failures).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace lbmv::cli

#include "lbmv/cli/commands.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/analysis/paper_experiments.h"
#include "lbmv/analysis/report.h"
#include "lbmv/core/archer_tardos.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/frugality.h"
#include "lbmv/core/invariants.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/simd_round.h"
#include "lbmv/core/vcg.h"
#include "lbmv/dist/protocols.h"
#include "lbmv/game/wardrop.h"
#include "lbmv/obs/flight_recorder.h"
#include "lbmv/obs/metrics.h"
#include "lbmv/obs/monitor.h"
#include "lbmv/obs/obs.h"
#include "lbmv/obs/sampler.h"
#include "lbmv/obs/trace.h"
#include "lbmv/sim/epochs.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/util/ascii_chart.h"
#include "lbmv/strategy/best_response.h"
#include "lbmv/strategy/learning.h"
#include "lbmv/util/cli.h"
#include "lbmv/util/json.h"
#include "lbmv/util/table.h"

namespace lbmv::cli {
namespace {

using util::ArgParser;
using util::JsonValue;
using util::Table;
using util::UsageError;

std::unique_ptr<core::Mechanism> make_mechanism(const std::string& name) {
  if (name == "comp-bonus") return std::make_unique<core::CompBonusMechanism>();
  if (name == "vcg") return std::make_unique<core::VcgMechanism>();
  if (name == "archer-tardos") {
    return std::make_unique<core::ArcherTardosMechanism>();
  }
  if (name == "no-payment") return std::make_unique<core::NoPaymentMechanism>();
  throw UsageError("unknown mechanism '" + name +
                   "' (comp-bonus | vcg | archer-tardos | no-payment)");
}

model::SystemConfig config_from_args(const ArgParser& args) {
  const auto types = args.option_as_doubles("types");
  const double rate = args.option_as_double("rate");
  for (double t : types) {
    if (t <= 0.0) throw UsageError("--types entries must be positive");
  }
  if (rate <= 0.0) throw UsageError("--rate must be positive");
  return model::SystemConfig(types, rate);
}

/// --deviate i:bid_mult[:exec_mult], repeatable via comma separation
/// (e.g. "0:3:1.5,2:0.5").
model::BidProfile profile_from_deviations(const model::SystemConfig& config,
                                          const std::string& spec) {
  model::BidProfile profile = model::BidProfile::truthful(config);
  if (spec.empty()) return profile;
  std::stringstream groups(spec);
  std::string group;
  while (std::getline(groups, group, ',')) {
    std::stringstream fields(group);
    std::string field;
    std::vector<std::string> parts;
    while (std::getline(fields, field, ':')) parts.push_back(field);
    if (parts.size() < 2 || parts.size() > 3) {
      throw UsageError("--deviate expects agent:bid_mult[:exec_mult]");
    }
    try {
      const auto agent = static_cast<std::size_t>(std::stoul(parts[0]));
      const double bid_mult = std::stod(parts[1]);
      const double exec_mult = parts.size() == 3 ? std::stod(parts[2]) : 1.0;
      if (agent >= config.size()) throw UsageError("--deviate agent index");
      profile.bids[agent] = config.true_value(agent) * bid_mult;
      profile.executions[agent] = config.true_value(agent) * exec_mult;
    } catch (const UsageError&) {
      throw;
    } catch (const std::exception&) {
      throw UsageError("malformed --deviate group '" + group + "'");
    }
  }
  return profile;
}

JsonValue outcome_to_json(const core::MechanismOutcome& outcome) {
  JsonValue::Array agents;
  for (const auto& a : outcome.agents) {
    JsonValue::Object agent;
    agent["allocation"] = a.allocation;
    agent["compensation"] = a.compensation;
    agent["bonus"] = a.bonus;
    agent["payment"] = a.payment;
    agent["valuation"] = a.valuation;
    agent["utility"] = a.utility;
    agents.emplace_back(std::move(agent));
  }
  JsonValue::Object root;
  root["actual_latency"] = outcome.actual_latency;
  root["reported_latency"] = outcome.reported_latency;
  root["total_payment"] = outcome.total_payment();
  root["agents"] = JsonValue(std::move(agents));
  return JsonValue(std::move(root));
}

void print_outcome(const core::MechanismOutcome& outcome, std::ostream& out) {
  Table table({"Agent", "jobs/s", "Compensation", "Bonus", "Payment",
               "Utility"});
  for (std::size_t i = 0; i < outcome.agents.size(); ++i) {
    const auto& a = outcome.agents[i];
    table.add_row({"C" + std::to_string(i + 1), Table::num(a.allocation, 4),
                   Table::num(a.compensation, 4), Table::num(a.bonus, 4),
                   Table::num(a.payment, 4), Table::num(a.utility, 4)});
  }
  out << "actual latency: " << Table::num(outcome.actual_latency, 4)
      << "   reported latency: "
      << Table::num(outcome.reported_latency, 4) << "\n"
      << table.to_markdown();
}

int cmd_paper(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv paper", "regenerate the paper's evaluation");
  args.add_option("rate", "arrival rate (jobs/s)", "20");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = analysis::paper_table1_config().with_arrival_rate(
      args.option_as_double("rate"));
  const core::CompBonusMechanism mechanism;
  const auto results = analysis::run_paper_experiments(mechanism, config);
  out << analysis::render_table1(config) << '\n'
      << analysis::render_table2() << '\n'
      << analysis::render_figure1(results) << '\n'
      << analysis::render_figure2(results) << '\n'
      << analysis::render_figure6(results);
  return 0;
}

int cmd_run(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv run", "run one mechanism round");
  args.add_option("types", "true values, comma separated", "1,2,5,10");
  args.add_option("rate", "arrival rate (jobs/s)", "20");
  args.add_option("mechanism", "mechanism name", "comp-bonus");
  args.add_option("deviate", "agent:bid_mult[:exec_mult], comma separated",
                  "");
  args.add_flag("json", "emit JSON instead of a table");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const auto mechanism = make_mechanism(args.option("mechanism"));
  const auto profile =
      profile_from_deviations(config, args.option("deviate"));
  const auto outcome = mechanism->run(config, profile);
  if (args.flag("json")) {
    out << outcome_to_json(outcome).dump(2) << '\n';
  } else {
    print_outcome(outcome, out);
  }
  return 0;
}

int cmd_audit(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv audit", "grid-audit truthfulness per agent");
  args.add_option("types", "true values, comma separated", "1,2,5,10");
  args.add_option("rate", "arrival rate (jobs/s)", "20");
  args.add_option("mechanism", "mechanism name", "comp-bonus");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const auto mechanism = make_mechanism(args.option("mechanism"));
  const core::TruthfulnessAuditor auditor(*mechanism);
  Table table({"Agent", "Truthful utility", "Best deviation", "Max gain",
               "Dominant?"});
  bool all_ok = true;
  for (const auto& report : auditor.audit_all(config)) {
    const bool ok = report.truthful_dominant(1e-7);
    all_ok &= ok;
    std::ostringstream best;
    best << "bid x" << report.best.bid_mult << ", exec x"
         << report.best.exec_mult;
    table.add_row({"C" + std::to_string(report.agent + 1),
                   Table::num(report.truthful_utility, 4), best.str(),
                   Table::num(report.max_gain, 6), ok ? "yes" : "NO"});
  }
  out << "mechanism: " << mechanism->name()
      << (mechanism->uses_verification() ? " (with verification)" : "")
      << "\n"
      << table.to_markdown() << "voluntary participation: "
      << (core::voluntary_participation_holds(*mechanism, config) ? "holds"
                                                                  : "VIOLATED")
      << "\n";
  return all_ok ? 0 : 1;
}

int cmd_frugality(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv frugality", "payment structure at the truthful profile");
  args.add_option("types", "true values, comma separated", "1,2,5,10");
  args.add_option("rate", "arrival rate (jobs/s)", "20");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const core::CompBonusMechanism mechanism;
  const auto outcome =
      mechanism.run(config, model::BidProfile::truthful(config));
  const auto report = core::frugality_of(outcome);
  out << "total payment:     " << Table::num(report.total_payment, 4) << '\n'
      << "total |valuation|: " << Table::num(report.total_valuation, 4)
      << '\n'
      << "ratio:             " << Table::num(report.ratio(), 4) << '\n';
  return 0;
}

int cmd_dynamics(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv dynamics", "iterated best-response dynamics");
  args.add_option("types", "true values, comma separated", "1,2,5");
  args.add_option("rate", "arrival rate (jobs/s)", "10");
  args.add_option("mechanism", "mechanism name", "comp-bonus");
  args.add_option("rounds", "max rounds", "20");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const auto mechanism = make_mechanism(args.option("mechanism"));
  strategy::BestResponseOptions options;
  options.max_rounds = static_cast<int>(args.option_as_long("rounds"));
  const auto result =
      strategy::best_response_dynamics(*mechanism, config, options);
  out << "converged: " << (result.converged ? "yes" : "no") << " after "
      << result.rounds << " rounds\n";
  Table table({"Agent", "Final bid / true", "Final exec / true"});
  for (std::size_t i = 0; i < config.size(); ++i) {
    table.add_row({"C" + std::to_string(i + 1),
                   Table::num(result.final_bids[i] / config.true_value(i), 3),
                   Table::num(
                       result.final_executions[i] / config.true_value(i),
                       3)});
  }
  out << table.to_markdown() << "final latency: "
      << Table::num(result.final_actual_latency, 4) << '\n';
  return 0;
}

int cmd_learn(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv learn", "epsilon-greedy bandit agents");
  args.add_option("types", "true values, comma separated", "1,2,5");
  args.add_option("rate", "arrival rate (jobs/s)", "10");
  args.add_option("mechanism", "mechanism name", "comp-bonus");
  args.add_option("rounds", "learning rounds", "800");
  args.add_option("seed", "rng seed", "5");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const auto mechanism = make_mechanism(args.option("mechanism"));
  strategy::LearningOptions options;
  options.rounds = static_cast<int>(args.option_as_long("rounds"));
  options.seed = static_cast<std::uint64_t>(args.option_as_long("seed"));
  const auto result = strategy::run_learning(*mechanism, config, options);
  Table table({"Agent", "Greedy bid mult", "Greedy exec mult"});
  for (std::size_t i = 0; i < config.size(); ++i) {
    table.add_row({"C" + std::to_string(i + 1),
                   Table::num(result.final_bid_mult[i], 2),
                   Table::num(result.final_exec_mult[i], 2)});
  }
  out << table.to_markdown() << "truthful fraction: "
      << Table::num(result.truthful_fraction, 2)
      << ", greedy-profile latency: "
      << Table::num(result.final_greedy_latency, 4) << '\n';
  return 0;
}

int cmd_protocol(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv protocol",
                 "one simulated round with estimated verification");
  args.add_option("types", "true values (light load!), comma separated",
                  "0.01,0.01,0.02");
  args.add_option("rate", "arrival rate (jobs/s)", "3");
  args.add_option("horizon", "simulated seconds", "20000");
  args.add_option("seed", "rng seed", "42");
  args.add_option("deviate", "agent:bid_mult[:exec_mult]", "");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const core::CompBonusMechanism mechanism;
  sim::ProtocolOptions options;
  options.horizon = args.option_as_double("horizon");
  options.seed = static_cast<std::uint64_t>(args.option_as_long("seed"));
  const sim::VerifiedProtocol protocol(mechanism, options);
  const auto report = protocol.run_round(
      config, profile_from_deviations(config, args.option("deviate")));
  Table table({"Agent", "jobs/s", "Estimated t~", "Payment (estimated)",
               "Payment (oracle)"});
  for (std::size_t i = 0; i < config.size(); ++i) {
    table.add_row({"C" + std::to_string(i + 1),
                   Table::num(report.allocation[i], 4),
                   Table::num(report.estimated_execution[i], 5),
                   Table::num(report.outcome.agents[i].payment, 5),
                   Table::num(report.oracle_outcome.agents[i].payment, 5)});
  }
  out << "messages: " << report.messages << " (3n), jobs: "
      << report.metrics.total_jobs() << '\n'
      << table.to_markdown() << "measured total latency: "
      << Table::num(report.metrics.measured_total_latency, 5)
      << "  analytic: "
      << Table::num(report.oracle_outcome.actual_latency, 5) << '\n';
  return 0;
}

int cmd_dist(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv dist", "distributed payment deployments");
  args.add_option("types", "true values, comma separated", "1,2,5,10");
  args.add_option("rate", "arrival rate (jobs/s)", "20");
  args.add_option("topology", "star | broadcast | tree | private", "tree");
  args.add_option("deviate", "agent:bid_mult[:exec_mult]", "");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const std::string topology_name = args.option("topology");
  dist::Topology topology;
  if (topology_name == "star") {
    topology = dist::Topology::kStar;
  } else if (topology_name == "broadcast") {
    topology = dist::Topology::kBroadcast;
  } else if (topology_name == "tree") {
    topology = dist::Topology::kTree;
  } else if (topology_name == "private") {
    topology = dist::Topology::kPrivate;
  } else {
    throw UsageError("unknown topology '" + topology_name + "'");
  }
  const auto report = dist::run_distributed_round(
      topology, config,
      profile_from_deviations(config, args.option("deviate")));
  Table table({"Agent", "jobs/s", "Payment", "Utility"});
  for (std::size_t i = 0; i < config.size(); ++i) {
    table.add_row({"C" + std::to_string(i + 1),
                   Table::num(report.allocation[i], 4),
                   Table::num(report.payments[i], 4),
                   Table::num(report.utilities[i], 4)});
  }
  out << "protocol: " << report.protocol << ", messages: " << report.messages
      << ", doubles: " << report.doubles_transferred
      << ", time: " << Table::num(report.completion_time, 3) << "s\n"
      << table.to_markdown();
  return 0;
}

int cmd_config(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv config", "run a round described by a JSON file");
  args.add_option("file", "path to the JSON description", "");
  args.add_flag("json", "emit JSON instead of a table");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const std::string path = args.option("file");
  if (path.empty()) throw UsageError("--file is required");
  std::ifstream in(path);
  if (!in) throw UsageError("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buffer.str());

  std::vector<double> types;
  for (const auto& t : doc.at("true_values").as_array()) {
    types.push_back(t.as_number());
  }
  const model::SystemConfig config(types,
                                   doc.at("arrival_rate").as_number());
  model::BidProfile profile = model::BidProfile::truthful(config);
  if (doc.contains("deviations")) {
    for (const auto& d : doc.at("deviations").as_array()) {
      const auto agent = static_cast<std::size_t>(d.at("agent").as_number());
      if (agent >= config.size()) throw UsageError("deviation agent index");
      profile.bids[agent] =
          config.true_value(agent) * d.number_or("bid_mult", 1.0);
      profile.executions[agent] =
          config.true_value(agent) * d.number_or("exec_mult", 1.0);
    }
  }
  const std::string mechanism_name =
      doc.contains("mechanism") ? doc.at("mechanism").as_string()
                                : "comp-bonus";
  const auto mechanism = make_mechanism(mechanism_name);
  const auto outcome = mechanism->run(config, profile);
  if (args.flag("json")) {
    out << outcome_to_json(outcome).dump(2) << '\n';
  } else {
    print_outcome(outcome, out);
  }
  return 0;
}

int cmd_poa(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv poa",
                 "price of anarchy of selfish routing on parallel links");
  args.add_option("types", "linear slopes t_i, comma separated", "1,2,5");
  args.add_option("constants", "optional constant terms a_i (affine links)",
                  "");
  args.add_option("rate", "demand (jobs/s)", "10");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto slopes = args.option_as_doubles("types");
  std::vector<double> constants(slopes.size(), 0.0);
  if (!args.option("constants").empty()) {
    constants = args.option_as_doubles("constants");
    if (constants.size() != slopes.size()) {
      throw UsageError("--constants must match --types in length");
    }
  }
  std::vector<std::unique_ptr<model::LatencyFunction>> links;
  for (std::size_t i = 0; i < slopes.size(); ++i) {
    if (constants[i] == 0.0) {
      links.push_back(std::make_unique<model::LinearLatency>(slopes[i]));
    } else {
      links.push_back(
          std::make_unique<model::AffineLatency>(constants[i], slopes[i]));
    }
  }
  const auto report =
      game::price_of_anarchy(links, args.option_as_double("rate"));
  out << "equilibrium latency: " << Table::num(report.equilibrium_latency, 4)
      << '\n'
      << "optimal latency:     " << Table::num(report.optimal_latency, 4)
      << '\n'
      << "price of anarchy:    " << Table::num(report.price_of_anarchy(), 4)
      << '\n';
  return 0;
}

int cmd_coalition(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv coalition", "joint-deviation audit for agent pairs");
  args.add_option("types", "true values, comma separated", "1,2,5,10");
  args.add_option("rate", "arrival rate (jobs/s)", "20");
  args.add_option("pair", "two agent indices, comma separated", "0,1");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const auto pair = args.option_as_doubles("pair");
  if (pair.size() != 2) throw UsageError("--pair expects two indices");
  const core::CompBonusMechanism mechanism;
  const core::CoalitionAuditor auditor(mechanism);
  const auto report = auditor.audit_pair(
      config, static_cast<std::size_t>(pair[0]),
      static_cast<std::size_t>(pair[1]));
  out << "joint truthful utility: "
      << Table::num(report.truthful_joint_utility, 4) << '\n'
      << "best joint utility:     "
      << Table::num(report.best.joint_utility, 4) << " (A: bid x"
      << report.best.bid_mult_a << " exec x" << report.best.exec_mult_a
      << "; B: bid x" << report.best.bid_mult_b << " exec x"
      << report.best.exec_mult_b << ")\n"
      << "max joint gain:         " << Table::num(report.max_joint_gain, 4)
      << '\n'
      << "coalition-proof:        "
      << (report.coalition_proof(1e-6) ? "yes" : "NO") << '\n';
  return report.coalition_proof(1e-6) ? 0 : 1;
}

int cmd_epochs(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv epochs", "multi-epoch operation under drift");
  args.add_option("types", "true values, comma separated", "1,2,5");
  args.add_option("rate", "arrival rate (jobs/s)", "10");
  args.add_option("epochs", "number of epochs", "30");
  args.add_option("drift", "per-epoch log-speed sigma", "0.1");
  args.add_option("lag", "bid staleness (epochs), same for every agent",
                  "0");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const core::CompBonusMechanism mechanism;
  sim::EpochOptions options;
  options.epochs = static_cast<int>(args.option_as_long("epochs"));
  options.drift_sigma = args.option_as_double("drift");
  options.bid_lags.assign(config.size(),
                          static_cast<int>(args.option_as_long("lag")));
  const auto report = sim::run_epochs(mechanism, config, options);
  out << "mean efficiency (optimal/achieved): "
      << Table::num(report.mean_efficiency, 4) << '\n';
  Table table({"Agent", "Cumulative utility"});
  for (std::size_t i = 0; i < config.size(); ++i) {
    table.add_row({"C" + std::to_string(i + 1),
                   Table::num(report.cumulative_utility[i], 3)});
  }
  out << table.to_markdown();
  return 0;
}

/// `family{key="value"}` -> `value`; plain family names pass through.
std::string metric_label_value(const std::string& name) {
  const auto open = name.find('"');
  const auto close = name.rfind('"');
  if (open == std::string::npos || close <= open) return name;
  return name.substr(open + 1, close - open - 1);
}

/// Last <= 16 per-interval deltas of one sampled series, for sparklines.
std::vector<double> recent_deltas(const obs::TimeSeriesSampler& sampler,
                                  const std::string& name) {
  const obs::SeriesView view = sampler.series_for(name);
  std::vector<double> deltas;
  const std::size_t first =
      view.points.size() > 17 ? view.points.size() - 17 : 1;
  for (std::size_t p = first; p < view.points.size(); ++p) {
    deltas.push_back(view.points[p].value - view.points[p - 1].value);
  }
  return deltas;
}

void render_obs_dashboard(const obs::MetricsSnapshot& snap, std::ostream& out,
                          const obs::TimeSeriesSampler* sampler = nullptr) {
  if (snap.counters.empty() && snap.gauges.empty() &&
      snap.histograms.empty()) {
    out << "(no metrics recorded"
        << (obs::kCompiledIn ? ")" : "; built with LBMV_OBS=0)") << "\n";
    return;
  }
  const bool windowed = sampler != nullptr && sampler->sample_count() >= 2;
  Table counters(windowed
                     ? std::vector<std::string>{"Counter", "Count", "Rate/s",
                                                "Delta (spark)"}
                     : std::vector<std::string>{"Counter", "Count"});
  for (const auto& [name, value] : snap.counters) {
    if (!windowed) {
      counters.add_row({name, std::to_string(value)});
      continue;
    }
    counters.add_row({name, std::to_string(value),
                      Table::num(sampler->rate_per_sec(name), 1),
                      util::sparkline(recent_deltas(*sampler, name))});
  }
  Table gauges({"Gauge", "Value"});
  for (const auto& [name, value] : snap.gauges) {
    gauges.add_row({name, Table::num(value, 0)});
  }
  Table hists({"Histogram", "Count", "Mean", "p50", "p95", "p99", "Max"});
  for (const auto& [name, h] : snap.histograms) {
    hists.add_row({name, std::to_string(h.count), Table::num(h.mean(), 4),
                   Table::num(h.quantile(0.50), 4),
                   Table::num(h.quantile(0.95), 4),
                   Table::num(h.quantile(0.99), 4), Table::num(h.max, 4)});
  }
  out << counters.to_markdown() << '\n'
      << gauges.to_markdown() << '\n'
      << hists.to_markdown();

  std::vector<util::Bar> completion_bars;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("lbmv_server_completions_total{", 0) == 0) {
      completion_bars.push_back(
          {metric_label_value(name), static_cast<double>(value)});
    }
  }
  if (!completion_bars.empty()) {
    out << '\n'
        << util::bar_chart("jobs completed per server", completion_bars);
  }

  // Always-on summary lines (every workload, every refresh): the health of
  // the invariant monitors, the 4-lane grid kernels, and the flight
  // recorder — not buried in the tables above.
  const obs::MonitorTotals totals = obs::monitor_totals(snap);
  out << '\n'
      << "invariant monitors: " << totals.checks << " checks, "
      << totals.violations << " violations\n";
  std::uint64_t grid_evals = 0;
  std::uint64_t lanes_wasted = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "lbmv_strategy_grid_evals_total") grid_evals = value;
    if (name == "lbmv_strategy_grid_lanes_wasted_total") lanes_wasted = value;
  }
  out << "grid kernels: " << grid_evals << " candidate bids swept ("
      << lanes_wasted << " padded tail lanes)";
  const auto grid_seconds =
      snap.histograms.find("lbmv_strategy_grid_round_seconds");
  if (grid_seconds != snap.histograms.end() &&
      grid_seconds->second.count > 0) {
    out << ", " << grid_seconds->second.count << " sweeps, mean "
        << Table::num(grid_seconds->second.mean() * 1e6, 1) << " us";
  }
  out << '\n';
  const auto flight_records = obs::FlightRecorder::global().records();
  out << "flight recorder: " << flight_records.size()
      << " records retained, " << obs::FlightRecorder::global().dropped()
      << " dropped";
  std::size_t errors = 0;
  for (const auto& rec : flight_records) {
    if (rec.severity == obs::Severity::kError) ++errors;
  }
  if (errors > 0) out << " (" << errors << " errors)";
  out << '\n';
}

int cmd_obs(const std::vector<std::string>& rest, std::ostream& out) {
  ArgParser args("lbmv obs",
                 "metrics dashboard over a replicated protocol run");
  args.add_option("types", "true values (light load!), comma separated",
                  "0.01,0.01,0.02");
  args.add_option("rate", "arrival rate (jobs/s)", "3");
  args.add_option("horizon", "simulated seconds per replication", "2000");
  args.add_option("replications", "independent replications", "8");
  args.add_option("seed", "rng seed", "42");
  args.add_option("deviate", "agent:bid_mult[:exec_mult]", "");
  args.add_option("snapshot", "dashboard | json | prom | timeseries",
                  "dashboard");
  args.add_option("trace", "write Chrome trace JSON to this file", "");
  args.add_option("flight", "write flight-recorder JSON-lines to this file",
                  "");
  args.add_option("interval-ms",
                  "refresh period for --watch and the timeseries sampler",
                  "250");
  args.add_option("workload", "protocol | dynamics (best-response rounds)",
                  "protocol");
  args.add_option("rounds", "dynamics rounds for --workload dynamics", "12");
  args.add_flag("watch", "redraw the dashboard while the run progresses");
  args.add_flag("seed-violation",
                "inject one corrupted round so the invariant monitors fire");
  args.parse(rest);
  if (args.flag("help")) {
    out << args.help();
    return 0;
  }
  const auto config = config_from_args(args);
  const std::string mode = args.option("snapshot");
  if (mode != "dashboard" && mode != "json" && mode != "prom" &&
      mode != "timeseries") {
    throw UsageError(
        "--snapshot must be dashboard | json | prom | timeseries");
  }
  const std::string workload = args.option("workload");
  if (workload != "protocol" && workload != "dynamics") {
    throw UsageError("--workload must be protocol | dynamics");
  }
  const std::string trace_path = args.option("trace");
  const std::string flight_path = args.option("flight");
  const auto interval =
      std::chrono::milliseconds(args.option_as_long("interval-ms"));
  const auto replications =
      static_cast<std::size_t>(args.option_as_long("replications"));
  if (replications == 0) throw UsageError("--replications must be positive");

  const auto dump_flight = [&flight_path] {
    if (flight_path.empty()) return;
    if (!obs::FlightRecorder::global().dump_jsonl(flight_path)) {
      throw UsageError("cannot write '" + flight_path + "'");
    }
  };

  if (workload == "dynamics") {
    // Strategy-layer workload: run best-response dynamics so the
    // lbmv_strategy_* probe family shows up in the dashboard.
    obs::Registry::global().reset();
    obs::TraceRecorder::global().clear();
    obs::FlightRecorder::global().clear();
    obs::set_enabled(true);
    const core::CompBonusMechanism mechanism;
    strategy::BestResponseOptions dynamics;
    dynamics.max_rounds = static_cast<int>(args.option_as_long("rounds"));
    obs::TimeSeriesSampler sampler;
    if (mode == "timeseries") sampler.start(interval);
    const auto result =
        strategy::best_response_dynamics(mechanism, config, dynamics);
    sampler.stop();
    sampler.sample();  // final point so short runs still yield a series
    obs::set_enabled(false);
    dump_flight();
    const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
    if (mode == "json") {
      out << snap.to_json() << '\n';
      return 0;
    }
    if (mode == "prom") {
      out << snap.to_prometheus(/*with_timestamps=*/true);
      return 0;
    }
    if (mode == "timeseries") {
      out << sampler.to_json() << '\n';
      return 0;
    }
    render_obs_dashboard(snap, out);
    std::uint64_t evals = 0;
    std::uint64_t avoided = 0;
    std::uint64_t grid_evals = 0;
    std::uint64_t lanes_wasted = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name == "lbmv_strategy_deviation_evals_total") evals = value;
      if (name == "lbmv_strategy_mechanism_runs_avoided_total") {
        avoided = value;
      }
      if (name == "lbmv_strategy_grid_evals_total") grid_evals = value;
      if (name == "lbmv_strategy_grid_lanes_wasted_total") {
        lanes_wasted = value;
      }
    }
    out << '\n'
        << "cross-check: " << avoided << " of " << evals
        << " deviation evaluations skipped a mechanism run; " << grid_evals
        << " candidate bids swept by the 4-lane grid kernels (" << lanes_wasted
        << " padded tail lanes); dynamics "
        << (result.converged ? "converged" : "stopped") << " after "
        << result.rounds << " rounds\n";
    return obs::kCompiledIn && (evals == 0 || avoided > evals) ? 1 : 0;
  }

  // Fresh recording session: drop anything earlier commands recorded, then
  // enable probes for the run (servers register their labelled families at
  // construction, so this must precede the workload).
  obs::Registry::global().reset();
  obs::TraceRecorder::global().clear();
  obs::FlightRecorder::global().clear();
  obs::set_enabled(true);

  const core::CompBonusMechanism mechanism;
  sim::ProtocolOptions options;
  options.horizon = args.option_as_double("horizon");
  options.seed = static_cast<std::uint64_t>(args.option_as_long("seed"));
  // No warmup: every completion the servers count is also counted by
  // collect_metrics, so the counters cross-check exactly below.
  options.warmup_fraction = 0.0;
  const sim::VerifiedProtocol protocol(mechanism, options);
  sim::ReplicationOptions replication;
  replication.replications = replications;
  replication.root_seed = options.seed;
  const auto profile =
      profile_from_deviations(config, args.option("deviate"));

  sim::ReplicatedRoundReport merged;
  std::exception_ptr run_error;
  const auto run = [&] {
    try {
      merged = protocol.run_replicated(config, profile, replication);
    } catch (...) {
      run_error = std::current_exception();
    }
  };
  obs::TimeSeriesSampler sampler;
  if (args.flag("watch") && mode == "dashboard") {
    std::atomic<bool> done{false};
    std::thread runner([&] {
      run();
      done.store(true);
    });
    while (!done.load()) {
      std::this_thread::sleep_for(interval);
      sampler.sample();
      out << "\x1b[2J\x1b[H";  // clear screen, home cursor
      render_obs_dashboard(obs::Registry::global().snapshot(), out,
                           &sampler);
    }
    runner.join();
    sampler.sample();
  } else {
    if (mode == "timeseries") sampler.start(interval);
    run();
    sampler.stop();
    sampler.sample();  // final point so short runs still yield a series
  }

  // Demo path for the README quickstart: corrupt one round's outcome and
  // feed it back through the invariant monitors.  Every seeded defect —
  // infeasible allocation, broken P = C + B split, negative truthful
  // utility — must be flagged, land in the flight recorder, and show in
  // the dashboard's violation totals.
  std::size_t seeded_violations = 0;
  if (args.flag("seed-violation")) {
    core::MechanismOutcome bad = mechanism.run(config, profile);
    std::vector<double> rates = std::move(bad.allocation).release();
    if (!rates.empty()) rates[0] *= 1.05;  // ship more than arrives
    bad.allocation = model::Allocation(std::move(rates));
    if (!bad.agents.empty()) {
      bad.agents[0].payment += 1.0;  // break the P = C + B identity
      bad.agents[0].utility = -1.0;  // fake a participation deficit
    }
    seeded_violations = core::check_round_invariants(
        profile.bids, profile.executions, config.arrival_rate(), bad,
        core::RoundInvariantOptions{
            /*linear_pr=*/true,
            /*participation_guaranteed=*/
            mechanism.guarantees_voluntary_participation()});
    // Second seeded defect: an over-saturated M/M/1 round (DESIGN.md §14).
    // The same types re-read as mean service times give service rates
    // mu_i = 1/theta_i; pushing computer 0's load to the brink of mu_0
    // ships more than arrives (feasibility) and blows up its marginal
    // mu_0/(mu_0 - x_0)^2 against the others (M/M/1 KKT stationarity).
    {
      const core::CompBonusMechanism mm1_mechanism(
          std::make_shared<const alloc::MM1Allocator>());
      const model::MM1Family mm1_family;
      core::MechanismOutcome bad_mm1 =
          mm1_mechanism.run(mm1_family, config.arrival_rate(), profile);
      std::vector<double> mm1_rates = std::move(bad_mm1.allocation).release();
      if (!mm1_rates.empty()) {
        const double mu0 = 1.0 / profile.bids[0];
        mm1_rates[0] = mu0 * (1.0 - 1e-12);
      }
      bad_mm1.allocation = model::Allocation(std::move(mm1_rates));
      seeded_violations += core::check_round_invariants(
          profile.bids, profile.executions, config.arrival_rate(), bad_mm1,
          core::RoundInvariantOptions{
              /*linear_pr=*/false,
              /*participation_guaranteed=*/
              mm1_mechanism.guarantees_voluntary_participation(),
              /*mm1_exact=*/true});
    }
    sampler.sample();
  }
  obs::set_enabled(false);
  if (run_error) std::rethrow_exception(run_error);
  dump_flight();

  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    if (!trace_out) throw UsageError("cannot write '" + trace_path + "'");
    trace_out << obs::TraceRecorder::global().to_chrome_json() << '\n';
  }
  if (mode == "json") {
    out << snap.to_json() << '\n';
    return 0;
  }
  if (mode == "prom") {
    out << snap.to_prometheus(/*with_timestamps=*/true);
    return 0;
  }
  if (mode == "timeseries") {
    out << sampler.to_json() << '\n';
    return 0;
  }

  render_obs_dashboard(snap, out,
                       sampler.sample_count() >= 2 ? &sampler : nullptr);
  std::uint64_t counted = 0;
  std::uint64_t mech_rounds = 0;
  std::uint64_t fast_rounds = 0;
  std::uint64_t allocs_avoided = 0;
  std::uint64_t simd_rounds = 0;
  std::uint64_t sharded_rounds = 0;
  std::uint64_t nonlinear_rounds = 0;
  std::uint64_t newton_iters = 0;
  std::uint64_t delta_rounds = 0;
  std::uint64_t full_rebuilds = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("lbmv_server_completions_total{", 0) == 0) {
      counted += value;
    }
    if (name == "lbmv_mech_rounds_total") mech_rounds = value;
    if (name == "lbmv_mech_linear_fast_rounds_total") fast_rounds = value;
    if (name == "lbmv_mech_allocs_avoided_total") allocs_avoided = value;
    if (name == "lbmv_mech_simd_rounds_total") simd_rounds = value;
    if (name == "lbmv_mech_sharded_rounds_total") sharded_rounds = value;
    if (name == "lbmv_mech_nonlinear_rounds_total") nonlinear_rounds = value;
    if (name == "lbmv_mech_newton_iters_total") newton_iters = value;
    if (name == "lbmv_core_delta_rounds_total") delta_rounds = value;
    if (name == "lbmv_core_full_rebuilds_total") full_rebuilds = value;
  }
  std::size_t measured = 0;
  for (const auto& round : merged.rounds) {
    measured += round.metrics.total_jobs();
  }
  const auto spans = obs::TraceRecorder::global().events().size();
  out << '\n'
      << "cross-check: completion counters " << counted
      << (counted == measured ? " == " : " != ") << measured
      << " SystemMetrics total jobs\n"
      << "fused kernels: " << fast_rounds << " of " << mech_rounds
      << " mechanism rounds on the linear fast path, " << allocs_avoided
      << " heap allocations avoided\n"
      << "vector engine: backend " << core::vector_backend_name() << ", "
      << simd_rounds << " vectorized rounds (" << sharded_rounds
      << " sharded), " << nonlinear_rounds
      << " fused nonlinear-family rounds (" << newton_iters
      << " Newton iterations)\n"
      << "delta engine: " << delta_rounds << " O(k) delta rounds absorbed, "
      << full_rebuilds << " exact aggregate rebuilds\n"
      << "trace: " << spans << " spans retained, "
      << obs::TraceRecorder::global().dropped() << " dropped";
  if (!trace_path.empty()) out << " -> " << trace_path;
  out << '\n';
  if (args.flag("seed-violation")) {
    out << "seeded violation: " << seeded_violations
        << " invariant violations flagged";
    if (!flight_path.empty()) out << " -> " << flight_path;
    out << '\n';
    // The demo must actually catch the corruption when probes are live.
    if (obs::kCompiledIn && seeded_violations == 0) return 1;
  }
  return obs::kCompiledIn && counted != measured ? 1 : 0;
}

constexpr const char* kTopHelp =
    "lbmv — load balancing mechanisms with verification\n"
    "\n"
    "commands:\n"
    "  paper       regenerate the paper's tables and figures\n"
    "  run         run one mechanism round on a custom system\n"
    "  audit       grid-audit truthfulness of a mechanism\n"
    "  frugality   payment structure at the truthful profile\n"
    "  dynamics    iterated best-response dynamics\n"
    "  learn       epsilon-greedy bandit agents\n"
    "  protocol    simulated round with estimated verification\n"
    "  dist        distributed payment deployments\n"
    "  config      run a round described by a JSON file\n"
    "  poa         price of anarchy of selfish routing\n"
    "  coalition   joint-deviation audit for agent pairs\n"
    "  epochs      multi-epoch operation under drifting speeds\n"
    "  obs         metrics dashboard over a replicated protocol run\n"
    "\n"
    "run `lbmv <command> --help` for command options.\n";

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kTopHelp;
    return args.empty() ? 2 : 0;
  }
  const std::string command = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "paper") return cmd_paper(rest, out);
    if (command == "run") return cmd_run(rest, out);
    if (command == "audit") return cmd_audit(rest, out);
    if (command == "frugality") return cmd_frugality(rest, out);
    if (command == "dynamics") return cmd_dynamics(rest, out);
    if (command == "learn") return cmd_learn(rest, out);
    if (command == "protocol") return cmd_protocol(rest, out);
    if (command == "dist") return cmd_dist(rest, out);
    if (command == "config") return cmd_config(rest, out);
    if (command == "poa") return cmd_poa(rest, out);
    if (command == "coalition") return cmd_coalition(rest, out);
    if (command == "epochs") return cmd_epochs(rest, out);
    if (command == "obs") return cmd_obs(rest, out);
    err << "unknown command '" << command << "'\n\n" << kTopHelp;
    return 2;
  } catch (const UsageError& e) {
    err << "usage error: " << e.what() << '\n';
    return 2;
  } catch (const util::JsonError& e) {
    err << "config error: " << e.what() << '\n';
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace lbmv::cli

#pragma once

/// \file tournament.h
/// Strategy tournaments over random system instances.
///
/// Each instance draws random true values, assigns strategies to agents
/// round-robin, runs the mechanism once and records per-strategy utility
/// together with the *regret* against the truthful counterfactual (replace
/// the agent's action with the truth, everything else fixed).  Under a
/// truthful mechanism every strategy's mean regret is >= 0 and exactly 0
/// only for the truthful strategy; under broken baselines profitable lies
/// show up as negative regret.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/strategy/strategy.h"
#include "lbmv/util/thread_pool.h"

namespace lbmv::strategy {

/// Tournament tunables.
struct TournamentOptions {
  int instances = 64;          ///< random systems to draw
  std::size_t agents = 8;      ///< computers per system
  double arrival_rate = 20.0;
  double type_lo = 0.5;        ///< true values drawn log-uniformly in
  double type_hi = 10.0;       ///< [type_lo, type_hi]
  std::uint64_t seed = 7;
  /// Run instances across a thread pool.  Instance k depends only on the
  /// seed stream split(k) and per-instance results are merged in instance
  /// order, so scores are bit-identical for any thread count.
  bool parallel = true;
  util::ThreadPool* pool = nullptr;  ///< nullptr: the global pool
  /// Candidate-bid grid resolution (>= 2) for the per-agent best-response
  /// gain probe: one lane-parallel sweep of strategy::make_bid_grid
  /// candidates per agent per instance.
  int best_response_grid = 48;
};

/// Aggregate score of one strategy across the tournament.
struct StrategyScore {
  std::string name;
  double mean_utility = 0.0;
  /// mean(truthful counterfactual utility - achieved utility): positive
  /// means lying cost the agent money on average.
  double mean_regret = 0.0;
  /// mean(best grid-candidate bid utility - achieved utility) at the
  /// agent's committed execution: how much a unilateral bid re-optimisation
  /// (over the best_response_grid sweep) would have gained.  ~0 for a
  /// best-responding strategy; can be marginally negative when the grid
  /// misses the committed bid.
  double mean_best_response_gain = 0.0;
  std::size_t samples = 0;
};

/// Run the tournament; scores align with \p strategies.
[[nodiscard]] std::vector<StrategyScore> run_tournament(
    const core::Mechanism& mechanism,
    const std::vector<const Strategy*>& strategies,
    const TournamentOptions& options = {});

}  // namespace lbmv::strategy

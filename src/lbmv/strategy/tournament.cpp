#include "lbmv/strategy/tournament.h"

#include <cmath>

#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/grid.h"
#include "lbmv/strategy/grid_eval.h"
#include "lbmv/util/error.h"
#include "lbmv/util/stats.h"

namespace lbmv::strategy {

std::vector<StrategyScore> run_tournament(
    const core::Mechanism& mechanism,
    const std::vector<const Strategy*>& strategies,
    const TournamentOptions& options) {
  LBMV_REQUIRE(!strategies.empty(), "tournament needs at least one strategy");
  LBMV_REQUIRE(options.agents >= 2, "tournament systems need >= 2 agents");
  LBMV_REQUIRE(options.instances > 0, "tournament needs >= 1 instance");
  LBMV_REQUIRE(std::isfinite(options.type_lo) &&
                   std::isfinite(options.type_hi),
               "type range must be finite");
  LBMV_REQUIRE(0.0 < options.type_lo && options.type_lo < options.type_hi,
               "type range must satisfy 0 < lo < hi");
  LBMV_REQUIRE(std::isfinite(options.arrival_rate) &&
                   options.arrival_rate > 0.0,
               "arrival rate must be positive and finite");
  LBMV_REQUIRE(options.best_response_grid >= 2,
               "best_response_grid must be at least 2");

  const std::size_t instances = static_cast<std::size_t>(options.instances);
  const util::Rng rng(options.seed);

  // Per-agent (achieved, regret) samples, one row per instance.  Instance k
  // reads nothing but the seed stream split(k) and writes only its own row;
  // the rows are then merged in instance order, so the scores are
  // bit-identical whether the loop runs serially or on a pool of any size.
  struct Sample {
    double achieved = 0.0;
    double regret = 0.0;
    double br_gain = 0.0;
  };
  std::vector<std::vector<Sample>> samples(instances);

  auto run_instance = [&](std::size_t instance) {
    util::Rng instance_rng = rng.split(static_cast<std::uint64_t>(instance));
    std::vector<double> types(options.agents);
    for (double& t : types) {
      t = std::exp(instance_rng.uniform(std::log(options.type_lo),
                                        std::log(options.type_hi)));
    }
    const model::SystemConfig config(types, options.arrival_rate);

    std::vector<const Strategy*> assigned(options.agents);
    for (std::size_t i = 0; i < options.agents; ++i) {
      assigned[i] = strategies[i % strategies.size()];
    }
    util::Rng action_rng = instance_rng.split(1);
    model::BidProfile profile = apply_strategies(config, assigned, action_rng);
    const DeviationEvaluator evaluator(mechanism, config, std::move(profile));
    const GridEvaluator grid_eval(evaluator);
    std::vector<double> bid_grid;  // reused per agent

    auto& row = samples[instance];
    row.resize(options.agents);
    for (std::size_t i = 0; i < options.agents; ++i) {
      // Achieved utility and truthful counterfactual through the same
      // evaluator, so the truthful strategy's regret is exactly zero.
      const double achieved =
          evaluator.utility(i, evaluator.profile().bids[i],
                            evaluator.profile().executions[i]);
      const double t = config.true_value(i);
      row[i].achieved = achieved;
      row[i].regret = evaluator.utility(i, t, t) - achieved;
      // Exploitability probe: best candidate bid at the committed
      // execution, one lane-parallel sweep per agent.
      make_bid_grid_into(0.05 * t, 20.0 * t,
                         static_cast<std::size_t>(options.best_response_grid),
                         GridSpacing::kLinear, bid_grid);
      const auto best = grid_eval.best_response(
          i, bid_grid, evaluator.profile().executions[i]);
      row[i].br_gain = best.utility - achieved;
    }
  };

  if (options.parallel && instances > 1) {
    util::ThreadPool& pool =
        options.pool != nullptr ? *options.pool : util::ThreadPool::global();
    pool.parallel_for(0, instances, run_instance, /*grain=*/1);
  } else {
    for (std::size_t instance = 0; instance < instances; ++instance) {
      run_instance(instance);
    }
  }

  std::vector<util::RunningStats> utility(strategies.size());
  std::vector<util::RunningStats> regret(strategies.size());
  std::vector<util::RunningStats> br_gain(strategies.size());
  for (std::size_t instance = 0; instance < instances; ++instance) {
    for (std::size_t i = 0; i < options.agents; ++i) {
      const std::size_t s = i % strategies.size();
      utility[s].add(samples[instance][i].achieved);
      regret[s].add(samples[instance][i].regret);
      br_gain[s].add(samples[instance][i].br_gain);
    }
  }

  std::vector<StrategyScore> scores;
  scores.reserve(strategies.size());
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    scores.push_back(StrategyScore{strategies[s]->name(), utility[s].mean(),
                                   regret[s].mean(), br_gain[s].mean(),
                                   utility[s].count()});
  }
  return scores;
}

}  // namespace lbmv::strategy

#include "lbmv/strategy/tournament.h"

#include <cmath>

#include "lbmv/util/error.h"
#include "lbmv/util/stats.h"

namespace lbmv::strategy {

std::vector<StrategyScore> run_tournament(
    const core::Mechanism& mechanism,
    const std::vector<const Strategy*>& strategies,
    const TournamentOptions& options) {
  LBMV_REQUIRE(!strategies.empty(), "tournament needs at least one strategy");
  LBMV_REQUIRE(options.agents >= 2, "tournament systems need >= 2 agents");
  LBMV_REQUIRE(options.instances > 0, "tournament needs >= 1 instance");
  LBMV_REQUIRE(0.0 < options.type_lo && options.type_lo < options.type_hi,
               "type range must satisfy 0 < lo < hi");

  std::vector<util::RunningStats> utility(strategies.size());
  std::vector<util::RunningStats> regret(strategies.size());
  util::Rng rng(options.seed);

  for (int instance = 0; instance < options.instances; ++instance) {
    util::Rng instance_rng = rng.split(static_cast<std::uint64_t>(instance));
    std::vector<double> types(options.agents);
    for (double& t : types) {
      t = std::exp(instance_rng.uniform(std::log(options.type_lo),
                                        std::log(options.type_hi)));
    }
    const model::SystemConfig config(types, options.arrival_rate);

    std::vector<const Strategy*> assigned(options.agents);
    for (std::size_t i = 0; i < options.agents; ++i) {
      assigned[i] = strategies[i % strategies.size()];
    }
    util::Rng action_rng = instance_rng.split(1);
    const model::BidProfile profile =
        apply_strategies(config, assigned, action_rng);
    const core::MechanismOutcome outcome = mechanism.run(config, profile);

    for (std::size_t i = 0; i < options.agents; ++i) {
      const std::size_t s = i % strategies.size();
      const double achieved = outcome.agents[i].utility;
      // Truthful counterfactual with everyone else's actions fixed.
      model::BidProfile counterfactual = profile;
      counterfactual.bids[i] = config.true_value(i);
      counterfactual.executions[i] = config.true_value(i);
      const double truthful_u =
          mechanism.run(config, counterfactual).agents[i].utility;
      utility[s].add(achieved);
      regret[s].add(truthful_u - achieved);
    }
  }

  std::vector<StrategyScore> scores;
  scores.reserve(strategies.size());
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    scores.push_back(StrategyScore{strategies[s]->name(), utility[s].mean(),
                                   regret[s].mean(), utility[s].count()});
  }
  return scores;
}

}  // namespace lbmv::strategy

#pragma once

/// \file learning.h
/// Bandit learners: do agents *discover* truth-telling from experience?
///
/// The audits (lbmv/core/audit.h) certify truthfulness by exhaustive
/// enumeration, and best_response.h by exact optimisation.  A third, weaker
/// but more behaviourally plausible check: agents that know nothing about
/// the mechanism and just run epsilon-greedy bandits over a grid of
/// (bid multiplier, execution multiplier) arms.  Under the verified
/// mechanism the greedy arm drifts to (1, 1) and the system latency to the
/// optimum; under the no-payment protocol the learners discover bid
/// inflation instead.

#include <cstdint>
#include <optional>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/thread_pool.h"

namespace lbmv::strategy {

/// Grid and schedule for the learners.
struct LearningOptions {
  /// Candidate bid multipliers (arms are the cross product with exec).
  std::vector<double> bid_arms{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0};
  /// Candidate execution multipliers (>= 1).
  std::vector<double> exec_arms{1.0, 1.5, 2.0};
  int rounds = 600;
  double epsilon = 0.2;          ///< initial exploration probability
  double epsilon_decay = 0.995;  ///< multiplicative per-round decay
  std::uint64_t seed = 5;
  /// If set, only this agent learns; everyone else plays truthfully.
  /// (Against truthful opponents truth is exactly dominant, so the single
  /// learner must converge to the (1, 1) arm.)
  std::optional<std::size_t> single_learner;
  /// Full-feedback (counterfactual) updates: instead of crediting only the
  /// pulled arm with its realised utility, every arm's Q is updated each
  /// round with the agent's counterfactual deviation utility at that arm —
  /// one lane-parallel candidate-bid sweep per execution arm through
  /// strategy::GridEvaluator, so the whole arm grid costs a handful of
  /// 4-lane kernel calls rather than |arms| mechanism runs.  Convergence to
  /// the dominant arm no longer depends on exploration luck.
  bool full_feedback = false;
};

/// Outcome of a learning run.
struct LearningResult {
  std::vector<double> final_bid_mult;   ///< greedy arm per agent
  std::vector<double> final_exec_mult;
  std::vector<double> latency_trace;    ///< actual L per round
  double final_greedy_latency = 0.0;    ///< L when all play greedy arms
  double truthful_fraction = 0.0;       ///< share of agents at (1, 1)
};

/// Run epsilon-greedy bandits over mechanism rounds.  Each round is one
/// DeviationEvaluator outcome — O(n) per round on the closed-form
/// mechanisms instead of a full mechanism run with its per-round profile
/// and latency-curve allocations.
[[nodiscard]] LearningResult run_learning(const core::Mechanism& mechanism,
                                          const model::SystemConfig& config,
                                          const LearningOptions& options = {});

/// Independent learning runs aggregated across replications.
struct LearningEnsemble {
  std::vector<LearningResult> replications;  ///< in replication order

  [[nodiscard]] double mean_truthful_fraction() const;
  [[nodiscard]] double mean_greedy_latency() const;
};

/// Run \p replications independent learning runs in parallel on \p pool
/// (nullptr: the global pool).  Replication r uses the seed stream
/// Rng(options.seed).split(r + 1), and results are merged in replication
/// order, so the ensemble is bit-identical for any thread count or grain —
/// the same discipline as sim::ReplicationRunner.
[[nodiscard]] LearningEnsemble run_learning_replicated(
    const core::Mechanism& mechanism, const model::SystemConfig& config,
    const LearningOptions& options, std::size_t replications,
    util::ThreadPool* pool = nullptr, std::size_t grain = 1);

}  // namespace lbmv::strategy

#pragma once

/// \file grid_eval.h
/// Lane-parallel deviation-grid sweeps over a frozen profile.
///
/// GridEvaluator is the strategy-layer front end to the core grid kernels
/// (core/grid_kernels.h, DESIGN.md §13): given a DeviationEvaluator it
/// answers "utilities at these candidate bids" and "which candidate is
/// best" four lanes per instruction when the evaluator's closed-form
/// context is the linear/PR one, and falls back to scalar
/// DeviationEvaluator::utility calls otherwise — same answers either way,
/// the vectorized path bit-identical to the scalar oracle.
///
/// Large sweeps optionally fan out over a util::ThreadPool: the candidate
/// axis is cut into FIXED 1024-candidate blocks (independent of thread
/// count), each block reduced by the lane kernel, and the per-block winners
/// merged in block order with the same strictly-greater/lowest-index rule —
/// so the argmax is bit-identical at any thread count, pooled or serial.
///
/// Steady state is allocation-free: the only buffer (per-block winners) is
/// reused across sweeps.  Obs: sweeps bump lbmv_strategy_grid_evals_total /
/// lbmv_strategy_grid_lanes_wasted_total and record
/// lbmv_strategy_grid_round_seconds when recording is on.

#include <cstddef>
#include <span>
#include <vector>

#include "lbmv/core/grid_kernels.h"
#include "lbmv/strategy/deviation.h"

namespace lbmv::util {
class ThreadPool;
}

namespace lbmv::strategy {

/// Grid-sweep engine bound to one DeviationEvaluator (which must outlive
/// it).  Queries never mutate the underlying profile; re-construct (cheap,
/// no allocation) after DeviationEvaluator::commit to re-resolve the
/// context.  Not safe for concurrent use of the same instance.
class GridEvaluator {
 public:
  /// Winning candidate of a sweep: first index attaining the maximum.
  struct Best {
    std::size_t index = 0;
    double utility = 0.0;
  };

  /// \p pool, when non-null, fans large sweeps (> 1 block of 1024
  /// candidates) over the candidate axis; results are bit-identical with
  /// and without it.
  explicit GridEvaluator(const DeviationEvaluator& evaluator,
                         util::ThreadPool* pool = nullptr);

  /// Whether sweeps ride the lane-parallel kernels (linear/PR or M/M/1
  /// closed form present) rather than per-candidate scalar evaluator calls.
  /// Workload-family contexts stay scalar: the Newton re-solve per
  /// candidate has no lane form (DESIGN.md §14), and the scalar loop is
  /// trivially bit-identical to the DeviationEvaluator at any thread count.
  [[nodiscard]] bool vectorized() const {
    return linear_ != nullptr || mm1_ != nullptr;
  }

  /// out[k] = utility of \p agent deviating to (bids[k], execution); \p out
  /// must be at least bids.size() long.
  void utilities_into(std::size_t agent, std::span<const double> bids,
                      double execution, std::span<double> out) const;

  /// Utility-maximising candidate, ties to the smallest index — identical
  /// to a strictly-greater scalar scan in index order.  Requires a
  /// non-empty grid.
  [[nodiscard]] Best best_response(std::size_t agent,
                                   std::span<const double> bids,
                                   double execution) const;

 private:
  const DeviationEvaluator* evaluator_;
  const core::LinearPrProfileContext* linear_;  ///< nullptr: not linear/PR
  /// M/M/1 closed-form context (nullptr otherwise).  M/M/1 sweeps run the
  /// lane kernels serially — blocks may defer lanes to the scalar oracle,
  /// and keeping the sweep on the caller's thread keeps those re-solves
  /// (and their typed errors) trivially deterministic.
  const core::Mm1PrProfileContext* mm1_;
  util::ThreadPool* pool_;
  mutable std::vector<core::GridBest> block_best_;  ///< reused fan-out slots
};

}  // namespace lbmv::strategy

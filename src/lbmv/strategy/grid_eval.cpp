#include "lbmv/strategy/grid_eval.h"

#include <algorithm>
#include <chrono>

#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"
#include "lbmv/util/thread_pool.h"

namespace lbmv::strategy {
namespace {

/// Fixed fan-out block: a multiple of the lane count, so blocked sweeps pad
/// only the final partial block — exactly the lanes a single serial sweep
/// would pad — and lane positions (candidate k in lane k mod 4) match the
/// serial sweep's, keeping blocked and serial results bit-identical.
constexpr std::size_t kBlock = 1024;

using Clock = std::chrono::steady_clock;

void note_sweep(bool vectorized, std::size_t grid_size,
                Clock::time_point start) {
  if (!obs::enabled()) return;
  obs::StrategyProbes& probes = obs::StrategyProbes::get();
  probes.grid_evals.inc(grid_size);
  if (vectorized) {
    probes.grid_lanes_wasted.inc(core::grid_lanes_padded(grid_size));
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  probes.grid_round_seconds.record(elapsed.count());
}

}  // namespace

GridEvaluator::GridEvaluator(const DeviationEvaluator& evaluator,
                             util::ThreadPool* pool)
    : evaluator_(&evaluator),
      linear_(dynamic_cast<const core::LinearPrProfileContext*>(
          evaluator.profile_context())),
      mm1_(dynamic_cast<const core::Mm1PrProfileContext*>(
          evaluator.profile_context())),
      pool_(pool) {}

void GridEvaluator::utilities_into(std::size_t agent,
                                   std::span<const double> bids,
                                   double execution,
                                   std::span<double> out) const {
  const Clock::time_point start = obs::enabled() ? Clock::now()
                                                 : Clock::time_point{};
  if (linear_ != nullptr) {
    core::linear_pr_grid_utilities(*linear_, agent, bids, execution, out);
  } else if (mm1_ != nullptr) {
    core::mm1_grid_utilities(*mm1_, agent, bids, execution, out);
  } else {
    LBMV_REQUIRE(out.size() >= bids.size(),
                 "output span must cover the candidate grid");
    for (std::size_t k = 0; k < bids.size(); ++k) {
      out[k] = evaluator_->utility(agent, bids[k], execution);
    }
  }
  note_sweep(vectorized(), bids.size(), start);
}

GridEvaluator::Best GridEvaluator::best_response(std::size_t agent,
                                                 std::span<const double> bids,
                                                 double execution) const {
  LBMV_REQUIRE(!bids.empty(), "deviation grid must be non-empty");
  const Clock::time_point start = obs::enabled() ? Clock::now()
                                                 : Clock::time_point{};
  Best best;
  if (mm1_ != nullptr) {
    // Serial lane sweep (header comment on mm1_): one block chain on the
    // caller's thread, bit-identical to the scalar scan by construction.
    const core::GridBest b =
        core::mm1_grid_best(*mm1_, agent, bids, execution);
    best.index = b.index;
    best.utility = b.utility;
  } else if (linear_ == nullptr) {
    // Scalar fallback: strictly-greater first-wins scan, the same rule the
    // kernels' argmax reproduces.
    best.utility = evaluator_->utility(agent, bids[0], execution);
    for (std::size_t k = 1; k < bids.size(); ++k) {
      const double u = evaluator_->utility(agent, bids[k], execution);
      if (u > best.utility) {
        best.utility = u;
        best.index = k;
      }
    }
  } else {
    const std::size_t nblocks = (bids.size() + kBlock - 1) / kBlock;
    if (pool_ != nullptr && nblocks >= 2) {
      block_best_.resize(nblocks);
      core::GridBest* slots = block_best_.data();
      util::parallel_for(*pool_, 0, nblocks, [&](std::size_t blk) {
        const std::size_t lo = blk * kBlock;
        const std::size_t len = std::min(kBlock, bids.size() - lo);
        core::GridBest b =
            core::linear_pr_grid_best(*linear_, agent, bids.subspan(lo, len),
                                      execution);
        b.index += lo;
        slots[blk] = b;
      });
      // Merge in block (= index) order with the strictly-greater rule:
      // the first block attaining the global max wins, so the result is
      // the same first-index argmax as one serial sweep, at any thread
      // count.
      best.index = block_best_[0].index;
      best.utility = block_best_[0].utility;
      for (std::size_t blk = 1; blk < nblocks; ++blk) {
        if (block_best_[blk].utility > best.utility) {
          best.index = block_best_[blk].index;
          best.utility = block_best_[blk].utility;
        }
      }
    } else {
      const core::GridBest b =
          core::linear_pr_grid_best(*linear_, agent, bids, execution);
      best.index = b.index;
      best.utility = b.utility;
    }
  }
  note_sweep(vectorized(), bids.size(), start);
  return best;
}

}  // namespace lbmv::strategy

#include "lbmv/strategy/best_response.h"

#include <algorithm>
#include <cmath>

#include "lbmv/util/error.h"
#include "lbmv/util/roots.h"

namespace lbmv::strategy {

BestResponseResult best_response_dynamics(const core::Mechanism& mechanism,
                                          const model::SystemConfig& config,
                                          const BestResponseOptions& options) {
  LBMV_REQUIRE(options.max_rounds > 0, "max_rounds must be positive");
  LBMV_REQUIRE(options.bid_lo_mult > 0.0 &&
                   options.bid_lo_mult < options.bid_hi_mult,
               "bid search interval must satisfy 0 < lo < hi");
  for (double em : options.exec_multipliers) {
    LBMV_REQUIRE(em >= 1.0, "execution multipliers must be >= 1");
  }

  model::BidProfile profile = model::BidProfile::truthful(config);
  BestResponseResult result;

  auto utility_of = [&](std::size_t i, double bid, double exec) {
    model::BidProfile candidate = profile;
    candidate.bids[i] = bid;
    candidate.executions[i] = exec;
    return mechanism.run(config, candidate).agents[i].utility;
  };

  for (int round = 0; round < options.max_rounds; ++round) {
    double max_move = 0.0;
    for (std::size_t i = 0; i < config.size(); ++i) {
      const double t = config.true_value(i);
      const double lo = options.bid_lo_mult * t;
      const double hi = options.bid_hi_mult * t;

      double best_bid = profile.bids[i];
      double best_exec = profile.executions[i];
      double best_utility = utility_of(i, best_bid, best_exec);

      const std::vector<double> exec_candidates =
          options.optimize_execution ? options.exec_multipliers
                                     : std::vector<double>{1.0};
      for (double em : exec_candidates) {
        const double exec = em * t;
        const auto min_result = util::minimize_scan(
            [&](double bid) { return -utility_of(i, bid, exec); }, lo, hi,
            options.bid_grid, 1e-9 * t);
        const double utility = -min_result.fx;
        if (utility > best_utility + 1e-12) {
          best_utility = utility;
          best_bid = min_result.x;
          best_exec = exec;
        }
      }
      max_move = std::max(
          max_move, std::fabs(best_bid - profile.bids[i]) / t);
      profile.bids[i] = best_bid;
      profile.executions[i] = best_exec;
    }
    result.bid_trajectory.push_back(profile.bids);
    result.rounds = round + 1;
    if (max_move <= options.tol) {
      result.converged = true;
      break;
    }
  }

  result.final_bids = profile.bids;
  result.final_executions = profile.executions;
  result.final_actual_latency =
      mechanism.run(config, profile).actual_latency;
  for (std::size_t i = 0; i < config.size(); ++i) {
    const double t = config.true_value(i);
    result.max_relative_untruthfulness =
        std::max(result.max_relative_untruthfulness,
                 std::fabs(profile.bids[i] - t) / t);
  }
  return result;
}

}  // namespace lbmv::strategy

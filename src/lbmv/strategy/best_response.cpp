#include "lbmv/strategy/best_response.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "lbmv/obs/probes.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/grid.h"
#include "lbmv/strategy/grid_eval.h"
#include "lbmv/util/error.h"
#include "lbmv/util/roots.h"

namespace lbmv::strategy {
namespace {

void validate_options(const model::SystemConfig& config,
                      const BestResponseOptions& options) {
  LBMV_REQUIRE(options.max_rounds > 0, "max_rounds must be positive");
  LBMV_REQUIRE(std::isfinite(options.tol) && options.tol >= 0.0,
               "tol must be finite and non-negative");
  LBMV_REQUIRE(std::isfinite(options.bid_lo_mult) &&
                   std::isfinite(options.bid_hi_mult),
               "bid search interval must be finite");
  LBMV_REQUIRE(options.bid_lo_mult > 0.0 &&
                   options.bid_lo_mult < options.bid_hi_mult,
               "bid search interval must satisfy 0 < lo < hi");
  LBMV_REQUIRE(options.bid_grid >= 2, "bid_grid must be at least 2");
  LBMV_REQUIRE(!options.exec_multipliers.empty(),
               "exec_multipliers must be non-empty");
  for (double em : options.exec_multipliers) {
    LBMV_REQUIRE(std::isfinite(em) && em >= 1.0,
                 "execution multipliers must be finite and >= 1");
  }
  for (std::size_t frozen : options.frozen_agents) {
    LBMV_REQUIRE(frozen < config.size(),
                 "frozen agent index out of range");
  }
}

}  // namespace

BestResponseResult best_response_dynamics(const core::Mechanism& mechanism,
                                          const model::SystemConfig& config,
                                          const model::BidProfile& initial,
                                          const BestResponseOptions& options) {
  validate_options(config, options);

  DeviationEvaluator evaluator(mechanism, config, initial,
                               options.use_incremental
                                   ? DeviationEvaluator::Mode::kAuto
                                   : DeviationEvaluator::Mode::kNaive);
  // One grid engine for the whole run: commits mutate the evaluator's
  // context in place, so the lane kernels always see the current profile.
  const GridEvaluator grid_eval(evaluator, options.pool);
  std::vector<double> bid_grid;
  std::vector<char> frozen(config.size(), 0);
  for (std::size_t i : options.frozen_agents) frozen[i] = 1;

  BestResponseResult result;
  for (int round = 0; round < options.max_rounds; ++round) {
    const auto round_start = std::chrono::steady_clock::now();
    double max_move = 0.0;
    for (std::size_t i = 0; i < config.size(); ++i) {
      if (frozen[i] != 0) continue;
      const double t = config.true_value(i);
      const double lo = options.bid_lo_mult * t;
      const double hi = options.bid_hi_mult * t;

      double best_bid = evaluator.profile().bids[i];
      double best_exec = evaluator.profile().executions[i];
      double best_utility = evaluator.utility(i, best_bid, best_exec);

      // Same candidate points as util::minimize_scan's coarse pass, swept
      // four lanes per instruction; the scan's strictly-greater first-wins
      // argmax and its golden-section refinement (scalar, around the
      // winning cell) are reproduced exactly, so the dynamics are
      // bit-identical to the pre-vectorized path.
      make_bid_grid_into(lo, hi, static_cast<std::size_t>(options.bid_grid),
                         GridSpacing::kLinear, bid_grid);
      const double step =
          (hi - lo) / static_cast<double>(options.bid_grid - 1);

      const std::vector<double> exec_candidates =
          options.optimize_execution ? options.exec_multipliers
                                     : std::vector<double>{1.0};
      for (double em : exec_candidates) {
        const double exec = em * t;
        const auto coarse = grid_eval.best_response(i, bid_grid, exec);
        const double coarse_bid = bid_grid[coarse.index];
        const auto refined = util::golden_section_min(
            [&](double bid) { return -evaluator.utility(i, bid, exec); },
            std::max(lo, coarse_bid - step), std::min(hi, coarse_bid + step),
            1e-9 * t);
        double utility = coarse.utility;
        double bid = coarse_bid;
        if (refined.fx <= -coarse.utility) {
          utility = -refined.fx;
          bid = refined.x;
        }
        if (utility > best_utility + 1e-12) {
          best_utility = utility;
          best_bid = bid;
          best_exec = exec;
        }
      }
      max_move = std::max(
          max_move, std::fabs(best_bid - evaluator.profile().bids[i]) / t);
      evaluator.commit(i, best_bid, best_exec);
    }
    result.bid_trajectory.push_back(evaluator.profile().bids);
    result.rounds = round + 1;
    if (obs::enabled()) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - round_start;
      obs::StrategyProbes::get().round_seconds.record(elapsed.count());
    }
    if (max_move <= options.tol) {
      result.converged = true;
      break;
    }
  }

  result.final_bids = evaluator.profile().bids;
  result.final_executions = evaluator.profile().executions;
  result.final_actual_latency = evaluator.actual_latency();
  for (std::size_t i = 0; i < config.size(); ++i) {
    const double t = config.true_value(i);
    result.max_relative_untruthfulness =
        std::max(result.max_relative_untruthfulness,
                 std::fabs(evaluator.profile().bids[i] - t) / t);
  }
  return result;
}

BestResponseResult best_response_dynamics(const core::Mechanism& mechanism,
                                          const model::SystemConfig& config,
                                          const BestResponseOptions& options) {
  return best_response_dynamics(mechanism, config,
                                model::BidProfile::truthful(config), options);
}

}  // namespace lbmv::strategy

#include "lbmv/strategy/deviation.h"

#include <cmath>
#include <cstdint>
#include <utility>

#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::strategy {

DeviationEvaluator::DeviationEvaluator(const core::Mechanism& mechanism,
                                       const model::SystemConfig& config,
                                       model::BidProfile profile, Mode mode)
    : mechanism_(&mechanism),
      family_(config.family_ptr()),
      arrival_rate_(config.arrival_rate()),
      profile_(std::move(profile)) {
  LBMV_REQUIRE(profile_.size() == config.size(),
               "profile size must match config size");
  LBMV_REQUIRE(profile_.size() >= 2, "mechanisms require at least two agents");
  profile_.validate(profile_.size());
  if (mode == Mode::kAuto) {
    context_ =
        mechanism.make_profile_context(*family_, arrival_rate_, profile_);
  }
  if (context_ == nullptr) scratch_ = profile_;
}

DeviationEvaluator::DeviationEvaluator(const core::Mechanism& mechanism,
                                       const model::SystemConfig& config,
                                       Mode mode)
    : DeviationEvaluator(mechanism, config,
                         model::BidProfile::truthful(config), mode) {}

double DeviationEvaluator::utility(std::size_t agent, double bid,
                                   double execution) const {
  LBMV_REQUIRE(agent < profile().size(), "agent index out of range");
  LBMV_REQUIRE(bid > 0.0 && std::isfinite(bid) && execution > 0.0 &&
                   std::isfinite(execution),
               "deviations must have positive finite bid and execution");
  if (obs::enabled()) {
    obs::StrategyProbes& probes = obs::StrategyProbes::get();
    probes.deviation_evals.inc();
    if (context_ != nullptr) probes.mechanism_runs_avoided.inc();
  }
  if (context_ != nullptr) return context_->utility(agent, bid, execution);

  // Fallback: one full mechanism run against the scratch buffer, with the
  // deviated entries restored afterwards — no per-call profile copy, and the
  // round itself draws every plane from the evaluator's workspace.
  scratch_.bids[agent] = bid;
  scratch_.executions[agent] = execution;
  mechanism_->run_into(*family_, arrival_rate_, scratch_, ws_.scratch_outcome,
                       ws_);
  const double utility = ws_.scratch_outcome.agents[agent].utility;
  scratch_.bids[agent] = profile_.bids[agent];
  scratch_.executions[agent] = profile_.executions[agent];
  return utility;
}

void DeviationEvaluator::commit(std::size_t agent, double bid,
                                double execution) {
  LBMV_REQUIRE(agent < profile().size(), "agent index out of range");
  LBMV_REQUIRE(bid > 0.0 && std::isfinite(bid) && execution > 0.0 &&
                   std::isfinite(execution),
               "deviations must have positive finite bid and execution");
  if (obs::enabled()) obs::StrategyProbes::get().commits.inc();
  if (context_ != nullptr) {
    context_->commit(agent, bid, execution);
    return;
  }
  profile_.bids[agent] = bid;
  profile_.executions[agent] = execution;
  scratch_.bids[agent] = bid;
  scratch_.executions[agent] = execution;
}

void DeviationEvaluator::commit_batch(
    std::span<const core::BidDelta> deltas) {
  for (const core::BidDelta& d : deltas) {
    LBMV_REQUIRE(d.agent < profile().size(), "agent index out of range");
    LBMV_REQUIRE(d.bid > 0.0 && std::isfinite(d.bid) && d.execution > 0.0 &&
                     std::isfinite(d.execution),
                 "deviations must have positive finite bid and execution");
  }
  if (deltas.empty()) return;
  if (obs::enabled()) {
    obs::StrategyProbes::get().commits.inc(
        static_cast<std::uint64_t>(deltas.size()));
  }
  if (context_ != nullptr) {
    context_->commit_batch(deltas);
    return;
  }
  for (const core::BidDelta& d : deltas) {
    profile_.bids[d.agent] = d.bid;
    profile_.executions[d.agent] = d.execution;
    scratch_.bids[d.agent] = d.bid;
    scratch_.executions[d.agent] = d.execution;
  }
}

void DeviationEvaluator::outcome_into(core::MechanismOutcome& out) const {
  if (context_ != nullptr) {
    context_->outcome_into(out);
    return;
  }
  mechanism_->run_into(*family_, arrival_rate_, profile_, out, ws_);
}

double DeviationEvaluator::actual_latency() const {
  if (context_ != nullptr) return context_->actual_latency();
  mechanism_->run_into(*family_, arrival_rate_, profile_, ws_.scratch_outcome,
                       ws_);
  return ws_.scratch_outcome.actual_latency;
}

const model::BidProfile& DeviationEvaluator::profile() const {
  return context_ != nullptr ? context_->profile() : profile_;
}

}  // namespace lbmv::strategy

#pragma once

/// \file grid.h
/// Canonical candidate-bid grids.
///
/// Best-response dynamics, the Stackelberg leader search, the audits and the
/// perf benches all scan a one-dimensional candidate-bid interval; before
/// this header each call site rolled its own `lo + step * i` /
/// `exp(log_lo + frac * (log_hi - log_lo))` loop.  make_bid_grid is the one
/// shared generator: it produces exactly those sequences (same IEEE
/// expression, so rewired call sites keep their bits) and fails fast with a
/// typed PreconditionError on degenerate intervals instead of silently
/// emitting NaN candidates for the kernels to choke on.

#include <cstddef>
#include <vector>

namespace lbmv::strategy {

/// How candidate bids are spaced across [lo, hi].
enum class GridSpacing {
  kLinear,  ///< x_k = lo + (hi - lo)/(points - 1) * k
  kLog,     ///< x_k = exp(log lo + k/(points - 1) * (log hi - log lo))
};

/// Fill \p out with \p points candidates spanning [lo, hi] inclusive.
/// Requires finite 0 < lo < hi and points >= 2; throws PreconditionError
/// otherwise.  Reuses \p out's storage (no steady-state allocations for the
/// sweep loops that regenerate per agent).
void make_bid_grid_into(double lo, double hi, std::size_t points,
                        GridSpacing spacing, std::vector<double>& out);

/// Allocating convenience over make_bid_grid_into.
[[nodiscard]] std::vector<double> make_bid_grid(
    double lo, double hi, std::size_t points,
    GridSpacing spacing = GridSpacing::kLinear);

}  // namespace lbmv::strategy

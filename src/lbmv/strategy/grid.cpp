#include "lbmv/strategy/grid.h"

#include <cmath>

#include "lbmv/util/error.h"

namespace lbmv::strategy {

void make_bid_grid_into(double lo, double hi, std::size_t points,
                        GridSpacing spacing, std::vector<double>& out) {
  LBMV_REQUIRE(std::isfinite(lo) && std::isfinite(hi),
               "bid grid bounds must be finite");
  LBMV_REQUIRE(lo > 0.0, "bid grid bounds must be positive");
  LBMV_REQUIRE(lo < hi, "bid grid requires lo < hi");
  LBMV_REQUIRE(points >= 2, "bid grid requires at least two points");
  out.resize(points);
  if (spacing == GridSpacing::kLinear) {
    // Same expression as util::minimize_scan's coarse scan, so grids handed
    // to the lane kernels land on the points the scalar scan would visit.
    const double step = (hi - lo) / static_cast<double>(points - 1);
    for (std::size_t k = 0; k < points; ++k) {
      out[k] = lo + step * static_cast<double>(k);
    }
  } else {
    const double log_lo = std::log(lo);
    const double log_hi = std::log(hi);
    for (std::size_t k = 0; k < points; ++k) {
      const double frac =
          static_cast<double>(k) / static_cast<double>(points - 1);
      out[k] = std::exp(log_lo + frac * (log_hi - log_lo));
    }
  }
}

std::vector<double> make_bid_grid(double lo, double hi, std::size_t points,
                                  GridSpacing spacing) {
  std::vector<double> out;
  make_bid_grid_into(lo, hi, points, spacing, out);
  return out;
}

}  // namespace lbmv::strategy

#pragma once

/// \file deviation.h
/// O(1) single-deviation game engine.
///
/// Every strategic-behaviour experiment in the paper reduces to the same
/// primitive: one agent's utility under a unilateral (bid, execution)
/// deviation from an otherwise fixed profile.  DeviationEvaluator answers
/// that query in O(1) for the mechanisms with a closed form (comp-bonus at
/// either compensation basis, VCG, no-payment — all on the PR allocator over
/// linear latencies, via Mechanism::make_profile_context) and in O(n) —
/// with a reused scratch profile, no per-call profile copy — for everything
/// else.  commit() makes a deviation permanent with an O(1) delta to the
/// cached sums instead of re-running the mechanism.
///
/// Best-response dynamics, bandit learning, tournaments and the leader-
/// commitment game are all built on this one class; see DESIGN.md §10 for
/// the complexity accounting.

#include <memory>

#include "lbmv/core/batch.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"

namespace lbmv::strategy {

/// Per-profile deviation engine.  The mechanism must outlive the evaluator
/// (the config's latency family is retained).
///
/// Thread safety: utility() on the incremental path is pure reads and safe
/// to call concurrently; the naive fallback mutates the shared scratch
/// buffer and is not.  commit() is never safe to call concurrently with
/// anything.
class DeviationEvaluator {
 public:
  enum class Mode {
    kAuto,   ///< use the closed form when the mechanism offers one
    kNaive,  ///< always re-run the mechanism (baseline / differential tests)
  };

  /// Evaluate deviations from \p profile (copied; must validate against
  /// \p config).
  DeviationEvaluator(const core::Mechanism& mechanism,
                     const model::SystemConfig& config,
                     model::BidProfile profile, Mode mode = Mode::kAuto);

  /// Convenience: start from the truthful profile.
  DeviationEvaluator(const core::Mechanism& mechanism,
                     const model::SystemConfig& config, Mode mode = Mode::kAuto);

  /// Utility of \p agent deviating to (\p bid, \p execution), everyone else
  /// as committed.  O(1) on the incremental path, one Mechanism::run on the
  /// fallback.
  [[nodiscard]] double utility(std::size_t agent, double bid,
                               double execution) const;

  /// Make a deviation permanent for all subsequent queries.  O(1) amortised
  /// on the incremental path.
  void commit(std::size_t agent, double bid, double execution);

  /// Make k deviations permanent in one call (later entries for the same
  /// agent win).  State-identical to committing sequentially; contexts
  /// whose single commit is a full O(n) re-derivation (the nonlinear
  /// families) re-derive once for the whole batch instead of k times, so a
  /// simultaneous-move round (learning dynamics) pays one rebuild.
  void commit_batch(std::span<const core::BidDelta> deltas);

  /// Full mechanism outcome at the committed profile (equal to
  /// mechanism.run(config, profile()) up to roundoff), reusing \p out's
  /// storage.
  void outcome_into(core::MechanismOutcome& out) const;

  /// L(x(b), t~) at the committed profile.
  [[nodiscard]] double actual_latency() const;

  /// The committed profile.
  [[nodiscard]] const model::BidProfile& profile() const;

  /// Whether the O(1) closed-form path is active (false: every query is a
  /// full mechanism run on the scratch buffer).
  [[nodiscard]] bool incremental() const { return context_ != nullptr; }

  /// The closed-form context backing the incremental path (nullptr on the
  /// naive fallback).  strategy::GridEvaluator keys its lane-parallel sweep
  /// path off the concrete type behind this pointer.
  [[nodiscard]] const core::ProfileUtilityContext* profile_context() const {
    return context_.get();
  }

 private:
  const core::Mechanism* mechanism_;
  std::shared_ptr<const model::LatencyFamily> family_;  ///< keeps family alive
  double arrival_rate_;
  std::unique_ptr<core::ProfileUtilityContext> context_;  ///< fast path
  model::BidProfile profile_;           ///< committed profile (fallback path)
  mutable model::BidProfile scratch_;   ///< fallback deviation buffer
  /// Fallback round workspace: every full mechanism run on the naive path
  /// reuses these planes (and ws_.scratch_outcome), so even the baseline is
  /// allocation-free per query after warm-up.
  mutable core::RoundWorkspace ws_;
};

}  // namespace lbmv::strategy

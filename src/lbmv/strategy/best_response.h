#pragma once

/// \file best_response.h
/// Iterated best-response dynamics.
///
/// Truthfulness is a *dominant strategy* property: no matter what the other
/// agents do, an agent can do no better than the truth.  A complementary,
/// behavioural check is to let boundedly-rational agents repeatedly optimise
/// their bid (and execution value) against the current profile:
///   * under the compensation-and-bonus mechanism the dynamics must settle
///     on (approximately) truthful bids and full-capacity execution;
///   * under the no-payment baseline every agent keeps inflating its bid to
///     dodge work and the total latency degrades — the paper's motivation,
///     quantified (ablation bench A5).

#include <cstddef>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"

namespace lbmv::util {
class ThreadPool;
}

namespace lbmv::strategy {

/// Tunables for the dynamics.
struct BestResponseOptions {
  int max_rounds = 60;          ///< full passes over the agents
  double tol = 1e-5;            ///< relative bid movement to call converged
  double bid_lo_mult = 0.05;    ///< bid search interval, x true value
  double bid_hi_mult = 20.0;
  int bid_grid = 96;            ///< coarse scan resolution before refinement
  bool optimize_execution = true;  ///< also search over execution values
  /// Candidate execution multipliers (>= 1) tried for each bid.
  std::vector<double> exec_multipliers{1.0, 1.25, 1.5, 2.0, 3.0};
  /// Agents that never revise their action (e.g. a committed leader in the
  /// Stackelberg bidding game).  Indices must be < config.size().
  std::vector<std::size_t> frozen_agents{};
  /// Evaluate deviations through the O(1) DeviationEvaluator fast path when
  /// the mechanism offers one; set false to force the naive re-run path
  /// (baseline measurements, differential tests).
  bool use_incremental = true;
  /// Optional pool for fanning large candidate grids over threads (see
  /// strategy::GridEvaluator).  The dynamics — grid argmax included — are
  /// bit-identical with and without a pool, at any thread count.
  util::ThreadPool* pool = nullptr;
};

/// Trace of one dynamics run.
struct BestResponseResult {
  std::vector<std::vector<double>> bid_trajectory;  ///< bids after each round
  std::vector<double> final_bids;
  std::vector<double> final_executions;
  int rounds = 0;
  bool converged = false;
  double final_actual_latency = 0.0;  ///< L at the final profile
  /// max_i |b_i - t_i| / t_i at the end: 0 means full truth-telling.
  double max_relative_untruthfulness = 0.0;
};

/// Run sequential (round-robin) best-response dynamics from the truthful
/// profile.  Each agent maximises its own mechanism utility by a coarse
/// scan + golden-section refinement over bids, for each candidate
/// execution multiplier.  Deviations are evaluated through
/// strategy::DeviationEvaluator: O(1) per grid point for the closed-form
/// mechanisms, one mechanism run otherwise.
[[nodiscard]] BestResponseResult best_response_dynamics(
    const core::Mechanism& mechanism, const model::SystemConfig& config,
    const BestResponseOptions& options = {});

/// Same dynamics, started from an arbitrary \p initial profile (must
/// validate against \p config) — the Stackelberg bidding game uses this to
/// seed the followers around a committed leader bid.
[[nodiscard]] BestResponseResult best_response_dynamics(
    const core::Mechanism& mechanism, const model::SystemConfig& config,
    const model::BidProfile& initial, const BestResponseOptions& options);

}  // namespace lbmv::strategy

#include "lbmv/strategy/strategy.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "lbmv/util/error.h"

namespace lbmv::strategy {

double TruthfulStrategy::bid(double true_value, util::Rng&) const {
  return true_value;
}

double TruthfulStrategy::execution(double true_value, double,
                                   util::Rng&) const {
  return true_value;
}

std::unique_ptr<Strategy> TruthfulStrategy::clone() const {
  return std::make_unique<TruthfulStrategy>(*this);
}

ScalingStrategy::ScalingStrategy(double bid_mult, double exec_mult)
    : bid_mult_(bid_mult), exec_mult_(std::max(1.0, exec_mult)) {
  LBMV_REQUIRE(bid_mult > 0.0, "bid multiplier must be positive");
  LBMV_REQUIRE(exec_mult > 0.0, "execution multiplier must be positive");
}

double ScalingStrategy::bid(double true_value, util::Rng&) const {
  return bid_mult_ * true_value;
}

double ScalingStrategy::execution(double true_value, double,
                                  util::Rng&) const {
  return exec_mult_ * true_value;
}

std::string ScalingStrategy::name() const {
  std::ostringstream os;
  os << "scaling(bid=" << bid_mult_ << "x, exec=" << exec_mult_ << "x)";
  return os.str();
}

std::unique_ptr<Strategy> ScalingStrategy::clone() const {
  return std::make_unique<ScalingStrategy>(*this);
}

RandomBidStrategy::RandomBidStrategy(double lo_mult, double hi_mult)
    : lo_mult_(lo_mult), hi_mult_(hi_mult) {
  LBMV_REQUIRE(0.0 < lo_mult && lo_mult < hi_mult,
               "random bid range must satisfy 0 < lo < hi");
}

double RandomBidStrategy::bid(double true_value, util::Rng& rng) const {
  const double u = rng.uniform(std::log(lo_mult_), std::log(hi_mult_));
  return true_value * std::exp(u);
}

double RandomBidStrategy::execution(double true_value, double,
                                    util::Rng&) const {
  return true_value;
}

std::string RandomBidStrategy::name() const {
  std::ostringstream os;
  os << "random-bid[" << lo_mult_ << "x, " << hi_mult_ << "x]";
  return os.str();
}

std::unique_ptr<Strategy> RandomBidStrategy::clone() const {
  return std::make_unique<RandomBidStrategy>(*this);
}

SlackExecutionStrategy::SlackExecutionStrategy(double exec_mult)
    : exec_mult_(exec_mult) {
  LBMV_REQUIRE(exec_mult >= 1.0, "slack multiplier must be >= 1");
}

double SlackExecutionStrategy::bid(double true_value, util::Rng&) const {
  return true_value;
}

double SlackExecutionStrategy::execution(double true_value, double,
                                         util::Rng&) const {
  return exec_mult_ * true_value;
}

std::string SlackExecutionStrategy::name() const {
  std::ostringstream os;
  os << "slack-exec(" << exec_mult_ << "x)";
  return os.str();
}

std::unique_ptr<Strategy> SlackExecutionStrategy::clone() const {
  return std::make_unique<SlackExecutionStrategy>(*this);
}

model::BidProfile apply_strategies(
    const model::SystemConfig& config,
    const std::vector<const Strategy*>& strategies, util::Rng& rng) {
  model::BidProfile profile;
  apply_strategies_into(config, strategies, rng, profile);
  return profile;
}

void apply_strategies_into(const model::SystemConfig& config,
                           const std::vector<const Strategy*>& strategies,
                           util::Rng& rng, model::BidProfile& profile) {
  LBMV_REQUIRE(strategies.size() == config.size(),
               "one strategy per agent required");
  profile.bids.resize(config.size());
  profile.executions.resize(config.size());
  for (std::size_t i = 0; i < config.size(); ++i) {
    LBMV_REQUIRE(strategies[i] != nullptr, "strategies must not be null");
    const double t = config.true_value(i);
    profile.bids[i] = strategies[i]->bid(t, rng);
    profile.executions[i] = strategies[i]->execution(t, profile.bids[i], rng);
    LBMV_ASSERT(profile.executions[i] >= t,
                "strategy produced an execution value below capacity");
  }
}

}  // namespace lbmv::strategy

#include "lbmv/strategy/learning.h"

#include <algorithm>
#include <cmath>

#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace lbmv::strategy {
namespace {

/// Per-agent epsilon-greedy state over the arm grid.
struct Learner {
  std::vector<double> q;       ///< incremental mean reward per arm
  std::vector<std::size_t> n;  ///< pulls per arm
  util::Rng rng{0};

  [[nodiscard]] std::size_t pick(double epsilon) {
    if (rng.uniform() < epsilon) {
      return static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(q.size()) - 1));
    }
    return greedy();
  }

  [[nodiscard]] std::size_t greedy() const {
    std::size_t best = 0;
    for (std::size_t a = 1; a < q.size(); ++a) {
      // Break ties toward unexplored arms to keep early greed harmless.
      if (q[a] > q[best] || (q[a] == q[best] && n[a] < n[best])) best = a;
    }
    return best;
  }

  void update(std::size_t arm, double reward) {
    ++n[arm];
    q[arm] += (reward - q[arm]) / static_cast<double>(n[arm]);
  }
};

}  // namespace

LearningResult run_learning(const core::Mechanism& mechanism,
                            const model::SystemConfig& config,
                            const LearningOptions& options) {
  LBMV_REQUIRE(!options.bid_arms.empty() && !options.exec_arms.empty(),
               "arm grids must be non-empty");
  for (double b : options.bid_arms) {
    LBMV_REQUIRE(b > 0.0, "bid arms must be positive");
  }
  for (double e : options.exec_arms) {
    LBMV_REQUIRE(e >= 1.0, "execution arms must be >= 1");
  }
  LBMV_REQUIRE(options.rounds > 0, "rounds must be positive");
  LBMV_REQUIRE(options.epsilon >= 0.0 && options.epsilon <= 1.0,
               "epsilon must be in [0, 1]");
  if (options.single_learner) {
    LBMV_REQUIRE(*options.single_learner < config.size(),
                 "single_learner index out of range");
  }

  const std::size_t n = config.size();
  const std::size_t arms = options.bid_arms.size() * options.exec_arms.size();
  auto arm_bid = [&](std::size_t a) {
    return options.bid_arms[a / options.exec_arms.size()];
  };
  auto arm_exec = [&](std::size_t a) {
    return options.exec_arms[a % options.exec_arms.size()];
  };
  // Index of the truthful arm (1, 1) if present; used only for reporting.
  util::Rng root(options.seed);
  std::vector<Learner> learners(n);
  for (std::size_t i = 0; i < n; ++i) {
    learners[i].q.assign(arms, 0.0);
    learners[i].n.assign(arms, 0);
    learners[i].rng = root.split(i + 1);
  }

  auto profile_for = [&](const std::vector<std::size_t>& chosen) {
    model::BidProfile profile = model::BidProfile::truthful(config);
    for (std::size_t i = 0; i < n; ++i) {
      if (options.single_learner && *options.single_learner != i) continue;
      profile.bids[i] = arm_bid(chosen[i]) * config.true_value(i);
      profile.executions[i] = arm_exec(chosen[i]) * config.true_value(i);
    }
    return profile;
  };

  LearningResult result;
  result.latency_trace.reserve(static_cast<std::size_t>(options.rounds));
  double epsilon = options.epsilon;
  std::vector<std::size_t> chosen(n, 0);
  for (int round = 0; round < options.rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      chosen[i] = learners[i].pick(epsilon);
    }
    const auto outcome = mechanism.run(config, profile_for(chosen));
    result.latency_trace.push_back(outcome.actual_latency);
    for (std::size_t i = 0; i < n; ++i) {
      if (options.single_learner && *options.single_learner != i) continue;
      learners[i].update(chosen[i], outcome.agents[i].utility);
    }
    epsilon *= options.epsilon_decay;
  }

  result.final_bid_mult.resize(n, 1.0);
  result.final_exec_mult.resize(n, 1.0);
  std::size_t truthful = 0;
  std::vector<std::size_t> greedy(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (options.single_learner && *options.single_learner != i) {
      ++truthful;  // non-learners are truthful by construction
      continue;
    }
    greedy[i] = learners[i].greedy();
    result.final_bid_mult[i] = arm_bid(greedy[i]);
    result.final_exec_mult[i] = arm_exec(greedy[i]);
    truthful += result.final_bid_mult[i] == 1.0 &&
                result.final_exec_mult[i] == 1.0;
  }
  result.truthful_fraction =
      static_cast<double>(truthful) / static_cast<double>(n);
  result.final_greedy_latency =
      mechanism.run(config, profile_for(greedy)).actual_latency;
  return result;
}

}  // namespace lbmv::strategy

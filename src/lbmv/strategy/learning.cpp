#include "lbmv/strategy/learning.h"

#include <algorithm>
#include <cmath>

#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/grid_eval.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace lbmv::strategy {
namespace {

/// Per-agent epsilon-greedy state over the arm grid.
struct Learner {
  std::vector<double> q;       ///< incremental mean reward per arm
  std::vector<std::size_t> n;  ///< pulls per arm
  util::Rng rng{0};

  [[nodiscard]] std::size_t pick(double epsilon) {
    if (rng.uniform() < epsilon) {
      return static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(q.size()) - 1));
    }
    return greedy();
  }

  [[nodiscard]] std::size_t greedy() const {
    std::size_t best = 0;
    for (std::size_t a = 1; a < q.size(); ++a) {
      // Break ties toward unexplored arms to keep early greed harmless.
      if (q[a] > q[best] || (q[a] == q[best] && n[a] < n[best])) best = a;
    }
    return best;
  }

  void update(std::size_t arm, double reward) {
    ++n[arm];
    q[arm] += (reward - q[arm]) / static_cast<double>(n[arm]);
  }
};

void validate_options(const model::SystemConfig& config,
                      const LearningOptions& options) {
  LBMV_REQUIRE(!options.bid_arms.empty() && !options.exec_arms.empty(),
               "arm grids must be non-empty");
  for (double b : options.bid_arms) {
    LBMV_REQUIRE(std::isfinite(b) && b > 0.0,
                 "bid arms must be positive and finite");
  }
  for (double e : options.exec_arms) {
    LBMV_REQUIRE(std::isfinite(e) && e >= 1.0,
                 "execution arms must be finite and >= 1");
  }
  LBMV_REQUIRE(options.rounds > 0, "rounds must be positive");
  LBMV_REQUIRE(std::isfinite(options.epsilon) && options.epsilon >= 0.0 &&
                   options.epsilon <= 1.0,
               "epsilon must be in [0, 1]");
  LBMV_REQUIRE(std::isfinite(options.epsilon_decay) &&
                   options.epsilon_decay > 0.0 &&
                   options.epsilon_decay <= 1.0,
               "epsilon_decay must be in (0, 1]");
  if (options.single_learner) {
    LBMV_REQUIRE(*options.single_learner < config.size(),
                 "single_learner index out of range");
  }
}

}  // namespace

LearningResult run_learning(const core::Mechanism& mechanism,
                            const model::SystemConfig& config,
                            const LearningOptions& options) {
  validate_options(config, options);

  const std::size_t n = config.size();
  const std::size_t arms = options.bid_arms.size() * options.exec_arms.size();
  auto arm_bid = [&](std::size_t a) {
    return options.bid_arms[a / options.exec_arms.size()];
  };
  auto arm_exec = [&](std::size_t a) {
    return options.exec_arms[a % options.exec_arms.size()];
  };
  auto learns = [&](std::size_t i) {
    return !options.single_learner || *options.single_learner == i;
  };
  util::Rng root(options.seed);
  std::vector<Learner> learners(n);
  for (std::size_t i = 0; i < n; ++i) {
    learners[i].q.assign(arms, 0.0);
    learners[i].n.assign(arms, 0);
    learners[i].rng = root.split(i + 1);
  }

  // Non-learners stay at the initial truthful entries forever; learners are
  // committed to their chosen arm each round, so one evaluator serves the
  // whole run with no per-round profile construction.
  DeviationEvaluator evaluator(mechanism, config);
  const GridEvaluator grid_eval(evaluator);  // full-feedback sweeps
  core::MechanismOutcome outcome;  // reused across rounds

  LearningResult result;
  result.latency_trace.reserve(static_cast<std::size_t>(options.rounds));
  double epsilon = options.epsilon;
  std::vector<std::size_t> chosen(n, 0);
  // Full-feedback scratch: one candidate-bid row per execution arm, reused
  // every round (bid_row[b] = bid_arms[b] * t, arm index b * ne + e).
  const std::size_t nb = options.bid_arms.size();
  const std::size_t ne = options.exec_arms.size();
  std::vector<double> bid_row(options.full_feedback ? nb : 0);
  std::vector<double> util_row(options.full_feedback ? nb : 0);
  // Simultaneous-move round: every learner picks, then all k picks land as
  // one batched commit — the nonlinear contexts re-derive their planes once
  // per round instead of once per learner (state-identical either way).
  std::vector<core::BidDelta> moves;
  moves.reserve(n);
  for (int round = 0; round < options.rounds; ++round) {
    moves.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!learns(i)) continue;
      chosen[i] = learners[i].pick(epsilon);
      const double t = config.true_value(i);
      moves.push_back(core::BidDelta{i, arm_bid(chosen[i]) * t,
                                     arm_exec(chosen[i]) * t});
    }
    evaluator.commit_batch(moves);
    evaluator.outcome_into(outcome);
    result.latency_trace.push_back(outcome.actual_latency);
    for (std::size_t i = 0; i < n; ++i) {
      if (!learns(i)) continue;
      if (options.full_feedback) {
        // Counterfactual credit for the whole arm grid: each execution arm
        // is one lane-parallel sweep over the bid arms against the profile
        // everyone just committed.
        const double t = config.true_value(i);
        for (std::size_t b = 0; b < nb; ++b) {
          bid_row[b] = options.bid_arms[b] * t;
        }
        for (std::size_t e = 0; e < ne; ++e) {
          grid_eval.utilities_into(i, bid_row, options.exec_arms[e] * t,
                                   util_row);
          for (std::size_t b = 0; b < nb; ++b) {
            learners[i].update(b * ne + e, util_row[b]);
          }
        }
      } else {
        learners[i].update(chosen[i], outcome.agents[i].utility);
      }
    }
    epsilon *= options.epsilon_decay;
  }

  result.final_bid_mult.resize(n, 1.0);
  result.final_exec_mult.resize(n, 1.0);
  std::size_t truthful = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!learns(i)) {
      ++truthful;  // non-learners are truthful by construction
      continue;
    }
    const std::size_t greedy = learners[i].greedy();
    result.final_bid_mult[i] = arm_bid(greedy);
    result.final_exec_mult[i] = arm_exec(greedy);
    const double t = config.true_value(i);
    evaluator.commit(i, result.final_bid_mult[i] * t,
                     result.final_exec_mult[i] * t);
    truthful += result.final_bid_mult[i] == 1.0 &&
                result.final_exec_mult[i] == 1.0;
  }
  result.truthful_fraction =
      static_cast<double>(truthful) / static_cast<double>(n);
  result.final_greedy_latency = evaluator.actual_latency();
  return result;
}

double LearningEnsemble::mean_truthful_fraction() const {
  if (replications.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : replications) s += r.truthful_fraction;
  return s / static_cast<double>(replications.size());
}

double LearningEnsemble::mean_greedy_latency() const {
  if (replications.empty()) return 0.0;
  double s = 0.0;
  for (const auto& r : replications) s += r.final_greedy_latency;
  return s / static_cast<double>(replications.size());
}

LearningEnsemble run_learning_replicated(const core::Mechanism& mechanism,
                                         const model::SystemConfig& config,
                                         const LearningOptions& options,
                                         std::size_t replications,
                                         util::ThreadPool* pool,
                                         std::size_t grain) {
  validate_options(config, options);
  LBMV_REQUIRE(replications > 0, "replications must be positive");

  // Each replication gets its own seed stream derived from the base seed;
  // slot r of the output depends on nothing but r, so the ensemble is
  // invariant to thread count and grain.
  const util::Rng root(options.seed);
  LearningEnsemble ensemble;
  ensemble.replications.resize(replications);
  util::ThreadPool& runner = pool != nullptr ? *pool : util::ThreadPool::global();
  runner.parallel_for(
      0, replications,
      [&](std::size_t r) {
        LearningOptions rep_options = options;
        rep_options.seed = root.split(r + 1).seed();
        ensemble.replications[r] = run_learning(mechanism, config, rep_options);
      },
      grain);
  return ensemble;
}

}  // namespace lbmv::strategy

#pragma once

/// \file strategy.h
/// Agent behaviour models.
///
/// A strategy maps an agent's private true value to the bid it reports and
/// the execution value it then actually runs at (always >= the true value —
/// a machine cannot exceed its capacity).  The paper's Table 2 experiments
/// are ScalingStrategy instances; the tournament and dynamics modules pit
/// richer behaviours against each other under different mechanisms.

#include <memory>
#include <string>
#include <vector>

#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/rng.h"

namespace lbmv::strategy {

/// Decides one agent's bid and execution value.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// The bid reported for true value \p true_value.
  [[nodiscard]] virtual double bid(double true_value, util::Rng& rng) const = 0;

  /// The execution value the agent runs at, given its true value and the
  /// bid it chose.  Must be >= true_value.
  [[nodiscard]] virtual double execution(double true_value, double bid,
                                         util::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Strategy> clone() const = 0;
};

/// Bid the truth and execute at full capacity.
class TruthfulStrategy final : public Strategy {
 public:
  [[nodiscard]] double bid(double true_value, util::Rng&) const override;
  [[nodiscard]] double execution(double true_value, double,
                                 util::Rng&) const override;
  [[nodiscard]] std::string name() const override { return "truthful"; }
  [[nodiscard]] std::unique_ptr<Strategy> clone() const override;
};

/// Fixed multiplicative deviation: bid = bid_mult * t, execution =
/// max(1, exec_mult) * t.  Covers every Table 2 experiment.
class ScalingStrategy final : public Strategy {
 public:
  ScalingStrategy(double bid_mult, double exec_mult);
  [[nodiscard]] double bid(double true_value, util::Rng&) const override;
  [[nodiscard]] double execution(double true_value, double,
                                 util::Rng&) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Strategy> clone() const override;
  [[nodiscard]] double bid_mult() const { return bid_mult_; }
  [[nodiscard]] double exec_mult() const { return exec_mult_; }

 private:
  double bid_mult_;
  double exec_mult_;
};

/// Bid log-uniformly in [lo_mult, hi_mult] * t; execute truthfully.
/// A noise-maker for tournaments.
class RandomBidStrategy final : public Strategy {
 public:
  RandomBidStrategy(double lo_mult, double hi_mult);
  [[nodiscard]] double bid(double true_value, util::Rng& rng) const override;
  [[nodiscard]] double execution(double true_value, double,
                                 util::Rng&) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Strategy> clone() const override;

 private:
  double lo_mult_;
  double hi_mult_;
};

/// "Lazy" agent: bids the truth to win a normal share, then slacks
/// execution by a factor.  The behaviour only verification can punish.
class SlackExecutionStrategy final : public Strategy {
 public:
  explicit SlackExecutionStrategy(double exec_mult);
  [[nodiscard]] double bid(double true_value, util::Rng&) const override;
  [[nodiscard]] double execution(double true_value, double,
                                 util::Rng&) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Strategy> clone() const override;

 private:
  double exec_mult_;
};

/// Build a full bid profile by applying \p strategies agent-by-agent
/// (strategies.size() must equal config.size()).
[[nodiscard]] model::BidProfile apply_strategies(
    const model::SystemConfig& config,
    const std::vector<const Strategy*>& strategies, util::Rng& rng);

/// In-place variant for hot loops: fills \p profile, reusing its capacity,
/// so a profile carried across tournament instances or learning rounds
/// allocates at most once.
void apply_strategies_into(const model::SystemConfig& config,
                           const std::vector<const Strategy*>& strategies,
                           util::Rng& rng, model::BidProfile& profile);

}  // namespace lbmv::strategy

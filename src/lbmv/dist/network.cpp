#include "lbmv/dist/network.h"

#include <utility>

#include "lbmv/util/error.h"

namespace lbmv::dist {

Network::Network(sim::Simulation& sim, std::size_t node_count)
    : Network(sim, node_count, Options{}) {}

Network::Network(sim::Simulation& sim, std::size_t node_count,
                 const Options& options)
    : sim_(&sim),
      handlers_(node_count),
      rng_(options.seed),
      options_(options) {
  LBMV_REQUIRE(node_count > 0, "network needs at least one node");
  LBMV_REQUIRE(options.base_delay >= 0.0 && options.per_double_delay >= 0.0 &&
                   options.jitter >= 0.0,
               "network delays must be non-negative");
}

void Network::set_handler(NodeId node, Handler handler) {
  LBMV_REQUIRE(node < handlers_.size(), "node id out of range");
  handlers_[node] = std::move(handler);
}

void Network::send(Message msg) {
  LBMV_REQUIRE(msg.from < handlers_.size() && msg.to < handlers_.size(),
               "message endpoints out of range");
  ++messages_;
  doubles_ += msg.payload.size();
  ++by_type_[msg.type];
  double delay = options_.base_delay +
                 options_.per_double_delay *
                     static_cast<double>(msg.payload.size());
  if (options_.jitter > 0.0) delay += rng_.uniform(0.0, options_.jitter);
  sim_->schedule_after(delay, [this, m = std::move(msg)] {
    LBMV_REQUIRE(handlers_[m.to] != nullptr,
                 "message delivered to a node without a handler");
    handlers_[m.to](m);
  });
}

}  // namespace lbmv::dist

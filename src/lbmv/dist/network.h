#pragma once

/// \file network.h
/// Simulated message-passing network for distributed protocol studies.
///
/// The paper's protocol is centralised (§3, O(n) messages) and its stated
/// future work is "the problem of distributed handling of payments and the
/// agents' privacy".  The lbmv::dist subsystem builds that: nodes exchange
/// typed messages over a network with per-message latency, and protocol
/// state machines react to deliveries.  The Network runs on the
/// discrete-event engine, counts every message and every double
/// transferred, and is deterministic under a fixed seed.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "lbmv/sim/engine.h"
#include "lbmv/util/rng.h"

namespace lbmv::dist {

/// Index of a node on the network.
using NodeId = std::size_t;

/// A typed message with a numeric payload.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::string type;             ///< protocol-defined tag, e.g. "bid"
  std::vector<double> payload;  ///< numeric body
};

/// Point-to-point network with latency = base + per_double * |payload|
/// (+ optional uniform jitter).  Messages between a pair of nodes are
/// delivered in FIFO order relative to their send times because the
/// underlying engine breaks timestamp ties by schedule order.
class Network {
 public:
  struct Options {
    double base_delay = 1e-3;       ///< seconds per message
    double per_double_delay = 1e-6; ///< seconds per payload double
    double jitter = 0.0;            ///< max extra uniform delay
    std::uint64_t seed = 1;
  };

  /// \p node_count nodes, ids 0 .. node_count-1.  The simulation must
  /// outlive the network.
  Network(sim::Simulation& sim, std::size_t node_count,
          const Options& options);

  /// Same, with default delay options.
  Network(sim::Simulation& sim, std::size_t node_count);

  using Handler = std::function<void(const Message&)>;

  /// Install the delivery handler of \p node (replacing any previous one).
  void set_handler(NodeId node, Handler handler);

  /// Send a message; it is delivered to the handler of msg.to after the
  /// modelled delay.  Self-sends are allowed (local computation hand-off).
  void send(Message msg);

  [[nodiscard]] std::size_t node_count() const { return handlers_.size(); }
  [[nodiscard]] std::size_t messages_sent() const { return messages_; }
  [[nodiscard]] std::size_t doubles_sent() const { return doubles_; }
  /// Per-type message counts (for protocol accounting tables).
  [[nodiscard]] const std::map<std::string, std::size_t>& by_type() const {
    return by_type_;
  }

 private:
  sim::Simulation* sim_;
  std::vector<Handler> handlers_;
  util::Rng rng_;
  Options options_;
  std::size_t messages_ = 0;
  std::size_t doubles_ = 0;
  std::map<std::string, std::size_t> by_type_;
};

}  // namespace lbmv::dist

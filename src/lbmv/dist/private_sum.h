#pragma once

/// \file private_sum.h
/// Additive secret sharing over Z_{2^64} for privacy-preserving aggregation.
///
/// The paper's second future-work item is "the agents' privacy": computers
/// may not want to reveal their speeds (bids) to anyone.  For the linear
/// family the whole mechanism is computable from *sums*:
///   * S = sum_j 1/b_j determines every allocation (x_i = R (1/b_i)/S, which
///     agent i computes locally) and every leave-one-out optimum
///     (L_{-i} = R^2 / (S - 1/b_i)), and
///   * L_actual = sum_j t~_j x_j^2 determines every bonus.
/// So the only primitive privacy needs is a *private sum*: each agent splits
/// its value into n additive shares, hands share j to agent j, and only the
/// total ever becomes public.  Any strict subset of shares is uniformly
/// distributed and reveals nothing (information-theoretic secrecy over the
/// ring).
///
/// Values are fixed-point encoded (scale 1e9) into the ring Z_{2^64}, so
/// reconstruction is *exact* — no floating-point drift across shares.

#include <cstdint>
#include <vector>

#include "lbmv/util/rng.h"

namespace lbmv::dist {

/// Fixed-point codec used by the sharing scheme.
class FixedPoint {
 public:
  /// Scale: 1e9 fractional resolution; magnitudes up to ~9e9 fit signed.
  static constexpr double kScale = 1e9;

  /// Encode a real value; requires |value| < 2^62 / kScale.
  [[nodiscard]] static std::uint64_t encode(double value);

  /// Decode a ring element back to a real value (two's-complement
  /// interpretation).
  [[nodiscard]] static double decode(std::uint64_t encoded);
};

/// Split \p value into \p parties additive shares over Z_{2^64}.
/// All but the last share are uniform; the last makes the ring sum equal
/// the encoding of value.  Requires parties >= 1.
[[nodiscard]] std::vector<std::uint64_t> make_shares(double value,
                                                     std::size_t parties,
                                                     util::Rng& rng);

/// Ring sum of shares (mod 2^64).
[[nodiscard]] std::uint64_t combine_shares(
    const std::vector<std::uint64_t>& shares);

/// Reconstruct the real value from all shares of one secret, or from the
/// ring sums of shares across *many* secrets (additivity: the decoded
/// combined sum of everyone's share-sums is the sum of everyone's values).
[[nodiscard]] double reconstruct(const std::vector<std::uint64_t>& shares);

}  // namespace lbmv::dist

#include "lbmv/dist/protocols.h"

#include <cmath>

#include "lbmv/dist/private_sum.h"
#include "lbmv/util/error.h"

namespace lbmv::dist {
namespace {

/// Shared closed forms (linear family only).
struct LinearMath {
  double arrival_rate;

  [[nodiscard]] double allocation(double own_inverse_bid,
                                  double inverse_sum) const {
    return arrival_rate * own_inverse_bid / inverse_sum;
  }
  [[nodiscard]] double leave_one_out(double own_inverse_bid,
                                     double inverse_sum) const {
    return arrival_rate * arrival_rate / (inverse_sum - own_inverse_bid);
  }
  [[nodiscard]] static double cost(double execution_value, double x) {
    return execution_value * x * x;
  }
  [[nodiscard]] static double payment(double own_cost, double leave_one_out,
                                      double actual_latency) {
    return own_cost + leave_one_out - actual_latency;
  }
};

/// Common scaffolding: simulation, network, report assembly.
struct RoundContext {
  const model::SystemConfig* config;
  const model::BidProfile* intents;
  DistOptions options;
  LinearMath math;

  sim::Simulation simulation;
  std::unique_ptr<Network> network;

  std::vector<double> allocations;
  std::vector<double> payments;

  explicit RoundContext(const model::SystemConfig& cfg,
                        const model::BidProfile& profile,
                        const DistOptions& opts, std::size_t node_count)
      : config(&cfg),
        intents(&profile),
        options(opts),
        math{cfg.arrival_rate()},
        allocations(cfg.size(), 0.0),
        payments(cfg.size(), 0.0) {
    network = std::make_unique<Network>(simulation, node_count,
                                        opts.network);
  }

  [[nodiscard]] std::size_t n() const { return config->size(); }
  [[nodiscard]] double inverse_bid(std::size_t i) const {
    return 1.0 / intents->bids[i];
  }
  [[nodiscard]] double verified_cost(std::size_t i) const {
    return LinearMath::cost(intents->executions[i], allocations[i]);
  }

  [[nodiscard]] DistributedReport finish(Topology topology) {
    DistributedReport report;
    report.protocol = topology_name(topology);
    report.allocation = model::Allocation(allocations);
    report.payments = payments;
    report.utilities.resize(n());
    report.actual_latency = 0.0;
    for (std::size_t i = 0; i < n(); ++i) {
      const double cost = verified_cost(i);
      report.actual_latency += cost;
      report.utilities[i] = payments[i] - cost;
    }
    report.messages = network->messages_sent();
    report.doubles_transferred = network->doubles_sent();
    report.completion_time = simulation.now();
    return report;
  }
};

// ---------------------------------------------------------------------------
// Star: the paper's centralised protocol.  Agents 0..n-1, coordinator n.

DistributedReport run_star(RoundContext& ctx) {
  const std::size_t n = ctx.n();
  const NodeId coordinator = n;

  struct CoordinatorState {
    std::vector<double> bids;
    std::size_t received = 0;
  } coord;
  coord.bids.assign(n, 0.0);

  ctx.network->set_handler(coordinator, [&](const Message& msg) {
    if (msg.type == "bid") {
      coord.bids[msg.from] = msg.payload[0];
      if (++coord.received < n) return;
      // All bids in: allocate (PR algorithm) and assign.
      double inverse_sum = 0.0;
      for (double b : coord.bids) inverse_sum += 1.0 / b;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = ctx.math.allocation(1.0 / coord.bids[i],
                                             inverse_sum);
        ctx.network->send({coordinator, i, "assign", {x}});
      }
      // Jobs execute; after the execution interval the coordinator has
      // verified every execution value (oracle) and can pay.
      ctx.simulation.schedule_after(ctx.options.execution_time, [&, n,
                                                                 inverse_sum,
                                                                 coordinator] {
        double actual_latency = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          actual_latency += ctx.verified_cost(i);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double payment = LinearMath::payment(
              ctx.verified_cost(i),
              ctx.math.leave_one_out(1.0 / coord.bids[i], inverse_sum),
              actual_latency);
          ctx.network->send({coordinator, i, "payment", {payment}});
        }
      });
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    ctx.network->set_handler(i, [&, i](const Message& msg) {
      if (msg.type == "assign") {
        ctx.allocations[i] = msg.payload[0];
      } else if (msg.type == "payment") {
        ctx.payments[i] = msg.payload[0];
      }
    });
    ctx.simulation.schedule(0.0, [&, i, coordinator] {
      ctx.network->send({i, coordinator, "bid", {ctx.intents->bids[i]}});
    });
  }

  ctx.simulation.run();
  LBMV_ASSERT(coord.received == n, "star protocol lost bids");
  return ctx.finish(Topology::kStar);
}

// ---------------------------------------------------------------------------
// Broadcast: full mesh, every agent computes every payment (auditable).

DistributedReport run_broadcast(RoundContext& ctx) {
  const std::size_t n = ctx.n();

  struct AgentState {
    std::vector<double> bids;
    std::vector<double> costs;
    std::size_t bids_seen = 0;
    std::size_t costs_seen = 0;
    double inverse_sum = 0.0;
  };
  std::vector<AgentState> agents(n);
  for (auto& a : agents) {
    a.bids.assign(n, 0.0);
    a.costs.assign(n, 0.0);
  }

  auto on_all_bids = [&](std::size_t i) {
    auto& a = agents[i];
    for (double b : a.bids) a.inverse_sum += 1.0 / b;
    ctx.allocations[i] = ctx.math.allocation(ctx.inverse_bid(i),
                                             a.inverse_sum);
    // Execute, then broadcast the verified cost.
    ctx.simulation.schedule_after(ctx.options.execution_time, [&, i] {
      const double cost = ctx.verified_cost(i);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        ctx.network->send({i, j, "cost", {cost}});
      }
      agents[i].costs[i] = cost;
      if (++agents[i].costs_seen == n) {
        double actual = 0.0;
        for (double c : agents[i].costs) actual += c;
        ctx.payments[i] = LinearMath::payment(
            agents[i].costs[i],
            ctx.math.leave_one_out(ctx.inverse_bid(i), agents[i].inverse_sum),
            actual);
      }
    });
  };

  for (std::size_t i = 0; i < n; ++i) {
    ctx.network->set_handler(i, [&, i](const Message& msg) {
      auto& a = agents[i];
      if (msg.type == "bid") {
        a.bids[msg.from] = msg.payload[0];
        if (++a.bids_seen == n) on_all_bids(i);
      } else if (msg.type == "cost") {
        a.costs[msg.from] = msg.payload[0];
        if (++a.costs_seen == n) {
          double actual = 0.0;
          for (double c : a.costs) actual += c;
          ctx.payments[i] = LinearMath::payment(
              a.costs[i],
              ctx.math.leave_one_out(ctx.inverse_bid(i), a.inverse_sum),
              actual);
        }
      }
    });
    ctx.simulation.schedule(0.0, [&, i] {
      auto& a = agents[i];
      a.bids[i] = ctx.intents->bids[i];
      if (++a.bids_seen == n) on_all_bids(i);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        ctx.network->send({i, j, "bid", {ctx.intents->bids[i]}});
      }
    });
  }

  ctx.simulation.run();
  return ctx.finish(Topology::kBroadcast);
}

// ---------------------------------------------------------------------------
// Tree: binary-tree aggregation, two up/down waves (bids, then costs).

DistributedReport run_tree(RoundContext& ctx) {
  const std::size_t n = ctx.n();
  auto parent = [](std::size_t i) { return (i - 1) / 2; };
  auto child_count = [n](std::size_t i) {
    std::size_t count = 0;
    if (2 * i + 1 < n) ++count;
    if (2 * i + 2 < n) ++count;
    return count;
  };

  struct AgentState {
    double partial = 0.0;       ///< subtree partial sum (current wave)
    std::size_t pending = 0;    ///< children not yet reported
    double inverse_sum = 0.0;   ///< global S once known
  };
  std::vector<AgentState> agents(n);

  // Wave machinery: value_of(i) supplies the local addend, on_total(i, T)
  // consumes the globally broadcast total.  Tags distinguish the waves.
  struct Wave {
    std::string up, down;
    std::function<double(std::size_t)> value_of;
    std::function<void(std::size_t, double)> on_total;
  };
  std::vector<Wave> waves(2);
  auto start_wave = [&](std::size_t w) {
    for (std::size_t i = 0; i < n; ++i) {
      agents[i].pending = child_count(i);
      agents[i].partial = waves[w].value_of(i);
      if (agents[i].pending == 0 && i != 0) {
        ctx.network->send({i, parent(i), waves[w].up, {agents[i].partial}});
      }
    }
    if (n == 1 || child_count(0) == 0) {
      waves[w].on_total(0, agents[0].partial);
    }
  };

  waves[0].up = "sum_bid_up";
  waves[0].down = "sum_bid_down";
  waves[0].value_of = [&](std::size_t i) { return ctx.inverse_bid(i); };
  waves[0].on_total = [&](std::size_t i, double total) {
    agents[i].inverse_sum = total;
    ctx.allocations[i] = ctx.math.allocation(ctx.inverse_bid(i), total);
    for (std::size_t c : {2 * i + 1, 2 * i + 2}) {
      if (c < n) ctx.network->send({i, c, waves[0].down, {total}});
    }
    // The execution interval is anchored once per round, at the root; the
    // down-wave reaches every node long before it elapses.
    if (i == 0) {
      ctx.simulation.schedule_after(ctx.options.execution_time,
                                    [&] { start_wave(1); });
    }
  };

  waves[1].up = "sum_cost_up";
  waves[1].down = "sum_cost_down";
  waves[1].value_of = [&](std::size_t i) { return ctx.verified_cost(i); };
  waves[1].on_total = [&](std::size_t i, double total) {
    ctx.payments[i] = LinearMath::payment(
        ctx.verified_cost(i),
        ctx.math.leave_one_out(ctx.inverse_bid(i), agents[i].inverse_sum),
        total);
    for (std::size_t c : {2 * i + 1, 2 * i + 2}) {
      if (c < n) ctx.network->send({i, c, waves[1].down, {total}});
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    ctx.network->set_handler(i, [&, i](const Message& msg) {
      for (std::size_t w = 0; w < 2; ++w) {
        if (msg.type == waves[w].up) {
          agents[i].partial += msg.payload[0];
          if (--agents[i].pending == 0) {
            if (i == 0) {
              waves[w].on_total(0, agents[0].partial);
            } else {
              ctx.network->send(
                  {i, parent(i), waves[w].up, {agents[i].partial}});
            }
          }
        } else if (msg.type == waves[w].down) {
          waves[w].on_total(i, msg.payload[0]);
        }
      }
    });
  }
  ctx.simulation.schedule(0.0, [&] { start_wave(0); });

  ctx.simulation.run();
  return ctx.finish(Topology::kTree);
}

// ---------------------------------------------------------------------------
// Private: full mesh + additive secret sharing of both aggregation rounds.

/// Ring elements must cross the (double-typed) network losslessly: split
/// into two exactly representable 32-bit halves.
std::vector<double> pack_ring(std::uint64_t value) {
  return {static_cast<double>(value >> 32),
          static_cast<double>(value & 0xffffffffull)};
}

std::uint64_t unpack_ring(const std::vector<double>& payload) {
  LBMV_ASSERT(payload.size() == 2, "ring payload must carry two halves");
  return (static_cast<std::uint64_t>(payload[0]) << 32) |
         static_cast<std::uint64_t>(payload[1]);
}

DistributedReport run_private(RoundContext& ctx) {
  const std::size_t n = ctx.n();

  struct AgentState {
    util::Rng rng{0};
    std::uint64_t share_acc = 0;       ///< ring sum of received shares
    std::size_t shares_seen = 0;
    std::vector<std::uint64_t> partials;
    std::size_t partials_seen = 0;
    double inverse_sum = 0.0;
  };
  std::vector<AgentState> agents(n);
  util::Rng root_rng(ctx.options.network.seed ^ 0xabcdefull);
  for (std::size_t i = 0; i < n; ++i) {
    agents[i].rng = root_rng.split(i + 1);
    agents[i].partials.assign(n, 0);
  }

  // One private-sum round: each agent shares value_of(i) across all n
  // agents; partial ring-sums are broadcast; everyone reconstructs the
  // total and calls on_total.  Message tags carry the round name.
  struct Round {
    std::string share, partial;
    std::function<double(std::size_t)> value_of;
    std::function<void(std::size_t, double)> on_total;
  };
  std::vector<Round> rounds(2);

  auto start_round = [&](std::size_t r) {
    for (auto& a : agents) {
      a.share_acc = 0;
      a.shares_seen = 0;
      a.partials_seen = 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto shares =
          make_shares(rounds[r].value_of(i), n, agents[i].rng);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) {
          agents[i].share_acc += shares[j];
          ++agents[i].shares_seen;
        } else {
          ctx.network->send(
              {i, j, rounds[r].share, pack_ring(shares[j])});
        }
      }
    }
  };
  auto handle = [&](std::size_t i, std::size_t r, const Message& msg) {
    auto& a = agents[i];
    if (msg.type == rounds[r].share) {
      a.share_acc += unpack_ring(msg.payload);
      if (++a.shares_seen == n) {
        a.partials[i] = a.share_acc;
        if (++a.partials_seen == n) {
          rounds[r].on_total(i, reconstruct(a.partials));
        }
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i) {
            ctx.network->send(
                {i, j, rounds[r].partial, pack_ring(a.share_acc)});
          }
        }
      }
    } else if (msg.type == rounds[r].partial) {
      a.partials[msg.from] = unpack_ring(msg.payload);
      if (++a.partials_seen == n) {
        rounds[r].on_total(i, reconstruct(a.partials));
      }
    }
  };

  rounds[0].share = "bid_share";
  rounds[0].partial = "bid_partial";
  rounds[0].value_of = [&](std::size_t i) { return ctx.inverse_bid(i); };
  rounds[0].on_total = [&](std::size_t i, double total) {
    agents[i].inverse_sum = total;
    ctx.allocations[i] = ctx.math.allocation(ctx.inverse_bid(i), total);
    if (i == 0) {
      ctx.simulation.schedule_after(ctx.options.execution_time,
                                    [&] { start_round(1); });
    }
  };
  rounds[1].share = "cost_share";
  rounds[1].partial = "cost_partial";
  rounds[1].value_of = [&](std::size_t i) { return ctx.verified_cost(i); };
  rounds[1].on_total = [&](std::size_t i, double total) {
    ctx.payments[i] = LinearMath::payment(
        ctx.verified_cost(i),
        ctx.math.leave_one_out(ctx.inverse_bid(i), agents[i].inverse_sum),
        total);
  };

  for (std::size_t i = 0; i < n; ++i) {
    ctx.network->set_handler(i, [&, i](const Message& msg) {
      const std::size_t r =
          (msg.type == "bid_share" || msg.type == "bid_partial") ? 0 : 1;
      handle(i, r, msg);
    });
  }
  ctx.simulation.schedule(0.0, [&] { start_round(0); });

  ctx.simulation.run();
  return ctx.finish(Topology::kPrivate);
}

}  // namespace

std::string topology_name(Topology topology) {
  switch (topology) {
    case Topology::kStar:
      return "star";
    case Topology::kBroadcast:
      return "broadcast";
    case Topology::kTree:
      return "tree";
    case Topology::kPrivate:
      return "private";
  }
  LBMV_ASSERT(false, "unknown topology");
  return {};
}

DistributedReport run_distributed_round(Topology topology,
                                        const model::SystemConfig& config,
                                        const model::BidProfile& intents,
                                        const DistOptions& options) {
  LBMV_REQUIRE(
      dynamic_cast<const model::LinearFamily*>(&config.family()) != nullptr,
      "distributed protocols rely on the linear family's closed forms");
  LBMV_REQUIRE(config.size() >= 2, "distributed round needs >= 2 agents");
  LBMV_REQUIRE(options.execution_time > 0.0,
               "execution time must be positive");
  intents.validate(config.size());

  const std::size_t nodes =
      topology == Topology::kStar ? config.size() + 1 : config.size();
  RoundContext ctx(config, intents, options, nodes);
  switch (topology) {
    case Topology::kStar:
      return run_star(ctx);
    case Topology::kBroadcast:
      return run_broadcast(ctx);
    case Topology::kTree:
      return run_tree(ctx);
    case Topology::kPrivate:
      return run_private(ctx);
  }
  LBMV_ASSERT(false, "unknown topology");
  return {};
}

}  // namespace lbmv::dist

#pragma once

/// \file protocols.h
/// Distributed deployments of the load balancing mechanism with
/// verification — the paper's future work ("distributed handling of
/// payments and the agents' privacy") made concrete.
///
/// All four protocols compute *exactly* the centralised mechanism's
/// allocation and payments for the linear family, exploiting that every
/// quantity is a function of two sums:
///   S        = sum_j 1/b_j           (from the bids), and
///   L_actual = sum_j t~_j x_j^2      (from the verified executions),
/// plus values agent i already knows (its own bid and verified cost):
///   x_i     = R (1/b_i) / S,
///   L_{-i}  = R^2 / (S - 1/b_i),
///   P_i     = t~_i x_i^2 + L_{-i} - L_actual.
///
/// | protocol   | topology      | messages    | who computes payments |
/// |------------|---------------|-------------|-----------------------|
/// | star       | coordinator   | 3n          | coordinator (paper §3)|
/// | broadcast  | full mesh     | 2 n(n-1)    | every agent, redundantly (auditable) |
/// | tree       | binary tree   | 4 (n-1)     | each agent, its own   |
/// | private    | full mesh     | 4 n(n-1)    | each agent, its own; bids hidden via additive secret sharing |
///
/// Verification is modelled as an oracle here (the protocols receive the
/// verified execution values after the execution interval); the
/// estimation-from-completions path is exercised by sim::VerifiedProtocol.
/// In the private protocol, no party ever observes another agent's bid or
/// cost — only the ring sums (see private_sum.h).  Note the inherent limit:
/// once jobs flow, relative speeds are observable from the allocation
/// itself; the protocol hides the *declarations*, which is all any
/// protocol can do.

#include <memory>
#include <string>
#include <vector>

#include "lbmv/dist/network.h"
#include "lbmv/model/allocation.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"

namespace lbmv::dist {

/// Outcome and accounting of one distributed round.
struct DistributedReport {
  std::string protocol;
  model::Allocation allocation;
  std::vector<double> payments;
  std::vector<double> utilities;  ///< payment - verified own cost
  double actual_latency = 0.0;    ///< L at the verified execution values
  std::size_t messages = 0;
  std::size_t doubles_transferred = 0;
  double completion_time = 0.0;   ///< simulated seconds including execution
};

/// Shared tunables.
struct DistOptions {
  Network::Options network;      ///< delay model
  double execution_time = 10.0;  ///< simulated seconds the jobs run
};

/// Which deployment to run.
enum class Topology {
  kStar,       ///< the paper's centralised protocol (coordinator node)
  kBroadcast,  ///< full-mesh, everyone computes every payment
  kTree,       ///< binary-tree aggregation, O(n) messages, O(log n) depth
  kPrivate,    ///< full-mesh with additive secret sharing of bids/costs
};

[[nodiscard]] std::string topology_name(Topology topology);

/// Run one round of the chosen deployment.  Requires the linear family,
/// n >= 2, and a validated profile; intents.executions are the (oracle-)
/// verified execution values.
[[nodiscard]] DistributedReport run_distributed_round(
    Topology topology, const model::SystemConfig& config,
    const model::BidProfile& intents, const DistOptions& options = {});

}  // namespace lbmv::dist

#include "lbmv/dist/private_sum.h"

#include <cmath>

#include "lbmv/util/error.h"

namespace lbmv::dist {

std::uint64_t FixedPoint::encode(double value) {
  LBMV_REQUIRE(std::isfinite(value), "cannot encode a non-finite value");
  const double scaled = value * kScale;
  LBMV_REQUIRE(std::fabs(scaled) < 4.6e18,  // < 2^62, headroom for sums
               "value out of fixed-point range");
  const auto as_signed = static_cast<std::int64_t>(std::llround(scaled));
  return static_cast<std::uint64_t>(as_signed);
}

double FixedPoint::decode(std::uint64_t encoded) {
  const auto as_signed = static_cast<std::int64_t>(encoded);
  return static_cast<double>(as_signed) / kScale;
}

std::vector<std::uint64_t> make_shares(double value, std::size_t parties,
                                       util::Rng& rng) {
  LBMV_REQUIRE(parties >= 1, "need at least one share");
  std::vector<std::uint64_t> shares(parties);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i + 1 < parties; ++i) {
    // Uniform over the full ring: two 32-bit halves from the engine.
    const std::uint64_t hi = static_cast<std::uint64_t>(
        rng.uniform_int(0, 0xffffffffll));
    const std::uint64_t lo = static_cast<std::uint64_t>(
        rng.uniform_int(0, 0xffffffffll));
    shares[i] = (hi << 32) | lo;
    acc += shares[i];  // wraps mod 2^64 by construction
  }
  shares[parties - 1] = FixedPoint::encode(value) - acc;  // ring inverse
  return shares;
}

std::uint64_t combine_shares(const std::vector<std::uint64_t>& shares) {
  std::uint64_t acc = 0;
  for (std::uint64_t s : shares) acc += s;  // mod 2^64
  return acc;
}

double reconstruct(const std::vector<std::uint64_t>& shares) {
  LBMV_REQUIRE(!shares.empty(), "cannot reconstruct from zero shares");
  return FixedPoint::decode(combine_shares(shares));
}

}  // namespace lbmv::dist

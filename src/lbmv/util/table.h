#pragma once

/// \file table.h
/// Markdown / plain-text table rendering for benchmark and report output.
///
/// Every bench binary that regenerates a paper table or figure emits its
/// series through Table so the rows the paper reports appear verbatim on
/// stdout and can be diffed between runs.

#include <string>
#include <vector>

namespace lbmv::util {

/// Column-aligned table with a header row, rendered as GitHub markdown.
class Table {
 public:
  /// Create a table with the given column headers (at least one).
  explicit Table(std::vector<std::string> headers);

  /// Append a row of pre-formatted cells; must match the header width.
  Table& add_row(std::vector<std::string> cells);

  /// Format a double with \p precision fractional digits (fixed notation).
  [[nodiscard]] static std::string num(double v, int precision = 2);

  /// Format a double as a percentage with sign, e.g. "+17.0%".
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

  /// Render as a markdown table (header, separator, rows).
  [[nodiscard]] std::string to_markdown() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lbmv::util

#include "lbmv/util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace lbmv::util {
namespace {

/// Recursive-descent parser with position tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_whitespace();
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << column
       << ": " << message;
    throw JsonError(os.str());
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text_[pos_]; }
  char take() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_whitespace() {
    while (!eof() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                      text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > 256) fail("nesting too deep");
    JsonValue value = parse_value_inner();
    --depth_;
    return value;
  }

  JsonValue parse_value_inner() {
    skip_whitespace();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = take();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return JsonValue(std::move(object));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    for (;;) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return JsonValue(std::move(array));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Encode as UTF-8 (BMP only; surrogate pairs are rejected to
          // keep the codec simple and lossless for the CLI's use).
          if (code >= 0xd800 && code <= 0xdfff) {
            fail("surrogate pairs are not supported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    double value = 0.0;
    const auto* first = text_.data() + start;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || !std::isfinite(value)) {
      pos_ = start;
      fail("invalid number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_number(double d, std::ostringstream& os) {
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::fabs(d) < 1e15) {
    os << static_cast<long long>(d);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

void dump_value(const JsonValue& value, std::ostringstream& os, int indent,
                int depth) {
  const std::string pad =
      indent < 0 ? "" : std::string(static_cast<std::size_t>(indent * depth),
                                    ' ');
  const std::string child_pad =
      indent < 0 ? ""
                 : std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ');
  const char* newline = indent < 0 ? "" : "\n";
  switch (value.type()) {
    case JsonValue::Type::kNull:
      os << "null";
      return;
    case JsonValue::Type::kBool:
      os << (value.as_bool() ? "true" : "false");
      return;
    case JsonValue::Type::kNumber:
      dump_number(value.as_number(), os);
      return;
    case JsonValue::Type::kString:
      dump_string(value.as_string(), os);
      return;
    case JsonValue::Type::kArray: {
      const auto& array = value.as_array();
      if (array.empty()) {
        os << "[]";
        return;
      }
      os << '[' << newline;
      for (std::size_t i = 0; i < array.size(); ++i) {
        os << child_pad;
        dump_value(array[i], os, indent, depth + 1);
        if (i + 1 < array.size()) os << ',';
        os << newline;
      }
      os << pad << ']';
      return;
    }
    case JsonValue::Type::kObject: {
      const auto& object = value.as_object();
      if (object.empty()) {
        os << "{}";
        return;
      }
      os << '{' << newline;
      std::size_t i = 0;
      for (const auto& [key, member] : object) {
        os << child_pad;
        dump_string(key, os);
        os << (indent < 0 ? ":" : ": ");
        dump_value(member, os, indent, depth + 1);
        if (++i < object.size()) os << ',';
        os << newline;
      }
      os << pad << '}';
      return;
    }
  }
}

}  // namespace

JsonValue::Type JsonValue::type() const {
  switch (value_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kNumber;
    case 3: return Type::kString;
    case 4: return Type::kArray;
    default: return Type::kObject;
  }
}

bool JsonValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) return *b;
  throw JsonError("value is not a boolean");
}

double JsonValue::as_number() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  throw JsonError("value is not a number");
}

const std::string& JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  throw JsonError("value is not a string");
}

const JsonValue::Array& JsonValue::as_array() const {
  if (const auto* a = std::get_if<Array>(&value_)) return *a;
  throw JsonError("value is not an array");
}

const JsonValue::Object& JsonValue::as_object() const {
  if (const auto* o = std::get_if<Object>(&value_)) return *o;
  throw JsonError("value is not an object");
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) throw JsonError("missing key: " + key);
  return it->second;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& array = as_array();
  if (index >= array.size()) throw JsonError("array index out of range");
  return array[index];
}

bool JsonValue::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  if (!contains(key)) return fallback;
  return at(key).as_number();
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  dump_value(*this, os, indent, 0);
  return os.str();
}

}  // namespace lbmv::util

#pragma once

/// \file simd.h
/// Portable 4-lane double vectors for the batched mechanism kernels.
///
/// The hot reductions of one mechanism round — S = sum 1/b_j, the actual and
/// reported latencies sum e_j x_j^2 / sum b_j x_j^2, and the leave-one-out
/// plane R^2 / (S - 1/b_i) — are all elementwise arithmetic plus ordered
/// sums over contiguous planes (DESIGN.md §12).  This header gives those
/// kernels one vector type with two interchangeable backends:
///
///   * AVX2 (`LBMV_SIMD=1`, selected at configure time via the LBMV_SIMD
///     CMake option, which also adds -mavx2): DVec wraps __m256d;
///   * scalar fallback (`LBMV_SIMD=0`): DVec is a plain double[4] with the
///     same per-lane operations.
///
/// The two backends are *bit-identical*, not merely close: every operation
/// here is a lane-wise IEEE-754 add/sub/mul/div or compare, which AVX2
/// defines to be exactly the scalar operation applied per lane, and the
/// horizontal sum fixes one association, (l0 + l1) + (l2 + l3).  No FMA is
/// used anywhere (contraction would make results depend on the backend and
/// on compiler flags).  Kernels built on these primitives therefore produce
/// the same bits under LBMV_SIMD=ON and =OFF; only throughput differs.
/// Differential tests exploit this: the ulp contract of the vectorized round
/// engine is stated against the scalar *kernels* (a different association),
/// not against the fallback backend.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#ifndef LBMV_SIMD
#define LBMV_SIMD 0
#endif

#if LBMV_SIMD
#include <immintrin.h>
#endif

namespace lbmv::util::simd {

/// Lane count is fixed at 4 for both backends so blocking, tail handling and
/// reduction trees — and therefore results — do not depend on the backend.
inline constexpr std::size_t kLanes = 4;

/// Whether the AVX2 backend was compiled in (LBMV_SIMD CMake option).
inline constexpr bool kAvx2 = static_cast<bool>(LBMV_SIMD);

/// Human-readable backend tag for obs / bench output.
[[nodiscard]] inline const char* backend_name() {
  return kAvx2 ? "avx2" : "scalar-4lane";
}

#if LBMV_SIMD

struct DVec {
  __m256d v;
};

[[nodiscard]] inline DVec load(const double* p) {
  return {_mm256_loadu_pd(p)};
}
inline void store(double* p, DVec a) { _mm256_storeu_pd(p, a.v); }
[[nodiscard]] inline DVec set1(double x) { return {_mm256_set1_pd(x)}; }
[[nodiscard]] inline DVec zero() { return {_mm256_setzero_pd()}; }
[[nodiscard]] inline DVec add(DVec a, DVec b) {
  return {_mm256_add_pd(a.v, b.v)};
}
[[nodiscard]] inline DVec sub(DVec a, DVec b) {
  return {_mm256_sub_pd(a.v, b.v)};
}
[[nodiscard]] inline DVec mul(DVec a, DVec b) {
  return {_mm256_mul_pd(a.v, b.v)};
}
[[nodiscard]] inline DVec div(DVec a, DVec b) {
  return {_mm256_div_pd(a.v, b.v)};
}

/// Lane-wise IEEE negation (a sign flip: -x, which differs from 0.0 - x at
/// signed zeros, and the scalar kernels use the former).
[[nodiscard]] inline DVec neg(DVec a) {
  return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
}

/// Lane-wise square root.  VSQRTPD and std::sqrt are both IEEE-754 correctly
/// rounded, so the backends stay bit-identical.
[[nodiscard]] inline DVec sqrt(DVec a) { return {_mm256_sqrt_pd(a.v)}; }

/// True when every lane satisfies a > b (ordered: NaN lanes fail).
[[nodiscard]] inline bool all_greater(DVec a, DVec b) {
  const __m256d m = _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ);
  return _mm256_movemask_pd(m) == 0xF;
}

/// Lane mask: all-ones where a > b holds (ordered — NaN lanes come back
/// clear), zero elsewhere.  Hot loops AND-accumulate these and test once
/// per block (mask_all_true) instead of branching per step, which keeps
/// validity tracking to one uop per check per iteration.
[[nodiscard]] inline DVec mask_greater(DVec a, DVec b) {
  return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
}

/// Bitwise AND of two lane masks.
[[nodiscard]] inline DVec mask_and(DVec a, DVec b) {
  return {_mm256_and_pd(a.v, b.v)};
}

/// The identity for mask_and: every lane all-ones.
[[nodiscard]] inline DVec mask_all() {
  return {_mm256_castsi256_pd(_mm256_set1_epi64x(-1))};
}

/// True when every lane's sign bit survives — for AND-accumulated compare
/// masks, "every compare held" (movemask semantics: sign bits only).
[[nodiscard]] inline bool mask_all_true(DVec m) {
  return _mm256_movemask_pd(m.v) == 0xF;
}

/// Lane-wise maximum with the scalar rule `a > b ? a : b` (matches
/// _mm256_max_pd: on a NaN lane the second operand is returned, and
/// max(+0, -0) follows the operand order, not IEEE maxNum).
[[nodiscard]] inline DVec max(DVec a, DVec b) {
  // MAXPD returns the second operand on NaN lanes and on ties (including
  // +0/-0), which is exactly the ternary above lane-wise.
  return {_mm256_max_pd(a.v, b.v)};
}

/// Lane-wise blend by mask sign bit: lane i of the result is a[i] where
/// m[i]'s sign bit is set (compare held), b[i] elsewhere.  With masks from
/// mask_greater this is the vector form of `m ? a : b`.
[[nodiscard]] inline DVec select(DVec m, DVec a, DVec b) {
  return {_mm256_blendv_pd(b.v, a.v, m.v)};
}

[[nodiscard]] inline double lane(DVec a, std::size_t i) {
  alignas(32) double tmp[kLanes];
  _mm256_store_pd(tmp, a.v);
  return tmp[i];
}

/// Interleaving scatter store: six field vectors become four consecutive
/// 6-double records, dst[6*j + k] = lane j of field k.  This is the
/// transpose an AoS publish needs — four 6-field rows are 24 contiguous
/// doubles — expressed as four unaligned 4-wide stores (fields 0..3 of each
/// row, via a 4x4 transpose) plus four 2-wide stores (fields 4..5) instead
/// of 24 scalar ones.  Pure data movement, so both backends place identical
/// bits.
inline void store_records6(double* dst, DVec f0, DVec f1, DVec f2, DVec f3,
                           DVec f4, DVec f5) {
  const __m256d t0 = _mm256_unpacklo_pd(f0.v, f1.v);  // f0[0] f1[0] f0[2] f1[2]
  const __m256d t1 = _mm256_unpackhi_pd(f0.v, f1.v);  // f0[1] f1[1] f0[3] f1[3]
  const __m256d t2 = _mm256_unpacklo_pd(f2.v, f3.v);
  const __m256d t3 = _mm256_unpackhi_pd(f2.v, f3.v);
  _mm256_storeu_pd(dst + 0, _mm256_permute2f128_pd(t0, t2, 0x20));
  _mm256_storeu_pd(dst + 6, _mm256_permute2f128_pd(t1, t3, 0x20));
  _mm256_storeu_pd(dst + 12, _mm256_permute2f128_pd(t0, t2, 0x31));
  _mm256_storeu_pd(dst + 18, _mm256_permute2f128_pd(t1, t3, 0x31));
  const __m256d u0 = _mm256_unpacklo_pd(f4.v, f5.v);  // f4[0] f5[0] f4[2] f5[2]
  const __m256d u1 = _mm256_unpackhi_pd(f4.v, f5.v);  // f4[1] f5[1] f4[3] f5[3]
  _mm_storeu_pd(dst + 4, _mm256_castpd256_pd128(u0));
  _mm_storeu_pd(dst + 10, _mm256_castpd256_pd128(u1));
  _mm_storeu_pd(dst + 16, _mm256_extractf128_pd(u0, 1));
  _mm_storeu_pd(dst + 22, _mm256_extractf128_pd(u1, 1));
}

#else  // scalar fallback: identical per-lane IEEE arithmetic

struct DVec {
  double v[kLanes];
};

[[nodiscard]] inline DVec load(const double* p) {
  return {{p[0], p[1], p[2], p[3]}};
}
inline void store(double* p, DVec a) {
  for (std::size_t i = 0; i < kLanes; ++i) p[i] = a.v[i];
}
[[nodiscard]] inline DVec set1(double x) { return {{x, x, x, x}}; }
[[nodiscard]] inline DVec zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
[[nodiscard]] inline DVec add(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
[[nodiscard]] inline DVec sub(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
[[nodiscard]] inline DVec mul(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
[[nodiscard]] inline DVec div(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] / b.v[i];
  return r;
}

/// Lane-wise IEEE negation (a sign flip: -x, which differs from 0.0 - x at
/// signed zeros, and the scalar kernels use the former).
[[nodiscard]] inline DVec neg(DVec a) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = -a.v[i];
  return r;
}

/// Lane-wise square root.  VSQRTPD and std::sqrt are both IEEE-754 correctly
/// rounded, so the backends stay bit-identical.
[[nodiscard]] inline DVec sqrt(DVec a) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = std::sqrt(a.v[i]);
  return r;
}

[[nodiscard]] inline bool all_greater(DVec a, DVec b) {
  bool ok = true;
  for (std::size_t i = 0; i < kLanes; ++i) ok = ok && (a.v[i] > b.v[i]);
  return ok;
}

/// Lane mask: all-ones where a > b holds (ordered — NaN lanes come back
/// clear), zero elsewhere.  Bit patterns, not values: lanes are reinterpreted
/// as uint64 so the emulation matches AVX2's compare-mask bits exactly.
[[nodiscard]] inline DVec mask_greater(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = std::bit_cast<double>(a.v[i] > b.v[i] ? ~std::uint64_t{0}
                                                   : std::uint64_t{0});
  }
  return r;
}

/// Bitwise AND of two lane masks.
[[nodiscard]] inline DVec mask_and(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = std::bit_cast<double>(std::bit_cast<std::uint64_t>(a.v[i]) &
                                   std::bit_cast<std::uint64_t>(b.v[i]));
  }
  return r;
}

/// The identity for mask_and: every lane all-ones.
[[nodiscard]] inline DVec mask_all() {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = std::bit_cast<double>(~std::uint64_t{0});
  }
  return r;
}

/// True when every lane's sign bit survives — for AND-accumulated compare
/// masks, "every compare held" (movemask semantics: sign bits only).
[[nodiscard]] inline bool mask_all_true(DVec m) {
  bool ok = true;
  for (std::size_t i = 0; i < kLanes; ++i) {
    ok = ok && (std::bit_cast<std::uint64_t>(m.v[i]) >> 63) != 0;
  }
  return ok;
}

/// Lane-wise maximum with the scalar rule `a > b ? a : b` (matches
/// _mm256_max_pd: on a NaN lane the second operand is returned, and
/// max(+0, -0) follows the operand order, not IEEE maxNum).
[[nodiscard]] inline DVec max(DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  }
  return r;
}

/// Lane-wise blend by mask sign bit: lane i of the result is a[i] where
/// m[i]'s sign bit is set (compare held), b[i] elsewhere.  With masks from
/// mask_greater this is the vector form of `m ? a : b`.
[[nodiscard]] inline DVec select(DVec m, DVec a, DVec b) {
  DVec r;
  for (std::size_t i = 0; i < kLanes; ++i) {
    r.v[i] =
        (std::bit_cast<std::uint64_t>(m.v[i]) >> 63) != 0 ? a.v[i] : b.v[i];
  }
  return r;
}

[[nodiscard]] inline double lane(DVec a, std::size_t i) { return a.v[i]; }

/// Interleaving scatter store: six field vectors become four consecutive
/// 6-double records, dst[6*j + k] = lane j of field k.  Pure data movement,
/// same bits as the AVX2 backend's transposed stores.
inline void store_records6(double* dst, DVec f0, DVec f1, DVec f2, DVec f3,
                           DVec f4, DVec f5) {
  const DVec* f[6] = {&f0, &f1, &f2, &f3, &f4, &f5};
  for (std::size_t j = 0; j < kLanes; ++j) {
    for (std::size_t k = 0; k < 6; ++k) dst[6 * j + k] = f[k]->v[j];
  }
}

#endif

/// Horizontal sum with one fixed association, (l0 + l1) + (l2 + l3), so the
/// reduction tree is part of the kernel contract rather than backend whim.
[[nodiscard]] inline double hsum(DVec a) {
  return (lane(a, 0) + lane(a, 1)) + (lane(a, 2) + lane(a, 3));
}

}  // namespace lbmv::util::simd

#include "lbmv/util/roots.h"

#include <cmath>

#include "lbmv/util/error.h"

namespace lbmv::util {

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  double xtol, double ftol, int max_iter) {
  LBMV_REQUIRE(lo <= hi, "bisect requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  RootResult r;
  if (flo == 0.0) {
    r = {lo, 0.0, 0, true};
    return r;
  }
  if (fhi == 0.0) {
    r = {hi, 0.0, 0, true};
    return r;
  }
  LBMV_REQUIRE(std::signbit(flo) != std::signbit(fhi),
               "bisect requires f(lo) and f(hi) with opposite signs");
  for (int it = 0; it < max_iter; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    r.iterations = it + 1;
    if (fmid == 0.0 || std::fabs(fmid) <= ftol || (hi - lo) <= xtol) {
      r.x = mid;
      r.fx = fmid;
      r.converged = true;
      return r;
    }
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  r.x = 0.5 * (lo + hi);
  r.fx = f(r.x);
  r.converged = (hi - lo) <= xtol;
  return r;
}

RootResult newton_bisect(const std::function<double(double)>& f,
                         const std::function<double(double)>& df, double lo,
                         double hi, double xtol, int max_iter) {
  LBMV_REQUIRE(lo <= hi, "newton_bisect requires lo <= hi");
  double flo = f(lo);
  double fhi = f(hi);
  RootResult r;
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  LBMV_REQUIRE(std::signbit(flo) != std::signbit(fhi),
               "newton_bisect requires a bracketing interval");
  double x = 0.5 * (lo + hi);
  double prev_x = lo - 1.0;  // sentinel outside the bracket
  for (int it = 0; it < max_iter; ++it) {
    const double fx = f(x);
    r.iterations = it + 1;
    // Converged when the residual vanishes, the bracket collapses, or the
    // iterates stall (Newton can converge to a multiple root long before
    // the bracket does — e.g. x^3 at 0, where one bracket end never moves).
    if (fx == 0.0 || (hi - lo) <= xtol || std::fabs(x - prev_x) <= xtol) {
      r.x = x;
      r.fx = fx;
      r.converged = true;
      return r;
    }
    prev_x = x;
    // Shrink the bracket around the sign change.
    if (std::signbit(fx) == std::signbit(flo)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
    }
    const double d = df(x);
    double next = (d != 0.0) ? x - fx / d : lo - 1.0;  // force fallback if d==0
    if (!(next > lo && next < hi)) {
      next = 0.5 * (lo + hi);  // bisection fallback
    }
    x = next;
  }
  r.x = x;
  r.fx = f(x);
  r.converged = (hi - lo) <= xtol;
  return r;
}

MinResult golden_section_min(const std::function<double(double)>& f, double lo,
                             double hi, double xtol, int max_iter) {
  LBMV_REQUIRE(lo <= hi, "golden_section_min requires lo <= hi");
  constexpr double kInvPhi = 0.6180339887498949;   // 1/phi
  constexpr double kInvPhi2 = 0.3819660112501051;  // 1/phi^2
  double a = lo, b = hi;
  double h = b - a;
  MinResult r;
  if (h <= xtol) {
    r.x = 0.5 * (a + b);
    r.fx = f(r.x);
    r.converged = true;
    return r;
  }
  double c = a + kInvPhi2 * h;
  double d = a + kInvPhi * h;
  double fc = f(c);
  double fd = f(d);
  for (int it = 0; it < max_iter && h > xtol; ++it) {
    r.iterations = it + 1;
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      h = b - a;
      c = a + kInvPhi2 * h;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      h = b - a;
      d = a + kInvPhi * h;
      fd = f(d);
    }
  }
  r.x = (fc < fd) ? c : d;
  r.fx = (fc < fd) ? fc : fd;
  r.converged = h <= xtol;
  return r;
}

MinResult minimize_scan(const std::function<double(double)>& f, double lo,
                        double hi, int grid, double xtol) {
  LBMV_REQUIRE(lo <= hi, "minimize_scan requires lo <= hi");
  LBMV_REQUIRE(grid >= 2, "minimize_scan requires at least two grid points");
  const double step = (hi - lo) / static_cast<double>(grid - 1);
  double best_x = lo;
  double best_f = f(lo);
  for (int i = 1; i < grid; ++i) {
    const double x = lo + step * static_cast<double>(i);
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  const double a = std::max(lo, best_x - step);
  const double b = std::min(hi, best_x + step);
  MinResult refined = golden_section_min(f, a, b, xtol);
  if (refined.fx <= best_f) return refined;
  return {best_x, best_f, refined.iterations, true};
}

}  // namespace lbmv::util

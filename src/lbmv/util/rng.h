#pragma once

/// \file rng.h
/// Deterministic, stream-splittable random number generation.
///
/// Every stochastic component in lbmv (simulation, strategies, property
/// sweeps) draws from an explicitly seeded Rng so that experiments are
/// reproducible bit-for-bit across runs.  Rng::split derives statistically
/// independent child streams (SplitMix64 over the parent seed and a stream
/// index), which lets parallel sweeps give each task its own generator
/// without sharing state across threads.

#include <cstdint>
#include <random>
#include <vector>

namespace lbmv::util {

/// A seeded pseudo-random generator with convenience distributions.
///
/// Wraps std::mt19937_64.  Copyable (copies continue the same stream
/// independently) and cheap to split.
class Rng {
 public:
  /// Construct from a 64-bit seed.  Equal seeds give equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derive an independent child stream for \p stream_index.
  /// Children with distinct indices are statistically independent of each
  /// other and of the parent.
  [[nodiscard]] Rng split(std::uint64_t stream_index) const;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).  Requires lo < hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given rate (mean 1/rate).  Requires rate > 0.
  [[nodiscard]] double exponential(double rate);

  /// Normal variate.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Gamma variate with the given shape and scale.  Requires both > 0.
  [[nodiscard]] double gamma(double shape, double scale);

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector of non-negative weights with positive sum.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights);

  /// Access the underlying engine (for std:: distributions not wrapped here).
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

  /// The seed this stream was created with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer: a fast, high-quality 64-bit mix used for seed
/// derivation.  Exposed for tests.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

}  // namespace lbmv::util

#include "lbmv/util/rng.h"

#include "lbmv/util/error.h"

namespace lbmv::util {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

Rng Rng::split(std::uint64_t stream_index) const {
  // Mix the parent seed with the stream index through two SplitMix rounds so
  // that adjacent indices land far apart in seed space.
  return Rng(splitmix64(seed_ ^ splitmix64(stream_index + 1)));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  LBMV_REQUIRE(lo < hi, "uniform(lo, hi) requires lo < hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LBMV_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double rate) {
  LBMV_REQUIRE(rate > 0.0, "exponential rate must be positive");
  return std::exponential_distribution<double>(rate)(engine_);
}

double Rng::normal(double mean, double stddev) {
  LBMV_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::gamma(double shape, double scale) {
  LBMV_REQUIRE(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
  return std::gamma_distribution<double>(shape, scale)(engine_);
}

bool Rng::bernoulli(double p) {
  LBMV_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  LBMV_REQUIRE(!weights.empty(), "categorical requires at least one weight");
  double total = 0.0;
  for (double w : weights) {
    LBMV_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  LBMV_REQUIRE(total > 0.0, "categorical weights must have positive sum");
  double u = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // guard against floating-point round-off
}

}  // namespace lbmv::util

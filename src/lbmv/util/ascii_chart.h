#pragma once

/// \file ascii_chart.h
/// Terminal rendering of the paper's figures.
///
/// The original paper presents Figures 1–6 as plots.  Offline we render the
/// same series as ASCII bar charts / line charts so the *shape* of each
/// figure (who wins, by what factor, where crossovers fall) is visible
/// directly in the bench output, alongside the exact numbers in tables/CSV.

#include <string>
#include <vector>

namespace lbmv::util {

/// One labelled value in a bar chart.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Horizontal bar chart.  Bars are scaled to \p width characters at the
/// maximum |value|; negative values extend left of the axis.
[[nodiscard]] std::string bar_chart(const std::string& title,
                                    const std::vector<Bar>& bars,
                                    int width = 50);

/// Grouped horizontal bar chart: for each label, one bar per series
/// (e.g. payment vs utility per computer).  series_names sizes the group.
struct BarGroup {
  std::string label;
  std::vector<double> values;  ///< one per series
};
[[nodiscard]] std::string grouped_bar_chart(
    const std::string& title, const std::vector<std::string>& series_names,
    const std::vector<BarGroup>& groups, int width = 50);

/// Simple scatter/line chart of y against x on a character grid.
/// Multiple series are drawn with distinct glyphs and a legend.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};
[[nodiscard]] std::string line_chart(const std::string& title,
                                     const std::vector<Series>& series,
                                     int width = 72, int height = 20);

/// One-line sparkline: each value becomes one glyph from a 8-level ASCII
/// ramp, scaled to [min, max] of \p values (all-equal series render flat
/// mid-ramp).  Empty input yields an empty string.  Used by the `lbmv obs
/// --watch` delta panels.
[[nodiscard]] std::string sparkline(const std::vector<double>& values);

}  // namespace lbmv::util

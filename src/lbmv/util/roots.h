#pragma once

/// \file roots.h
/// One-dimensional root finding and scalar minimisation.
///
/// The allocation solvers (lbmv/alloc) equalise marginal costs by searching
/// for a Lagrange multiplier; the strategy layer (lbmv/strategy) maximises
/// agent utility over a bid interval.  Both reduce to the routines here.

#include <functional>

namespace lbmv::util {

/// Result of a root search.
struct RootResult {
  double x = 0.0;          ///< location of the root
  double fx = 0.0;         ///< residual f(x)
  int iterations = 0;      ///< iterations consumed
  bool converged = false;  ///< whether the tolerance was met
};

/// Find x in [lo, hi] with f(x) = 0 by bisection.
///
/// Requires f(lo) and f(hi) to bracket the root (opposite signs, or one of
/// them already zero).  Converges to |hi-lo| <= xtol or |f| <= ftol.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double lo, double hi, double xtol = 1e-12,
                                double ftol = 0.0, int max_iter = 200);

/// Newton's method with bisection fallback, bracketed in [lo, hi].
///
/// Takes f and its derivative.  Whenever a Newton step leaves the bracket or
/// fails to shrink it, a bisection step is taken instead, so convergence is
/// guaranteed for a bracketing interval.
[[nodiscard]] RootResult newton_bisect(
    const std::function<double(double)>& f,
    const std::function<double(double)>& df, double lo, double hi,
    double xtol = 1e-12, int max_iter = 200);

/// Result of a scalar minimisation.
struct MinResult {
  double x = 0.0;          ///< location of the minimum
  double fx = 0.0;         ///< value at the minimum
  int iterations = 0;
  bool converged = false;
};

/// Golden-section search for the minimum of a unimodal f on [lo, hi].
///
/// For non-unimodal f this converges to *a* local minimum inside the
/// interval; callers that need the global optimum should seed with a coarse
/// scan (see minimize_scan).
[[nodiscard]] MinResult golden_section_min(
    const std::function<double(double)>& f, double lo, double hi,
    double xtol = 1e-10, int max_iter = 400);

/// Global-ish scalar minimisation: coarse grid scan with \p grid points
/// followed by golden-section refinement around the best cell.
[[nodiscard]] MinResult minimize_scan(const std::function<double(double)>& f,
                                      double lo, double hi, int grid = 64,
                                      double xtol = 1e-10);

}  // namespace lbmv::util

#include "lbmv/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lbmv/util/error.h"

namespace lbmv::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }
double RunningStats::sum() const { return sum_; }

double RunningStats::ci95_halfwidth() const { return 1.959964 * stderr_mean(); }

double mean(std::span<const double> xs) {
  LBMV_REQUIRE(!xs.empty(), "mean of empty range");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  LBMV_REQUIRE(xs.size() >= 2, "variance requires at least two samples");
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double percentile(std::span<const double> xs, double p) {
  LBMV_REQUIRE(!xs.empty(), "percentile of empty range");
  LBMV_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  LBMV_REQUIRE(xs.size() == ys.size(), "fit_line requires equal-length inputs");
  LBMV_REQUIRE(xs.size() >= 2, "fit_line requires at least two points");
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LBMV_REQUIRE(denom != 0.0, "fit_line requires at least two distinct x");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;  // all y equal: the fit is exact by construction
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

double rel_diff(double a, double b, double floor) {
  const double scale = std::max({std::fabs(a), std::fabs(b), floor});
  return std::fabs(a - b) / scale;
}

}  // namespace lbmv::util

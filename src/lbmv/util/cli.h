#pragma once

/// \file cli.h
/// Tiny declarative command-line argument parser for the lbmv tools.
///
/// Supports `--flag`, `--option value`, `--option=value` and positional
/// arguments, with typed accessors and generated help text.  Unknown
/// options are an error (typos should not pass silently).

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace lbmv::util {

/// Thrown when the command line is malformed; the message is user-facing.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative option/flag parser.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare a boolean flag `--name`.
  ArgParser& add_flag(const std::string& name, const std::string& help);

  /// Declare a valued option `--name <value>` with a default.
  ArgParser& add_option(const std::string& name, const std::string& help,
                        const std::string& default_value);

  /// Parse; throws UsageError on unknown options, missing values, or
  /// malformed numbers requested later via the typed getters.
  void parse(const std::vector<std::string>& args);
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] const std::string& option(const std::string& name) const;
  [[nodiscard]] double option_as_double(const std::string& name) const;
  [[nodiscard]] long option_as_long(const std::string& name) const;
  /// Comma-separated list of doubles, e.g. --types 1,2,5,10.
  [[nodiscard]] std::vector<double> option_as_doubles(
      const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  [[nodiscard]] std::string help() const;

 private:
  struct Flag {
    std::string help;
    bool set = false;
  };
  struct Option {
    std::string help;
    std::string value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positionals_;
};

/// Parse a comma-separated list of doubles; throws UsageError on junk.
[[nodiscard]] std::vector<double> parse_double_list(const std::string& text);

}  // namespace lbmv::util

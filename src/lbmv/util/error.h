#pragma once

/// \file error.h
/// Precondition / invariant checking for the lbmv library.
///
/// All public entry points validate their arguments with LBMV_REQUIRE and
/// throw lbmv::util::PreconditionError on violation.  Internal invariants
/// that indicate a library bug use LBMV_ASSERT and throw LogicError; these
/// are kept enabled in release builds because every computation in this
/// library is cheap relative to the cost of acting on a wrong allocation
/// or payment.

#include <sstream>
#include <stdexcept>
#include <string>

namespace lbmv::util {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (a bug in the library).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "lbmv precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_logic(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "lbmv internal invariant failed: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}

}  // namespace detail
}  // namespace lbmv::util

/// Validate a caller-supplied precondition; throws PreconditionError.
#define LBMV_REQUIRE(expr, msg)                                             \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::lbmv::util::detail::throw_precondition(#expr, __FILE__, __LINE__,  \
                                               (msg));                     \
    }                                                                      \
  } while (false)

/// Validate an internal invariant; throws LogicError.
#define LBMV_ASSERT(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::lbmv::util::detail::throw_logic(#expr, __FILE__, __LINE__,      \
                                        (msg));                         \
    }                                                                   \
  } while (false)

#include "lbmv/util/thread_pool.h"

#include <algorithm>

#include "lbmv/util/error.h"

namespace lbmv::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    LBMV_REQUIRE(!stop_, "submit on a stopped ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t max_chunks = pool.thread_count() * 4;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, max_chunks));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(ThreadPool::global(), begin, end, body);
}

}  // namespace lbmv::util

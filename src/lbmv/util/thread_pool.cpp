#include "lbmv/util/thread_pool.h"

#include <algorithm>

#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    LBMV_REQUIRE(!stop_, "submit on a stopped ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (obs::enabled()) obs::PoolProbes::get().tasks.inc();
    task();  // exceptions are captured in the packaged_task's future
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (obs::enabled()) obs::PoolProbes::get().parallel_fors.inc();
  if (grain == 0) {
    // Automatic grain: at most 4 chunks per worker for load balancing.
    const std::size_t max_chunks = std::max<std::size_t>(1, thread_count() * 4);
    grain = (n + max_chunks - 1) / max_chunks;
  }
  if (grain >= n) {  // single chunk: run inline, no pool round-trip
    if (obs::enabled()) {
      obs::PoolProbes::get().chunk_size.record(static_cast<double>(n));
    }
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + grain);
    if (obs::enabled()) {
      obs::PoolProbes::get().chunk_size.record(static_cast<double>(hi - lo));
    }
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  pool.parallel_for(begin, end, body);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(begin, end, body);
}

}  // namespace lbmv::util

#include "lbmv/util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "lbmv/util/error.h"

namespace lbmv::util {
namespace {

constexpr const char* kGlyphs = "*o+x#@%&";

std::string format_value(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v;
  return os.str();
}

std::size_t max_label_width(const std::vector<Bar>& bars) {
  std::size_t w = 0;
  for (const auto& b : bars) w = std::max(w, b.label.size());
  return w;
}

}  // namespace

std::string bar_chart(const std::string& title, const std::vector<Bar>& bars,
                      int width) {
  LBMV_REQUIRE(width >= 4, "bar_chart width too small");
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  if (bars.empty()) return os.str();

  double max_abs = 0.0;
  bool any_negative = false;
  for (const auto& b : bars) {
    max_abs = std::max(max_abs, std::fabs(b.value));
    any_negative |= b.value < 0.0;
  }
  if (max_abs == 0.0) max_abs = 1.0;
  const std::size_t label_w = max_label_width(bars);
  // With negatives, split the width into a left (negative) and right
  // (positive) half around a common axis.
  const int half = any_negative ? width / 2 : 0;

  for (const auto& b : bars) {
    const int len = static_cast<int>(
        std::lround(std::fabs(b.value) / max_abs *
                    static_cast<double>(any_negative ? half : width)));
    os << "  " << b.label << std::string(label_w - b.label.size(), ' ')
       << " |";
    if (any_negative) {
      if (b.value < 0.0) {
        os << std::string(half - len, ' ') << std::string(len, '<') << '|';
      } else {
        os << std::string(half, ' ') << '|' << std::string(len, '#');
      }
    } else {
      os << std::string(len, '#');
    }
    os << ' ' << format_value(b.value) << '\n';
  }
  return os.str();
}

std::string grouped_bar_chart(const std::string& title,
                              const std::vector<std::string>& series_names,
                              const std::vector<BarGroup>& groups, int width) {
  LBMV_REQUIRE(!series_names.empty(), "grouped_bar_chart needs series names");
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  os << "  legend:";
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    os << "  [" << kGlyphs[s % 8] << "] " << series_names[s];
  }
  os << '\n';

  double max_abs = 0.0;
  bool any_negative = false;
  std::size_t label_w = 0;
  for (const auto& g : groups) {
    LBMV_REQUIRE(g.values.size() == series_names.size(),
                 "group value count must match series count");
    label_w = std::max(label_w, g.label.size());
    for (double v : g.values) {
      max_abs = std::max(max_abs, std::fabs(v));
      any_negative |= v < 0.0;
    }
  }
  if (max_abs == 0.0) max_abs = 1.0;
  const int half = any_negative ? width / 2 : 0;

  for (const auto& g : groups) {
    for (std::size_t s = 0; s < g.values.size(); ++s) {
      const double v = g.values[s];
      const int len = static_cast<int>(
          std::lround(std::fabs(v) / max_abs *
                      static_cast<double>(any_negative ? half : width)));
      const char glyph = kGlyphs[s % 8];
      const std::string label = (s == 0) ? g.label : std::string();
      os << "  " << label << std::string(label_w - label.size(), ' ') << " |";
      if (any_negative) {
        if (v < 0.0) {
          os << std::string(half - len, ' ') << std::string(len, glyph) << '|';
        } else {
          os << std::string(half, ' ') << '|' << std::string(len, glyph);
        }
      } else {
        os << std::string(len, glyph);
      }
      os << ' ' << format_value(v) << '\n';
    }
  }
  return os.str();
}

std::string line_chart(const std::string& title,
                       const std::vector<Series>& series, int width,
                       int height) {
  LBMV_REQUIRE(width >= 8 && height >= 4, "line_chart grid too small");
  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  double xmin = 0, xmax = 0, ymin = 0, ymax = 0;
  bool first = true;
  for (const auto& s : series) {
    LBMV_REQUIRE(s.xs.size() == s.ys.size(),
                 "line_chart series must have equal-length xs and ys");
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (first) {
        xmin = xmax = s.xs[i];
        ymin = ymax = s.ys[i];
        first = false;
      } else {
        xmin = std::min(xmin, s.xs[i]);
        xmax = std::max(xmax, s.xs[i]);
        ymin = std::min(ymin, s.ys[i]);
        ymax = std::max(ymax, s.ys[i]);
      }
    }
  }
  if (first) return os.str();  // no points
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char glyph = kGlyphs[s % 8];
    for (std::size_t i = 0; i < series[s].xs.size(); ++i) {
      const double fx = (series[s].xs[i] - xmin) / (xmax - xmin);
      const double fy = (series[s].ys[i] - ymin) / (ymax - ymin);
      auto col = static_cast<std::size_t>(
          std::lround(fx * static_cast<double>(width - 1)));
      auto row = static_cast<std::size_t>(
          std::lround((1.0 - fy) * static_cast<double>(height - 1)));
      grid[row][col] = glyph;
    }
  }
  os << "  y_max = " << format_value(ymax) << '\n';
  for (const auto& row : grid) os << "  |" << row << '\n';
  os << "  +" << std::string(static_cast<std::size_t>(width), '-') << '\n';
  os << "  y_min = " << format_value(ymin) << "   x: ["
     << format_value(xmin) << ", " << format_value(xmax) << "]\n";
  os << "  legend:";
  for (std::size_t s = 0; s < series.size(); ++s) {
    os << "  [" << kGlyphs[s % 8] << "] " << series[s].name;
  }
  os << '\n';
  return os.str();
}

std::string sparkline(const std::vector<double>& values) {
  static constexpr char kRamp[] = "_.-:=+*#";  // 8 levels, low to high
  constexpr int kLevels = 8;
  if (values.empty()) return {};
  double lo = values.front();
  double hi = lo;
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    int level = kLevels / 2;  // flat series sit mid-ramp
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * (kLevels - 1) + 0.5);
      level = std::clamp(level, 0, kLevels - 1);
    }
    out.push_back(kRamp[level]);
  }
  return out;
}

}  // namespace lbmv::util

#pragma once

/// \file csv.h
/// Minimal CSV emission for benchmark series.
///
/// Bench binaries write one CSV per figure next to their stdout report so the
/// series can be re-plotted outside this repository (the paper's figures were
/// plots; offline we ship the data instead — see DESIGN.md substitutions).

#include <ostream>
#include <string>
#include <vector>

namespace lbmv::util {

/// Streaming CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Write to \p out (not owned; must outlive the writer).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write one row of raw string cells (quoted as needed).
  void write_row(const std::vector<std::string>& cells);

  /// Write one row of numeric cells with full double precision.
  void write_numeric_row(const std::vector<double>& cells);

  /// Quote a single cell per RFC 4180 (only when it contains , " or newline).
  [[nodiscard]] static std::string quote(const std::string& cell);

 private:
  std::ostream* out_;
};

}  // namespace lbmv::util

#pragma once

/// \file integrate.h
/// Numeric quadrature used to cross-check closed-form mechanism payments.
///
/// The Archer–Tardos payment rule involves the integral of the work curve
/// from the agent's bid to infinity; lbmv evaluates it in closed form for the
/// PR allocation and uses these routines to verify that closed form in tests.

#include <functional>

namespace lbmv::util {

/// Adaptive Simpson quadrature of f on the finite interval [a, b].
///
/// \p tol is an absolute error target.  \p max_depth bounds recursion.
[[nodiscard]] double integrate(const std::function<double(double)>& f,
                               double a, double b, double tol = 1e-10,
                               int max_depth = 40);

/// Integral of f on [a, +inf), for integrands decaying at least as 1/x^2.
///
/// Uses the substitution x = a + t/(1-t), t in [0, 1), which maps the tail to
/// a finite interval, then adaptive Simpson.
[[nodiscard]] double integrate_to_infinity(
    const std::function<double(double)>& f, double a, double tol = 1e-10);

}  // namespace lbmv::util

#include "lbmv/util/cli.h"

#include <charconv>
#include <sstream>

namespace lbmv::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {
  add_flag("help", "show this help");
}

ArgParser& ArgParser::add_flag(const std::string& name,
                               const std::string& help) {
  flags_[name] = Flag{help, false};
  return *this;
}

ArgParser& ArgParser::add_option(const std::string& name,
                                 const std::string& help,
                                 const std::string& default_value) {
  options_[name] = Option{help, default_value};
  return *this;
}

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    if (const auto flag = flags_.find(name); flag != flags_.end()) {
      if (has_inline) {
        throw UsageError("flag --" + name + " does not take a value");
      }
      flag->second.set = true;
      continue;
    }
    const auto option = options_.find(name);
    if (option == options_.end()) {
      throw UsageError("unknown option --" + name + " (see --help)");
    }
    if (has_inline) {
      option->second.value = inline_value;
    } else {
      if (i + 1 >= args.size()) {
        throw UsageError("option --" + name + " requires a value");
      }
      option->second.value = args[++i];
    }
  }
}

void ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw UsageError("undeclared flag --" + name);
  return it->second.set;
}

const std::string& ArgParser::option(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) throw UsageError("undeclared option --" + name);
  return it->second.value;
}

double ArgParser::option_as_double(const std::string& name) const {
  const std::string& text = option(name);
  double value = 0.0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw UsageError("option --" + name + " expects a number, got '" + text +
                     "'");
  }
  return value;
}

long ArgParser::option_as_long(const std::string& name) const {
  const std::string& text = option(name);
  long value = 0;
  const auto* first = text.data();
  const auto* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    throw UsageError("option --" + name + " expects an integer, got '" +
                     text + "'");
  }
  return value;
}

std::vector<double> ArgParser::option_as_doubles(
    const std::string& name) const {
  try {
    return parse_double_list(option(name));
  } catch (const UsageError& e) {
    throw UsageError("option --" + name + ": " + e.what());
  }
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& [name, option] : options_) {
    os << "  --" << name << " <value>  " << option.help
       << " (default: " << option.value << ")\n";
  }
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << "  " << flag.help << "\n";
  }
  return os.str();
}

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    if (item.empty()) throw UsageError("empty element in number list");
    double value = 0.0;
    const auto* first = item.data();
    const auto* last = item.data() + item.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
      throw UsageError("invalid number '" + item + "' in list");
    }
    values.push_back(value);
    if (end == text.size()) break;
    start = end + 1;
  }
  if (values.empty()) throw UsageError("empty number list");
  return values;
}

}  // namespace lbmv::util

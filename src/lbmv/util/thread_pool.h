#pragma once

/// \file thread_pool.h
/// A small work-stealing-free thread pool and a blocking parallel_for.
///
/// lbmv's heavy loops — truthfulness audit grids, frugality sweeps, Monte
/// Carlo replications — are embarrassingly parallel over independent
/// parameter points.  parallel_for splits an index range into contiguous
/// blocks and runs them on the pool; determinism is preserved because each
/// index writes only its own output slot and RNG streams are split per index.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lbmv::util {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Create a pool with \p threads workers (default: hardware concurrency,
  /// at least 1).  Threads are joined on destruction after draining queued
  /// work.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future completes when it has run.
  /// Exceptions thrown by the task propagate through the future.
  std::future<void> submit(std::function<void()> task);

  /// Run body(i) for every i in [begin, end) across the pool, blocking until
  /// all iterations finish.
  ///
  /// \p grain controls the chunking: each submitted task covers at least
  /// \p grain consecutive indices.  grain == 0 picks automatically —
  /// ceil(n / (4 * thread_count)) — which favours load balancing for
  /// fine-grained bodies.  Pass a larger grain when each iteration is tiny
  /// (so per-task overhead does not dominate) or when iterations share
  /// per-chunk state worth amortising.
  ///
  /// The first exception thrown by any iteration is rethrown on the calling
  /// thread (remaining chunks still run to completion).  body must be safe
  /// to call concurrently for distinct i.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// A process-wide default pool, created on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Free-function convenience: pool.parallel_for with automatic grain.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// parallel_for on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace lbmv::util

#include "lbmv/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "lbmv/util/error.h"

namespace lbmv::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LBMV_REQUIRE(!headers_.empty(), "Table requires at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  LBMV_REQUIRE(cells.size() == headers_.size(),
               "Table row width must match the header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(precision)
     << fraction * 100.0 << '%';
  return os.str();
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells,
                      std::ostringstream& os) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c]
         << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  std::ostringstream os;
  emit_row(headers_, os);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, os);
  return os.str();
}

}  // namespace lbmv::util

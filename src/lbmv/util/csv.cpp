#include "lbmv/util/csv.h"

#include <iomanip>
#include <sstream>

namespace lbmv::util {

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << quote(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_numeric_row(const std::vector<double>& cells) {
  std::ostringstream os;
  os << std::setprecision(17);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ',';
    os << cells[i];
  }
  *out_ << os.str() << '\n';
}

std::string CsvWriter::quote(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace lbmv::util

#pragma once

/// \file json.h
/// A small, dependency-free JSON reader/writer.
///
/// Used by the CLI tool to load system descriptions and emit
/// machine-readable results.  Supports the full JSON value model (null,
/// bool, finite numbers, strings with escapes, arrays, objects); numbers
/// are stored as double.  Parsing errors carry line/column positions.

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lbmv::util {

/// Thrown on malformed JSON or on type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An immutable-ish JSON value (copyable value type).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// std::map keeps keys ordered -> deterministic dumps.
  using Object = std::map<std::string, JsonValue>;

  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; throw JsonError on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member access; throws JsonError when absent or not an object.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  /// Array element access; throws JsonError when out of range.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  /// Whether this is an object containing \p key.
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Object member or \p fallback when absent.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;

  /// Parse a complete JSON document (surrounding whitespace allowed).
  [[nodiscard]] static JsonValue parse(std::string_view text);

  /// Serialise: compact when indent < 0, pretty with the given indent
  /// width otherwise.
  [[nodiscard]] std::string dump(int indent = -1) const;

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace lbmv::util

#pragma once

/// \file stats.h
/// Streaming and batch statistics used by the simulator and benchmarks.

#include <cstddef>
#include <span>
#include <vector>

namespace lbmv::util {

/// Numerically stable streaming moments (Welford's algorithm).
///
/// Accumulates count, mean, variance, min and max in O(1) per sample with no
/// stored history; suitable for long simulation runs.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another accumulator into this one (parallel reduction support).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const;

  /// Half-width of the ~95% normal confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch helpers over a span of samples.
[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);

/// Linear interpolated percentile, p in [0, 100].  Requires non-empty input.
/// The input need not be sorted; a sorted copy is made internally.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Ordinary least squares fit y = a + b*x.  Requires xs.size() == ys.size()
/// and at least two points with distinct x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit fit_line(std::span<const double> xs,
                                 std::span<const double> ys);

/// Relative difference |a-b| / max(|a|, |b|, floor); 0 when both are ~0.
[[nodiscard]] double rel_diff(double a, double b, double floor = 1e-300);

}  // namespace lbmv::util

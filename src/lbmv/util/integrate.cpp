#include "lbmv/util/integrate.h"

#include <cmath>

#include "lbmv/util/error.h"

namespace lbmv::util {
namespace {

double simpson(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double b,
                double fa, double fm, double fb, double whole, double tol,
                int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol, int max_depth) {
  LBMV_REQUIRE(std::isfinite(a) && std::isfinite(b),
               "integrate requires finite bounds");
  if (a == b) return 0.0;
  const double sign = (a < b) ? 1.0 : -1.0;
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  const double mid = 0.5 * (lo + hi);
  const double flo = f(lo);
  const double fmid = f(mid);
  const double fhi = f(hi);
  const double whole = simpson(flo, fmid, fhi, hi - lo);
  return sign * adaptive(f, lo, hi, flo, fmid, fhi, whole, tol, max_depth);
}

double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             double tol) {
  LBMV_REQUIRE(std::isfinite(a), "integrate_to_infinity requires finite a");
  // x = a + t/(1-t); dx = dt/(1-t)^2.  t in [0, 1).
  auto g = [&](double t) {
    const double om = 1.0 - t;
    if (om <= 0.0) return 0.0;  // integrand must vanish at infinity
    const double x = a + t / om;
    return f(x) / (om * om);
  };
  // Stop just shy of t = 1 to avoid evaluating at the singular endpoint; the
  // remaining sliver contributes O(f(huge)) which is 0 for admissible f.
  return integrate(g, 0.0, 1.0 - 1e-12, tol);
}

}  // namespace lbmv::util

#include "lbmv/analysis/paper_experiments.h"

#include "lbmv/model/bids.h"
#include "lbmv/util/error.h"

namespace lbmv::analysis {

ExperimentResult run_experiment(const core::Mechanism& mechanism,
                                const model::SystemConfig& config,
                                const PaperExperiment& experiment) {
  const model::BidProfile profile = model::BidProfile::deviate(
      config, kDeviatingAgent, experiment.bid_mult, experiment.exec_mult);
  ExperimentResult result;
  result.experiment = experiment;
  result.outcome = mechanism.run(config, profile);
  return result;
}

std::vector<ExperimentResult> run_paper_experiments(
    const core::Mechanism& mechanism, const model::SystemConfig& config) {
  std::vector<ExperimentResult> results;
  const auto experiments = paper_table2_experiments();
  results.reserve(experiments.size());
  for (const auto& experiment : experiments) {
    results.push_back(run_experiment(mechanism, config, experiment));
  }
  LBMV_ASSERT(!results.empty() && results.front().experiment.name == "True1",
              "experiment list must start with True1");
  const double baseline = results.front().outcome.actual_latency;
  for (auto& r : results) {
    r.latency_increase_vs_true1 =
        (r.outcome.actual_latency - baseline) / baseline;
  }
  return results;
}

}  // namespace lbmv::analysis

#pragma once

/// \file report.h
/// Rendering of the paper's tables and figures from experiment results.
///
/// Each render_* function returns the full text block a bench binary prints:
/// a markdown table with the exact series values plus an ASCII chart with
/// the figure's shape.  Keeping the rendering here lets tests assert on the
/// same artefacts the benches emit.

#include <span>
#include <string>

#include "lbmv/analysis/paper_experiments.h"

namespace lbmv::analysis {

/// Table 1: the system configuration.
[[nodiscard]] std::string render_table1(const model::SystemConfig& config);

/// Table 2: the experiment definitions.
[[nodiscard]] std::string render_table2();

/// Figure 1: total latency per experiment ("performance degradation").
[[nodiscard]] std::string render_figure1(
    std::span<const ExperimentResult> results);

/// Figure 2: payment and utility of computer C1 per experiment.
[[nodiscard]] std::string render_figure2(
    std::span<const ExperimentResult> results);

/// Figures 3–5: payment and utility of every computer in one experiment.
[[nodiscard]] std::string render_per_computer_figure(
    const ExperimentResult& result, const std::string& figure_name);

/// Figure 6: payment structure — total payment vs total valuation and the
/// frugality ratio, per experiment.
[[nodiscard]] std::string render_figure6(
    std::span<const ExperimentResult> results);

/// CSV block (one line per experiment) with every headline series, for
/// re-plotting outside the repository.
[[nodiscard]] std::string results_csv(
    std::span<const ExperimentResult> results);

}  // namespace lbmv::analysis

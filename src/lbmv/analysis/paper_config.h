#pragma once

/// \file paper_config.h
/// The paper's evaluation setup: Table 1 (system) and Table 2 (experiments).
///
/// The published scan's tables are OCR-damaged; the values here were
/// reconstructed by solving the quantitative claims in the prose and
/// validate against five independent checks (see DESIGN.md §2):
///   * L* = R^2 / sum(1/t) = 400 / 5.1 = 78.43 at R = 20  (True1)
///   * Low1 latency +11 %, Low2 latency +66 %
///   * C1 utility -45 % in Low1 and -62 % in High1 relative to True1.

#include <cstddef>
#include <span>
#include <string>

#include "lbmv/model/system_config.h"

namespace lbmv::analysis {

/// Index of the deviating computer C1 in every Table 2 experiment.
inline constexpr std::size_t kDeviatingAgent = 0;

/// The arrival rate used for Figures 1–6.
inline constexpr double kPaperArrivalRate = 20.0;

/// Table 1: 16 heterogeneous computers in four speed groups,
/// t = 1 (C1–C2), 2 (C3–C5), 5 (C6–C10), 10 (C11–C16), at R = 20 jobs/s.
[[nodiscard]] model::SystemConfig paper_table1_config();

/// One row of Table 2: how computer C1 deviates while everyone else is
/// truthful.
struct PaperExperiment {
  std::string name;        ///< True1 ... Low2
  double bid_mult;         ///< b_1 = bid_mult * t_1
  double exec_mult;        ///< t~_1 = exec_mult * t_1
  std::string description; ///< the paper's prose characterisation
};

/// Table 2: the eight experiments, in the paper's order.
[[nodiscard]] std::span<const PaperExperiment> paper_table2_experiments();

/// Look up an experiment by name (e.g. "High1"); throws if unknown.
[[nodiscard]] const PaperExperiment& paper_experiment(const std::string& name);

}  // namespace lbmv::analysis

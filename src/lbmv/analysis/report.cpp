#include "lbmv/analysis/report.h"

#include <sstream>

#include "lbmv/core/frugality.h"
#include "lbmv/util/ascii_chart.h"
#include "lbmv/util/csv.h"
#include "lbmv/util/table.h"

namespace lbmv::analysis {

using util::Bar;
using util::BarGroup;
using util::Table;

std::string render_table1(const model::SystemConfig& config) {
  std::ostringstream os;
  os << "Table 1. System configuration (n = " << config.size()
     << ", R = " << config.arrival_rate() << " jobs/s)\n";
  Table table({"Computer", "True value (t)"});
  for (std::size_t i = 0; i < config.size(); ++i) {
    table.add_row({"C" + std::to_string(i + 1),
                   Table::num(config.true_value(i), 1)});
  }
  os << table.to_markdown();
  return os.str();
}

std::string render_table2() {
  std::ostringstream os;
  os << "Table 2. Types of experiments (deviating computer: C1)\n";
  Table table({"Experiment", "Bid b1", "Execution t~1", "Characterisation"});
  for (const auto& e : paper_table2_experiments()) {
    table.add_row({e.name, Table::num(e.bid_mult, 2) + " * t1",
                   Table::num(e.exec_mult, 2) + " * t1", e.description});
  }
  os << table.to_markdown();
  return os.str();
}

std::string render_figure1(std::span<const ExperimentResult> results) {
  std::ostringstream os;
  os << "Figure 1. Performance degradation: total latency per experiment\n";
  Table table({"Experiment", "Total latency L", "Increase vs True1"});
  std::vector<Bar> bars;
  for (const auto& r : results) {
    table.add_row({r.experiment.name, Table::num(r.outcome.actual_latency),
                   Table::pct(r.latency_increase_vs_true1)});
    bars.push_back({r.experiment.name, r.outcome.actual_latency});
  }
  os << table.to_markdown() << '\n' << util::bar_chart("", bars);
  return os.str();
}

std::string render_figure2(std::span<const ExperimentResult> results) {
  std::ostringstream os;
  os << "Figure 2. Payment and utility of computer C1 per experiment\n";
  Table table({"Experiment", "Compensation", "Bonus", "Payment", "Utility"});
  std::vector<BarGroup> groups;
  for (const auto& r : results) {
    const auto& c1 = r.outcome.agents[kDeviatingAgent];
    table.add_row({r.experiment.name, Table::num(c1.compensation),
                   Table::num(c1.bonus), Table::num(c1.payment),
                   Table::num(c1.utility)});
    groups.push_back({r.experiment.name, {c1.payment, c1.utility}});
  }
  os << table.to_markdown() << '\n'
     << util::grouped_bar_chart("", {"payment", "utility"}, groups);
  return os.str();
}

std::string render_per_computer_figure(const ExperimentResult& result,
                                       const std::string& figure_name) {
  std::ostringstream os;
  os << figure_name << ". Payment and utility for each computer ("
     << result.experiment.name << ")\n";
  Table table({"Computer", "Allocation x", "Payment", "Utility"});
  std::vector<BarGroup> groups;
  for (std::size_t i = 0; i < result.outcome.agents.size(); ++i) {
    const auto& agent = result.outcome.agents[i];
    const std::string name = "C" + std::to_string(i + 1);
    table.add_row({name, Table::num(agent.allocation),
                   Table::num(agent.payment), Table::num(agent.utility)});
    groups.push_back({name, {agent.payment, agent.utility}});
  }
  os << table.to_markdown() << '\n'
     << util::grouped_bar_chart("", {"payment", "utility"}, groups);
  return os.str();
}

std::string render_figure6(std::span<const ExperimentResult> results) {
  std::ostringstream os;
  os << "Figure 6. Payment structure: total payment vs total valuation\n";
  Table table({"Experiment", "Total payment", "Total |valuation|",
               "Payment / valuation"});
  std::vector<BarGroup> groups;
  double max_ratio = 0.0;
  for (const auto& r : results) {
    const auto frugality = core::frugality_of(r.outcome);
    table.add_row({r.experiment.name, Table::num(frugality.total_payment),
                   Table::num(frugality.total_valuation),
                   Table::num(frugality.ratio())});
    groups.push_back({r.experiment.name,
                      {frugality.total_payment, frugality.total_valuation}});
    max_ratio = std::max(max_ratio, frugality.ratio());
  }
  os << table.to_markdown() << '\n'
     << util::grouped_bar_chart("", {"total payment", "total |valuation|"},
                                groups)
     << "  max payment/valuation ratio: " << Table::num(max_ratio)
     << "  (paper: at most ~2.5)\n";
  return os.str();
}

std::string results_csv(std::span<const ExperimentResult> results) {
  std::ostringstream os;
  util::CsvWriter csv(os);
  csv.write_row({"experiment", "bid_mult", "exec_mult", "total_latency",
                 "latency_increase", "c1_compensation", "c1_bonus",
                 "c1_payment", "c1_utility", "total_payment",
                 "total_valuation"});
  for (const auto& r : results) {
    const auto& c1 = r.outcome.agents[kDeviatingAgent];
    const auto frugality = core::frugality_of(r.outcome);
    os << util::CsvWriter::quote(r.experiment.name) << ',';
    csv.write_numeric_row({r.experiment.bid_mult, r.experiment.exec_mult,
                           r.outcome.actual_latency,
                           r.latency_increase_vs_true1, c1.compensation,
                           c1.bonus, c1.payment, c1.utility,
                           frugality.total_payment,
                           frugality.total_valuation});
  }
  return os.str();
}

}  // namespace lbmv::analysis

#include "lbmv/analysis/paper_config.h"

#include <array>

#include "lbmv/util/error.h"

namespace lbmv::analysis {
namespace {

const std::array<PaperExperiment, 8>& experiments() {
  static const std::array<PaperExperiment, 8> kExperiments{{
      {"True1", 1.0, 1.0,
       "all computers report true values and execute at full capacity"},
      {"True2", 1.0, 2.0,
       "truthful bid, but C1 executes slower than its true capacity"},
      {"High1", 3.0, 3.0,
       "C1 bids three times higher; execution value equals the bid"},
      {"High2", 3.0, 1.0,
       "C1 bids three times higher but executes at full capacity"},
      {"High3", 3.0, 2.0,
       "like High1 except the execution on C1 is faster"},
      {"High4", 3.0, 4.0,
       "like High1 except C1 executes the jobs slower"},
      {"Low1", 0.5, 1.0,
       "C1 bids 2 times less, executing at its full capacity"},
      {"Low2", 0.5, 2.0,
       "C1 bids 2 times less and executes two times slower"},
  }};
  return kExperiments;
}

}  // namespace

model::SystemConfig paper_table1_config() {
  std::vector<double> types;
  types.reserve(16);
  auto add_group = [&](int count, double t) {
    for (int i = 0; i < count; ++i) types.push_back(t);
  };
  add_group(2, 1.0);   // C1 - C2
  add_group(3, 2.0);   // C3 - C5
  add_group(5, 5.0);   // C6 - C10
  add_group(6, 10.0);  // C11 - C16
  return model::SystemConfig(std::move(types), kPaperArrivalRate);
}

std::span<const PaperExperiment> paper_table2_experiments() {
  return experiments();
}

const PaperExperiment& paper_experiment(const std::string& name) {
  for (const auto& e : experiments()) {
    if (e.name == name) return e;
  }
  LBMV_REQUIRE(false, "unknown paper experiment: " + name);
  return experiments().front();  // unreachable
}

}  // namespace lbmv::analysis

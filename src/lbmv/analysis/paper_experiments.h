#pragma once

/// \file paper_experiments.h
/// Runners producing the data behind the paper's Figures 1–6.

#include <span>
#include <vector>

#include "lbmv/analysis/paper_config.h"
#include "lbmv/core/mechanism.h"

namespace lbmv::analysis {

/// Outcome of one Table 2 experiment.
struct ExperimentResult {
  PaperExperiment experiment;
  core::MechanismOutcome outcome;
  /// (L - L_True1) / L_True1 — the "performance degradation" of Figure 1.
  double latency_increase_vs_true1 = 0.0;
};

/// Run a single Table 2 experiment under \p mechanism.
[[nodiscard]] ExperimentResult run_experiment(
    const core::Mechanism& mechanism, const model::SystemConfig& config,
    const PaperExperiment& experiment);

/// Run all eight experiments in the paper's order.  The first entry is
/// True1, against which every latency increase is measured.
[[nodiscard]] std::vector<ExperimentResult> run_paper_experiments(
    const core::Mechanism& mechanism, const model::SystemConfig& config);

}  // namespace lbmv::analysis

#include "lbmv/obs/metrics.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace lbmv::obs {

namespace {

constexpr double kHistogramMinValue = 1.0 / (1ull << 34);  // 2^-34
constexpr double kHistogramMaxValue = double(1ull << 30);  // 2^30

// CAS loops instead of atomic<double>::fetch_add keep us off the lowest
// common denominator of libstdc++ versions; cells are per-thread so the
// CAS succeeds first try in practice.
void atomic_add(std::atomic<double>& cell, double delta) {
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& cell, double value) {
  double cur = cell.load(std::memory_order_relaxed);
  while (value < cur && !cell.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double value) {
  double cur = cell.load(std::memory_order_relaxed);
  while (value > cur && !cell.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

/// JSON has no inf/nan: clamp to the largest finite double (the overflow
/// bucket's `le` round-trips as max-double by design).
void append_json_number(std::ostringstream& os, double v) {
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) {
    v = v > 0 ? std::numeric_limits<double>::max()
              : std::numeric_limits<double>::lowest();
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Split `family{key="value"}` into the bare family name and the label
/// body (without braces); the label body is empty for unlabelled names.
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {name, {}};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

}  // namespace

// ---- bucket geometry -------------------------------------------------------

std::size_t histogram_bucket(double value) {
  if (!(value >= kHistogramMinValue)) return 0;  // zero, negative, tiny
  if (value >= kHistogramMaxValue) return kHistogramBuckets - 1;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  const int exp = static_cast<int>(bits >> 52) - 1023;  // normal: in range
  const auto sub = static_cast<std::size_t>(
      (bits >> (52 - kHistogramSubBits)) & (kHistogramSubBuckets - 1));
  return static_cast<std::size_t>(exp - kHistogramMinExp) *
             kHistogramSubBuckets +
         sub + 1;
}

double histogram_bucket_upper(std::size_t index) {
  if (index == 0) return kHistogramMinValue;
  if (index >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t group = (index - 1) / kHistogramSubBuckets;
  const std::size_t sub = (index - 1) % kHistogramSubBuckets;
  return std::ldexp(
      1.0 + static_cast<double>(sub + 1) / kHistogramSubBuckets,
      kHistogramMinExp + static_cast<int>(group));
}

// ---- shard storage ---------------------------------------------------------

namespace {

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<double> value{0.0};
};

struct HistogramCell {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> nan_count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};

  void zero() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    nan_count.store(0, std::memory_order_relaxed);
    sum.store(0.0, std::memory_order_relaxed);
    min.store(std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    max.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
  }
};

}  // namespace

/// One thread's private cells.  The owning thread grows the cell vectors
/// (under `mutex`, because a scraper may be iterating them) and increments
/// cells lock-free; scrapers only ever read, under `mutex`.  The registry
/// keeps the shard alive after its thread exits so no sample is lost.
struct Registry::Shard {
  std::mutex mutex;  ///< guards vector *structure*, not cell contents
  std::vector<std::unique_ptr<CounterCell>> counters;
  std::vector<std::unique_ptr<GaugeCell>> gauges;
  std::vector<std::unique_ptr<HistogramCell>> histograms;

  template <typename Cell>
  Cell& cell(std::vector<std::unique_ptr<Cell>>& cells, std::uint32_t index) {
    if (index >= cells.size()) {
      // Rare first-touch growth; the lock only excludes scrapers (other
      // threads never touch this shard's vectors).
      std::lock_guard lock(mutex);
      while (cells.size() <= index) cells.push_back(std::make_unique<Cell>());
    }
    return *cells[index];
  }
};

namespace {

/// Thread-local shard cache, keyed by process-unique registry id so a
/// destroyed registry's entries can never be mistaken for a live one's.
/// The cache is bounded; eviction merely means the thread re-registers a
/// fresh shard, and shard merging is a sum, so duplicates are harmless.
struct TlsShardRef {
  std::uint64_t registry_id;
  void* shard;
};
thread_local std::vector<TlsShardRef> t_shard_cache;

std::atomic<std::uint64_t> g_next_registry_id{1};

}  // namespace

// ---- registry --------------------------------------------------------------

Registry::Registry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Shard& Registry::local_shard() {
  for (const TlsShardRef& ref : t_shard_cache) {
    if (ref.registry_id == id_) return *static_cast<Shard*>(ref.shard);
  }
  auto shard = std::make_shared<Shard>();
  {
    std::lock_guard lock(mutex_);
    shards_.push_back(shard);
  }
  if (t_shard_cache.size() >= 8) t_shard_cache.erase(t_shard_cache.begin());
  t_shard_cache.push_back(TlsShardRef{id_, shard.get()});
  return *shard;
}

namespace {

std::uint32_t find_or_register(std::vector<std::string>& names,
                               std::map<std::string, std::uint32_t>& index,
                               const std::string& name) {
  const auto it = index.find(name);
  if (it != index.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(names.size());
  names.push_back(name);
  index.emplace(name, idx);
  return idx;
}

}  // namespace

Counter Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  return Counter(this, find_or_register(counter_names_, counter_index_, name));
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  return Gauge(this, find_or_register(gauge_names_, gauge_index_, name));
}

Histogram Registry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  return Histogram(
      this, find_or_register(histogram_names_, histogram_index_, name));
}

void Registry::counter_add(std::uint32_t index, std::uint64_t n) {
  Shard& shard = local_shard();
  shard.cell(shard.counters, index)
      .value.fetch_add(n, std::memory_order_relaxed);
}

void Registry::gauge_add(std::uint32_t index, double delta) {
  Shard& shard = local_shard();
  atomic_add(shard.cell(shard.gauges, index).value, delta);
}

void Registry::histogram_record(std::uint32_t index, double value) {
  Shard& shard = local_shard();
  HistogramCell& cell = shard.cell(shard.histograms, index);
  if (std::isnan(value)) {
    cell.nan_count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  cell.buckets[histogram_bucket(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(cell.sum, value);
  atomic_min(cell.min, value);
  atomic_max(cell.max, value);
}

void Counter::detail_add(std::uint64_t n) { registry_->counter_add(index_, n); }
void Gauge::detail_add(double delta) { registry_->gauge_add(index_, delta); }
void Histogram::detail_record(double value) {
  registry_->histogram_record(index_, value);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  snap.timestamp_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::vector<std::string> counter_names, gauge_names, histogram_names;
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard lock(mutex_);
    counter_names = counter_names_;
    gauge_names = gauge_names_;
    histogram_names = histogram_names_;
    shards = shards_;
  }
  for (const auto& name : counter_names) snap.counters[name] = 0;
  for (const auto& name : gauge_names) snap.gauges[name] = 0.0;
  for (const auto& name : histogram_names) {
    snap.histograms[name].buckets.assign(kHistogramBuckets, 0);
  }

  for (const auto& shard : shards) {
    std::lock_guard lock(shard->mutex);
    for (std::size_t i = 0;
         i < shard->counters.size() && i < counter_names.size(); ++i) {
      snap.counters[counter_names[i]] +=
          shard->counters[i]->value.load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < shard->gauges.size() && i < gauge_names.size();
         ++i) {
      snap.gauges[gauge_names[i]] +=
          shard->gauges[i]->value.load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0;
         i < shard->histograms.size() && i < histogram_names.size(); ++i) {
      const HistogramCell& cell = *shard->histograms[i];
      HistogramSnapshot& hs = snap.histograms[histogram_names[i]];
      const std::uint64_t count = cell.count.load(std::memory_order_relaxed);
      hs.count += count;
      hs.nan_count += cell.nan_count.load(std::memory_order_relaxed);
      hs.sum += cell.sum.load(std::memory_order_relaxed);
      if (count > 0) {
        const double mn = cell.min.load(std::memory_order_relaxed);
        const double mx = cell.max.load(std::memory_order_relaxed);
        if (hs.count == count) {  // first contributing shard
          hs.min = mn;
          hs.max = mx;
        } else {
          hs.min = std::min(hs.min, mn);
          hs.max = std::max(hs.max, mx);
        }
      }
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        hs.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  return snap;
}

void Registry::reset() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard lock(mutex_);
    shards = shards_;
  }
  for (const auto& shard : shards) {
    std::lock_guard lock(shard->mutex);
    for (auto& c : shard->counters) {
      c->value.store(0, std::memory_order_relaxed);
    }
    for (auto& g : shard->gauges) {
      g->value.store(0.0, std::memory_order_relaxed);
    }
    for (auto& h : shard->histograms) h->zero();
  }
}

// ---- snapshot maths --------------------------------------------------------

double HistogramSnapshot::mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= target && buckets[b] > 0) {
      return std::clamp(histogram_bucket_upper(b), min, max);
    }
  }
  return max;
}

// ---- exposition ------------------------------------------------------------

std::string MetricsSnapshot::to_prometheus(bool with_timestamps) const {
  std::ostringstream os;
  std::string stamp;
  if (with_timestamps) {
    stamp = ' ' + std::to_string(timestamp_ms);
  }
  std::string last_type_line;
  const auto type_line = [&](std::string_view name, const char* type) {
    const auto [family, labels] = split_labels(name);
    (void)labels;
    std::string line = "# TYPE " + std::string(family) + " " + type + "\n";
    if (line != last_type_line) {
      os << line;
      last_type_line = std::move(line);
    }
  };
  for (const auto& [name, value] : counters) {
    type_line(name, "counter");
    os << name << ' ' << value << stamp << '\n';
  }
  for (const auto& [name, value] : gauges) {
    type_line(name, "gauge");
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    os << name << ' ' << buf << stamp << '\n';
  }
  for (const auto& [name, hist] : histograms) {
    type_line(name, "histogram");
    const auto [family, labels] = split_labels(name);
    const auto with_labels = [&, family = family,
                              labels = labels](const char* suffix,
                                               const std::string& extra) {
      std::string out(family);
      out += suffix;
      if (!labels.empty() || !extra.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra.empty()) out += ',';
        out += extra;
        out += '}';
      }
      return out;
    };
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      if (hist.buckets[b] == 0) continue;
      cumulative += hist.buckets[b];
      char le[48];
      const double upper = histogram_bucket_upper(b);
      if (std::isinf(upper)) {
        std::snprintf(le, sizeof le, "le=\"+Inf\"");
      } else {
        std::snprintf(le, sizeof le, "le=\"%.10g\"", upper);
      }
      os << with_labels("_bucket", le) << ' ' << hist.buckets[b] << stamp
         << '\n';
    }
    os << with_labels("_bucket", "le=\"+Inf\"") << ' ' << hist.count << stamp
       << '\n';
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", hist.sum);
    os << with_labels("_sum", "") << ' ' << buf << stamp << '\n';
    os << with_labels("_count", "") << ' ' << hist.count << stamp << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": ";
    append_json_number(os, value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": {"
       << "\"count\": " << hist.count << ", \"nan_count\": " << hist.nan_count
       << ", \"sum\": ";
    append_json_number(os, hist.sum);
    os << ", \"min\": ";
    append_json_number(os, hist.min);
    os << ", \"max\": ";
    append_json_number(os, hist.max);
    os << ", \"mean\": ";
    append_json_number(os, hist.mean());
    os << ", \"p50\": ";
    append_json_number(os, hist.quantile(0.50));
    os << ", \"p95\": ";
    append_json_number(os, hist.quantile(0.95));
    os << ", \"p99\": ";
    append_json_number(os, hist.quantile(0.99));
    os << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      if (hist.buckets[b] == 0) continue;
      os << (first_bucket ? "" : ", ") << "{\"le\": ";
      append_json_number(os, histogram_bucket_upper(b));
      os << ", \"count\": " << hist.buckets[b] << '}';
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}";
  return os.str();
}

std::string labeled(std::string_view family, std::string_view key,
                    std::string_view value) {
  std::string out(family);
  out += '{';
  out += key;
  out += "=\"";
  out += value;
  out += "\"}";
  return out;
}

}  // namespace lbmv::obs

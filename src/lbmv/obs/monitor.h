#pragma once

/// \file monitor.h
/// Online invariant monitors: the mechanism's own guarantees as metrics.
///
/// The paper's construction is a mechanism *with verification*; the
/// monitors make verification itself observable.  An `InvariantMonitor`
/// wraps one named invariant (allocation feasibility, voluntary
/// participation, payment decomposition, ...) and turns every check into
/// three metric families plus a structured anomaly record:
///
///   lbmv_monitor_<name>_checks_total       rounds/commits inspected
///   lbmv_monitor_<name>_violations_total   residuals beyond tolerance
///   lbmv_monitor_<name>_residual           |residual| magnitude histogram
///
/// A violation additionally lands a `Severity::kError` record (with the
/// caller's key/value payload) in the flight recorder, so `lbmv obs`, the
/// JSONL dump and the crash hook all surface *which* round went wrong and
/// by how much — not just that a counter moved.
///
/// Cost contract: callers gate on `obs::enabled()` before computing the
/// residual, so a disabled run pays one relaxed load per wired site and a
/// compiled-out build (`LBMV_OBS=0`) pays nothing.  check() itself is two
/// counter increments plus one histogram record on the happy path.
///
/// The monitors live in obs (below util) so core, sim and strategy can
/// all feed them without dependency cycles; the residual *math* stays in
/// the owning subsystem (e.g. core/invariants.h).

#include <initializer_list>
#include <limits>
#include <string>

#include "lbmv/obs/flight_recorder.h"
#include "lbmv/obs/metrics.h"

namespace lbmv::obs {

/// One named invariant: checks counter + violations counter + residual
/// magnitude histogram + flight-recorder anomaly records.
class InvariantMonitor {
 public:
  /// \p name is the metric infix (lbmv_monitor_<name>_checks_total ...);
  /// \p subsystem tags the flight records; \p tolerance is the violation
  /// threshold on |residual| (infinity = record-only residual gauge).
  /// All three must be string literals (stored as pointers).
  InvariantMonitor(const char* name, const char* subsystem, double tolerance);

  /// Record one check: |residual| into the histogram, the checks counter,
  /// and — when |residual| > tolerance — the violations counter plus a
  /// flight-recorder record carrying \p payload (the residual itself is
  /// always prepended).  Returns true when the check passed.
  bool check(double residual,
             std::initializer_list<FlightRecord::KeyValue> payload = {});

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] double tolerance() const { return tolerance_; }

 private:
  const char* name_;
  const char* subsystem_;
  double tolerance_;
  Counter checks_;
  Counter violations_;
  Histogram residual_;
};

/// The built-in monitors, resolved once (function-local static) like the
/// probe bundles in probes.h.  Tolerances are the repo's differential
/// 1e-9 bound for closed-form identities; the estimate-gap monitors are
/// record-only gauges (verification noise is data, not a bug).
struct Monitors {
  /// |sum(x_i) - R| / R after every allocation (mechanism rounds and the
  /// protocol's step-2 assignment alike).
  InvariantMonitor feasibility{"feasibility", "mech", 1e-9};
  /// max_i |P_i - (C_i + B_i)| / scale — the comp-bonus decomposition
  /// identity (P = C + B) every paying rule must satisfy.
  InvariantMonitor payment_decomposition{"payment_decomposition", "mech",
                                         1e-9};
  /// Voluntary participation at consistent rounds: max(0, -min_i U_i) /
  /// scale must vanish (paper Thm 3.2) for every mechanism that
  /// guarantees participation.
  InvariantMonitor participation{"participation", "mech", 1e-9};
  /// KKT stationarity of the PR allocation on linear rounds: the spread
  /// of the marginals b_j x_j (constant at the optimum) — the
  /// epsilon-optimality gauge for the allocator.
  InvariantMonitor kkt_stationarity{"kkt_stationarity", "alloc", 1e-9};
  /// Relative drift of the incremental sums S, W against a from-scratch
  /// re-sum at every periodic ProfileUtilityContext rebuild (PR 4).
  InvariantMonitor context_drift{"context_drift", "strategy", 1e-9};
  /// Protocol mass balance: the step-2 assignment must ship exactly R.
  InvariantMonitor protocol_mass_balance{"protocol_mass_balance", "protocol",
                                         1e-9};
  /// Record-only: relative gap between payments at the estimated and the
  /// oracle execution values — how much verification noise moves money.
  InvariantMonitor protocol_estimate_gap{
      "protocol_estimate_gap", "protocol",
      std::numeric_limits<double>::infinity()};

  static Monitors& get();
};

/// Sum of every lbmv_monitor_*_checks_total / _violations_total in a
/// snapshot — the dashboard's one-line health summary.
struct MonitorTotals {
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
};
[[nodiscard]] MonitorTotals monitor_totals(const MetricsSnapshot& snapshot);

}  // namespace lbmv::obs

#include "lbmv/obs/sampler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace lbmv::obs {
namespace {

// Labelled metric names embed quotes (`family{key="value"}`); escape them
// for the JSON export.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::uint64_t wall_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

TimeSeriesSampler::TimeSeriesSampler(Registry& registry,
                                     std::size_t capacity_per_series)
    : registry_(&registry),
      capacity_(capacity_per_series < 2 ? 2 : capacity_per_series) {}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::Series::append(std::uint64_t t_ms, double value,
                                       std::size_t capacity) {
  if (buf.size() < capacity) {
    buf.push_back(SeriesPoint{t_ms, value});
  } else {
    buf[next] = SeriesPoint{t_ms, value};
    next = (next + 1) % capacity;
  }
  ++recorded;
}

std::vector<SeriesPoint> TimeSeriesSampler::Series::ordered() const {
  std::vector<SeriesPoint> out;
  out.reserve(buf.size());
  out.insert(out.end(), buf.begin() + static_cast<std::ptrdiff_t>(next),
             buf.end());
  out.insert(out.end(), buf.begin(),
             buf.begin() + static_cast<std::ptrdiff_t>(next));
  return out;
}

void TimeSeriesSampler::sample() { sample_at(wall_now_ms()); }

void TimeSeriesSampler::sample_at(std::uint64_t t_ms) {
  // Snapshot outside the series lock: the shard merge is the expensive
  // part and must not block dashboard readers.
  const MetricsSnapshot snap = registry_->snapshot();
  std::lock_guard lock(mutex_);
  append_sample_locked(t_ms, snap);
}

void TimeSeriesSampler::append_sample_locked(std::uint64_t t_ms,
                                             const MetricsSnapshot& snap) {
  const auto touch = [&](const std::string& name, const char* kind,
                         double value) {
    Series& series = series_[name];
    if (series.kind.empty()) series.kind = kind;
    series.append(t_ms, value, capacity_);
  };
  for (const auto& [name, value] : snap.counters) {
    touch(name, "counter", static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) touch(name, "gauge", value);
  for (const auto& [name, hist] : snap.histograms) {
    touch(name + ":count", "histogram_count",
          static_cast<double>(hist.count));
    touch(name + ":sum", "histogram_sum", hist.sum);
  }
  ++samples_;
}

void TimeSeriesSampler::start(std::chrono::milliseconds period) {
  std::lock_guard lock(thread_mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this, period] { run_loop(period); });
}

void TimeSeriesSampler::stop() {
  std::thread to_join;
  {
    std::lock_guard lock(thread_mutex_);
    if (!running_) return;
    {
      std::lock_guard data_lock(mutex_);
      stop_requested_ = true;
    }
    cv_.notify_all();
    to_join = std::move(thread_);
    running_ = false;
  }
  if (to_join.joinable()) to_join.join();
}

bool TimeSeriesSampler::running() const {
  std::lock_guard lock(thread_mutex_);
  return running_;
}

void TimeSeriesSampler::run_loop(std::chrono::milliseconds period) {
  if (period <= std::chrono::milliseconds::zero()) {
    period = std::chrono::milliseconds(1);
  }
  for (;;) {
    sample();
    std::unique_lock lock(mutex_);
    if (cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
      return;
    }
  }
}

std::uint64_t TimeSeriesSampler::sample_count() const {
  std::lock_guard lock(mutex_);
  return samples_;
}

std::uint64_t TimeSeriesSampler::dropped_points() const {
  std::lock_guard lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& [name, series] : series_) {
    (void)name;
    dropped += series.recorded - series.buf.size();
  }
  return dropped;
}

std::vector<SeriesView> TimeSeriesSampler::series() const {
  std::lock_guard lock(mutex_);
  std::vector<SeriesView> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) {
    out.push_back(SeriesView{name, series.kind, series.ordered()});
  }
  return out;
}

SeriesView TimeSeriesSampler::series_for(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return SeriesView{name, "", {}};
  return SeriesView{name, it->second.kind, it->second.ordered()};
}

double TimeSeriesSampler::rate_per_sec(const std::string& name,
                                       std::size_t window) const {
  std::lock_guard lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return 0.0;
  const std::vector<SeriesPoint> pts = it->second.ordered();
  if (pts.size() < 2) return 0.0;
  if (window == 0) window = 1;
  const std::size_t span = std::min(window, pts.size() - 1);
  const SeriesPoint& newest = pts.back();
  const SeriesPoint& oldest = pts[pts.size() - 1 - span];
  if (newest.t_ms <= oldest.t_ms) return 0.0;
  return (newest.value - oldest.value) * 1000.0 /
         static_cast<double>(newest.t_ms - oldest.t_ms);
}

double TimeSeriesSampler::last_delta(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return 0.0;
  const std::vector<SeriesPoint> pts = it->second.ordered();
  if (pts.size() < 2) return 0.0;
  return pts.back().value - pts[pts.size() - 2].value;
}

std::string TimeSeriesSampler::to_json() const {
  const std::vector<SeriesView> all = series();
  std::uint64_t samples, dropped;
  {
    std::lock_guard lock(mutex_);
    samples = samples_;
    dropped = 0;
    for (const auto& [name, series] : series_) {
      (void)name;
      dropped += series.recorded - series.buf.size();
    }
  }
  std::ostringstream os;
  os << "{\n  \"capacity\": " << capacity_ << ",\n  \"samples\": " << samples
     << ",\n  \"dropped_points\": " << dropped << ",\n  \"series\": [";
  for (std::size_t s = 0; s < all.size(); ++s) {
    const SeriesView& view = all[s];
    os << (s == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(view.name) << "\", \"kind\": \"" << view.kind
       << "\", \"points\": [";
    for (std::size_t p = 0; p < view.points.size(); ++p) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.17g", view.points[p].value);
      os << (p == 0 ? "" : ", ") << '[' << view.points[p].t_ms << ", " << buf
         << ']';
    }
    os << "]}";
  }
  os << (all.empty() ? "" : "\n  ") << "]\n}";
  return os.str();
}

}  // namespace lbmv::obs

#pragma once

/// \file trace.h
/// Lightweight trace spans with a ring-buffer recorder and Chrome
/// `trace_event` JSON export.
///
/// A `Span` is an RAII probe around a scope (a protocol round, one
/// replication, an epoch): construction stamps a start time, destruction
/// records a completed event into the process-wide `TraceRecorder`.  The
/// recorder keeps one bounded ring buffer per recording thread, so a long
/// run keeps the most recent spans per thread and counts what it dropped
/// instead of growing without bound.
///
/// `to_chrome_json()` emits the Trace Event Format ("ph":"X" complete
/// events, microsecond timestamps) that chrome://tracing and Perfetto
/// open directly, so a whole replicated round can be inspected on a
/// per-thread timeline.
///
/// Cost: with recording off, a Span is one relaxed load in the
/// constructor and a null check in the destructor; compiled out
/// (`LBMV_OBS=0`) it is an empty object.  Span names/categories must be
/// string literals (or otherwise outlive the recorder) — they are stored
/// as pointers, never copied.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lbmv/obs/obs.h"

namespace lbmv::obs {

/// Nanoseconds on the steady clock (arbitrary epoch; only differences and
/// per-process ordering matter).
[[nodiscard]] std::uint64_t now_ns();

/// One completed span.
struct TraceEvent {
  const char* name = nullptr;  ///< static string (see file comment)
  const char* category = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t tid = 0;  ///< recorder-assigned small thread id
};

/// Per-thread ring buffers of completed spans.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;

  explicit TraceRecorder(std::size_t capacity_per_thread = kDefaultCapacity);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Append a completed span to the calling thread's ring (oldest entry
  /// overwritten when full).  No-op while recording is disabled.
  void record(const char* name, const char* category, std::uint64_t start_ns,
              std::uint64_t duration_ns);

  /// All retained events across threads, sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}); timestamps are
  /// microseconds relative to the earliest retained span.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Spans overwritten because a ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Forget every retained span (ring capacity and thread ids kept).
  void clear();

  /// Ring capacity for threads that have not recorded yet (existing rings
  /// keep their size).
  void set_capacity(std::size_t capacity_per_thread);

  /// The process-wide recorder `Span` writes to.
  static TraceRecorder& global();

 private:
  struct Ring;

  mutable std::mutex mutex_;
  std::map<std::thread::id, std::shared_ptr<Ring>> rings_;
  std::size_t capacity_;
  std::uint32_t next_tid_ = 1;
};

/// RAII scope probe recording into TraceRecorder::global().
class Span {
 public:
  explicit Span(const char* name, const char* category = "lbmv") {
#if LBMV_OBS
    if (enabled()) {
      name_ = name;
      category_ = category;
      start_ns_ = now_ns();
    }
#else
    (void)name;
    (void)category;
#endif
  }

  ~Span() {
#if LBMV_OBS
    if (name_ != nullptr) {
      TraceRecorder::global().record(name_, category_, start_ns_,
                                     now_ns() - start_ns_);
    }
#endif
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace lbmv::obs

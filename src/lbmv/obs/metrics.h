#pragma once

/// \file metrics.h
/// Sharded metrics registry: named counters, additive gauges, and
/// log-linear (HDR-style) histograms.
///
/// ## Design
///
/// A `Registry` owns metric *families* (name -> index, registered once,
/// cheap handles returned) and a list of per-thread **shards**.  Every
/// recording thread lazily gets its own shard; a probe writes only to its
/// shard's cells (relaxed atomics, no cross-thread contention), and
/// `snapshot()` merges all shards.  Instrumenting the simulation hot path
/// and the ReplicationRunner's pool workers therefore never makes threads
/// fight over a cache line: merge cost is paid by the scraper, not the
/// hot path.
///
/// Merge semantics are chosen so shard merging is associative and
/// commutative regardless of which thread recorded what:
///
///   * **Counter** — monotone sum of u64 increments.
///   * **Gauge** — *additive* gauge (OpenTelemetry's UpDownCounter):
///     `add(+d)` / `add(-d)`; the merged value is the sum of all deltas.
///     Use it for occupancy-style quantities (queue depth, slab slots in
///     use), not for last-value sampling.
///   * **Histogram** — log-linear buckets (16 linear sub-buckets per
///     power of two, ~6% relative width) spanning [2^-34, 2^30), with an
///     underflow bucket (zero, negatives, subnormals below range) and an
///     overflow bucket (+inf and anything >= 2^30).  NaN samples are
///     counted separately and excluded from count/sum/quantiles.
///     Merging sums bucket counts, counts and sums, and takes min/max.
///
/// ## Cost model
///
/// With recording off (`obs::enabled()` false) a probe is one relaxed
/// load and a predicted branch; compiled out (`LBMV_OBS=0`) it is
/// nothing.  With recording on, a counter increment is a thread-local
/// cache lookup plus one relaxed fetch_add.
///
/// The registry deliberately depends on nothing else in lbmv (it sits
/// below util so the thread pool itself can be instrumented); snapshots
/// serialise to Prometheus text and plain JSON strings.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "lbmv/obs/obs.h"

namespace lbmv::obs {

// ---- histogram bucket geometry -------------------------------------------

inline constexpr int kHistogramSubBits = 4;  ///< 16 sub-buckets per octave
inline constexpr int kHistogramSubBuckets = 1 << kHistogramSubBits;
inline constexpr int kHistogramMinExp = -34;  ///< lower edge 2^-34 ~ 5.8e-11
inline constexpr int kHistogramMaxExp = 30;   ///< upper edge 2^30 ~ 1.07e9
/// Total bucket count: one underflow, (maxExp-minExp)*16 in-range, one
/// overflow.
inline constexpr std::size_t kHistogramBuckets =
    static_cast<std::size_t>(kHistogramMaxExp - kHistogramMinExp) *
        kHistogramSubBuckets +
    2;

/// Bucket index for \p value: 0 for v <= 0 (and subnormals below range),
/// kHistogramBuckets-1 for v >= 2^30 (including +inf).  NaN is the
/// caller's problem (Histogram::record filters it first).  O(1): the index
/// is read straight out of the double's exponent and top mantissa bits.
[[nodiscard]] std::size_t histogram_bucket(double value);

/// Inclusive upper bound of bucket \p index (+inf for the overflow
/// bucket, the range's lower edge for the underflow bucket).
[[nodiscard]] double histogram_bucket_upper(std::size_t index);

// ---- handles --------------------------------------------------------------

class Registry;

/// Monotone counter handle.  Cheap to copy; default-constructed handles
/// are inert no-ops (useful for conditionally-resolved per-instance
/// probes).
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
#if LBMV_OBS
    if (registry_ != nullptr && enabled()) detail_add(n);
#else
    (void)n;
#endif
  }

 private:
  friend class Registry;
  Counter(Registry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  void detail_add(std::uint64_t n);

  Registry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Additive gauge handle (merged value = sum of all deltas).
class Gauge {
 public:
  Gauge() = default;

  void add(double delta) {
#if LBMV_OBS
    if (registry_ != nullptr && enabled()) detail_add(delta);
#else
    (void)delta;
#endif
  }

 private:
  friend class Registry;
  Gauge(Registry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  void detail_add(double delta);

  Registry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Log-linear histogram handle.
class Histogram {
 public:
  Histogram() = default;

  void record(double value) {
#if LBMV_OBS
    if (registry_ != nullptr && enabled()) detail_record(value);
#else
    (void)value;
#endif
  }

 private:
  friend class Registry;
  Histogram(Registry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  void detail_record(double value);

  Registry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

// ---- snapshots ------------------------------------------------------------

/// Merged view of one histogram family.
struct HistogramSnapshot {
  std::uint64_t count = 0;      ///< finite samples (NaN excluded)
  std::uint64_t nan_count = 0;  ///< dropped NaN samples
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
  std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets entries

  [[nodiscard]] double mean() const;
  /// Upper bound of the bucket where the cumulative count first reaches
  /// q * count (q in [0, 1]); clamped to [min, max] so in-bucket
  /// resolution never reports beyond an observed extreme.  0 when empty.
  [[nodiscard]] double quantile(double q) const;
};

/// Point-in-time merge of every shard of a registry.
struct MetricsSnapshot {
  /// Wall clock at merge time (Unix milliseconds), stamped by
  /// Registry::snapshot(); the exposition timestamp base shared with the
  /// time-series sampler (sampler.h).
  std::uint64_t timestamp_ms = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Prometheus text exposition format (counters, gauges, cumulative
  /// histogram buckets with `le` labels).  With \p with_timestamps every
  /// sample line carries the snapshot's timestamp_ms.
  [[nodiscard]] std::string to_prometheus(bool with_timestamps = false) const;
  /// Plain JSON document: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p95, p99,
  /// buckets: [{le, count}...]}}}.  Only non-empty buckets are emitted;
  /// the overflow bucket's le serialises as max-double (JSON has no inf).
  [[nodiscard]] std::string to_json() const;
};

// ---- registry -------------------------------------------------------------

/// Family registration plus per-thread shard management.  All methods are
/// thread-safe; family registration and snapshotting take locks, recording
/// does not (beyond first-touch shard/cell setup).
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-register a family and return its handle.  Call once per
  /// probe site (e.g. at component construction), not per event.
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] Histogram histogram(const std::string& name);

  /// Merge every shard (live and retired threads alike) into a snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every cell in every shard, keeping families and shard storage.
  void reset();

  /// The process-wide default registry all built-in probes use.
  static Registry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard;

  Shard& local_shard();
  void counter_add(std::uint32_t index, std::uint64_t n);
  void gauge_add(std::uint32_t index, double delta);
  void histogram_record(std::uint32_t index, double value);

  const std::uint64_t id_;  ///< process-unique; keys thread-local caches
  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::map<std::string, std::uint32_t> counter_index_;
  std::map<std::string, std::uint32_t> gauge_index_;
  std::map<std::string, std::uint32_t> histogram_index_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

/// Compose a Prometheus-style labelled family name:
/// labeled("lbmv_server_arrivals_total", "server", "C1") ->
/// `lbmv_server_arrivals_total{server="C1"}`.
[[nodiscard]] std::string labeled(std::string_view family,
                                  std::string_view key,
                                  std::string_view value);

}  // namespace lbmv::obs

#pragma once

/// \file obs.h
/// Master switches for the lbmv observability layer.
///
/// Observability in this repo is **zero-cost when off** at two levels:
///
///   * **Compile time** — building with `-DLBMV_OBS=0` (CMake option
///     `LBMV_OBS=OFF`) turns every probe into an empty inline function:
///     `obs::enabled()` becomes `constexpr false`, so instrumentation
///     guarded by `if (obs::enabled())` is dead code the optimiser deletes
///     outright.  The registry and trace recorder still compile (snapshots
///     are simply empty), so no caller needs `#if` guards.
///   * **Run time** — with probes compiled in (the default), recording is
///     gated on one process-wide flag read with a single relaxed atomic
///     load.  The flag starts **off**; nothing is recorded until a caller
///     (the `lbmv obs` command, a bench, a test) opts in via
///     `set_enabled(true)`.  BENCH_perf.json's `obs_overhead` section
///     tracks that the disabled-but-compiled-in cost stays below the noise
///     floor of the event-loop microbenchmarks.
///
/// The layer lives *below* util (lbmv_obs has no lbmv dependencies) so the
/// thread pool and every layer above it can be instrumented without
/// dependency cycles.

#include <atomic>

#ifndef LBMV_OBS
#define LBMV_OBS 1
#endif

namespace lbmv::obs {

/// Whether probes are compiled in at all (`LBMV_OBS` != 0).
inline constexpr bool kCompiledIn = LBMV_OBS != 0;

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

#if LBMV_OBS
/// One relaxed load: the whole cost of a probe while recording is off.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
#else
/// Probes compiled out: instrumentation guarded by this is dead code.
[[nodiscard]] constexpr bool enabled() { return false; }
#endif

/// Turn run-time recording on or off (process-wide).  Handles resolved
/// while recording was off still work afterwards; per-instance probes that
/// check enabled() at construction (e.g. sim::Server) must be constructed
/// with recording on to participate.
void set_enabled(bool on);

}  // namespace lbmv::obs

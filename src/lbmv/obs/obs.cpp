#include "lbmv/obs/obs.h"

namespace lbmv::obs {

namespace detail {
// Recording starts off: an uninstrumented-looking process until someone
// opts in.  The flag exists even in LBMV_OBS=0 builds so set_enabled stays
// link-compatible; enabled() just never reads it there.
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

}  // namespace lbmv::obs

#pragma once

/// \file probes.h
/// Pre-registered metric families for the built-in instrumentation.
///
/// Each bundle groups the handles one subsystem records into, resolved
/// once from `Registry::global()` behind a function-local static, so
/// probe sites pay a handle copy at component construction and a relaxed
/// atomic on the hot path — never a name lookup.
///
/// Families (all exported by `lbmv obs`, documented in DESIGN.md §9):
///
///   counters
///     lbmv_sim_events_total                   events dispatched
///     lbmv_sim_events_kind_total{kind=...}    per EventKind
///     lbmv_sim_window_refills_total           calendar window refills
///     lbmv_sim_source_jobs_total              jobs emitted by JobSource
///     lbmv_server_arrivals_total{server=...}  per-server submissions
///     lbmv_server_completions_total{server=...}
///     lbmv_mech_rounds_total                  mechanism rounds (run/run_into)
///     lbmv_mech_batch_runs_total              Mechanism::run_batch calls
///     lbmv_mech_linear_fast_rounds_total      rounds on the fused linear path
///     lbmv_mech_allocs_avoided_total          heap allocations the fused
///                                             path skipped vs the scalar one
///     lbmv_mech_simd_rounds_total             rounds on the vectorized
///                                             engine (DESIGN.md §12)
///     lbmv_mech_sharded_rounds_total          vectorized rounds whose agent
///                                             axis fanned over the pool
///     lbmv_mech_nonlinear_rounds_total        rounds on the fused nonlinear
///                                             engines (DESIGN.md §14)
///     lbmv_mech_newton_iters_total            KKT Newton iterations spent
///                                             by the workload engine
///     lbmv_mech_audit_evaluations_total       audit grid points evaluated
///     lbmv_mech_leave_one_out_batches_total   leave-one-out batch solves
///     lbmv_core_delta_rounds_total            delta batches absorbed by the
///                                             cross-round DeltaRoundEngine
///                                             (DESIGN.md §15)
///     lbmv_core_full_rebuilds_total           exact aggregate rebuilds
///                                             (initial build + drift cadence)
///     lbmv_pool_tasks_total                   thread-pool tasks executed
///     lbmv_pool_parallel_for_total            parallel_for invocations
///     lbmv_protocol_rounds_total              VerifiedProtocol rounds
///     lbmv_protocol_replications_total        completed replications
///     lbmv_protocol_estimate_fallbacks_total  rate-estimate fallbacks
///     lbmv_strategy_deviation_evals_total     DeviationEvaluator queries
///     lbmv_strategy_mechanism_runs_avoided_total  fast-path queries that
///                                             skipped a full Mechanism::run
///     lbmv_strategy_commits_total             committed deviations
///     lbmv_strategy_grid_evals_total          candidate bids swept by
///                                             strategy::GridEvaluator
///     lbmv_strategy_grid_lanes_wasted_total   padded tail lanes the 4-lane
///                                             grid kernels evaluated
///
///   gauges (additive)
///     lbmv_sim_queue_depth        pending events in the calendar queue
///     lbmv_sim_closure_slab_in_use  pooled closures currently live
///
///   histograms
///     lbmv_sim_window_fill_events   events replayed per window refill
///     lbmv_server_waiting_seconds{server=...}  completed-job waiting time
///     lbmv_mech_round_payment       per-agent payment per round
///     lbmv_mech_round_bonus         per-agent bonus per round
///     lbmv_mech_shard_count         pool tasks per sharded round
///     lbmv_mech_batch_size          profiles per run_batch call
///     lbmv_core_delta_dirty_agents  dirty agents (k) per absorbed delta batch
///     lbmv_mech_leave_one_out_batch_size
///     lbmv_pool_chunk_size          parallel_for grain sizes
///     lbmv_strategy_best_response_round_seconds  wall time per dynamics round
///     lbmv_strategy_grid_round_seconds  wall time per candidate-grid sweep

#include <cstdint>

#include "lbmv/obs/metrics.h"

namespace lbmv::obs {

/// Simulation core (engine + job source).
struct SimProbes {
  Counter events_total;
  Counter events_by_kind[5];  ///< indexed by sim::EventKind value
  Counter window_refills;
  Counter source_jobs;
  Gauge queue_depth;
  Gauge slab_in_use;
  Histogram window_fill;

  static SimProbes& get();
};

/// Mechanism, audit, and leave-one-out payment engine.
struct MechProbes {
  Counter rounds;
  Counter batch_runs;
  Counter linear_fast_rounds;
  Counter allocs_avoided;
  Counter simd_rounds;
  Counter sharded_rounds;
  Counter nonlinear_rounds;
  Counter newton_iters;
  Counter audit_evaluations;
  Counter loo_batches;
  Histogram round_payment;
  Histogram round_bonus;
  Histogram batch_size;
  Histogram loo_batch_size;
  Histogram shard_count;

  static MechProbes& get();
};

/// core::DeltaRoundEngine (cross-round sparse recomputation).
struct CoreProbes {
  Counter delta_rounds;    ///< delta batches absorbed in O(k)
  Counter full_rebuilds;   ///< exact aggregate re-sums (drift cadence)
  Histogram dirty_agents;  ///< k per absorbed batch

  static CoreProbes& get();
};

/// util::ThreadPool.
struct PoolProbes {
  Counter tasks;
  Counter parallel_fors;
  Histogram chunk_size;

  static PoolProbes& get();
};

/// VerifiedProtocol / ReplicationRunner.
struct ProtocolProbes {
  Counter rounds;
  Counter replications;
  Counter estimate_fallbacks;

  static ProtocolProbes& get();
};

/// Strategy layer: DeviationEvaluator, GridEvaluator and best-response
/// dynamics.
struct StrategyProbes {
  Counter deviation_evals;
  Counter mechanism_runs_avoided;
  Counter commits;
  Counter grid_evals;
  Counter grid_lanes_wasted;
  Histogram round_seconds;
  Histogram grid_round_seconds;

  static StrategyProbes& get();
};

}  // namespace lbmv::obs

#include "lbmv/obs/monitor.h"

#include <cmath>
#include <cstring>

namespace lbmv::obs {

namespace {

std::string monitor_metric(const char* name, const char* suffix) {
  std::string out = "lbmv_monitor_";
  out += name;
  out += suffix;
  return out;
}

}  // namespace

InvariantMonitor::InvariantMonitor(const char* name, const char* subsystem,
                                   double tolerance)
    : name_(name),
      subsystem_(subsystem),
      tolerance_(tolerance),
      checks_(Registry::global().counter(monitor_metric(name, "_checks_total"))),
      violations_(
          Registry::global().counter(monitor_metric(name, "_violations_total"))),
      residual_(Registry::global().histogram(monitor_metric(name, "_residual"))) {
}

bool InvariantMonitor::check(
    double residual, std::initializer_list<FlightRecord::KeyValue> payload) {
  const double magnitude = std::fabs(residual);
  checks_.inc();
  residual_.record(magnitude);
  if (!(magnitude > tolerance_)) return true;  // NaN tolerance never fires
  violations_.inc();
  FlightRecord::KeyValue kv[FlightRecord::kMaxKeyValues];
  std::size_t count = 0;
  kv[count++] = {"residual", residual};
  for (const FlightRecord::KeyValue& extra : payload) {
    if (count >= FlightRecord::kMaxKeyValues) break;
    kv[count++] = extra;
  }
#if LBMV_OBS
  FlightRecorder::global().record(Severity::kError, subsystem_, name_, kv,
                                  count);
#endif
  return false;
}

Monitors& Monitors::get() {
  static Monitors monitors;
  return monitors;
}

MonitorTotals monitor_totals(const MetricsSnapshot& snapshot) {
  MonitorTotals totals;
  constexpr std::string_view kPrefix = "lbmv_monitor_";
  constexpr std::string_view kChecks = "_checks_total";
  constexpr std::string_view kViolations = "_violations_total";
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    const auto ends_with = [&](std::string_view suffix) {
      return name.size() >= suffix.size() &&
             name.compare(name.size() - suffix.size(), suffix.size(),
                          suffix) == 0;
    };
    if (ends_with(kViolations)) {
      totals.violations += value;
    } else if (ends_with(kChecks)) {
      totals.checks += value;
    }
  }
  return totals;
}

}  // namespace lbmv::obs

#include "lbmv/obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

#include "lbmv/obs/trace.h"  // now_ns

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <fcntl.h>
#include <unistd.h>
#define LBMV_FLIGHT_POSIX 1
#else
#define LBMV_FLIGHT_POSIX 0
#endif

namespace lbmv::obs {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "info";
}

/// Fixed-capacity ring: the first `buf.size()` records append, later ones
/// overwrite round-robin at `next` (same shape as TraceRecorder::Ring).
struct FlightRecorder::Ring {
  std::uint32_t tid = 0;
  std::size_t capacity = 0;
  std::vector<FlightRecord> buf;
  std::size_t next = 0;
  std::uint64_t recorded = 0;
};

FlightRecorder::FlightRecorder(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(
    Severity severity, const char* subsystem, const char* message,
    std::initializer_list<FlightRecord::KeyValue> payload) {
  record(severity, subsystem, message, payload.begin(), payload.size());
}

void FlightRecorder::record(Severity severity, const char* subsystem,
                            const char* message,
                            const FlightRecord::KeyValue* payload,
                            std::size_t count) {
  if (!enabled()) return;
  FlightRecord rec;
  rec.t_ns = now_ns();
  rec.severity = severity;
  rec.subsystem = subsystem;
  rec.message = message;
  for (std::size_t k = 0; k < count; ++k) {
    if (rec.kv_count >= FlightRecord::kMaxKeyValues) break;
    rec.kv[rec.kv_count++] = payload[k];
  }
  // Anomaly-grained (violations, fallbacks, lifecycle), never per-event:
  // one mutex keeps every reader/writer pair simple and sanitizer-clean,
  // exactly like the trace recorder.
  std::lock_guard lock(mutex_);
  std::shared_ptr<Ring>& ring = rings_[std::this_thread::get_id()];
  if (ring == nullptr) {
    ring = std::make_shared<Ring>();
    ring->tid = next_tid_++;
    ring->capacity = capacity_;
    ring->buf.reserve(std::min<std::size_t>(capacity_, 256));
  }
  rec.tid = ring->tid;
  if (ring->buf.size() < ring->capacity) {
    ring->buf.push_back(rec);
  } else {
    ring->buf[ring->next] = rec;
    ring->next = (ring->next + 1) % ring->capacity;
  }
  ++ring->recorded;
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::vector<FlightRecord> out;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [thread_id, ring] : rings_) {
      (void)thread_id;
      out.insert(out.end(), ring->buf.begin(), ring->buf.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& [thread_id, ring] : rings_) {
    (void)thread_id;
    dropped += ring->recorded - ring->buf.size();
  }
  return dropped;
}

void FlightRecorder::clear() {
  std::lock_guard lock(mutex_);
  rings_.clear();
}

void FlightRecorder::set_capacity(std::size_t capacity_per_thread) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity_per_thread == 0 ? 1 : capacity_per_thread;
}

namespace {

/// One record as a single JSON line (no trailing newline).  Shared by the
/// normal export and the crash path; returns the number of bytes written
/// (clamped to the buffer).
int format_record(char* buf, std::size_t size, const FlightRecord& rec) {
  int off = std::snprintf(buf, size,
                          "{\"t_ns\": %llu, \"tid\": %u, \"severity\": "
                          "\"%s\", \"subsystem\": \"%s\", \"message\": \"%s\"",
                          static_cast<unsigned long long>(rec.t_ns), rec.tid,
                          severity_name(rec.severity),
                          rec.subsystem != nullptr ? rec.subsystem : "",
                          rec.message != nullptr ? rec.message : "");
  if (off < 0) return 0;
  const auto append = [&](const char* fmt, auto... args) {
    if (static_cast<std::size_t>(off) >= size) return;
    const int n = std::snprintf(buf + off, size - static_cast<std::size_t>(off),
                                fmt, args...);
    if (n > 0) off += n;
  };
  append(", \"data\": {");
  for (std::size_t k = 0; k < rec.kv_count; ++k) {
    double v = rec.kv[k].value;
    if (std::isnan(v)) v = 0.0;  // JSON has no nan/inf (metrics.cpp idiom)
    if (std::isinf(v)) v = v > 0 ? 1.7976931348623157e308 : -1.7976931348623157e308;
    append("%s\"%s\": %.17g", k == 0 ? "" : ", ",
           rec.kv[k].key != nullptr ? rec.kv[k].key : "", v);
  }
  append("}}");
  return std::min<int>(off, static_cast<int>(size) - 1);
}

}  // namespace

std::string FlightRecorder::to_jsonl() const {
  const std::vector<FlightRecord> recs = records();
  std::ostringstream os;
  char line[512];
  for (const FlightRecord& rec : recs) {
    format_record(line, sizeof line, rec);
    os << line << '\n';
  }
  return os.str();
}

bool FlightRecorder::dump_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_jsonl();
  return static_cast<bool>(out);
}

void FlightRecorder::crash_dump(int fd) const {
#if LBMV_FLIGHT_POSIX
  // Crash path: the process is dying, so a blocked lock is worse than a
  // torn read.  try_lock and proceed either way; record payloads are plain
  // PODs with static strings, so the worst case is a garbled line.
  const bool locked = mutex_.try_lock();
  char line[512];
  for (const auto& [thread_id, ring] : rings_) {
    (void)thread_id;
    for (const FlightRecord& rec : ring->buf) {
      const int n = format_record(line, sizeof line, rec);
      if (n <= 0) continue;
      line[n] = '\n';
      const auto written = ::write(fd, line, static_cast<std::size_t>(n) + 1);
      (void)written;
    }
  }
  if (locked) mutex_.unlock();
#else
  (void)fd;
#endif
}

namespace {

std::atomic<const char*> g_crash_path{nullptr};
std::terminate_handler g_previous_terminate = nullptr;

#if LBMV_FLIGHT_POSIX
void crash_dump_to_path() {
  const char* path = g_crash_path.load(std::memory_order_relaxed);
  if (path == nullptr) return;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  FlightRecorder::global().crash_dump(fd);
  ::close(fd);
}

void on_terminate() {
  crash_dump_to_path();
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

void on_fatal_signal(int signo) {
  crash_dump_to_path();
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}
#endif

}  // namespace

void install_crash_handler(const char* path) {
#if LBMV_FLIGHT_POSIX
  const char* expected = nullptr;
  if (!g_crash_path.compare_exchange_strong(expected, path,
                                            std::memory_order_relaxed)) {
    g_crash_path.store(path, std::memory_order_relaxed);  // repoint only
    return;
  }
  g_previous_terminate = std::set_terminate(on_terminate);
  ::signal(SIGABRT, on_fatal_signal);
  ::signal(SIGSEGV, on_fatal_signal);
#else
  (void)path;
#endif
}

}  // namespace lbmv::obs

#include "lbmv/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace lbmv::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fixed-capacity ring: the first `buf.size()` records append, later ones
/// overwrite round-robin at `next`.
struct TraceRecorder::Ring {
  std::uint32_t tid = 0;
  std::size_t capacity = 0;
  std::vector<TraceEvent> buf;
  std::size_t next = 0;
  std::uint64_t recorded = 0;
};

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::record(const char* name, const char* category,
                           std::uint64_t start_ns,
                           std::uint64_t duration_ns) {
  if (!enabled()) return;
  // One lock for list lookup and ring write: spans are scope-grained
  // (rounds, replications, epochs), so the recorder is never on a
  // per-event hot path and a mutex keeps every reader/writer pair simple
  // and sanitizer-clean.
  std::lock_guard lock(mutex_);
  std::shared_ptr<Ring>& ring = rings_[std::this_thread::get_id()];
  if (ring == nullptr) {
    ring = std::make_shared<Ring>();
    ring->tid = next_tid_++;
    ring->capacity = capacity_;
    ring->buf.reserve(std::min<std::size_t>(capacity_, 1024));
  }
  const TraceEvent event{name, category, start_ns, duration_ns, ring->tid};
  if (ring->buf.size() < ring->capacity) {
    ring->buf.push_back(event);
  } else {
    ring->buf[ring->next] = event;
    ring->next = (ring->next + 1) % ring->capacity;
  }
  ++ring->recorded;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [thread_id, ring] : rings_) {
      (void)thread_id;
      out.insert(out.end(), ring->buf.begin(), ring->buf.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& [thread_id, ring] : rings_) {
    (void)thread_id;
    dropped += ring->recorded - ring->buf.size();
  }
  return dropped;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mutex_);
  rings_.clear();
}

void TraceRecorder::set_capacity(std::size_t capacity_per_thread) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity_per_thread == 0 ? 1 : capacity_per_thread;
}

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<TraceEvent> evs = events();
  const std::uint64_t base = evs.empty() ? 0 : evs.front().start_ns;
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    char ts[40], dur[40];
    std::snprintf(ts, sizeof ts, "%.3f",
                  static_cast<double>(e.start_ns - base) / 1000.0);
    std::snprintf(dur, sizeof dur, "%.3f",
                  static_cast<double>(e.duration_ns) / 1000.0);
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"" << e.name
       << "\", \"cat\": \"" << e.category
       << "\", \"ph\": \"X\", \"ts\": " << ts << ", \"dur\": " << dur
       << ", \"pid\": 1, \"tid\": " << e.tid << '}';
  }
  os << (evs.empty() ? "" : "\n") << "]}";
  return os.str();
}

}  // namespace lbmv::obs

#include "lbmv/obs/probes.h"

namespace lbmv::obs {

SimProbes& SimProbes::get() {
  static SimProbes probes = [] {
    Registry& r = Registry::global();
    SimProbes p;
    p.events_total = r.counter("lbmv_sim_events_total");
    static constexpr const char* kKinds[5] = {
        "closure", "arrival", "service_completion", "epoch_boundary",
        "horizon"};
    for (int k = 0; k < 5; ++k) {
      p.events_by_kind[k] =
          r.counter(labeled("lbmv_sim_events_kind_total", "kind", kKinds[k]));
    }
    p.window_refills = r.counter("lbmv_sim_window_refills_total");
    p.source_jobs = r.counter("lbmv_sim_source_jobs_total");
    p.queue_depth = r.gauge("lbmv_sim_queue_depth");
    p.slab_in_use = r.gauge("lbmv_sim_closure_slab_in_use");
    p.window_fill = r.histogram("lbmv_sim_window_fill_events");
    return p;
  }();
  return probes;
}

MechProbes& MechProbes::get() {
  static MechProbes probes = [] {
    Registry& r = Registry::global();
    MechProbes p;
    p.rounds = r.counter("lbmv_mech_rounds_total");
    p.batch_runs = r.counter("lbmv_mech_batch_runs_total");
    p.linear_fast_rounds = r.counter("lbmv_mech_linear_fast_rounds_total");
    p.allocs_avoided = r.counter("lbmv_mech_allocs_avoided_total");
    p.simd_rounds = r.counter("lbmv_mech_simd_rounds_total");
    p.sharded_rounds = r.counter("lbmv_mech_sharded_rounds_total");
    p.nonlinear_rounds = r.counter("lbmv_mech_nonlinear_rounds_total");
    p.newton_iters = r.counter("lbmv_mech_newton_iters_total");
    p.audit_evaluations = r.counter("lbmv_mech_audit_evaluations_total");
    p.loo_batches = r.counter("lbmv_mech_leave_one_out_batches_total");
    p.round_payment = r.histogram("lbmv_mech_round_payment");
    p.round_bonus = r.histogram("lbmv_mech_round_bonus");
    p.batch_size = r.histogram("lbmv_mech_batch_size");
    p.loo_batch_size = r.histogram("lbmv_mech_leave_one_out_batch_size");
    p.shard_count = r.histogram("lbmv_mech_shard_count");
    return p;
  }();
  return probes;
}

CoreProbes& CoreProbes::get() {
  static CoreProbes probes = [] {
    Registry& r = Registry::global();
    CoreProbes p;
    p.delta_rounds = r.counter("lbmv_core_delta_rounds_total");
    p.full_rebuilds = r.counter("lbmv_core_full_rebuilds_total");
    p.dirty_agents = r.histogram("lbmv_core_delta_dirty_agents");
    return p;
  }();
  return probes;
}

PoolProbes& PoolProbes::get() {
  static PoolProbes probes = [] {
    Registry& r = Registry::global();
    PoolProbes p;
    p.tasks = r.counter("lbmv_pool_tasks_total");
    p.parallel_fors = r.counter("lbmv_pool_parallel_for_total");
    p.chunk_size = r.histogram("lbmv_pool_chunk_size");
    return p;
  }();
  return probes;
}

ProtocolProbes& ProtocolProbes::get() {
  static ProtocolProbes probes = [] {
    Registry& r = Registry::global();
    ProtocolProbes p;
    p.rounds = r.counter("lbmv_protocol_rounds_total");
    p.replications = r.counter("lbmv_protocol_replications_total");
    p.estimate_fallbacks = r.counter("lbmv_protocol_estimate_fallbacks_total");
    return p;
  }();
  return probes;
}

StrategyProbes& StrategyProbes::get() {
  static StrategyProbes probes = [] {
    Registry& r = Registry::global();
    StrategyProbes p;
    p.deviation_evals = r.counter("lbmv_strategy_deviation_evals_total");
    p.mechanism_runs_avoided =
        r.counter("lbmv_strategy_mechanism_runs_avoided_total");
    p.commits = r.counter("lbmv_strategy_commits_total");
    p.grid_evals = r.counter("lbmv_strategy_grid_evals_total");
    p.grid_lanes_wasted = r.counter("lbmv_strategy_grid_lanes_wasted_total");
    p.round_seconds = r.histogram("lbmv_strategy_best_response_round_seconds");
    p.grid_round_seconds = r.histogram("lbmv_strategy_grid_round_seconds");
    return p;
  }();
  return probes;
}

}  // namespace lbmv::obs

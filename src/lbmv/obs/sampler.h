#pragma once

/// \file sampler.h
/// Time-series sampler: the sharded registry, scraped on a cadence into
/// bounded ring-buffered series.
///
/// The registry only holds monotone totals; a live dashboard wants *rates*
/// and *deltas*.  `TimeSeriesSampler` snapshots a `Registry` on a fixed
/// cadence — driven either by its own background thread (`start`/`stop`)
/// or by the caller's clock (`sample` / `sample_at`, e.g. per simulated
/// epoch) — and appends one point per metric into a fixed-capacity ring
/// (overwrite-oldest, like the trace and flight rings):
///
///   * counters    -> the running total,
///   * gauges      -> the merged value,
///   * histograms  -> two series, `<name>:count` and `<name>:sum`.
///
/// From the rings it answers windowed queries (`rate_per_sec`,
/// `last_delta`) for the `lbmv obs --watch` panels and exports the whole
/// buffer as a timestamped JSON timeseries (`to_json`) for `--snapshot
/// timeseries`.
///
/// Cost: sampling cost is the scraper's (one shard merge per cadence
/// tick), never the hot path's; a sampler that is never started costs
/// nothing.  All methods are thread-safe; the background thread and a
/// dashboard reader may overlap freely.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lbmv/obs/metrics.h"

namespace lbmv::obs {

/// Milliseconds on the wall clock (Unix epoch) — the exposition timestamp
/// base shared with MetricsSnapshot::timestamp_ms.
[[nodiscard]] std::uint64_t wall_now_ms();

/// One retained sample of one series.
struct SeriesPoint {
  std::uint64_t t_ms = 0;  ///< wall clock unless the caller stamps its own
  double value = 0.0;
};

/// A copied-out view of one series.
struct SeriesView {
  std::string name;
  /// "counter", "gauge", "histogram_count" or "histogram_sum".
  std::string kind;
  std::vector<SeriesPoint> points;  ///< oldest first
};

class TimeSeriesSampler {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit TimeSeriesSampler(Registry& registry = Registry::global(),
                             std::size_t capacity_per_series = kDefaultCapacity);
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Take one sample now (wall clock).
  void sample();

  /// Take one sample stamped with the caller's clock (monotone per
  /// sampler; e.g. simulated milliseconds).
  void sample_at(std::uint64_t t_ms);

  /// Start the background scraper at \p period.  No-op when running.
  void start(std::chrono::milliseconds period);

  /// Stop the background scraper (joins).  No-op when not running.
  void stop();
  [[nodiscard]] bool running() const;

  /// Samples taken so far (each covers every registered family).
  [[nodiscard]] std::uint64_t sample_count() const;

  /// Points discarded to ring overwrite, across all series.
  [[nodiscard]] std::uint64_t dropped_points() const;

  /// All series, oldest point first, sorted by name.
  [[nodiscard]] std::vector<SeriesView> series() const;

  /// One series by name (histograms: "<name>:count" / "<name>:sum");
  /// empty view when unknown.
  [[nodiscard]] SeriesView series_for(const std::string& name) const;

  /// Mean increase per second over (up to) the last \p window intervals —
  /// the delta between the newest point and the one \p window samples
  /// back, divided by the timestamp span.  0 with fewer than two points.
  /// For counters this is the windowed rate; for gauges, the slope.
  [[nodiscard]] double rate_per_sec(const std::string& name,
                                    std::size_t window = 8) const;

  /// Newest value minus previous value (0 with fewer than two points).
  [[nodiscard]] double last_delta(const std::string& name) const;

  /// The whole buffer as a timestamped JSON timeseries:
  /// {"capacity": C, "samples": N, "dropped_points": D,
  ///  "series": [{"name", "kind", "points": [[t_ms, value], ...]}, ...]}.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Series {
    std::string kind;
    std::vector<SeriesPoint> buf;  ///< ring once buf.size() == capacity
    std::size_t next = 0;
    std::uint64_t recorded = 0;

    void append(std::uint64_t t_ms, double value, std::size_t capacity);
    [[nodiscard]] std::vector<SeriesPoint> ordered() const;
  };

  void append_sample_locked(std::uint64_t t_ms, const MetricsSnapshot& snap);
  void run_loop(std::chrono::milliseconds period);

  Registry* registry_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
  std::uint64_t samples_ = 0;

  mutable std::mutex thread_mutex_;  ///< guards start/stop vs each other
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace lbmv::obs

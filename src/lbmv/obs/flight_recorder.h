#pragma once

/// \file flight_recorder.h
/// Crash-safe flight recorder: per-thread rings of structured records.
///
/// A `FlightRecord` is one structured event — severity, subsystem, a
/// static message and up to four numeric key/value pairs — stamped with
/// the steady clock and the recording thread.  The recorder keeps one
/// fixed-capacity ring per thread (overwrite-oldest, mirroring
/// `TraceRecorder`), so a long run always retains the most recent
/// anomalies and counts what it dropped instead of growing without bound.
///
/// Three ways out of the rings:
///
///   * `records()` / `to_jsonl()` — drained on scrape (the `lbmv obs`
///     dashboard and the time-series sampler surface recent records);
///   * `dump_jsonl(path)` — on-demand post-mortem artifact, one JSON
///     object per line;
///   * `install_crash_handler(path)` — a `std::terminate` handler plus
///     SIGABRT/SIGSEGV hooks that best-effort dump the rings before the
///     process dies, so a crashing or gate-failing bench leaves a
///     flight-recorder artifact behind.
///
/// Cost: with recording off, `record()` is one relaxed load; compiled out
/// (`LBMV_OBS=0`) the recorder still links but retains nothing.  Like
/// trace spans, subsystem/message/key strings must be string literals (or
/// otherwise outlive the recorder) — they are stored as pointers, never
/// copied, which is also what makes the crash-path dump safe to format
/// from a signal handler.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lbmv/obs/obs.h"

namespace lbmv::obs {

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

/// Lower-case label ("info" / "warn" / "error").
[[nodiscard]] const char* severity_name(Severity severity);

/// One retained record.  At most `kMaxKeyValues` numeric payload entries;
/// extra entries passed to record() are dropped (the count is clamped).
struct FlightRecord {
  static constexpr std::size_t kMaxKeyValues = 4;

  struct KeyValue {
    const char* key = nullptr;  ///< static string (see file comment)
    double value = 0.0;
  };

  std::uint64_t t_ns = 0;  ///< steady clock (trace.h now_ns epoch)
  std::uint32_t tid = 0;   ///< recorder-assigned small thread id
  Severity severity = Severity::kInfo;
  const char* subsystem = nullptr;  ///< static string
  const char* message = nullptr;    ///< static string
  std::size_t kv_count = 0;
  KeyValue kv[kMaxKeyValues];
};

/// Per-thread ring buffers of flight records.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 10;

  explicit FlightRecorder(std::size_t capacity_per_thread = kDefaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append a record to the calling thread's ring (oldest entry
  /// overwritten when full).  No-op while recording is disabled.
  void record(Severity severity, const char* subsystem, const char* message,
              std::initializer_list<FlightRecord::KeyValue> payload = {});

  /// Same, from a caller-built payload array (first kMaxKeyValues kept).
  void record(Severity severity, const char* subsystem, const char* message,
              const FlightRecord::KeyValue* payload, std::size_t count);

  /// All retained records across threads, sorted by timestamp.
  [[nodiscard]] std::vector<FlightRecord> records() const;

  /// JSON-lines export: one object per record, sorted by timestamp.
  /// {"t_ns":..,"tid":..,"severity":"..","subsystem":"..",
  ///  "message":"..","data":{"key":value,...}}
  [[nodiscard]] std::string to_jsonl() const;

  /// Write to_jsonl() to \p path (truncating).  Returns false on I/O error.
  bool dump_jsonl(const std::string& path) const;

  /// Records overwritten because a ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Forget every retained record (capacity and thread ids kept).
  void clear();

  /// Ring capacity for threads that have not recorded yet (existing rings
  /// keep their size).
  void set_capacity(std::size_t capacity_per_thread);

  /// The process-wide recorder the built-in monitors write to.
  static FlightRecorder& global();

  /// Best-effort dump for the crash path: tries the lock, formats with
  /// snprintf into a fixed buffer and writes straight to \p fd.  Called
  /// from terminate/signal handlers — no allocation, no iostreams.
  void crash_dump(int fd) const;

 private:
  struct Ring;

  mutable std::mutex mutex_;
  std::map<std::thread::id, std::shared_ptr<Ring>> rings_;
  std::size_t capacity_;
  std::uint32_t next_tid_ = 1;
};

/// Shorthand: record into FlightRecorder::global().
inline void flight(Severity severity, const char* subsystem,
                   const char* message,
                   std::initializer_list<FlightRecord::KeyValue> payload = {}) {
#if LBMV_OBS
  FlightRecorder::global().record(severity, subsystem, message, payload);
#else
  (void)severity;
  (void)subsystem;
  (void)message;
  (void)payload;
#endif
}

/// Install a std::terminate handler and SIGABRT/SIGSEGV hooks that dump
/// FlightRecorder::global() as JSON-lines to \p path before the process
/// dies.  \p path must be a string literal or otherwise live forever.
/// Idempotent; the previous terminate handler is chained.
void install_crash_handler(const char* path);

}  // namespace lbmv::obs

#include "lbmv/game/wardrop.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/util/error.h"
#include "lbmv/util/roots.h"

namespace lbmv::game {
namespace {

/// Solve l(x) = c for x in (0, max_rate), assuming l(0) < c and strictly
/// increasing l.  Mirrors the marginal-cost inversion of the optimal
/// solver, but on the latency itself (Wardrop's condition).
double invert_latency(const model::LatencyFunction& link, double c) {
  const double cap = link.max_rate();
  double hi;
  if (std::isfinite(cap)) {
    double delta = 0.5 * cap;
    hi = cap - delta;
    while (link.latency(hi) < c && delta > cap * 1e-15) {
      delta *= 0.5;
      hi = cap - delta;
    }
    if (link.latency(hi) < c) return hi;  // effectively saturated
  } else {
    hi = 1.0;
    while (link.latency(hi) < c && hi < 1e300) hi *= 2.0;
    LBMV_REQUIRE(link.latency(hi) >= c,
                 "latency failed to reach the target level — is the link "
                 "strictly increasing?");
  }
  auto g = [&](double x) { return link.latency(x) - c; };
  const double xtol = std::max(hi * 1e-15, 1e-300);
  return util::bisect(g, 0.0, hi, xtol, 0.0, 300).x;
}

}  // namespace

model::Allocation wardrop_equilibrium(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand, double tol) {
  LBMV_REQUIRE(!links.empty(), "need at least one link");
  LBMV_REQUIRE(demand > 0.0, "demand must be positive");
  LBMV_REQUIRE(tol > 0.0, "tolerance must be positive");
  double total_cap = 0.0;
  bool finite_cap = true;
  for (const auto& link : links) {
    LBMV_REQUIRE(link != nullptr, "links must not be null");
    if (std::isfinite(link->max_rate())) {
      total_cap += link->max_rate();
    } else {
      finite_cap = false;
    }
  }
  LBMV_REQUIRE(!finite_cap || demand < total_cap,
               "demand exceeds the total link capacity");

  const std::size_t n = links.size();
  std::vector<double> x(n);
  auto flow_at = [&](double c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double at_zero = links[i]->latency(0.0);
      x[i] = (c <= at_zero) ? 0.0 : invert_latency(*links[i], c);
      total += x[i];
    }
    return total;
  };

  double c_lo = std::numeric_limits<double>::infinity();
  for (const auto& link : links) {
    c_lo = std::min(c_lo, link->latency(0.0));
  }
  double c_hi = std::max(1.0, 2.0 * c_lo + 1.0);
  int expansions = 0;
  while (flow_at(c_hi) < demand) {
    c_hi *= 2.0;
    LBMV_ASSERT(++expansions < 2000, "failed to bracket the common latency");
  }
  const double target_tol = tol * std::max(1.0, demand);
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (c_lo + c_hi);
    const double total = flow_at(mid);
    if (std::fabs(total - demand) <= target_tol) break;
    (total < demand ? c_lo : c_hi) = mid;
    if (c_hi - c_lo <= 1e-16 * std::max(1.0, std::fabs(c_hi))) break;
  }
  double total = flow_at(0.5 * (c_lo + c_hi));
  LBMV_ASSERT(total > 0.0, "degenerate equilibrium flow");
  const double scale = demand / total;
  for (double& xi : x) xi *= scale;
  return model::Allocation(std::move(x));
}

WardropReport check_wardrop(
    const model::Allocation& flow,
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand, double tol) {
  LBMV_REQUIRE(flow.size() == links.size(),
               "flow and link vector must have equal size");
  WardropReport report;
  report.feasible = flow.is_feasible(demand, tol);

  const double used_threshold =
      tol * demand / static_cast<double>(std::max<std::size_t>(flow.size(),
                                                               1));
  double latency_sum = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < flow.size(); ++i) {
    if (flow[i] > used_threshold) {
      latency_sum += links[i]->latency(flow[i]);
      ++used;
    }
  }
  if (used == 0) {
    report.equilibrated = false;
    return report;
  }
  report.common_latency = latency_sum / static_cast<double>(used);
  const double scale = std::max(report.common_latency, 1.0);
  report.equilibrated = true;
  for (std::size_t i = 0; i < flow.size(); ++i) {
    double violation = 0.0;
    if (flow[i] > used_threshold) {
      violation =
          std::fabs(links[i]->latency(flow[i]) - report.common_latency) /
          scale;
    } else {
      violation = std::max(
          0.0, (report.common_latency - links[i]->latency(0.0)) / scale);
    }
    report.max_violation = std::max(report.max_violation, violation);
  }
  if (report.max_violation > tol) report.equilibrated = false;
  return report;
}

PoaReport price_of_anarchy(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand) {
  PoaReport report;
  const model::Allocation equilibrium =
      wardrop_equilibrium(links, demand);
  report.equilibrium_latency = model::total_latency(equilibrium, links);
  const model::Allocation optimum = alloc::convex_allocate(links, demand);
  report.optimal_latency = model::total_latency(optimum, links);
  return report;
}

}  // namespace lbmv::game

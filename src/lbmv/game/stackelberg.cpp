#include "lbmv/game/stackelberg.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/grid.h"
#include "lbmv/util/error.h"

namespace lbmv::game {
namespace {

/// A link observed by the followers after the leader preloaded it:
/// l'(x) = l(preload + x).
class ShiftedLatency final : public model::LatencyFunction {
 public:
  ShiftedLatency(const model::LatencyFunction& base, double preload)
      : base_(&base), preload_(preload) {
    LBMV_REQUIRE(preload >= 0.0, "preload must be non-negative");
  }
  [[nodiscard]] double latency(double x) const override {
    return base_->latency(preload_ + x);
  }
  [[nodiscard]] double latency_derivative(double x) const override {
    return base_->latency_derivative(preload_ + x);
  }
  [[nodiscard]] double max_rate() const override {
    return base_->max_rate() - preload_;
  }
  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "shifted(" << base_->describe() << ", +" << preload_ << ")";
    return os.str();
  }
  [[nodiscard]] std::unique_ptr<model::LatencyFunction> clone()
      const override {
    return std::make_unique<ShiftedLatency>(*base_, preload_);
  }

 private:
  const model::LatencyFunction* base_;
  double preload_;
};

std::vector<double> leader_flow_for(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    const model::Allocation& optimum, double budget,
    StackelbergStrategy strategy) {
  const std::size_t n = links.size();
  std::vector<double> leader(n, 0.0);
  if (budget <= 0.0) return leader;
  switch (strategy) {
    case StackelbergStrategy::kScale: {
      const double alpha = budget / optimum.total_rate();
      for (std::size_t i = 0; i < n; ++i) leader[i] = alpha * optimum[i];
      return leader;
    }
    case StackelbergStrategy::kLargestLatencyFirst: {
      // Fill links by decreasing latency *under the optimal flow*; the
      // followers will then gravitate to the low-latency links the leader
      // left alone.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return links[a]->latency(optimum[a]) > links[b]->latency(optimum[b]);
      });
      double remaining = budget;
      for (std::size_t i : order) {
        const double take = std::min(remaining, optimum[i]);
        leader[i] = take;
        remaining -= take;
        if (remaining <= 0.0) break;
      }
      LBMV_ASSERT(remaining <= 1e-9 * budget,
                  "LLF failed to place the leader's budget");
      return leader;
    }
  }
  LBMV_ASSERT(false, "unknown Stackelberg strategy");
  return leader;
}

}  // namespace

StackelbergReport stackelberg(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand, double alpha, StackelbergStrategy strategy) {
  LBMV_REQUIRE(!links.empty(), "need at least one link");
  LBMV_REQUIRE(demand > 0.0, "demand must be positive");
  LBMV_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0, 1]");

  StackelbergReport report;
  const model::Allocation optimum = alloc::convex_allocate(links, demand);
  report.optimal_latency = model::total_latency(optimum, links);
  report.selfish_latency = model::total_latency(
      wardrop_equilibrium(links, demand), links);

  const double leader_budget = alpha * demand;
  report.leader_flow = model::Allocation(
      leader_flow_for(links, optimum, leader_budget, strategy));

  const double follower_budget = demand - leader_budget;
  std::vector<double> follower(links.size(), 0.0);
  if (follower_budget > 1e-12 * demand) {
    std::vector<std::unique_ptr<model::LatencyFunction>> shifted;
    shifted.reserve(links.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      shifted.push_back(std::make_unique<ShiftedLatency>(
          *links[i], report.leader_flow[i]));
    }
    const model::Allocation equilibrium =
        wardrop_equilibrium(shifted, follower_budget);
    for (std::size_t i = 0; i < links.size(); ++i) {
      follower[i] = equilibrium[i];
    }
  }
  report.follower_flow = model::Allocation(follower);

  std::vector<double> combined(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    combined[i] = report.leader_flow[i] + follower[i];
  }
  report.combined_flow = model::Allocation(std::move(combined));
  report.total_latency = model::total_latency(report.combined_flow, links);
  return report;
}

BidLeaderReport stackelberg_bidding(const core::Mechanism& mechanism,
                                    const model::SystemConfig& config,
                                    const BidLeaderOptions& options) {
  LBMV_REQUIRE(options.leader < config.size(),
               "leader index out of range");
  LBMV_REQUIRE(options.bid_grid >= 2, "bid_grid must be at least 2");
  LBMV_REQUIRE(std::isfinite(options.bid_lo_mult) &&
                   std::isfinite(options.bid_hi_mult),
               "commitment interval must be finite");
  LBMV_REQUIRE(options.bid_lo_mult > 0.0 &&
                   options.bid_lo_mult < options.bid_hi_mult,
               "commitment interval must satisfy 0 < lo < hi");

  const std::size_t leader = options.leader;
  const double t_leader = config.true_value(leader);

  // Log-spaced commitment candidates, with the exact truth appended so the
  // truthful-commitment baseline is always one of the evaluated points.
  std::vector<double> candidates = strategy::make_bid_grid(
      options.bid_lo_mult * t_leader, options.bid_hi_mult * t_leader,
      static_cast<std::size_t>(options.bid_grid),
      strategy::GridSpacing::kLog);
  candidates.push_back(t_leader);

  strategy::BestResponseOptions follower = options.follower;
  follower.frozen_agents = {leader};

  BidLeaderReport report;
  report.leader_candidates = static_cast<int>(candidates.size());
  {
    const strategy::DeviationEvaluator truthful(mechanism, config);
    report.optimal_latency = truthful.actual_latency();
  }

  bool have_best = false;
  for (double commitment : candidates) {
    model::BidProfile initial = model::BidProfile::truthful(config);
    initial.bids[leader] = commitment;  // leader still executes at capacity
    const strategy::BestResponseResult equilibrium =
        strategy::best_response_dynamics(mechanism, config, initial, follower);

    model::BidProfile final_profile;
    final_profile.bids = equilibrium.final_bids;
    final_profile.executions = equilibrium.final_executions;
    const strategy::DeviationEvaluator evaluator(mechanism, config,
                                                 std::move(final_profile));
    const double utility =
        evaluator.utility(leader, commitment, t_leader);

    if (commitment == t_leader) {
      report.truthful_commitment_utility = utility;
    }
    if (!have_best || utility > report.leader_utility) {
      have_best = true;
      report.leader_utility = utility;
      report.leader_bid = commitment;
      report.total_latency = equilibrium.final_actual_latency;
      report.follower_bids = equilibrium.final_bids;
    }
  }
  report.commitment_gain =
      report.leader_utility - report.truthful_commitment_utility;
  return report;
}

}  // namespace lbmv::game

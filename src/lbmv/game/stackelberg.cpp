#include "lbmv/game/stackelberg.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "lbmv/alloc/convex_allocator.h"
#include "lbmv/util/error.h"

namespace lbmv::game {
namespace {

/// A link observed by the followers after the leader preloaded it:
/// l'(x) = l(preload + x).
class ShiftedLatency final : public model::LatencyFunction {
 public:
  ShiftedLatency(const model::LatencyFunction& base, double preload)
      : base_(&base), preload_(preload) {
    LBMV_REQUIRE(preload >= 0.0, "preload must be non-negative");
  }
  [[nodiscard]] double latency(double x) const override {
    return base_->latency(preload_ + x);
  }
  [[nodiscard]] double latency_derivative(double x) const override {
    return base_->latency_derivative(preload_ + x);
  }
  [[nodiscard]] double max_rate() const override {
    return base_->max_rate() - preload_;
  }
  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "shifted(" << base_->describe() << ", +" << preload_ << ")";
    return os.str();
  }
  [[nodiscard]] std::unique_ptr<model::LatencyFunction> clone()
      const override {
    return std::make_unique<ShiftedLatency>(*base_, preload_);
  }

 private:
  const model::LatencyFunction* base_;
  double preload_;
};

std::vector<double> leader_flow_for(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    const model::Allocation& optimum, double budget,
    StackelbergStrategy strategy) {
  const std::size_t n = links.size();
  std::vector<double> leader(n, 0.0);
  if (budget <= 0.0) return leader;
  switch (strategy) {
    case StackelbergStrategy::kScale: {
      const double alpha = budget / optimum.total_rate();
      for (std::size_t i = 0; i < n; ++i) leader[i] = alpha * optimum[i];
      return leader;
    }
    case StackelbergStrategy::kLargestLatencyFirst: {
      // Fill links by decreasing latency *under the optimal flow*; the
      // followers will then gravitate to the low-latency links the leader
      // left alone.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return links[a]->latency(optimum[a]) > links[b]->latency(optimum[b]);
      });
      double remaining = budget;
      for (std::size_t i : order) {
        const double take = std::min(remaining, optimum[i]);
        leader[i] = take;
        remaining -= take;
        if (remaining <= 0.0) break;
      }
      LBMV_ASSERT(remaining <= 1e-9 * budget,
                  "LLF failed to place the leader's budget");
      return leader;
    }
  }
  LBMV_ASSERT(false, "unknown Stackelberg strategy");
  return leader;
}

}  // namespace

StackelbergReport stackelberg(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand, double alpha, StackelbergStrategy strategy) {
  LBMV_REQUIRE(!links.empty(), "need at least one link");
  LBMV_REQUIRE(demand > 0.0, "demand must be positive");
  LBMV_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0, 1]");

  StackelbergReport report;
  const model::Allocation optimum = alloc::convex_allocate(links, demand);
  report.optimal_latency = model::total_latency(optimum, links);
  report.selfish_latency = model::total_latency(
      wardrop_equilibrium(links, demand), links);

  const double leader_budget = alpha * demand;
  report.leader_flow = model::Allocation(
      leader_flow_for(links, optimum, leader_budget, strategy));

  const double follower_budget = demand - leader_budget;
  std::vector<double> follower(links.size(), 0.0);
  if (follower_budget > 1e-12 * demand) {
    std::vector<std::unique_ptr<model::LatencyFunction>> shifted;
    shifted.reserve(links.size());
    for (std::size_t i = 0; i < links.size(); ++i) {
      shifted.push_back(std::make_unique<ShiftedLatency>(
          *links[i], report.leader_flow[i]));
    }
    const model::Allocation equilibrium =
        wardrop_equilibrium(shifted, follower_budget);
    for (std::size_t i = 0; i < links.size(); ++i) {
      follower[i] = equilibrium[i];
    }
  }
  report.follower_flow = model::Allocation(follower);

  std::vector<double> combined(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    combined[i] = report.leader_flow[i] + follower[i];
  }
  report.combined_flow = model::Allocation(std::move(combined));
  report.total_latency = model::total_latency(report.combined_flow, links);
  return report;
}

}  // namespace lbmv::game

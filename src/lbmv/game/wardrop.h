#pragma once

/// \file wardrop.h
/// Selfish routing on parallel links: Wardrop equilibria and the price of
/// anarchy.
///
/// The paper's system model — parallel computers with load-dependent
/// latencies — is exactly the parallel-link routing game of the literature
/// it builds on (Altman et al. [1]; Roughgarden's Stackelberg scheduling
/// [19]).  There, *jobs* route selfishly: flow spreads so that every used
/// link has equal (and minimal) latency — a Wardrop equilibrium — whereas
/// the social optimum equalises *marginal* latency.  The ratio of
/// equilibrium to optimal total latency is the price of anarchy (PoA).
///
/// Two complementary inefficiencies frame the paper:
///   * pure linear links l(x) = t x have PoA = 1 — equalising latency and
///     equalising marginal latency coincide, so selfish *routing* is
///     harmless in the paper's model, and the entire inefficiency the
///     mechanism fights comes from *misreporting* computers; but
///   * affine links (a + b x) push the PoA up to the classic 4/3 (Pigou),
///     so the module also quantifies when routing itself starts to hurt.
///
/// Requires strictly increasing latencies (model a constant link as
/// a + epsilon * x).

#include <memory>
#include <span>

#include "lbmv/model/allocation.h"
#include "lbmv/model/latency.h"

namespace lbmv::game {

/// Flow with every used link at the common latency and every unused link
/// at l(0) >= that latency (Wardrop's first principle).
///
/// Requires strictly increasing latencies and, for capacitated links
/// (M/M/1), total capacity exceeding \p demand.
[[nodiscard]] model::Allocation wardrop_equilibrium(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand, double tol = 1e-12);

/// Check Wardrop's equilibrium conditions for an arbitrary flow (the
/// analogue of alloc::check_kkt for equilibria).
struct WardropReport {
  bool feasible = false;
  bool equilibrated = false;  ///< used links equal, unused dominated
  double common_latency = 0.0;
  double max_violation = 0.0;
  [[nodiscard]] bool valid() const { return feasible && equilibrated; }
};
[[nodiscard]] WardropReport check_wardrop(
    const model::Allocation& flow,
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand, double tol = 1e-7);

/// Equilibrium vs optimum summary.
struct PoaReport {
  double equilibrium_latency = 0.0;  ///< L at the Wardrop flow
  double optimal_latency = 0.0;      ///< min over feasible flows
  [[nodiscard]] double price_of_anarchy() const {
    return equilibrium_latency / optimal_latency;
  }
};

/// Compute both flows (equilibrium via wardrop_equilibrium, optimum via the
/// convex allocator) and their total latencies.
[[nodiscard]] PoaReport price_of_anarchy(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand);

}  // namespace lbmv::game

#pragma once

/// \file stackelberg.h
/// Stackelberg scheduling on parallel links (Roughgarden, STOC'01 — the
/// paper's reference [19]).
///
/// A leader controls a fraction alpha of the demand and commits its flow
/// first; the remaining (1 - alpha) routes selfishly to a Wardrop
/// equilibrium *given* the leader's preload.  Good leader strategies push
/// the combined flow toward the optimum:
///   * kScale       — the optimal flow scaled by alpha (simple baseline);
///   * kLargestLatencyFirst (LLF) — Roughgarden's strategy: saturate the
///     links the optimum loads most heavily (largest optimal latency)
///     first, leaving the attractive links for the selfish followers.
/// At alpha = 0 this degrades to plain selfish routing; at alpha = 1 the
/// leader implements the optimum.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/game/wardrop.h"
#include "lbmv/model/system_config.h"
#include "lbmv/strategy/best_response.h"

namespace lbmv::game {

/// Leader strategies.
enum class StackelbergStrategy {
  kScale,               ///< alpha * optimal flow
  kLargestLatencyFirst, ///< fill links by decreasing optimal latency
};

/// Outcome of a Stackelberg game.
struct StackelbergReport {
  model::Allocation leader_flow;
  model::Allocation follower_flow;
  model::Allocation combined_flow;
  double total_latency = 0.0;     ///< L(combined)
  double optimal_latency = 0.0;   ///< unconstrained optimum
  double selfish_latency = 0.0;   ///< alpha = 0 equilibrium
  /// total / optimal in [1, PoA]; 1 means the leader fixed everything.
  [[nodiscard]] double inefficiency() const {
    return total_latency / optimal_latency;
  }
};

/// Play the game: leader commits per \p strategy with demand share
/// \p alpha in [0, 1]; followers equilibrate on the preloaded links.
/// Requires strictly increasing latencies (see wardrop.h).
[[nodiscard]] StackelbergReport stackelberg(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand, double alpha,
    StackelbergStrategy strategy = StackelbergStrategy::kLargestLatencyFirst);

/// Tunables for the mechanism-layer leader-commitment (Stackelberg bidding)
/// game below.
struct BidLeaderOptions {
  std::size_t leader = 0;     ///< index of the committing agent
  int bid_grid = 17;          ///< leader commitment candidates (log-spaced)
  double bid_lo_mult = 0.25;  ///< candidate interval, x leader's true value
  double bid_hi_mult = 4.0;
  /// Follower best-response tunables; frozen_agents is overwritten with
  /// {leader} internally.
  strategy::BestResponseOptions follower{};
};

/// Outcome of the bidding game.
struct BidLeaderReport {
  double leader_bid = 0.0;      ///< best commitment found
  double leader_utility = 0.0;  ///< leader's utility at that commitment
  /// Leader's utility when it commits to the truth (followers respond).
  double truthful_commitment_utility = 0.0;
  /// leader_utility - truthful_commitment_utility: the first-mover
  /// advantage.  Dominant-strategy truthfulness does NOT make this zero:
  /// an inflated commitment (bid > execution) makes the followers' own
  /// best responses inflate in proportion, and the whole profile scales
  /// up.  Under comp-bonus the PR allocation is invariant to that common
  /// scaling — total latency stays at the optimum and only the transfers
  /// grow — while under no-payment the leader's gain comes with a real
  /// latency degradation.  See test_stackelberg.cpp.
  double commitment_gain = 0.0;
  double total_latency = 0.0;    ///< L at the equilibrium under the best bid
  double optimal_latency = 0.0;  ///< L* at the truthful profile
  std::vector<double> follower_bids;  ///< equilibrium bids (leader included)
  int leader_candidates = 0;          ///< commitments evaluated
};

/// Mechanism-layer Stackelberg game: agent \p options.leader commits to a
/// bid first (executing at capacity), then the remaining agents run
/// best-response dynamics with the leader frozen; the leader picks the
/// commitment with the best equilibrium utility over a log-spaced grid that
/// always includes its true value.  Built on strategy::DeviationEvaluator,
/// so each (commitment, follower-round) pair costs O(n * grid) closed-form
/// evaluations rather than mechanism runs.
[[nodiscard]] BidLeaderReport stackelberg_bidding(
    const core::Mechanism& mechanism, const model::SystemConfig& config,
    const BidLeaderOptions& options = {});

}  // namespace lbmv::game

#pragma once

/// \file stackelberg.h
/// Stackelberg scheduling on parallel links (Roughgarden, STOC'01 — the
/// paper's reference [19]).
///
/// A leader controls a fraction alpha of the demand and commits its flow
/// first; the remaining (1 - alpha) routes selfishly to a Wardrop
/// equilibrium *given* the leader's preload.  Good leader strategies push
/// the combined flow toward the optimum:
///   * kScale       — the optimal flow scaled by alpha (simple baseline);
///   * kLargestLatencyFirst (LLF) — Roughgarden's strategy: saturate the
///     links the optimum loads most heavily (largest optimal latency)
///     first, leaving the attractive links for the selfish followers.
/// At alpha = 0 this degrades to plain selfish routing; at alpha = 1 the
/// leader implements the optimum.

#include <memory>
#include <span>

#include "lbmv/game/wardrop.h"

namespace lbmv::game {

/// Leader strategies.
enum class StackelbergStrategy {
  kScale,               ///< alpha * optimal flow
  kLargestLatencyFirst, ///< fill links by decreasing optimal latency
};

/// Outcome of a Stackelberg game.
struct StackelbergReport {
  model::Allocation leader_flow;
  model::Allocation follower_flow;
  model::Allocation combined_flow;
  double total_latency = 0.0;     ///< L(combined)
  double optimal_latency = 0.0;   ///< unconstrained optimum
  double selfish_latency = 0.0;   ///< alpha = 0 equilibrium
  /// total / optimal in [1, PoA]; 1 means the leader fixed everything.
  [[nodiscard]] double inefficiency() const {
    return total_latency / optimal_latency;
  }
};

/// Play the game: leader commits per \p strategy with demand share
/// \p alpha in [0, 1]; followers equilibrate on the preloaded links.
/// Requires strictly increasing latencies (see wardrop.h).
[[nodiscard]] StackelbergReport stackelberg(
    std::span<const std::unique_ptr<model::LatencyFunction>> links,
    double demand, double alpha,
    StackelbergStrategy strategy = StackelbergStrategy::kLargestLatencyFirst);

}  // namespace lbmv::game

#include "lbmv/model/latency.h"

#include <cmath>
#include <sstream>

#include "lbmv/util/error.h"

namespace lbmv::model {

LinearLatency::LinearLatency(double t) : t_(t) {
  LBMV_REQUIRE(t > 0.0, "linear latency slope t must be positive");
}

std::string LinearLatency::describe() const {
  std::ostringstream os;
  os << "linear(t=" << t_ << ")";
  return os.str();
}

std::unique_ptr<LatencyFunction> LinearLatency::clone() const {
  return std::make_unique<LinearLatency>(*this);
}

AffineLatency::AffineLatency(double a, double b) : a_(a), b_(b) {
  LBMV_REQUIRE(a >= 0.0 && b >= 0.0, "affine latency needs a, b >= 0");
  LBMV_REQUIRE(a > 0.0 || b > 0.0, "affine latency cannot be identically 0");
}

std::string AffineLatency::describe() const {
  std::ostringstream os;
  os << "affine(a=" << a_ << ", b=" << b_ << ")";
  return os.str();
}

std::unique_ptr<LatencyFunction> AffineLatency::clone() const {
  return std::make_unique<AffineLatency>(*this);
}

MG1LightLoadLatency::MG1LightLoadLatency(double mean_service,
                                         double second_moment)
    : es_(mean_service), es2_(second_moment) {
  LBMV_REQUIRE(mean_service > 0.0, "E[S] must be positive");
  LBMV_REQUIRE(second_moment >= mean_service * mean_service,
               "E[S^2] must be at least E[S]^2 (Jensen)");
}

double MG1LightLoadLatency::latency(double x) const {
  return es_ + 0.5 * es2_ * x;
}

double MG1LightLoadLatency::latency_derivative(double) const {
  return 0.5 * es2_;
}

std::string MG1LightLoadLatency::describe() const {
  std::ostringstream os;
  os << "mg1_light(E[S]=" << es_ << ", E[S^2]=" << es2_ << ")";
  return os.str();
}

std::unique_ptr<LatencyFunction> MG1LightLoadLatency::clone() const {
  return std::make_unique<MG1LightLoadLatency>(*this);
}

MM1Latency::MM1Latency(double mu) : mu_(mu) {
  LBMV_REQUIRE(mu > 0.0, "M/M/1 service rate mu must be positive");
}

double MM1Latency::latency(double x) const {
  LBMV_REQUIRE(x >= 0.0 && x < mu_, "M/M/1 latency requires 0 <= x < mu");
  return 1.0 / (mu_ - x);
}

double MM1Latency::latency_derivative(double x) const {
  LBMV_REQUIRE(x >= 0.0 && x < mu_, "M/M/1 latency requires 0 <= x < mu");
  const double d = mu_ - x;
  return 1.0 / (d * d);
}

std::string MM1Latency::describe() const {
  std::ostringstream os;
  os << "mm1(mu=" << mu_ << ")";
  return os.str();
}

std::unique_ptr<LatencyFunction> MM1Latency::clone() const {
  return std::make_unique<MM1Latency>(*this);
}

WorkloadLatency::WorkloadLatency(double theta, double gamma)
    : theta_(theta), gamma_(gamma) {
  LBMV_REQUIRE(theta > 0.0, "workload latency coefficient must be positive");
  LBMV_REQUIRE(gamma > 0.0,
               "workload congestion coefficient gamma must be positive");
}

double WorkloadLatency::latency(double x) const {
  LBMV_REQUIRE(x >= 0.0, "workload latency requires x >= 0");
  return theta_ * x * (1.0 + gamma_ * x);
}

double WorkloadLatency::latency_derivative(double x) const {
  LBMV_REQUIRE(x >= 0.0, "workload latency requires x >= 0");
  return theta_ * (1.0 + 2.0 * gamma_ * x);
}

std::string WorkloadLatency::describe() const {
  std::ostringstream os;
  os << "workload(t=" << theta_ << ", gamma=" << gamma_ << ")";
  return os.str();
}

std::unique_ptr<LatencyFunction> WorkloadLatency::clone() const {
  return std::make_unique<WorkloadLatency>(*this);
}

PowerLatency::PowerLatency(double t, double k) : t_(t), k_(k) {
  LBMV_REQUIRE(t > 0.0, "power latency coefficient must be positive");
  LBMV_REQUIRE(k >= 1.0, "power latency exponent must be >= 1 for convexity");
}

double PowerLatency::latency(double x) const {
  LBMV_REQUIRE(x >= 0.0, "power latency requires x >= 0");
  return t_ * std::pow(x, k_);
}

double PowerLatency::latency_derivative(double x) const {
  LBMV_REQUIRE(x >= 0.0, "power latency requires x >= 0");
  if (k_ == 1.0) return t_;
  return t_ * k_ * std::pow(x, k_ - 1.0);
}

std::string PowerLatency::describe() const {
  std::ostringstream os;
  os << "power(t=" << t_ << ", k=" << k_ << ")";
  return os.str();
}

std::unique_ptr<LatencyFunction> PowerLatency::clone() const {
  return std::make_unique<PowerLatency>(*this);
}

std::unique_ptr<LatencyFunction> LinearFamily::make(double theta) const {
  LBMV_REQUIRE(theta > 0.0, "linear family type must be positive");
  return std::make_unique<LinearLatency>(theta);
}

std::unique_ptr<LatencyFamily> LinearFamily::clone() const {
  return std::make_unique<LinearFamily>(*this);
}

std::unique_ptr<LatencyFunction> MM1Family::make(double theta) const {
  LBMV_REQUIRE(theta > 0.0, "mm1 family type must be positive");
  return std::make_unique<MM1Latency>(1.0 / theta);
}

std::unique_ptr<LatencyFamily> MM1Family::clone() const {
  return std::make_unique<MM1Family>(*this);
}

WorkloadFamily::WorkloadFamily(double gamma) : gamma_(gamma) {
  LBMV_REQUIRE(gamma > 0.0,
               "workload family congestion coefficient must be positive");
}

std::unique_ptr<LatencyFunction> WorkloadFamily::make(double theta) const {
  LBMV_REQUIRE(theta > 0.0, "workload family type must be positive");
  return std::make_unique<WorkloadLatency>(theta, gamma_);
}

std::string WorkloadFamily::name() const {
  std::ostringstream os;
  os << "workload(gamma=" << gamma_ << ")";
  return os.str();
}

std::unique_ptr<LatencyFamily> WorkloadFamily::clone() const {
  return std::make_unique<WorkloadFamily>(*this);
}

PowerFamily::PowerFamily(double k) : k_(k) {
  LBMV_REQUIRE(k >= 1.0, "power family exponent must be >= 1");
}

std::unique_ptr<LatencyFunction> PowerFamily::make(double theta) const {
  LBMV_REQUIRE(theta > 0.0, "power family type must be positive");
  return std::make_unique<PowerLatency>(theta, k_);
}

std::string PowerFamily::name() const {
  std::ostringstream os;
  os << "power(k=" << k_ << ")";
  return os.str();
}

std::unique_ptr<LatencyFamily> PowerFamily::clone() const {
  return std::make_unique<PowerFamily>(*this);
}

}  // namespace lbmv::model

#pragma once

/// \file bids.h
/// Bid / execution-value profiles for a round of the mechanism.
///
/// In the paper's mechanism with verification (Definition 3.1), each agent i
///   * reports a bid b_i (possibly != its true value t_i), and then
///   * executes its assigned jobs at an *execution value* t~_i >= t_i (it can
///     run at most at its full capacity, but may deliberately run slower).
/// The mechanism observes t~_i after the jobs complete — that observation is
/// the "verification".

#include <cstddef>
#include <span>
#include <vector>

#include "lbmv/model/system_config.h"

namespace lbmv::model {

/// A full strategy profile for one mechanism round.
struct BidProfile {
  std::vector<double> bids;        ///< b_i reported before allocation
  std::vector<double> executions;  ///< t~_i observed after execution

  /// Truthful profile: b_i = t~_i = theta_i for all i.
  [[nodiscard]] static BidProfile truthful(const SystemConfig& config);

  /// Truthful profile except agent \p i bids bid_mult * theta_i and executes
  /// at exec_mult * theta_i.  This is exactly how the paper's Table 2
  /// experiments deviate computer C1.
  [[nodiscard]] static BidProfile deviate(const SystemConfig& config,
                                          std::size_t i, double bid_mult,
                                          double exec_mult);

  [[nodiscard]] std::size_t size() const { return bids.size(); }

  /// Profile over the remaining agents when agent i is removed.
  [[nodiscard]] BidProfile without(std::size_t i) const;

  /// In-place variant of without() for hot paths: fills \p scratch with
  /// every agent but \p i, reusing its capacity so a scratch profile
  /// carried across a leave-one-out loop allocates at most once.
  void copy_without_into(std::size_t i, BidProfile& scratch) const;

  /// Throw unless sizes match \p n and all values are positive.
  void validate(std::size_t n) const;

  /// Whether every agent executes at least as fast as it could pretend:
  /// t~_i >= max(b_i is irrelevant) ... specifically t~_i >= theta_i for the
  /// given config (an agent cannot run faster than its true capacity).
  [[nodiscard]] bool executions_respect_capacity(
      const SystemConfig& config, double tol = 1e-12) const;
};

}  // namespace lbmv::model

#pragma once

/// \file system_config.h
/// Static description of a heterogeneous distributed system.
///
/// A SystemConfig holds the agents' *true* types theta_i (the paper's t_i;
/// inversely proportional to processing rate), the system job arrival rate
/// R, and the latency family interpreting the types.  True types are private
/// to the agents in the mechanism-design setting; the config represents the
/// ground truth the simulation and audits are run against.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lbmv/model/latency.h"

namespace lbmv::model {

/// Immutable system description (value type; copies share the family).
class SystemConfig {
 public:
  /// Build a config with the paper's linear latency family.
  /// Requires all types positive and arrival_rate > 0.
  SystemConfig(std::vector<double> true_values, double arrival_rate);

  /// Build a config with an explicit latency family.
  SystemConfig(std::vector<double> true_values, double arrival_rate,
               std::shared_ptr<const LatencyFamily> family);

  [[nodiscard]] std::size_t size() const { return true_values_.size(); }
  [[nodiscard]] std::span<const double> true_values() const {
    return true_values_;
  }
  [[nodiscard]] double true_value(std::size_t i) const;
  [[nodiscard]] double arrival_rate() const { return arrival_rate_; }
  [[nodiscard]] const LatencyFamily& family() const { return *family_; }
  [[nodiscard]] std::shared_ptr<const LatencyFamily> family_ptr() const {
    return family_;
  }

  /// Copy with a different arrival rate.
  [[nodiscard]] SystemConfig with_arrival_rate(double rate) const;

  /// Copy without computer i (for L_{-i} computations).
  [[nodiscard]] SystemConfig without(std::size_t i) const;

  /// In-place variant of without() for hot paths: fills \p types with the
  /// true values of every computer but \p i, reusing the vector's capacity
  /// across a leave-one-out loop instead of building a fresh config.
  void copy_without_into(std::size_t i, std::vector<double>& types) const;

  /// Latency curves instantiated at arbitrary type values (e.g. bids or
  /// execution values).  Requires values.size() == size().
  [[nodiscard]] std::vector<std::unique_ptr<LatencyFunction>> instantiate(
      std::span<const double> values) const;

  /// Latency curves at the true types.
  [[nodiscard]] std::vector<std::unique_ptr<LatencyFunction>>
  instantiate_true() const;

  /// Aggregate speed 1/sum(1/theta_i) style heterogeneity summary:
  /// ratio of slowest to fastest type.
  [[nodiscard]] double heterogeneity() const;

 private:
  std::vector<double> true_values_;
  double arrival_rate_;
  std::shared_ptr<const LatencyFamily> family_;
};

}  // namespace lbmv::model

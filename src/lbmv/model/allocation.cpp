#include "lbmv/model/allocation.h"

#include <cmath>

#include "lbmv/util/error.h"

namespace lbmv::model {

Allocation::Allocation(std::vector<double> rates) : rates_(std::move(rates)) {
  for (double r : rates_) {
    LBMV_REQUIRE(std::isfinite(r), "allocation rates must be finite");
  }
}

double Allocation::operator[](std::size_t i) const {
  LBMV_REQUIRE(i < rates_.size(), "allocation index out of range");
  return rates_[i];
}

double Allocation::total_rate() const {
  double s = 0.0;
  for (double r : rates_) s += r;
  return s;
}

bool Allocation::is_feasible(double arrival_rate, double tol) const {
  for (double r : rates_) {
    if (r < -tol) return false;
  }
  const double scale = std::max(1.0, std::fabs(arrival_rate));
  return std::fabs(total_rate() - arrival_rate) <= tol * scale;
}

Allocation Allocation::without(std::size_t i) const {
  LBMV_REQUIRE(i < rates_.size(), "allocation index out of range");
  std::vector<double> rest;
  rest.reserve(rates_.size() - 1);
  for (std::size_t j = 0; j < rates_.size(); ++j) {
    if (j != i) rest.push_back(rates_[j]);
  }
  return Allocation(std::move(rest));
}

double total_latency_linear(const Allocation& x, std::span<const double> t) {
  LBMV_REQUIRE(x.size() == t.size(),
               "allocation and type vector must have equal size");
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    total += t[i] * x[i] * x[i];
  }
  return total;
}

double total_latency(
    const Allocation& x,
    std::span<const std::unique_ptr<LatencyFunction>> latencies) {
  LBMV_REQUIRE(x.size() == latencies.size(),
               "allocation and latency vector must have equal size");
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] == 0.0) continue;  // skip to avoid domain checks at 0 rate
    total += latencies[i]->cost(x[i]);
  }
  return total;
}

double computer_cost_linear(double x_i, double t_i) {
  return t_i * x_i * x_i;
}

}  // namespace lbmv::model

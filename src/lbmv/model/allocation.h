#pragma once

/// \file allocation.h
/// Feasible job allocations and total-latency evaluation.
///
/// A feasible allocation x = (x_1 ... x_n) satisfies (paper §2):
///   (i)  positivity:   x_i >= 0 for all i, and
///   (ii) conservation: sum_i x_i = R, the system arrival rate.

#include <memory>
#include <span>
#include <vector>

#include "lbmv/model/latency.h"

namespace lbmv::model {

/// An immutable vector of per-computer job arrival rates.
class Allocation {
 public:
  Allocation() = default;

  /// Wrap per-computer rates.  Requires all entries finite.
  explicit Allocation(std::vector<double> rates);

  /// Wrap rates the caller has already proven finite (e.g. by a vector
  /// validity mask over the whole plane), skipping the constructor's O(n)
  /// re-scan.  Callers that cannot prove finiteness must use the checked
  /// constructor — a non-finite rate smuggled through here breaks the
  /// class invariant every consumer relies on.
  [[nodiscard]] static Allocation from_validated(std::vector<double> rates) {
    Allocation a;
    a.rates_ = std::move(rates);
    return a;
  }

  [[nodiscard]] std::size_t size() const { return rates_.size(); }
  [[nodiscard]] double operator[](std::size_t i) const;
  [[nodiscard]] std::span<const double> rates() const { return rates_; }

  /// Sum of all per-computer rates.
  [[nodiscard]] double total_rate() const;

  /// Whether positivity holds and the total equals \p arrival_rate within
  /// \p tol (absolute on each rate, relative-ish on the total).
  [[nodiscard]] bool is_feasible(double arrival_rate,
                                 double tol = 1e-9) const;

  /// Allocation over the same computers with computer \p i removed.
  [[nodiscard]] Allocation without(std::size_t i) const;

  /// Steal the rate vector, leaving this allocation empty.  Hot `_into`
  /// paths use this to recycle the plane's capacity across rounds instead
  /// of allocating a fresh vector per call.
  [[nodiscard]] std::vector<double> release() && { return std::move(rates_); }

 private:
  std::vector<double> rates_;
};

/// Total latency L(x) = sum_i t_i * x_i^2 for the paper's linear model.
/// Requires x.size() == t.size().
[[nodiscard]] double total_latency_linear(const Allocation& x,
                                          std::span<const double> t);

/// Total latency L(x) = sum_i x_i * l_i(x_i) for arbitrary latency curves.
/// Requires x.size() == latencies.size().
[[nodiscard]] double total_latency(
    const Allocation& x,
    std::span<const std::unique_ptr<LatencyFunction>> latencies);

/// Cost of a single computer, c_i = x_i * l_i(x_i), for the linear model.
[[nodiscard]] double computer_cost_linear(double x_i, double t_i);

}  // namespace lbmv::model

#pragma once

/// \file latency.h
/// Load-dependent latency functions and one-parameter latency families.
///
/// The paper models computer i by a *linear* load-dependent latency
/// l_i(x) = t_i * x, where x is the job arrival rate routed to i and t_i is
/// inversely proportional to its processing rate (paper eq. (1)).  The cost
/// incurred by computer i under allocation x_i is x_i * l_i(x_i), and the
/// system objective is the total latency L(x) = sum_i x_i * l_i(x_i)
/// (paper eq. (2)).
///
/// lbmv generalises this to any convex latency function so the same
/// allocation solvers and mechanisms also cover:
///   * the M/G/1 light-load model the paper cites as justification for
///     linearity (expected waiting time lambda * E[S^2] / 2), and
///   * the M/M/1 expected-response-time model of the companion paper
///     (Grosu & Chronopoulos, Cluster 2002), used as an extension.
///
/// A LatencyFamily maps a single scalar parameter theta (the agent's private
/// "type"; larger theta = slower machine) to a LatencyFunction.  Mechanisms
/// operate on families so that bids, true values and execution values all
/// live on the same one-dimensional scale, as in one-parameter mechanism
/// design (Archer & Tardos 2001).

#include <limits>
#include <memory>
#include <string>

namespace lbmv::model {

/// A load-dependent latency curve l(x): expected time per job at arrival
/// rate x.  Implementations must be convex in cost x*l(x) on [0, max_rate).
class LatencyFunction {
 public:
  virtual ~LatencyFunction() = default;

  /// Expected per-job latency at arrival rate x >= 0.
  [[nodiscard]] virtual double latency(double x) const = 0;

  /// d l / d x at x.
  [[nodiscard]] virtual double latency_derivative(double x) const = 0;

  /// Supremum of admissible arrival rates (e.g. the service rate mu for
  /// M/M/1).  Defaults to +infinity.
  [[nodiscard]] virtual double max_rate() const {
    return std::numeric_limits<double>::infinity();
  }

  /// Human-readable description, e.g. "linear(t=2)".
  [[nodiscard]] virtual std::string describe() const = 0;

  [[nodiscard]] virtual std::unique_ptr<LatencyFunction> clone() const = 0;

  /// Cost (aggregate latency contribution) c(x) = x * l(x).
  [[nodiscard]] double cost(double x) const { return x * latency(x); }

  /// Marginal cost c'(x) = l(x) + x * l'(x); strictly increasing for the
  /// convex families shipped here.
  [[nodiscard]] double marginal_cost(double x) const {
    return latency(x) + x * latency_derivative(x);
  }
};

/// The paper's model: l(x) = t * x with t > 0 (eq. (1)).
class LinearLatency final : public LatencyFunction {
 public:
  explicit LinearLatency(double t);
  [[nodiscard]] double latency(double x) const override { return t_ * x; }
  [[nodiscard]] double latency_derivative(double) const override { return t_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<LatencyFunction> clone() const override;
  [[nodiscard]] double t() const { return t_; }

 private:
  double t_;
};

/// Affine latency l(x) = a + b * x (a, b >= 0, not both zero).
class AffineLatency final : public LatencyFunction {
 public:
  AffineLatency(double a, double b);
  [[nodiscard]] double latency(double x) const override { return a_ + b_ * x; }
  [[nodiscard]] double latency_derivative(double) const override { return b_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<LatencyFunction> clone() const override;
  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }

 private:
  double a_, b_;
};

/// M/G/1 light-load approximation the paper cites: expected time in system
/// l(x) = E[S] + x * E[S^2] / 2 (Pollaczek–Khinchine waiting term truncated
/// at first order in utilisation).  An affine curve parameterised by the
/// service-time distribution's first two moments.
class MG1LightLoadLatency final : public LatencyFunction {
 public:
  /// \p mean_service  E[S] > 0, \p second_moment E[S^2] >= E[S]^2.
  MG1LightLoadLatency(double mean_service, double second_moment);
  [[nodiscard]] double latency(double x) const override;
  [[nodiscard]] double latency_derivative(double) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<LatencyFunction> clone() const override;
  [[nodiscard]] double mean_service() const { return es_; }
  [[nodiscard]] double second_moment() const { return es2_; }

 private:
  double es_, es2_;
};

/// M/M/1 expected response time l(x) = 1 / (mu - x), x < mu (companion
/// paper's model).  Cost x/(mu-x) is the expected number in system.
class MM1Latency final : public LatencyFunction {
 public:
  explicit MM1Latency(double mu);
  [[nodiscard]] double latency(double x) const override;
  [[nodiscard]] double latency_derivative(double x) const override;
  [[nodiscard]] double max_rate() const override { return mu_; }
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<LatencyFunction> clone() const override;
  [[nodiscard]] double mu() const { return mu_; }

 private:
  double mu_;
};

/// Workload-dependent service rate (Zhang et al.): the effective per-job
/// time grows with the load already routed to the machine,
/// l(x) = theta * x * (1 + gamma * x) with theta > 0 and a family-level
/// congestion coefficient gamma > 0.  At gamma -> 0 this degenerates to the
/// paper's linear model; cost theta*x^2*(1+gamma*x) is a strictly convex
/// cubic, so the KKT system has a unique interior solution at every R.
class WorkloadLatency final : public LatencyFunction {
 public:
  WorkloadLatency(double theta, double gamma);
  [[nodiscard]] double latency(double x) const override;
  [[nodiscard]] double latency_derivative(double x) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<LatencyFunction> clone() const override;
  [[nodiscard]] double theta() const { return theta_; }
  [[nodiscard]] double gamma() const { return gamma_; }

 private:
  double theta_, gamma_;
};

/// Power-law latency l(x) = t * x^k, k >= 1 (used in property tests to
/// exercise the general convex solver away from the linear special case).
class PowerLatency final : public LatencyFunction {
 public:
  PowerLatency(double t, double k);
  [[nodiscard]] double latency(double x) const override;
  [[nodiscard]] double latency_derivative(double x) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::unique_ptr<LatencyFunction> clone() const override;
  [[nodiscard]] double t() const { return t_; }
  [[nodiscard]] double k() const { return k_; }

 private:
  double t_, k_;
};

/// Maps a scalar type theta (larger = slower) to a latency function.
class LatencyFamily {
 public:
  virtual ~LatencyFamily() = default;

  /// Build the latency curve of an agent with type theta > 0.
  [[nodiscard]] virtual std::unique_ptr<LatencyFunction> make(
      double theta) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<LatencyFamily> clone() const = 0;
};

/// theta -> LinearLatency(theta).  The paper's setting.
class LinearFamily final : public LatencyFamily {
 public:
  [[nodiscard]] std::unique_ptr<LatencyFunction> make(
      double theta) const override;
  [[nodiscard]] std::string name() const override { return "linear"; }
  [[nodiscard]] std::unique_ptr<LatencyFamily> clone() const override;
};

/// theta -> MM1Latency(1/theta): theta is the mean service time, so larger
/// theta is again slower.  Companion-paper extension.
class MM1Family final : public LatencyFamily {
 public:
  [[nodiscard]] std::unique_ptr<LatencyFunction> make(
      double theta) const override;
  [[nodiscard]] std::string name() const override { return "mm1"; }
  [[nodiscard]] std::unique_ptr<LatencyFamily> clone() const override;
};

/// theta -> WorkloadLatency(theta, gamma) with a fixed family-level
/// congestion coefficient gamma > 0 (Zhang et al.'s workload-dependent
/// service rates).  theta is again "seconds of work per job", so larger
/// theta is slower, same one-parameter scale as the linear family.
class WorkloadFamily final : public LatencyFamily {
 public:
  explicit WorkloadFamily(double gamma);
  [[nodiscard]] std::unique_ptr<LatencyFunction> make(
      double theta) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LatencyFamily> clone() const override;
  [[nodiscard]] double gamma() const { return gamma_; }

 private:
  double gamma_;
};

/// theta -> PowerLatency(theta, k) with fixed exponent k.
class PowerFamily final : public LatencyFamily {
 public:
  explicit PowerFamily(double k);
  [[nodiscard]] std::unique_ptr<LatencyFunction> make(
      double theta) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<LatencyFamily> clone() const override;
  [[nodiscard]] double k() const { return k_; }

 private:
  double k_;
};

}  // namespace lbmv::model

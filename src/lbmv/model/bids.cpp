#include "lbmv/model/bids.h"

#include "lbmv/util/error.h"

namespace lbmv::model {

BidProfile BidProfile::truthful(const SystemConfig& config) {
  BidProfile profile;
  profile.bids.assign(config.true_values().begin(),
                      config.true_values().end());
  profile.executions = profile.bids;
  return profile;
}

BidProfile BidProfile::deviate(const SystemConfig& config, std::size_t i,
                               double bid_mult, double exec_mult) {
  LBMV_REQUIRE(i < config.size(), "agent index out of range");
  LBMV_REQUIRE(bid_mult > 0.0 && exec_mult > 0.0,
               "deviation multipliers must be positive");
  BidProfile profile = truthful(config);
  profile.bids[i] = config.true_value(i) * bid_mult;
  profile.executions[i] = config.true_value(i) * exec_mult;
  return profile;
}

BidProfile BidProfile::without(std::size_t i) const {
  BidProfile rest;
  copy_without_into(i, rest);
  return rest;
}

void BidProfile::copy_without_into(std::size_t i, BidProfile& scratch) const {
  LBMV_REQUIRE(i < bids.size(), "agent index out of range");
  scratch.bids.clear();
  scratch.executions.clear();
  scratch.bids.reserve(bids.size() - 1);
  scratch.executions.reserve(executions.size() - 1);
  for (std::size_t j = 0; j < bids.size(); ++j) {
    if (j == i) continue;
    scratch.bids.push_back(bids[j]);
    scratch.executions.push_back(executions[j]);
  }
}

void BidProfile::validate(std::size_t n) const {
  LBMV_REQUIRE(bids.size() == n, "bid vector size mismatch");
  LBMV_REQUIRE(executions.size() == n, "execution vector size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    LBMV_REQUIRE(bids[i] > 0.0, "bids must be positive");
    LBMV_REQUIRE(executions[i] > 0.0, "execution values must be positive");
  }
}

bool BidProfile::executions_respect_capacity(const SystemConfig& config,
                                             double tol) const {
  if (executions.size() != config.size()) return false;
  for (std::size_t i = 0; i < executions.size(); ++i) {
    if (executions[i] + tol < config.true_value(i)) return false;
  }
  return true;
}

}  // namespace lbmv::model

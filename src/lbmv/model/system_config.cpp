#include "lbmv/model/system_config.h"

#include <algorithm>

#include "lbmv/util/error.h"

namespace lbmv::model {

SystemConfig::SystemConfig(std::vector<double> true_values,
                           double arrival_rate)
    : SystemConfig(std::move(true_values), arrival_rate,
                   std::make_shared<LinearFamily>()) {}

SystemConfig::SystemConfig(std::vector<double> true_values,
                           double arrival_rate,
                           std::shared_ptr<const LatencyFamily> family)
    : true_values_(std::move(true_values)),
      arrival_rate_(arrival_rate),
      family_(std::move(family)) {
  LBMV_REQUIRE(!true_values_.empty(), "system needs at least one computer");
  for (double t : true_values_) {
    LBMV_REQUIRE(t > 0.0, "true values must be positive");
  }
  LBMV_REQUIRE(arrival_rate_ > 0.0, "arrival rate must be positive");
  LBMV_REQUIRE(family_ != nullptr, "latency family must not be null");
}

double SystemConfig::true_value(std::size_t i) const {
  LBMV_REQUIRE(i < true_values_.size(), "computer index out of range");
  return true_values_[i];
}

SystemConfig SystemConfig::with_arrival_rate(double rate) const {
  return SystemConfig(true_values_, rate, family_);
}

SystemConfig SystemConfig::without(std::size_t i) const {
  LBMV_REQUIRE(true_values_.size() > 1,
               "cannot remove the only computer from a system");
  std::vector<double> rest;
  copy_without_into(i, rest);
  return SystemConfig(std::move(rest), arrival_rate_, family_);
}

void SystemConfig::copy_without_into(std::size_t i,
                                     std::vector<double>& types) const {
  LBMV_REQUIRE(i < true_values_.size(), "computer index out of range");
  types.clear();
  types.reserve(true_values_.size() - 1);
  for (std::size_t j = 0; j < true_values_.size(); ++j) {
    if (j != i) types.push_back(true_values_[j]);
  }
}

std::vector<std::unique_ptr<LatencyFunction>> SystemConfig::instantiate(
    std::span<const double> values) const {
  LBMV_REQUIRE(values.size() == size(),
               "value vector must match the system size");
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  fns.reserve(values.size());
  for (double v : values) fns.push_back(family_->make(v));
  return fns;
}

std::vector<std::unique_ptr<LatencyFunction>> SystemConfig::instantiate_true()
    const {
  return instantiate(true_values_);
}

double SystemConfig::heterogeneity() const {
  const auto [mn, mx] =
      std::minmax_element(true_values_.begin(), true_values_.end());
  return *mx / *mn;
}

}  // namespace lbmv::model

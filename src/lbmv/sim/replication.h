#pragma once

/// \file replication.h
/// Parallel Monte-Carlo replications with deterministic RNG stream-splitting.
///
/// Every simulation-driven experiment in lbmv (protocol rounds, epoch runs,
/// learning dynamics, validation sweeps) wants the same shape: run R
/// statistically independent replications of a stochastic experiment and
/// merge their metrics.  ReplicationRunner standardises that shape:
///
///   * **Stream splitting** — replication r draws from
///     `Rng(root_seed).split(r + 1)` (SplitMix64-derived, statistically
///     independent streams).  The stream depends only on (root_seed, r),
///     never on which thread runs it, so results are bit-identical across
///     any thread count, including fully serial.
///   * **Fan-out** — replications are distributed over a util::ThreadPool
///     via ThreadPool::parallel_for with grain-size control; each
///     replication writes only its own output slot.
///   * **Barrier merge** — run() blocks until every replication finished;
///     callers then merge the per-replication slots in replication order,
///     which keeps merged statistics deterministic too.

#include <cstdint>
#include <functional>
#include <vector>

#include "lbmv/util/rng.h"
#include "lbmv/util/thread_pool.h"

namespace lbmv::sim {

/// Fan-out configuration.
struct ReplicationOptions {
  std::size_t replications = 8;
  std::uint64_t root_seed = 42;   ///< split per replication, never shared
  util::ThreadPool* pool = nullptr;  ///< nullptr => ThreadPool::global()
  std::size_t grain = 1;          ///< replications per pool task
};

/// Deterministic parallel replication harness.
class ReplicationRunner {
 public:
  explicit ReplicationRunner(ReplicationOptions options = {});

  /// The independent RNG stream for replication \p rep.
  [[nodiscard]] util::Rng stream(std::size_t rep) const;

  /// Run body(rep, rng) for rep in [0, replications) across the pool and
  /// block until all replications finished.  body must write only
  /// per-replication state (its own output slot); the rng argument is the
  /// replication's private stream.
  void run(const std::function<void(std::size_t, util::Rng&)>& body) const;

  /// Map every replication through \p fn and collect the results in
  /// replication order: `out[rep] = fn(rep, stream(rep))`.
  template <typename T, typename F>
  [[nodiscard]] std::vector<T> map(F&& fn) const {
    std::vector<T> out(options_.replications);
    run([&](std::size_t rep, util::Rng& rng) { out[rep] = fn(rep, rng); });
    return out;
  }

  [[nodiscard]] const ReplicationOptions& options() const { return options_; }

 private:
  ReplicationOptions options_;
};

}  // namespace lbmv::sim

#pragma once

/// \file job_source.h
/// Poisson job generation with allocation-proportional routing.
///
/// The paper's workload is a stream of jobs arriving at the system with
/// rate R, split across computers according to the allocation x computed by
/// the mechanism.  JobSource realises the split probabilistically: each
/// arrival is routed to computer i with probability x_i / R, which makes
/// every per-computer arrival process Poisson with rate x_i (thinning).
///
/// Hot-path design: arrivals are typed events (the source is an EventSink),
/// and routing uses a precomputed prefix-sum table with binary search —
/// O(log n) per arrival instead of the seed's O(n) re-validated weight
/// scan, while consuming the identical single uniform draw and returning
/// the identical index (the prefix sums are accumulated in the same
/// left-to-right order as Rng::categorical's running sum).

#include <cstdint>
#include <span>
#include <vector>

#include "lbmv/sim/engine.h"
#include "lbmv/sim/server.h"
#include "lbmv/util/rng.h"

namespace lbmv::sim {

/// Drives Poisson arrivals into a set of servers until a horizon.
class JobSource final : public EventSink {
 public:
  /// \p rates: per-server arrival rates (x_i); their sum is the system rate.
  /// \p servers must outlive the source.  Arrivals stop at \p horizon.
  JobSource(Simulation& sim, std::span<Server* const> servers,
            std::vector<double> rates, SimTime horizon, util::Rng rng);

  /// Schedule the first arrival; subsequent arrivals self-schedule.
  void start();

  /// Typed-event entry point: fires one arrival.
  void on_sim_event(Simulation& sim, EventKind kind) override;

  [[nodiscard]] std::uint64_t jobs_emitted() const { return next_job_id_; }
  [[nodiscard]] std::span<const std::uint64_t> per_server_counts() const {
    return counts_;
  }

 private:
  void arrival();
  [[nodiscard]] std::size_t route();

  Simulation* sim_;
  std::vector<Server*> servers_;
  std::vector<double> rates_;
  std::vector<double> cumulative_rates_;  ///< prefix sums of rates_
  double total_rate_;
  SimTime horizon_;
  util::Rng rng_;
  std::uint64_t next_job_id_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace lbmv::sim

#pragma once

/// \file job_source.h
/// Poisson job generation with allocation-proportional routing.
///
/// The paper's workload is a stream of jobs arriving at the system with
/// rate R, split across computers according to the allocation x computed by
/// the mechanism.  JobSource realises the split probabilistically: each
/// arrival is routed to computer i with probability x_i / R, which makes
/// every per-computer arrival process Poisson with rate x_i (thinning).

#include <cstdint>
#include <span>
#include <vector>

#include "lbmv/sim/engine.h"
#include "lbmv/sim/server.h"
#include "lbmv/util/rng.h"

namespace lbmv::sim {

/// Drives Poisson arrivals into a set of servers until a horizon.
class JobSource {
 public:
  /// \p rates: per-server arrival rates (x_i); their sum is the system rate.
  /// \p servers must outlive the source.  Arrivals stop at \p horizon.
  JobSource(Simulation& sim, std::span<Server* const> servers,
            std::vector<double> rates, SimTime horizon, util::Rng rng);

  /// Schedule the first arrival; subsequent arrivals self-schedule.
  void start();

  [[nodiscard]] std::uint64_t jobs_emitted() const { return next_job_id_; }
  [[nodiscard]] std::span<const std::uint64_t> per_server_counts() const {
    return counts_;
  }

 private:
  void arrival();

  Simulation* sim_;
  std::vector<Server*> servers_;
  std::vector<double> rates_;
  double total_rate_;
  SimTime horizon_;
  util::Rng rng_;
  std::uint64_t next_job_id_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace lbmv::sim

#include "lbmv/sim/server.h"

#include <cmath>

#include "lbmv/obs/obs.h"
#include "lbmv/util/error.h"

namespace lbmv::sim {

double linear_coefficient_from_mean_service(double m, ServiceModel model) {
  LBMV_REQUIRE(m > 0.0, "mean service time must be positive");
  switch (model) {
    case ServiceModel::kExponential:
      return m * m;  // E[S^2]/2 = (2 m^2)/2
    case ServiceModel::kDeterministic:
      return 0.5 * m * m;  // E[S^2]/2 = m^2/2
    case ServiceModel::kErlang2:
      return 0.75 * m * m;  // E[S^2]/2 = (1.5 m^2)/2
  }
  LBMV_ASSERT(false, "unknown service model");
  return 0.0;
}

double mean_service_from_linear_coefficient(double t, ServiceModel model) {
  LBMV_REQUIRE(t > 0.0, "linear coefficient must be positive");
  switch (model) {
    case ServiceModel::kExponential:
      return std::sqrt(t);
    case ServiceModel::kDeterministic:
      return std::sqrt(2.0 * t);
    case ServiceModel::kErlang2:
      return std::sqrt(t / 0.75);
  }
  LBMV_ASSERT(false, "unknown service model");
  return 0.0;
}

Server::Server(Simulation& sim, std::string name, double execution_value,
               ServiceModel model, util::Rng rng)
    : sim_(&sim),
      name_(std::move(name)),
      execution_value_(execution_value),
      model_(model),
      mean_service_(mean_service_from_linear_coefficient(execution_value,
                                                         model)),
      rng_(rng) {
  // Labelled per-server families are only registered when recording is on
  // at construction time (enable observability before building the
  // simulation); otherwise the handles stay inert no-ops.
  if (obs::enabled()) {
    obs::Registry& registry = obs::Registry::global();
    obs_arrivals_ = registry.counter(
        obs::labeled("lbmv_server_arrivals_total", "server", name_));
    obs_completions_ = registry.counter(
        obs::labeled("lbmv_server_completions_total", "server", name_));
    obs_waiting_ = registry.histogram(
        obs::labeled("lbmv_server_waiting_seconds", "server", name_));
  }
}

void Server::submit(const Job& job) {
  obs_arrivals_.inc();
  queue_.push_back(Job{job.id, sim_->now()});
  if (!busy_) begin_service();
}

void Server::begin_service() {
  LBMV_ASSERT(head_ < queue_.size(), "begin_service with an empty queue");
  busy_ = true;
  const Job job = queue_[head_++];
  // Reclaim the consumed prefix occasionally to bound memory.
  if (head_ > 1024 && head_ * 2 > queue_.size()) {
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  double service = mean_service_;
  switch (model_) {
    case ServiceModel::kExponential:
      service = rng_.exponential(1.0 / mean_service_);
      break;
    case ServiceModel::kDeterministic:
      break;
    case ServiceModel::kErlang2:
      // Sum of two exponentials with mean m/2 each.
      service = rng_.exponential(2.0 / mean_service_) +
                rng_.exponential(2.0 / mean_service_);
      break;
  }
  in_service_ = job;
  service_start_ = sim_->now();
  service_duration_ = service;
  busy_time_ += service;
  sim_->schedule_event_after(service, EventKind::kServiceCompletion, this);
}

void Server::on_sim_event(Simulation& sim, EventKind kind) {
  (void)sim;
  LBMV_ASSERT(kind == EventKind::kServiceCompletion,
              "server only handles service completions");
  completions_.push_back(Completion{in_service_.id, in_service_.arrival,
                                    service_start_,
                                    service_start_ + service_duration_});
  obs_completions_.inc();
  obs_waiting_.record(completions_.back().waiting_time());
  if (head_ < queue_.size()) {
    begin_service();
  } else {
    busy_ = false;
  }
}

void Server::reserve(std::size_t expected_jobs) {
  queue_.reserve(expected_jobs);
  completions_.reserve(expected_jobs);
}

void Server::reset() {
  LBMV_REQUIRE(!busy_, "cannot reset a server with a job in service");
  queue_.clear();
  head_ = 0;
  busy_time_ = 0.0;
  completions_.clear();
}

}  // namespace lbmv::sim

#include "lbmv/sim/legacy_engine.h"

#include <utility>

#include "lbmv/util/error.h"

namespace lbmv::sim::legacy {

// ---- Simulation: verbatim seed implementation -----------------------------

void Simulation::schedule(SimTime time, Handler handler) {
  LBMV_REQUIRE(time >= now_, "cannot schedule an event in the past");
  LBMV_REQUIRE(handler != nullptr, "event handler must not be null");
  queue_.push(Event{time, next_seq_++, std::move(handler)});
}

void Simulation::schedule_after(SimTime delay, Handler handler) {
  LBMV_REQUIRE(delay >= 0.0, "delay must be non-negative");
  schedule(now_ + delay, std::move(handler));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast on
  // a field that is never read again before pop.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  ++processed_;
  event.handler();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(SimTime t) {
  LBMV_REQUIRE(t >= now_, "cannot run the clock backwards");
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
  }
  now_ = t;
}

// ---- Server: verbatim seed implementation ---------------------------------

Server::Server(Simulation& sim, std::string name, double execution_value,
               ServiceModel model, util::Rng rng)
    : sim_(&sim),
      name_(std::move(name)),
      execution_value_(execution_value),
      model_(model),
      mean_service_(mean_service_from_linear_coefficient(execution_value,
                                                         model)),
      rng_(rng) {}

void Server::submit(const Job& job) {
  queue_.push_back(Job{job.id, sim_->now()});
  if (!busy_) begin_service();
}

void Server::begin_service() {
  LBMV_ASSERT(head_ < queue_.size(), "begin_service with an empty queue");
  busy_ = true;
  const Job job = queue_[head_++];
  if (head_ > 1024 && head_ * 2 > queue_.size()) {
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  double service = mean_service_;
  switch (model_) {
    case ServiceModel::kExponential:
      service = rng_.exponential(1.0 / mean_service_);
      break;
    case ServiceModel::kDeterministic:
      break;
    case ServiceModel::kErlang2:
      service = rng_.exponential(2.0 / mean_service_) +
                rng_.exponential(2.0 / mean_service_);
      break;
  }
  const SimTime start = sim_->now();
  busy_time_ += service;
  sim_->schedule_after(service, [this, job, start, service] {
    completions_.push_back(
        Completion{job.id, job.arrival, start, start + service});
    if (head_ < queue_.size()) {
      begin_service();
    } else {
      busy_ = false;
    }
  });
}

// ---- JobSource: verbatim seed implementation ------------------------------

JobSource::JobSource(Simulation& sim, std::span<Server* const> servers,
                     std::vector<double> rates, SimTime horizon,
                     util::Rng rng)
    : sim_(&sim),
      servers_(servers.begin(), servers.end()),
      rates_(std::move(rates)),
      total_rate_(0.0),
      horizon_(horizon),
      rng_(rng),
      counts_(servers_.size(), 0) {
  LBMV_REQUIRE(!servers_.empty(), "job source needs at least one server");
  LBMV_REQUIRE(rates_.size() == servers_.size(),
               "one rate per server required");
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    LBMV_REQUIRE(servers_[i] != nullptr, "servers must not be null");
    LBMV_REQUIRE(rates_[i] >= 0.0, "rates must be non-negative");
    total_rate_ += rates_[i];
  }
  LBMV_REQUIRE(total_rate_ > 0.0, "total arrival rate must be positive");
  LBMV_REQUIRE(horizon_ > 0.0, "horizon must be positive");
}

void JobSource::start() {
  sim_->schedule_after(rng_.exponential(total_rate_), [this] { arrival(); });
}

void JobSource::arrival() {
  if (sim_->now() > horizon_) return;
  const std::size_t target = rng_.categorical(rates_);
  ++counts_[target];
  servers_[target]->submit(Job{next_job_id_++, sim_->now()});
  sim_->schedule_after(rng_.exponential(total_rate_), [this] { arrival(); });
}

}  // namespace lbmv::sim::legacy

#pragma once

/// \file rate_estimator.h
/// Verification: estimating execution values from observed completions.
///
/// The paper's protocol says "in this waiting period the mechanism
/// estimates the actual job processing rate at each computer and uses it to
/// determine the execution value t~".  The paper treats that estimate as an
/// oracle; this module implements it.  Under the M/G/1-light interpretation
/// (see server.h), the execution value is a deterministic function of the
/// mean service time, t~ = E[S]^2 for exponential service, so the estimator
/// reduces to a mean over the observed service durations with a delta-method
/// confidence interval for the induced t~.

#include <optional>
#include <span>

#include "lbmv/sim/server.h"

namespace lbmv::sim {

/// An execution-value estimate from one server's completion log.
struct RateEstimate {
  double mean_service = 0.0;    ///< sample mean of observed service times
  double execution_value = 0.0; ///< t~ implied by the service model
  double ci95 = 0.0;            ///< ~95% half-width on execution_value
  std::size_t samples = 0;

  /// Whether \p value lies within the confidence interval.
  [[nodiscard]] bool consistent_with(double value) const;
};

/// Estimate the execution value from completion records under \p model.
/// Returns nullopt when there are no completions to learn from (the caller
/// decides the fallback — the protocol falls back to the agent's bid).
[[nodiscard]] std::optional<RateEstimate> estimate_execution_value(
    std::span<const Completion> completions, ServiceModel model);

/// Outlier-robust variant: discards the lowest and highest
/// \p trim_fraction of the observed service times before averaging, then
/// corrects the bias the trimming introduces (for exponential service the
/// symmetric alpha-trimmed mean underestimates the mean by the analytic
/// factor c(alpha) = [(1-a)(1-ln(1-a)) - a(1-ln a)] / (1-2a)).
///
/// Use when the completion log may be corrupted — clock glitches, stuck
/// records, or a machine trying to poison its own measurement with a few
/// absurd samples.  Requires trim_fraction in [0, 0.5).
[[nodiscard]] std::optional<RateEstimate> estimate_execution_value_trimmed(
    std::span<const Completion> completions, ServiceModel model,
    double trim_fraction = 0.1);

}  // namespace lbmv::sim

#include "lbmv/sim/epochs.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/batch.h"
#include "lbmv/core/delta_engine.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"

namespace lbmv::sim {

EpochReport run_epochs(const core::Mechanism& mechanism,
                       const model::SystemConfig& initial_config,
                       const EpochOptions& options) {
  LBMV_REQUIRE(options.epochs > 0, "epochs must be positive");
  LBMV_REQUIRE(options.drift_sigma >= 0.0, "drift sigma must be >= 0");
  LBMV_REQUIRE(0.0 < options.min_type && options.min_type < options.max_type,
               "type bounds must satisfy 0 < min < max");
  const std::size_t n = initial_config.size();
  std::vector<int> lags = options.bid_lags;
  if (lags.empty()) lags.assign(n, 0);
  LBMV_REQUIRE(lags.size() == n, "one bid lag per agent required");
  int max_lag = 0;
  for (int lag : lags) {
    LBMV_REQUIRE(lag >= 0, "bid lags must be non-negative");
    max_lag = std::max(max_lag, lag);
  }

  util::Rng rng(options.seed);
  std::vector<double> current(initial_config.true_values().begin(),
                              initial_config.true_values().end());
  for (double t : current) {
    LBMV_REQUIRE(t >= options.min_type && t <= options.max_type,
                 "initial types must lie inside the drift bounds");
  }
  // History ring for lagged reporting: history.front() is the oldest epoch
  // still needed.  Pre-drift epochs are approximated by the initial values.
  std::deque<std::vector<double>> history(
      static_cast<std::size_t>(max_lag) + 1, current);

  EpochReport report;
  report.cumulative_utility.assign(n, 0.0);
  report.records.reserve(static_cast<std::size_t>(options.epochs));
  double efficiency_sum = 0.0;
  // One delta engine for the whole horizon: each epoch's round diff-syncs
  // against the previous epoch's committed planes, so the per-epoch cost is
  // O(k) in the number of drifted entries plus one (cached, bit-identical)
  // materialization — a lag-frozen fleet with zero drift re-runs nothing.
  model::BidProfile profile;
  profile.bids.resize(n);
  profile.executions.resize(n);
  std::optional<core::DeltaRoundEngine> engine;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Bid profile: lagged true values; execution at the *current* speed
    // (a machine cannot execute at a speed it no longer has; if its
    // current speed is *lower* than bid, that's the reality verification
    // observes; if higher, it simply runs at capacity).
    for (std::size_t i = 0; i < n; ++i) {
      const auto& lagged =
          history[history.size() - 1 - static_cast<std::size_t>(lags[i])];
      profile.bids[i] = lagged[i];
      profile.executions[i] = current[i];
    }
    const model::SystemConfig config(current,
                                     initial_config.arrival_rate(),
                                     initial_config.family_ptr());
    EpochRecord record;
    record.true_values = current;
    if (!engine) {
      engine.emplace(mechanism, initial_config.family_ptr(),
                     initial_config.arrival_rate(), profile);
    } else {
      engine->sync(profile.bids, profile.executions);
    }
    record.outcome = engine->outcome();
    record.optimal_latency = mechanism.allocator().optimal_latency(
        config.family(), current, config.arrival_rate());
    record.efficiency =
        record.optimal_latency / record.outcome.actual_latency;
    efficiency_sum += record.efficiency;
    for (std::size_t i = 0; i < n; ++i) {
      report.cumulative_utility[i] += record.outcome.agents[i].utility;
    }
    report.records.push_back(std::move(record));

    // Drift: reflected log-normal random walk.
    for (double& t : current) {
      t *= std::exp(rng.normal(0.0, options.drift_sigma));
      if (t < options.min_type) {
        t = options.min_type * options.min_type / t;  // reflect
      }
      if (t > options.max_type) {
        t = options.max_type * options.max_type / t;
      }
      t = std::clamp(t, options.min_type, options.max_type);
    }
    history.push_back(current);
    history.pop_front();
  }
  report.mean_efficiency =
      efficiency_sum / static_cast<double>(options.epochs);
  return report;
}

ReplicatedEpochReport run_epochs_replicated(
    const core::Mechanism& mechanism,
    const model::SystemConfig& initial_config, const EpochOptions& options,
    const ReplicationOptions& replication) {
  const ReplicationRunner runner(replication);

  ReplicatedEpochReport merged;
  merged.runs.resize(replication.replications);
  runner.run([&](std::size_t rep, util::Rng& rng) {
    EpochOptions per_run = options;
    per_run.seed = rng.seed();  // distinct drift path per replication
    merged.runs[rep] = run_epochs(mechanism, initial_config, per_run);
  });

  merged.cumulative_utility.resize(initial_config.size());
  for (const EpochReport& run : merged.runs) {
    merged.mean_efficiency.add(run.mean_efficiency);
    for (std::size_t i = 0; i < initial_config.size(); ++i) {
      merged.cumulative_utility[i].add(run.cumulative_utility[i]);
    }
  }
  return merged;
}

}  // namespace lbmv::sim

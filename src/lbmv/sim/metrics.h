#pragma once

/// \file metrics.h
/// Measurement of simulated latency against the analytic model.
///
/// The paper's total latency L(x) = sum_i x_i * l_i(x_i) interprets l_i as
/// the expected *waiting* time at computer i (the linear M/G/1 light-load
/// term has no constant part).  The simulated analogue replaces x_i by the
/// observed throughput and l_i by the mean observed waiting time.

#include <span>
#include <vector>

#include "lbmv/sim/server.h"
#include "lbmv/util/stats.h"

namespace lbmv::sim {

/// Per-server observation summary over a finished run.
struct ServerMetrics {
  std::size_t jobs_completed = 0;
  double throughput = 0.0;         ///< completions / duration
  double mean_waiting_time = 0.0;  ///< queueing delay before service
  double mean_service_time = 0.0;
  double mean_response_time = 0.0;
  double utilization = 0.0;        ///< busy_time / duration
  double waiting_ci95 = 0.0;       ///< CI half-width of the mean waiting time
};

/// Whole-system summary.
struct SystemMetrics {
  std::vector<ServerMetrics> servers;
  double duration = 0.0;
  /// Measured analogue of L(x): sum_i throughput_i * mean_waiting_i.
  double measured_total_latency = 0.0;

  [[nodiscard]] std::size_t total_jobs() const;
};

/// Summarise a set of servers after running a simulation for \p duration
/// simulated seconds.  Jobs completing within the first
/// \p warmup_fraction * duration are discarded as transient.
[[nodiscard]] SystemMetrics collect_metrics(std::span<Server* const> servers,
                                            double duration,
                                            double warmup_fraction = 0.1);

}  // namespace lbmv::sim

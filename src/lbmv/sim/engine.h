#pragma once

/// \file engine.h
/// Deterministic discrete-event simulation engine (typed, allocation-free
/// hot path).
///
/// The paper evaluates the mechanism "by simulation" but assumes the
/// execution values t~ are simply *known* to the mechanism after execution.
/// lbmv builds the substrate that assumption hides: jobs actually arrive,
/// queue and execute on simulated servers, and the mechanism's verification
/// step estimates the execution values from observed completions
/// (see rate_estimator.h / protocol.h).
///
/// ## Event representation
///
/// The seed engine dispatched one heap-allocated `std::function` closure per
/// event, which made the event loop itself the bottleneck of every
/// simulation-driven experiment.  This engine instead stores 24-byte POD
/// events in a calendar (ladder) queue and dispatches the *known* event
/// kinds (job arrival, service completion, epoch boundary, horizon) through
/// a non-owning EventSink interface: one virtual call per event, zero
/// allocations in steady state.  Generic closures are still supported (the
/// distributed protocols and tests use them) via a pooled slab with a free
/// list, so even the closure path reuses storage instead of growing the
/// queue node-by-node.
///
/// ## Calendar queue
///
/// A comparison heap costs O(log n) branchy work per event; with tens of
/// thousands of pending events the comparisons dominate the loop.  The
/// calendar queue instead keeps an *active window* [win_start, win_end)
/// split into power-of-two buckets sized so that steady-state occupancy is
/// about one event per bucket: scheduling hashes the timestamp to a bucket
/// (O(1)), popping walks the bucket cursor forward (O(1) amortised).
/// Events beyond the window land in an unsorted overflow band; when the
/// window drains, the next window is carved off the overflow with
/// nth_element, which re-sizes bucket count and width to the *local* event
/// density — a far-future outlier (e.g. a horizon marker) cannot distort
/// the bucket width the way it would with a span/size estimate.  Every
/// operation is ordered by the exact (time, seq) key, so the pop sequence
/// is identical to the heap's and determinism is untouched.
///
/// ## Ordering and determinism
///
/// Events with equal timestamps are processed in scheduling order: a strict
/// monotone sequence number breaks ties, so runs are reproducible
/// bit-for-bit regardless of event kind.  The legacy `std::function` loop is
/// preserved verbatim in legacy_engine.h and a differential test
/// (test_sim_determinism) proves both loops produce identical completion
/// traces.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace lbmv::sim {

/// Simulated seconds since the start of the run.
using SimTime = double;

/// The event kinds the simulator knows how to dispatch without type erasure.
/// kClosure is the generic escape hatch (a pooled std::function).
enum class EventKind : std::uint8_t {
  kClosure = 0,
  kArrival = 1,            ///< job-source arrival tick
  kServiceCompletion = 2,  ///< server finishes the job in service
  kEpochBoundary = 3,      ///< periodic protocol/epoch boundary
  kHorizon = 4,            ///< end-of-run marker
};

class Simulation;

/// Receiver of typed events.  Long-lived simulation components (servers,
/// job sources, epoch drivers) implement this once; scheduling an event
/// then costs one POD heap insertion and no allocation.  The simulation
/// does not own sinks; a sink must outlive every event scheduled on it.
class EventSink {
 public:
  virtual void on_sim_event(Simulation& sim, EventKind kind) = 0;

 protected:
  ~EventSink() = default;  // non-owning: never deleted through the interface
};

/// A minimal event-loop simulator: schedule typed events or closures at
/// absolute times and drain them in (time, insertion) order.
class Simulation {
 public:
  using Handler = std::function<void()>;

  /// Schedule \p handler at absolute \p time.  Requires time >= now().
  /// The handler is stored in a pooled slab slot that is recycled after the
  /// event fires.
  void schedule(SimTime time, Handler handler);

  /// Schedule \p handler \p delay seconds from now.  Requires delay >= 0.
  void schedule_after(SimTime delay, Handler handler);

  /// Schedule a typed event for \p sink at absolute \p time.  Requires
  /// time >= now(), a non-null sink, and kind != kClosure.  Never allocates
  /// once the heap has warmed up to its steady-state size.
  void schedule_event(SimTime time, EventKind kind, EventSink* sink);

  /// Typed counterpart of schedule_after.
  void schedule_event_after(SimTime delay, EventKind kind, EventSink* sink);

  /// Execute the next event.  Returns false when the queue is empty.
  bool step();

  /// Drain every event (terminates when no handler schedules new work).
  void run();

  /// Process all events with time <= \p t, then advance the clock to t.
  ///
  /// Edge semantics at exactly t: an event handler running at time t that
  /// schedules new work at exactly t *does* get that work processed within
  /// the same run_until call, after every previously scheduled time-t event
  /// (the strict monotone sequence number keeps ties FIFO).  Each scheduled
  /// event is processed exactly once and the (time, seq) key of consecutive
  /// steps is strictly increasing, so run_until(t) terminates if and only
  /// if handlers schedule finitely many events at times <= t — the same
  /// contract run() has for the whole timeline.  A handler that
  /// unconditionally re-schedules itself at now() is a caller bug, not an
  /// ordering ambiguity.
  void run_until(SimTime t);

  /// Pre-size the overflow band (and closure slab) for \p events
  /// outstanding events, so steady-state operation never reallocates.
  void reserve(std::size_t events);

  /// Forget all pending events and reset the clock to zero, keeping the
  /// bucket/slab capacity.  Allows arena-style reuse across replications.
  void reset();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const {
    return in_buckets_ + overflow_.size();
  }

 private:
  /// 24-byte POD event.  The sequence number and kind share one word: kind
  /// lives in the low 3 bits, the scheduling sequence in the high 61, so
  /// comparing seq_kind compares sequence numbers (kinds never reorder
  /// ties).  payload is an EventSink* for typed events or a closure-slab
  /// index for kClosure.
  struct Event {
    SimTime time;
    std::uint64_t seq_kind;
    std::uintptr_t payload;
  };

  static constexpr unsigned kKindBits = 3;

  [[nodiscard]] static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq_kind < b.seq_kind;
  }
  [[nodiscard]] static EventKind kind_of(const Event& e) {
    return static_cast<EventKind>(e.seq_kind & ((1u << kKindBits) - 1));
  }

  void push_event(SimTime time, EventKind kind, std::uintptr_t payload);
  /// Place an event in its calendar bucket (sorted position) and rewind the
  /// cursor if the event lands behind it.
  void insert_bucket(const Event& event);
  /// Pointer to the earliest pending event, or nullptr when none.  Advances
  /// the bucket cursor over drained buckets and refills the window from the
  /// overflow band as needed (both safe: pushes behind the cursor rewind it).
  [[nodiscard]] const Event* peek();
  /// Remove and return the event peek() found.  Requires a prior successful
  /// peek with no intervening push.
  [[nodiscard]] Event pop_top();
  /// Carve the next active window off the overflow band and bucket it.
  void refill_window();
  void dispatch(const Event& event);

  // Calendar-queue state: the active window [win_start_, win_end_) hashed
  // into buckets_ (sorted descending within a bucket, so the minimum is a
  // pop_back), plus the unsorted overflow band for events beyond the window.
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> overflow_;
  double win_start_ = 0.0;
  double win_end_ = -1.0;  // empty window: everything overflows until refill
  double inv_width_ = 0.0;
  std::size_t cur_ = 0;           // buckets below cur_ are empty
  std::size_t in_buckets_ = 0;    // events currently bucketed

  std::vector<Handler> closure_slots_;
  std::vector<std::uint32_t> free_closure_slots_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_key_ = 0;  // monotone-progress check across steps
  SimTime last_time_ = 0.0;
  std::size_t processed_ = 0;
};

}  // namespace lbmv::sim

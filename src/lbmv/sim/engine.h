#pragma once

/// \file engine.h
/// Deterministic discrete-event simulation engine.
///
/// The paper evaluates the mechanism "by simulation" but assumes the
/// execution values t~ are simply *known* to the mechanism after execution.
/// lbmv builds the substrate that assumption hides: jobs actually arrive,
/// queue and execute on simulated servers, and the mechanism's verification
/// step estimates the execution values from observed completions
/// (see rate_estimator.h / protocol.h).
///
/// Events with equal timestamps are processed in scheduling order (a strict
/// monotone sequence number breaks ties), so runs are reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lbmv::sim {

/// Simulated seconds since the start of the run.
using SimTime = double;

/// A minimal event-loop simulator: schedule closures at absolute times and
/// drain them in (time, insertion) order.
class Simulation {
 public:
  using Handler = std::function<void()>;

  /// Schedule \p handler at absolute \p time.  Requires time >= now().
  void schedule(SimTime time, Handler handler);

  /// Schedule \p handler \p delay seconds from now.  Requires delay >= 0.
  void schedule_after(SimTime delay, Handler handler);

  /// Execute the next event.  Returns false when the queue is empty.
  bool step();

  /// Drain every event (terminates when no handler schedules new work).
  void run();

  /// Process all events with time <= \p t, then advance the clock to t.
  void run_until(SimTime t);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace lbmv::sim

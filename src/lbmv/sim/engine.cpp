#include "lbmv/sim/engine.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::sim {

namespace {

// Bucket-count bounds for the calendar windows.  The lower bound keeps tiny
// simulations from resizing constantly; the upper bound caps the bucket
// array for degenerate multi-million-event backlogs (extra events simply
// wait in the overflow band for a later window).
constexpr std::size_t kMinBuckets = 64;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;

}  // namespace

void Simulation::push_event(SimTime time, EventKind kind,
                            std::uintptr_t payload) {
  LBMV_REQUIRE(time >= now_, "cannot schedule an event in the past");
  const std::uint64_t seq_kind =
      (next_seq_++ << kKindBits) | static_cast<std::uint64_t>(kind);
  const Event event{time, seq_kind, payload};
  if (time < win_end_) {
    insert_bucket(event);
  } else {
    overflow_.push_back(event);
  }
  if (obs::enabled()) obs::SimProbes::get().queue_depth.add(1.0);
}

void Simulation::insert_bucket(const Event& event) {
  // The clock can trail win_start_ briefly after a refill (the last events
  // of the previous window are still being dispatched), so clamp instead of
  // hashing a negative offset.
  std::size_t idx =
      event.time <= win_start_
          ? 0
          : static_cast<std::size_t>((event.time - win_start_) * inv_width_);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  auto& bucket = buckets_[idx];
  // Buckets are sorted descending by (time, seq) so the minimum pops from
  // the back in O(1).  New events are usually the latest in their bucket
  // (near-future scheduling), so the scan almost always stops immediately.
  std::size_t i = 0;
  while (i < bucket.size() && earlier(event, bucket[i])) ++i;
  bucket.insert(bucket.begin() + static_cast<std::ptrdiff_t>(i), event);
  ++in_buckets_;
  if (idx < cur_) cur_ = idx;  // never let the cursor skip a new arrival
}

void Simulation::refill_window() {
  LBMV_ASSERT(in_buckets_ == 0 && !overflow_.empty(),
              "refill requires a drained window and pending overflow");
  const std::size_t count = overflow_.size();
  std::size_t nb = kMinBuckets;
  while (nb < count && nb < kMaxBuckets) nb <<= 1;
  if (buckets_.size() < nb) buckets_.resize(nb);

  // Window span from the *local* density: the `take` earliest events define
  // both bounds, so one far-future outlier (a horizon marker, say) cannot
  // stretch the bucket width into uselessness.
  const std::size_t take = std::min(count, buckets_.size());
  const auto by_key = [](const Event& a, const Event& b) {
    return earlier(a, b);
  };
  if (take < count) {
    std::nth_element(overflow_.begin(),
                     overflow_.begin() + static_cast<std::ptrdiff_t>(take - 1),
                     overflow_.end(), by_key);
  }
  double lo = overflow_[0].time;
  double hi = overflow_[0].time;
  for (std::size_t i = 1; i < take; ++i) {
    lo = std::min(lo, overflow_[i].time);
    hi = std::max(hi, overflow_[i].time);
  }
  const double span = hi - lo;
  double width = span > 0.0 ? span / static_cast<double>(take) : 1.0;
  if (!std::isfinite(width) || width <= 0.0 ||
      !std::isfinite(1.0 / width)) {
    width = 1.0;
  }
  // win_end_ must lie strictly beyond the boundary event or it would sit in
  // the overflow band forever; widen until double rounding can't eat it.
  double end = hi + width;
  while (end <= hi) {
    width *= 2.0;
    end = hi + width;
  }
  win_start_ = lo;
  win_end_ = end;
  inv_width_ = 1.0 / width;
  cur_ = 0;  // lo hashes to bucket zero

  std::size_t kept = 0;
  for (std::size_t i = 0; i < overflow_.size(); ++i) {
    const Event& e = overflow_[i];
    if (e.time < win_end_) {
      insert_bucket(e);
    } else {
      overflow_[kept++] = e;
    }
  }
  overflow_.resize(kept);
  LBMV_ASSERT(in_buckets_ > 0, "refill must bucket at least one event");
  if (obs::enabled()) {
    obs::SimProbes& probes = obs::SimProbes::get();
    probes.window_refills.inc();
    probes.window_fill.record(static_cast<double>(in_buckets_));
  }
}

const Simulation::Event* Simulation::peek() {
  for (;;) {
    if (in_buckets_ > 0) {
      while (buckets_[cur_].empty()) ++cur_;
      return &buckets_[cur_].back();
    }
    if (overflow_.empty()) return nullptr;
    refill_window();
  }
}

Simulation::Event Simulation::pop_top() {
  auto& bucket = buckets_[cur_];
  const Event top = bucket.back();
  bucket.pop_back();
  --in_buckets_;
  return top;
}

void Simulation::schedule(SimTime time, Handler handler) {
  LBMV_REQUIRE(handler != nullptr, "event handler must not be null");
  std::uint32_t slot;
  if (!free_closure_slots_.empty()) {
    slot = free_closure_slots_.back();
    free_closure_slots_.pop_back();
    closure_slots_[slot] = std::move(handler);
  } else {
    slot = static_cast<std::uint32_t>(closure_slots_.size());
    closure_slots_.push_back(std::move(handler));
  }
  if (obs::enabled()) obs::SimProbes::get().slab_in_use.add(1.0);
  push_event(time, EventKind::kClosure, slot);
}

void Simulation::schedule_after(SimTime delay, Handler handler) {
  LBMV_REQUIRE(delay >= 0.0, "delay must be non-negative");
  schedule(now_ + delay, std::move(handler));
}

void Simulation::schedule_event(SimTime time, EventKind kind,
                                EventSink* sink) {
  LBMV_REQUIRE(sink != nullptr, "event sink must not be null");
  LBMV_REQUIRE(kind != EventKind::kClosure,
               "kClosure events carry a handler; use schedule()");
  push_event(time, kind, reinterpret_cast<std::uintptr_t>(sink));
}

void Simulation::schedule_event_after(SimTime delay, EventKind kind,
                                      EventSink* sink) {
  LBMV_REQUIRE(delay >= 0.0, "delay must be non-negative");
  schedule_event(now_ + delay, kind, sink);
}

void Simulation::dispatch(const Event& event) {
  if (kind_of(event) == EventKind::kClosure) {
    const auto slot = static_cast<std::uint32_t>(event.payload);
    // Move the handler out before invoking: the handler may schedule new
    // closures, which can reuse (or grow past) this slot.
    Handler handler = std::move(closure_slots_[slot]);
    closure_slots_[slot] = nullptr;
    free_closure_slots_.push_back(slot);
    if (obs::enabled()) obs::SimProbes::get().slab_in_use.add(-1.0);
    handler();
  } else {
    reinterpret_cast<EventSink*>(event.payload)
        ->on_sim_event(*this, kind_of(event));
  }
}

bool Simulation::step() {
  if (peek() == nullptr) return false;
  const Event event = pop_top();
  // Monotone progress: (time, seq) strictly increases step over step, so no
  // event can run twice and equal-time re-scheduling cannot starve older
  // events — the termination guarantee run_until's edge semantics rely on.
  LBMV_ASSERT(processed_ == 0 || event.time > last_time_ ||
                  (event.time == last_time_ && event.seq_kind > last_key_),
              "event keys must advance monotonically");
  last_time_ = event.time;
  last_key_ = event.seq_kind;
  now_ = event.time;
  ++processed_;
  if (obs::enabled()) {
    obs::SimProbes& probes = obs::SimProbes::get();
    probes.events_total.inc();
    probes.events_by_kind[static_cast<std::size_t>(kind_of(event))].inc();
    probes.queue_depth.add(-1.0);
  }
  dispatch(event);
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(SimTime t) {
  LBMV_REQUIRE(t >= now_, "cannot run the clock backwards");
  // Inclusive semantics: events scheduled at exactly t while processing
  // time-t events are drained too (see the header contract).
  for (const Event* top = peek(); top != nullptr && top->time <= t;
       top = peek()) {
    step();
  }
  now_ = t;
}

void Simulation::reserve(std::size_t events) {
  overflow_.reserve(events);
  closure_slots_.reserve(events);
  free_closure_slots_.reserve(events);
}

void Simulation::reset() {
  if (obs::enabled()) {
    // Pending work vanishes with the reset; walk the occupancy gauges back
    // down so they keep meaning "currently live" across reuse.
    obs::SimProbes& probes = obs::SimProbes::get();
    probes.queue_depth.add(
        -static_cast<double>(in_buckets_ + overflow_.size()));
    probes.slab_in_use.add(-static_cast<double>(closure_slots_.size() -
                                                free_closure_slots_.size()));
  }
  for (auto& bucket : buckets_) bucket.clear();
  overflow_.clear();
  closure_slots_.clear();
  free_closure_slots_.clear();
  win_start_ = 0.0;
  win_end_ = -1.0;
  inv_width_ = 0.0;
  cur_ = 0;
  in_buckets_ = 0;
  now_ = 0.0;
  next_seq_ = 0;
  last_key_ = 0;
  last_time_ = 0.0;
  processed_ = 0;
}

}  // namespace lbmv::sim

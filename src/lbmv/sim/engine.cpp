#include "lbmv/sim/engine.h"

#include <utility>

#include "lbmv/util/error.h"

namespace lbmv::sim {

void Simulation::schedule(SimTime time, Handler handler) {
  LBMV_REQUIRE(time >= now_, "cannot schedule an event in the past");
  LBMV_REQUIRE(handler != nullptr, "event handler must not be null");
  queue_.push(Event{time, next_seq_++, std::move(handler)});
}

void Simulation::schedule_after(SimTime delay, Handler handler) {
  LBMV_REQUIRE(delay >= 0.0, "delay must be non-negative");
  schedule(now_ + delay, std::move(handler));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast on
  // a field that is never read again before pop.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.time;
  ++processed_;
  event.handler();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

void Simulation::run_until(SimTime t) {
  LBMV_REQUIRE(t >= now_, "cannot run the clock backwards");
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
  }
  now_ = t;
}

}  // namespace lbmv::sim

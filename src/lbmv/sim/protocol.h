#pragma once

/// \file protocol.h
/// The centralised load balancing protocol with verification (paper §3).
///
/// One round of the protocol:
///   1. collect a bid from every computer                    (n messages)
///   2. run the allocation algorithm and assign the jobs     (n messages)
///   3. let the jobs execute on the (simulated) computers
///   4. estimate each computer's actual execution value from the observed
///      completions — the verification step
///   5. compute payments from (bids, estimated execution values) and send
///      them                                                 (n messages)
/// for a total of 3n = O(n) messages, matching the paper's claim.
///
/// The round report carries both the payment computed from the *estimated*
/// execution values (what a real deployment can do) and from the *exact*
/// ones (the paper's oracle assumption), so benches can quantify the cost
/// of verification noise.

#include <cstdint>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/sim/metrics.h"
#include "lbmv/sim/replication.h"
#include "lbmv/sim/server.h"
#include "lbmv/util/stats.h"

namespace lbmv::sim {

/// Tunables for a protocol round.
struct ProtocolOptions {
  SimTime horizon = 5000.0;       ///< simulated seconds of job execution
  double warmup_fraction = 0.1;   ///< transient discarded from estimates
  ServiceModel service_model = ServiceModel::kExponential;
  std::uint64_t seed = 42;        ///< base RNG seed (split per component)
  /// When positive, verification uses the outlier-robust trimmed estimator
  /// with this trim fraction (see rate_estimator.h).
  double trim_fraction = 0.0;
};

/// Everything observed and computed in one round.
struct RoundReport {
  model::Allocation allocation;          ///< x(b) assigned in step 2
  std::vector<double> estimated_execution;  ///< t^ per computer (step 4)
  std::vector<bool> estimate_available;  ///< false -> fell back to the bid
  core::MechanismOutcome outcome;        ///< payments at the estimates
  core::MechanismOutcome oracle_outcome; ///< payments at the exact t~
  SystemMetrics metrics;                 ///< simulation measurements
  std::size_t messages = 0;              ///< protocol messages (3n)
};

/// Monte-Carlo summary over independent replications of one round.
/// Per-replication reports are kept (indexed by replication) alongside
/// merged statistics accumulated in replication order, so the summary is
/// bit-identical regardless of how many threads ran the fan-out.
struct ReplicatedRoundReport {
  std::vector<RoundReport> rounds;          ///< one per replication
  util::RunningStats measured_latency;      ///< measured L across reps
  util::RunningStats total_jobs;            ///< completed jobs across reps
  /// Per-agent estimate t^ across replications (verification noise).
  std::vector<util::RunningStats> estimated_execution;
  /// Per-agent verified payment across replications.
  std::vector<util::RunningStats> payments;
};

/// Orchestrates mechanism + simulator + estimator.
class VerifiedProtocol {
 public:
  /// The mechanism must outlive the protocol.
  VerifiedProtocol(const core::Mechanism& mechanism, ProtocolOptions options);

  /// Run one round.  \p intents carries each agent's chosen bid and the
  /// execution value it secretly runs at; the mechanism sees the bids
  /// up front and the execution values only through estimation.
  [[nodiscard]] RoundReport run_round(const model::SystemConfig& config,
                                      const model::BidProfile& intents) const;

  /// run_round with the RNG seed overridden (the rest of the options are
  /// unchanged).  This is the entry point replications use: each gets a
  /// distinct seed derived from the replication root.
  [[nodiscard]] RoundReport run_round(const model::SystemConfig& config,
                                      const model::BidProfile& intents,
                                      std::uint64_t seed) const;

  /// Fan \p replication.replications independent rounds (distinct RNG
  /// streams split from replication.root_seed) across the thread pool and
  /// merge the metrics at the barrier.
  [[nodiscard]] ReplicatedRoundReport run_replicated(
      const model::SystemConfig& config, const model::BidProfile& intents,
      const ReplicationOptions& replication = {}) const;

  [[nodiscard]] const ProtocolOptions& options() const { return options_; }

 private:
  const core::Mechanism* mechanism_;
  ProtocolOptions options_;
};

}  // namespace lbmv::sim

#include "lbmv/sim/metrics.h"

#include <cmath>

#include "lbmv/util/error.h"

namespace lbmv::sim {

std::size_t SystemMetrics::total_jobs() const {
  std::size_t total = 0;
  for (const auto& s : servers) total += s.jobs_completed;
  return total;
}

SystemMetrics collect_metrics(std::span<Server* const> servers,
                              double duration, double warmup_fraction) {
  // A non-finite duration (or a NaN warmup fraction, which passes neither
  // comparison below) would silently yield zero/NaN throughput for every
  // server; reject it here instead.
  LBMV_REQUIRE(std::isfinite(duration) && duration > 0.0,
               "duration must be finite and positive");
  LBMV_REQUIRE(std::isfinite(warmup_fraction) && warmup_fraction >= 0.0 &&
                   warmup_fraction < 1.0,
               "warmup fraction must be finite and in [0, 1)");
  SystemMetrics metrics;
  metrics.duration = duration;
  const double warmup = warmup_fraction * duration;
  const double window = duration - warmup;

  for (const Server* server : servers) {
    LBMV_REQUIRE(server != nullptr, "servers must not be null");
    ServerMetrics sm;
    util::RunningStats waiting, service, response;
    for (const Completion& c : server->completions()) {
      if (c.arrival < warmup) continue;
      waiting.add(c.waiting_time());
      service.add(c.service_time());
      response.add(c.response_time());
    }
    sm.jobs_completed = waiting.count();
    sm.throughput = static_cast<double>(sm.jobs_completed) / window;
    sm.mean_waiting_time = waiting.mean();
    sm.mean_service_time = service.mean();
    sm.mean_response_time = response.mean();
    sm.utilization = server->busy_time() / duration;
    sm.waiting_ci95 = waiting.ci95_halfwidth();
    metrics.measured_total_latency += sm.throughput * sm.mean_waiting_time;
    metrics.servers.push_back(sm);
  }
  return metrics;
}

}  // namespace lbmv::sim

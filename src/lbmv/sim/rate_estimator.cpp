#include "lbmv/sim/rate_estimator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "lbmv/util/error.h"
#include "lbmv/util/stats.h"

namespace lbmv::sim {

bool RateEstimate::consistent_with(double value) const {
  return std::fabs(execution_value - value) <= ci95;
}

std::optional<RateEstimate> estimate_execution_value(
    std::span<const Completion> completions, ServiceModel model) {
  if (completions.empty()) return std::nullopt;
  util::RunningStats service;
  for (const Completion& c : completions) {
    service.add(c.service_time());
  }
  RateEstimate estimate;
  estimate.samples = service.count();
  estimate.mean_service = service.mean();
  estimate.execution_value =
      linear_coefficient_from_mean_service(estimate.mean_service, model);
  // Delta method: t~ = g(m) with g(m) = c * m^2, so sd(t~) ~= |g'(m)| sd(m)
  // where g'(m) = 2 c m and c is the model's coefficient (1, 0.5 or 0.75).
  const double coefficient =
      linear_coefficient_from_mean_service(1.0, model);
  const double dgdm = 2.0 * coefficient * estimate.mean_service;
  estimate.ci95 = 1.959964 * dgdm * service.stderr_mean();
  return estimate;
}

namespace {

/// Expected value of the symmetric alpha-trimmed mean of Exp(mean m),
/// divided by m.  Derived from Integral x e^{-x} over the inter-quantile
/// band [q_a, q_{1-a}], normalised by its probability mass 1 - 2a.
double exponential_trim_bias(double alpha) {
  if (alpha == 0.0) return 1.0;
  const double lower = (1.0 - alpha) * (1.0 - std::log(1.0 - alpha));
  const double upper = alpha * (1.0 - std::log(alpha));
  return (lower - upper) / (1.0 - 2.0 * alpha);
}

/// Trimmed-mean bias for Erlang-2 (unit mean): quantiles and band mean by
/// numeric inversion/integration of the Gamma(2, 1/2) density.
double erlang2_trim_bias(double alpha) {
  if (alpha == 0.0) return 1.0;
  // Unit-mean Erlang-2: density f(x) = 4 x e^{-2x}, cdf F(x) = 1 - (1+2x)e^{-2x}.
  auto cdf = [](double x) { return 1.0 - (1.0 + 2.0 * x) * std::exp(-2.0 * x); };
  auto quantile = [&](double p) {
    double lo = 0.0, hi = 20.0;
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (lo + hi);
      (cdf(mid) < p ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  const double a = quantile(alpha);
  const double b = quantile(1.0 - alpha);
  // Integrate x f(x) over [a, b] with Simpson on a fine fixed grid.
  const int kPoints = 4096;
  const double h = (b - a) / kPoints;
  double sum = 0.0;
  for (int k = 0; k <= kPoints; ++k) {
    const double x = a + h * k;
    const double fx = 4.0 * x * std::exp(-2.0 * x) * x;  // x * density
    const double w = (k == 0 || k == kPoints) ? 1.0 : (k % 2 ? 4.0 : 2.0);
    sum += w * fx;
  }
  const double band_mean = sum * h / 3.0;
  return band_mean / (1.0 - 2.0 * alpha);
}

}  // namespace

std::optional<RateEstimate> estimate_execution_value_trimmed(
    std::span<const Completion> completions, ServiceModel model,
    double trim_fraction) {
  LBMV_REQUIRE(trim_fraction >= 0.0 && trim_fraction < 0.5,
               "trim fraction must be in [0, 0.5)");
  if (completions.empty()) return std::nullopt;

  std::vector<double> services;
  services.reserve(completions.size());
  for (const Completion& c : completions) {
    services.push_back(c.service_time());
  }
  std::sort(services.begin(), services.end());
  const auto drop = static_cast<std::size_t>(
      trim_fraction * static_cast<double>(services.size()));
  util::RunningStats trimmed;
  for (std::size_t i = drop; i < services.size() - drop; ++i) {
    trimmed.add(services[i]);
  }
  if (trimmed.count() == 0) return std::nullopt;

  // Undo the trimming bias.  Deterministic service has no tails, so the
  // trimmed mean is already the mean; exponential needs the analytic
  // correction at the *effective* trim fraction actually applied.
  const double effective_alpha =
      static_cast<double>(drop) / static_cast<double>(services.size());
  double bias = 1.0;
  if (model == ServiceModel::kExponential) {
    bias = exponential_trim_bias(effective_alpha);
  } else if (model == ServiceModel::kErlang2) {
    // No convenient closed form; estimate the Erlang-2 trimmed-mean bias
    // numerically once per call (cheap: fixed 4096-point grid).
    bias = erlang2_trim_bias(effective_alpha);
  }
  RateEstimate estimate;
  estimate.samples = trimmed.count();
  estimate.mean_service = trimmed.mean() / bias;
  estimate.execution_value =
      linear_coefficient_from_mean_service(estimate.mean_service, model);
  const double coefficient =
      linear_coefficient_from_mean_service(1.0, model);
  const double dgdm = 2.0 * coefficient * estimate.mean_service;
  estimate.ci95 = 1.959964 * dgdm * trimmed.stderr_mean() / bias;
  return estimate;
}

}  // namespace lbmv::sim

#pragma once

/// \file epochs.h
/// Multi-epoch operation under drifting machine speeds.
///
/// The paper's setting is static: one bid round, one allocation.  Real
/// systems run the protocol repeatedly while the machines' effective speeds
/// drift (co-located load, thermal throttling, hardware aging).  This
/// module re-runs the mechanism every epoch against true values that follow
/// a reflected log-normal random walk and supports *stale reporting*: agent
/// i may only know (and bid) its speed from `lag_i` epochs ago — an honest
/// agent with stale measurements behaves exactly like an unintentional
/// misreporter, and the mechanism's measured-latency accounting handles it
/// the same way.

#include <cstdint>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/model/system_config.h"
#include "lbmv/sim/replication.h"
#include "lbmv/util/stats.h"

namespace lbmv::sim {

/// Schedule and drift parameters.
struct EpochOptions {
  int epochs = 30;
  double drift_sigma = 0.08;  ///< std-dev of the per-epoch log-speed step
  double min_type = 0.05;     ///< reflection bounds for the walk
  double max_type = 100.0;
  std::uint64_t seed = 3;
  /// Per-agent reporting lag in epochs (empty = all 0 = fresh values).
  /// Agents bid the true value they had `lag` epochs ago.
  std::vector<int> bid_lags;
};

/// One epoch's state and outcome.
struct EpochRecord {
  std::vector<double> true_values;  ///< speeds during this epoch
  core::MechanismOutcome outcome;
  double optimal_latency = 0.0;  ///< best possible at the epoch's speeds
  /// optimal / actual in (0, 1]; 1 means the epoch ran at the optimum.
  double efficiency = 0.0;
};

/// Whole-run summary.
struct EpochReport {
  std::vector<EpochRecord> records;
  std::vector<double> cumulative_utility;  ///< per agent, summed over epochs
  double mean_efficiency = 0.0;
};

/// Run \p options.epochs rounds of \p mechanism starting from
/// \p initial_config.  All agents execute at their (current) full capacity;
/// bids use the lagged true values per options.bid_lags.
[[nodiscard]] EpochReport run_epochs(const core::Mechanism& mechanism,
                                     const model::SystemConfig& initial_config,
                                     const EpochOptions& options = {});

/// Monte-Carlo summary over independent drift paths.
struct ReplicatedEpochReport {
  std::vector<EpochReport> runs;         ///< one per replication
  util::RunningStats mean_efficiency;    ///< across replications
  /// Per-agent cumulative utility across replications.
  std::vector<util::RunningStats> cumulative_utility;
};

/// Run \p replication.replications independent epoch runs — each a distinct
/// drift path whose seed is split from replication.root_seed (the seed in
/// \p options is ignored) — across the thread pool, merging at the barrier.
/// Epochs inside a run stay strictly sequential (epoch e+1 depends on e);
/// the replications are the parallel axis.
[[nodiscard]] ReplicatedEpochReport run_epochs_replicated(
    const core::Mechanism& mechanism,
    const model::SystemConfig& initial_config, const EpochOptions& options,
    const ReplicationOptions& replication = {});

}  // namespace lbmv::sim

#pragma once

/// \file legacy_engine.h
/// The seed `std::function`-per-event simulation loop, preserved verbatim.
///
/// engine.h replaced this loop with a typed, allocation-free event
/// representation.  The original is kept for two jobs:
///   1. **Differential determinism testing** — test_sim_determinism proves
///      the typed loop produces bit-identical completion traces (job ids,
///      start/finish times) to this loop for fixed seeds across every
///      ServiceModel.
///   2. **Honest baselining** — tools/lbmv_bench_perf measures both loops
///      in the same run and records the speedup in BENCH_perf.json's
///      `sim_throughput` section.
///
/// Everything in lbmv::sim::legacy mirrors the seed implementation: a
/// priority queue of (time, seq, std::function) events, a closure-scheduling
/// FCFS server and Poisson job source.  Do not "improve" this code — its
/// value is being exactly what the seed shipped.

#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "lbmv/sim/server.h"  // shared ServiceModel / Job / Completion
#include "lbmv/util/rng.h"

namespace lbmv::sim::legacy {

/// The seed event loop: schedule closures at absolute times and drain them
/// in (time, insertion) order.
class Simulation {
 public:
  using Handler = std::function<void()>;

  void schedule(SimTime time, Handler handler);
  void schedule_after(SimTime delay, Handler handler);
  bool step();
  void run();
  void run_until(SimTime t);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t processed() const { return processed_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

/// The seed FCFS server: schedules one heap-allocated completion closure
/// per job.  RNG draw order is identical to sim::Server.
class Server {
 public:
  Server(Simulation& sim, std::string name, double execution_value,
         ServiceModel model, util::Rng rng);

  void submit(const Job& job);

  [[nodiscard]] const std::vector<Completion>& completions() const {
    return completions_;
  }
  [[nodiscard]] double busy_time() const { return busy_time_; }
  [[nodiscard]] bool busy() const { return busy_; }

 private:
  void begin_service();

  Simulation* sim_;
  std::string name_;
  double execution_value_;
  ServiceModel model_;
  double mean_service_;
  util::Rng rng_;

  std::vector<Job> queue_;
  std::size_t head_ = 0;
  bool busy_ = false;
  double busy_time_ = 0.0;
  std::vector<Completion> completions_;
};

/// The seed Poisson source: one closure per arrival, categorical routing.
class JobSource {
 public:
  JobSource(Simulation& sim, std::span<Server* const> servers,
            std::vector<double> rates, SimTime horizon, util::Rng rng);

  void start();

  [[nodiscard]] std::uint64_t jobs_emitted() const { return next_job_id_; }

 private:
  void arrival();

  Simulation* sim_;
  std::vector<Server*> servers_;
  std::vector<double> rates_;
  double total_rate_;
  SimTime horizon_;
  util::Rng rng_;
  std::uint64_t next_job_id_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace lbmv::sim::legacy

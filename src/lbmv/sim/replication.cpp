#include "lbmv/sim/replication.h"

#include "lbmv/obs/probes.h"
#include "lbmv/obs/trace.h"
#include "lbmv/util/error.h"

namespace lbmv::sim {

ReplicationRunner::ReplicationRunner(ReplicationOptions options)
    : options_(options) {
  LBMV_REQUIRE(options_.replications > 0,
               "at least one replication required");
  LBMV_REQUIRE(options_.grain > 0, "grain must be positive");
}

util::Rng ReplicationRunner::stream(std::size_t rep) const {
  // split(rep + 1): stream 0 is reserved for the experiment's own
  // non-replicated draws (e.g. a shared warmup), matching the convention
  // protocol.cpp uses for its per-component splits.
  return util::Rng(options_.root_seed).split(rep + 1);
}

void ReplicationRunner::run(
    const std::function<void(std::size_t, util::Rng&)>& body) const {
  util::ThreadPool& pool =
      options_.pool != nullptr ? *options_.pool : util::ThreadPool::global();
  pool.parallel_for(
      0, options_.replications,
      [&](std::size_t rep) {
        const obs::Span span("replication", "protocol");
        util::Rng rng = stream(rep);
        body(rep, rng);
        obs::ProtocolProbes::get().replications.inc();
      },
      options_.grain);
}

}  // namespace lbmv::sim

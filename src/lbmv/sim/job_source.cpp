#include "lbmv/sim/job_source.h"

#include "lbmv/util/error.h"

namespace lbmv::sim {

JobSource::JobSource(Simulation& sim, std::span<Server* const> servers,
                     std::vector<double> rates, SimTime horizon,
                     util::Rng rng)
    : sim_(&sim),
      servers_(servers.begin(), servers.end()),
      rates_(std::move(rates)),
      total_rate_(0.0),
      horizon_(horizon),
      rng_(rng),
      counts_(servers_.size(), 0) {
  LBMV_REQUIRE(!servers_.empty(), "job source needs at least one server");
  LBMV_REQUIRE(rates_.size() == servers_.size(),
               "one rate per server required");
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    LBMV_REQUIRE(servers_[i] != nullptr, "servers must not be null");
    LBMV_REQUIRE(rates_[i] >= 0.0, "rates must be non-negative");
    total_rate_ += rates_[i];
  }
  LBMV_REQUIRE(total_rate_ > 0.0, "total arrival rate must be positive");
  LBMV_REQUIRE(horizon_ > 0.0, "horizon must be positive");
}

void JobSource::start() {
  sim_->schedule_after(rng_.exponential(total_rate_), [this] { arrival(); });
}

void JobSource::arrival() {
  if (sim_->now() > horizon_) return;  // stop generating past the horizon
  const std::size_t target = rng_.categorical(rates_);
  ++counts_[target];
  servers_[target]->submit(Job{next_job_id_++, sim_->now()});
  sim_->schedule_after(rng_.exponential(total_rate_), [this] { arrival(); });
}

}  // namespace lbmv::sim

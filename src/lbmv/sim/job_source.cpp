#include "lbmv/sim/job_source.h"

#include <algorithm>

#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::sim {

JobSource::JobSource(Simulation& sim, std::span<Server* const> servers,
                     std::vector<double> rates, SimTime horizon,
                     util::Rng rng)
    : sim_(&sim),
      servers_(servers.begin(), servers.end()),
      rates_(std::move(rates)),
      total_rate_(0.0),
      horizon_(horizon),
      rng_(rng),
      counts_(servers_.size(), 0) {
  LBMV_REQUIRE(!servers_.empty(), "job source needs at least one server");
  LBMV_REQUIRE(rates_.size() == servers_.size(),
               "one rate per server required");
  cumulative_rates_.reserve(rates_.size());
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    LBMV_REQUIRE(servers_[i] != nullptr, "servers must not be null");
    LBMV_REQUIRE(rates_[i] >= 0.0, "rates must be non-negative");
    // Accumulate left-to-right exactly like Rng::categorical's running sum
    // so the binary-search routing is bit-identical to the linear scan.
    total_rate_ += rates_[i];
    cumulative_rates_.push_back(total_rate_);
  }
  LBMV_REQUIRE(total_rate_ > 0.0, "total arrival rate must be positive");
  LBMV_REQUIRE(horizon_ > 0.0, "horizon must be positive");
}

void JobSource::start() {
  sim_->schedule_event_after(rng_.exponential(total_rate_),
                             EventKind::kArrival, this);
}

void JobSource::on_sim_event(Simulation& sim, EventKind kind) {
  (void)sim;
  LBMV_ASSERT(kind == EventKind::kArrival, "job source only handles arrivals");
  arrival();
}

std::size_t JobSource::route() {
  // Equivalent to rng_.categorical(rates_): one uniform draw, first index i
  // with u < prefix_sum(i), falling back to the last server on round-off.
  const double u = rng_.uniform() * total_rate_;
  const auto it = std::upper_bound(cumulative_rates_.begin(),
                                   cumulative_rates_.end(), u);
  if (it == cumulative_rates_.end()) return cumulative_rates_.size() - 1;
  return static_cast<std::size_t>(it - cumulative_rates_.begin());
}

void JobSource::arrival() {
  if (sim_->now() > horizon_) return;  // stop generating past the horizon
  const std::size_t target = route();
  if (obs::enabled()) obs::SimProbes::get().source_jobs.inc();
  ++counts_[target];
  servers_[target]->submit(Job{next_job_id_++, sim_->now()});
  sim_->schedule_event_after(rng_.exponential(total_rate_),
                             EventKind::kArrival, this);
}

}  // namespace lbmv::sim

#include "lbmv/sim/protocol.h"

#include <cmath>
#include <memory>

#include "lbmv/core/batch.h"
#include "lbmv/core/delta_engine.h"
#include "lbmv/obs/monitor.h"
#include "lbmv/obs/probes.h"
#include "lbmv/obs/trace.h"
#include "lbmv/sim/job_source.h"
#include "lbmv/sim/rate_estimator.h"
#include "lbmv/util/error.h"

namespace lbmv::sim {

VerifiedProtocol::VerifiedProtocol(const core::Mechanism& mechanism,
                                   ProtocolOptions options)
    : mechanism_(&mechanism), options_(options) {
  LBMV_REQUIRE(std::isfinite(options_.horizon) && options_.horizon > 0.0,
               "horizon must be finite and positive");
  LBMV_REQUIRE(
      options_.warmup_fraction >= 0.0 && options_.warmup_fraction < 1.0,
      "warmup fraction must be in [0, 1)");
  LBMV_REQUIRE(options_.trim_fraction >= 0.0 && options_.trim_fraction < 0.5,
               "trim fraction must be in [0, 0.5)");
}

RoundReport VerifiedProtocol::run_round(
    const model::SystemConfig& config,
    const model::BidProfile& intents) const {
  return run_round(config, intents, options_.seed);
}

RoundReport VerifiedProtocol::run_round(const model::SystemConfig& config,
                                        const model::BidProfile& intents,
                                        std::uint64_t seed) const {
  const obs::Span span("protocol_round", "protocol");
  obs::ProtocolProbes::get().rounds.inc();
  const std::size_t n = config.size();
  intents.validate(n);
  LBMV_REQUIRE(
      dynamic_cast<const model::LinearFamily*>(&config.family()) != nullptr,
      "the simulated protocol realises the paper's linear latency model");

  RoundReport report;
  // Step 1: collect bids (n messages).
  report.messages += n;

  // Step 2: allocate and assign (n messages).
  report.allocation = mechanism_->allocator().allocate(
      config.family(), intents.bids, config.arrival_rate());
  report.messages += n;
  if (obs::enabled()) {
    // Mass balance on the wire: the assignment shipped to the servers
    // must carry exactly R jobs/s (same identity run_into checks on its
    // own allocation, but this is the one the simulator actually runs).
    double shipped = 0.0;
    for (const double rate : report.allocation.rates()) shipped += rate;
    obs::Monitors::get().protocol_mass_balance.check(
        (shipped - config.arrival_rate()) / config.arrival_rate(),
        {{"n", static_cast<double>(n)},
         {"shipped", shipped},
         {"arrival_rate", config.arrival_rate()}});
  }

  // Step 3: execute the jobs on simulated servers.
  util::Rng rng(seed);
  Simulation sim;
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<Server*> server_ptrs;
  servers.reserve(n);
  // Arena pre-sizing: ~R * horizon jobs arrive system-wide; spreading that
  // evenly is only a hint, but it keeps steady-state runs allocation-free.
  const double expected_jobs =
      config.arrival_rate() * options_.horizon / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    servers.push_back(std::make_unique<Server>(
        sim, "C" + std::to_string(i + 1), intents.executions[i],
        options_.service_model, rng.split(i + 1)));
    servers.back()->reserve(static_cast<std::size_t>(2.0 * expected_jobs) +
                            16);
    server_ptrs.push_back(servers.back().get());
  }
  std::vector<double> rates(report.allocation.rates().begin(),
                            report.allocation.rates().end());
  JobSource source(sim, server_ptrs, std::move(rates), options_.horizon,
                   rng.split(0));
  source.start();
  sim.run();  // arrivals stop at the horizon; drain remaining service
  report.metrics = collect_metrics(server_ptrs, options_.horizon,
                                   options_.warmup_fraction);

  // Step 4: verification — estimate execution values from completions.
  report.estimated_execution.resize(n);
  report.estimate_available.resize(n);
  model::BidProfile verified = intents;
  for (std::size_t i = 0; i < n; ++i) {
    const auto estimate =
        options_.trim_fraction > 0.0
            ? estimate_execution_value_trimmed(servers[i]->completions(),
                                               options_.service_model,
                                               options_.trim_fraction)
            : estimate_execution_value(servers[i]->completions(),
                                       options_.service_model);
    report.estimate_available[i] = estimate.has_value();
    // A computer that received no jobs cannot be verified; the mechanism
    // falls back to trusting its bid for the round.
    if (!estimate) obs::ProtocolProbes::get().estimate_fallbacks.inc();
    report.estimated_execution[i] =
        estimate ? estimate->execution_value : intents.bids[i];
    verified.executions[i] = report.estimated_execution[i];
  }

  // Step 5: payments (n messages) — at the estimates, and at the paper's
  // oracle values for comparison.  Both rounds share one delta engine: the
  // bids are identical, only the execution plane differs between verified
  // and intents, so the second round is an O(k)-in-changed-entries sync of
  // the first rather than a second from-scratch round.
  core::DeltaRoundEngine engine(*mechanism_, config.family_ptr(),
                                config.arrival_rate(), verified);
  report.outcome = engine.outcome();
  engine.sync(intents.bids, intents.executions);
  report.oracle_outcome = engine.outcome();
  report.messages += n;
  if (obs::enabled()) {
    // Record-only residual gauge: how much the estimation noise moved the
    // money, |P_est - P_oracle| / max(1, |P_oracle|) on round totals.
    const double oracle = report.oracle_outcome.total_payment();
    const double estimated = report.outcome.total_payment();
    obs::Monitors::get().protocol_estimate_gap.check(
        (estimated - oracle) / std::max(1.0, std::fabs(oracle)),
        {{"estimated_total", estimated}, {"oracle_total", oracle}});
  }
  return report;
}

ReplicatedRoundReport VerifiedProtocol::run_replicated(
    const model::SystemConfig& config, const model::BidProfile& intents,
    const ReplicationOptions& replication) const {
  const std::size_t n = config.size();
  const ReplicationRunner runner(replication);

  ReplicatedRoundReport merged;
  merged.rounds.resize(replication.replications);
  // Fan out: each replication runs the identical round under its own split
  // RNG stream and writes only its own slot.
  runner.run([&](std::size_t rep, util::Rng& rng) {
    merged.rounds[rep] = run_round(config, intents, rng.seed());
  });

  // Barrier merge, in replication order for determinism.
  merged.estimated_execution.resize(n);
  merged.payments.resize(n);
  for (const RoundReport& round : merged.rounds) {
    merged.measured_latency.add(round.metrics.measured_total_latency);
    merged.total_jobs.add(static_cast<double>(round.metrics.total_jobs()));
    for (std::size_t i = 0; i < n; ++i) {
      merged.estimated_execution[i].add(round.estimated_execution[i]);
      merged.payments[i].add(round.outcome.agents[i].payment);
    }
  }
  return merged;
}

}  // namespace lbmv::sim

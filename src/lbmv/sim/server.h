#pragma once

/// \file server.h
/// A simulated computer: FCFS single-server queue with a controllable
/// execution rate.
///
/// The mapping to the paper's linear latency model follows the paper's own
/// justification (§2): l(x) = t * x is the expected M/G/1 waiting time under
/// light load, W ~= x * E[S^2] / 2.  With exponential service of mean m,
/// E[S^2] = 2 m^2, so the linear coefficient is t = m^2: a computer of true
/// value t serves jobs with mean service time sqrt(t), and an agent
/// executing at value t~ >= t stretches its service times by
/// sqrt(t~ / t).  The verification step can therefore recover t~ from the
/// observed service times alone (rate_estimator.h).
///
/// Hot-path design: the server is an EventSink — service completions are
/// typed events, and the in-service job's (id, arrival, start, duration)
/// live in server members rather than a per-event closure capture, so a
/// steady-state run allocates nothing per job.  The job queue and the
/// completion log are flat per-server arenas (reserve() pre-sizes them,
/// reset() recycles them across replications without freeing).

#include <cstdint>
#include <string>
#include <vector>

#include "lbmv/obs/metrics.h"
#include "lbmv/sim/engine.h"
#include "lbmv/util/rng.h"

namespace lbmv::sim {

/// How service durations are drawn around their mean.
enum class ServiceModel {
  kExponential,    ///< Exp(mean); E[S^2] = 2 m^2, linear coefficient t = m^2
  kDeterministic,  ///< constant;  E[S^2] = m^2,   linear coefficient t = m^2/2
  kErlang2,        ///< Erlang(2); E[S^2] = 1.5 m^2, coefficient t = 0.75 m^2
};

/// The linear-latency coefficient t implied by mean service time \p m under
/// \p model (t = E[S^2] / 2).
[[nodiscard]] double linear_coefficient_from_mean_service(double m,
                                                          ServiceModel model);

/// Mean service time realising linear coefficient \p t under \p model
/// (inverse of linear_coefficient_from_mean_service).
[[nodiscard]] double mean_service_from_linear_coefficient(double t,
                                                          ServiceModel model);

/// A job arriving at a server.
struct Job {
  std::uint64_t id = 0;
  SimTime arrival = 0.0;
};

/// Observed completion record — the raw material of verification.
struct Completion {
  std::uint64_t job_id = 0;
  SimTime arrival = 0.0;  ///< when the job reached the server
  SimTime start = 0.0;    ///< when service began
  SimTime finish = 0.0;   ///< when service completed

  [[nodiscard]] double waiting_time() const { return start - arrival; }
  [[nodiscard]] double service_time() const { return finish - start; }
  [[nodiscard]] double response_time() const { return finish - arrival; }
};

/// FCFS single-server queue bound to a Simulation.
class Server final : public EventSink {
 public:
  /// \p execution_value is the linear coefficient t~ the server actually
  /// runs at; the mean service time is derived per \p model.
  Server(Simulation& sim, std::string name, double execution_value,
         ServiceModel model, util::Rng rng);

  /// Enqueue a job at the simulation's current time.
  void submit(const Job& job);

  /// Typed-event entry point: fires when the in-service job completes.
  void on_sim_event(Simulation& sim, EventKind kind) override;

  /// Pre-size the job queue and completion arena for \p expected_jobs so a
  /// run of that length allocates nothing per event.
  void reserve(std::size_t expected_jobs);

  /// Forget all queued jobs, completions and accounting, keeping arena
  /// capacity.  The RNG stream is NOT rewound; pass a fresh stream per
  /// replication instead.
  void reset();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double execution_value() const { return execution_value_; }
  [[nodiscard]] ServiceModel model() const { return model_; }
  [[nodiscard]] double mean_service_time() const { return mean_service_; }
  [[nodiscard]] const std::vector<Completion>& completions() const {
    return completions_;
  }
  /// Jobs accepted but not yet started (excludes the one in service).
  [[nodiscard]] std::size_t queue_length() const {
    return queue_.size() - head_;
  }
  [[nodiscard]] bool busy() const { return busy_; }
  /// Total simulated time the server spent serving jobs.
  [[nodiscard]] double busy_time() const { return busy_time_; }

 private:
  void begin_service();

  Simulation* sim_;
  std::string name_;
  double execution_value_;
  ServiceModel model_;
  double mean_service_;
  util::Rng rng_;

  std::vector<Job> queue_;  // FIFO; front at index head_
  std::size_t head_ = 0;
  bool busy_ = false;
  double busy_time_ = 0.0;
  // The one job in service: FCFS single-server, so members (not a per-event
  // closure capture) are enough to describe the pending completion.
  Job in_service_{};
  SimTime service_start_ = 0.0;
  double service_duration_ = 0.0;
  std::vector<Completion> completions_;

  // Per-server metric handles, resolved once at construction (inert
  // defaults when recording is off at that point; see server.cpp).
  obs::Counter obs_arrivals_;
  obs::Counter obs_completions_;
  obs::Histogram obs_waiting_;
};

}  // namespace lbmv::sim

#include "lbmv/core/audit.h"

#include <algorithm>
#include <cmath>

#include "lbmv/core/batch.h"
#include "lbmv/core/grid_kernels.h"
#include "lbmv/core/profile_context.h"
#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"
#include "lbmv/util/thread_pool.h"

namespace lbmv::core {

bool AuditReport::truthful_dominant(double tol) const {
  const double scale = std::max(1.0, std::fabs(truthful_utility));
  return max_gain <= tol * scale;
}

AuditReport TruthfulnessAuditor::audit_agent(const model::SystemConfig& config,
                                             std::size_t agent,
                                             const AuditOptions& options) const {
  return audit_agent(config, agent, model::BidProfile::truthful(config),
                     options);
}

AuditReport TruthfulnessAuditor::audit_agent(const model::SystemConfig& config,
                                             std::size_t agent,
                                             const model::BidProfile& base,
                                             const AuditOptions& options) const {
  LBMV_REQUIRE(agent < config.size(), "agent index out of range");
  base.validate(config.size());
  for (double em : options.exec_multipliers) {
    LBMV_REQUIRE(em >= 1.0,
                 "execution multipliers must be >= 1: agents cannot execute "
                 "faster than their true capacity");
  }
  LBMV_REQUIRE(!options.bid_multipliers.empty() &&
                   !options.exec_multipliers.empty(),
               "audit grids must be non-empty");

  const double truth = config.true_value(agent);
  // Incremental fast path: across the sweep only this agent's bid and
  // execution change, so the mechanism can freeze everything else once.
  // (The per-agent AgentUtilityContext is just this context bound to one
  // agent index; the audit holds the profile context directly so the grid
  // sweep below can ride the lane-parallel kernels when the closed form is
  // the linear/PR one.)
  const std::unique_ptr<ProfileUtilityContext> context =
      options.incremental
          ? mechanism_->make_profile_context(config.family(),
                                             config.arrival_rate(), base)
          : nullptr;
  const auto* linear =
      dynamic_cast<const LinearPrProfileContext*>(context.get());
  const auto* mm1 = dynamic_cast<const Mm1PrProfileContext*>(context.get());
  auto evaluate = [&](double bid_mult, double exec_mult) {
    const double bid = truth * bid_mult;
    const double execution = truth * exec_mult;
    if (context != nullptr) return context->utility(agent, bid, execution);
    // Legacy full-mechanism path: one reusable workspace per worker thread,
    // so sweeping the grid allocates only on each thread's first point.
    RoundWorkspace& ws = RoundWorkspace::thread_local_instance();
    model::BidProfile& profile = ws.scratch_profile;
    profile.bids.assign(base.bids.begin(), base.bids.end());
    profile.executions.assign(base.executions.begin(), base.executions.end());
    profile.bids[agent] = bid;
    profile.executions[agent] = execution;
    mechanism_->run_into(config, profile, ws.scratch_outcome, ws);
    return ws.scratch_outcome.agents[agent].utility;
  };

  AuditReport report;
  report.agent = agent;
  report.truthful_utility = evaluate(1.0, 1.0);

  const std::size_t nb = options.bid_multipliers.size();
  const std::size_t ne = options.exec_multipliers.size();
  // The truthful point plus the full deviation grid, counted up front.
  obs::MechProbes::get().audit_evaluations.inc(
      static_cast<std::uint64_t>(nb * ne) + 1);
  std::vector<Deviation> grid(nb * ne);
  if (linear != nullptr || mm1 != nullptr) {
    // Lane-parallel path: one candidate-bid sweep per execution multiplier
    // (bids vary along the row, four lanes per instruction), scattered back
    // into the k = bm_idx * ne + em_idx layout so the best-scan below
    // visits grid points in the legacy order — same utilities bit for bit,
    // same tie-breaking.  The M/M/1 rows ride the §14 kernels; lanes off
    // the all-active fast path defer to the context's own scalar oracle.
    std::vector<double> bid_row(nb);
    for (std::size_t j = 0; j < nb; ++j) {
      bid_row[j] = truth * options.bid_multipliers[j];
    }
    std::vector<double> utilities(nb * ne);
    auto row = [&](std::size_t e) {
      const std::span<double> slot =
          std::span<double>(utilities).subspan(e * nb, nb);
      const double execution = truth * options.exec_multipliers[e];
      if (linear != nullptr) {
        linear_pr_grid_utilities(*linear, agent, bid_row, execution, slot);
      } else {
        mm1_grid_utilities(*mm1, agent, bid_row, execution, slot);
      }
    };
    if (options.parallel && ne > 1) {
      util::ThreadPool::global().parallel_for(0, ne, row, /*grain=*/1);
    } else {
      for (std::size_t e = 0; e < ne; ++e) row(e);
    }
    for (std::size_t j = 0; j < nb; ++j) {
      for (std::size_t e = 0; e < ne; ++e) {
        grid[j * ne + e] =
            Deviation{options.bid_multipliers[j], options.exec_multipliers[e],
                      utilities[e * nb + j]};
      }
    }
  } else {
    auto body = [&](std::size_t k) {
      const double bm = options.bid_multipliers[k / ne];
      const double em = options.exec_multipliers[k % ne];
      grid[k] = Deviation{bm, em, evaluate(bm, em)};
    };
    if (options.parallel) {
      // Grain-size control: incremental grid points are O(1), so chunk them
      // coarsely to amortise task overhead; the legacy full-mechanism path
      // is heavy enough that fine chunks load-balance better.
      util::ThreadPool::global().parallel_for(0, grid.size(), body,
                                              options.incremental ? 64 : 1);
    } else {
      for (std::size_t k = 0; k < grid.size(); ++k) body(k);
    }
  }

  report.best = grid.front();
  for (const auto& d : grid) {
    if (d.utility > report.best.utility) report.best = d;
  }
  report.max_gain = report.best.utility - report.truthful_utility;
  if (options.keep_grid) report.grid = std::move(grid);
  return report;
}

std::vector<AuditReport> TruthfulnessAuditor::audit_all(
    const model::SystemConfig& config, const AuditOptions& options) const {
  std::vector<AuditReport> reports(config.size());
  if (options.parallel && config.size() > 1) {
    // One level of parallelism: across agents, with each per-agent grid
    // evaluated serially (nesting parallel_for on one fixed-size pool can
    // starve the inner waits of workers).
    AuditOptions per_agent = options;
    per_agent.parallel = false;
    util::ThreadPool::global().parallel_for(
        0, config.size(),
        [&](std::size_t i) { reports[i] = audit_agent(config, i, per_agent); },
        /*grain=*/1);
  } else {
    for (std::size_t i = 0; i < config.size(); ++i) {
      reports[i] = audit_agent(config, i, options);
    }
  }
  return reports;
}

bool CoalitionReport::coalition_proof(double tol) const {
  const double scale = std::max(1.0, std::fabs(truthful_joint_utility));
  return max_joint_gain <= tol * scale;
}

CoalitionReport CoalitionAuditor::audit_pair(const model::SystemConfig& config,
                                             std::size_t agent_a,
                                             std::size_t agent_b,
                                             const AuditOptions& options) const {
  LBMV_REQUIRE(agent_a < config.size() && agent_b < config.size(),
               "agent index out of range");
  LBMV_REQUIRE(agent_a != agent_b, "a coalition needs two distinct agents");
  for (double em : options.exec_multipliers) {
    LBMV_REQUIRE(em >= 1.0, "execution multipliers must be >= 1");
  }
  LBMV_REQUIRE(!options.bid_multipliers.empty() &&
                   !options.exec_multipliers.empty(),
               "audit grids must be non-empty");

  const model::BidProfile base = model::BidProfile::truthful(config);
  auto evaluate = [&](const CoalitionDeviation& d) {
    RoundWorkspace& ws = RoundWorkspace::thread_local_instance();
    model::BidProfile& profile = ws.scratch_profile;
    profile.bids.assign(base.bids.begin(), base.bids.end());
    profile.executions.assign(base.executions.begin(), base.executions.end());
    profile.bids[agent_a] = config.true_value(agent_a) * d.bid_mult_a;
    profile.executions[agent_a] = config.true_value(agent_a) * d.exec_mult_a;
    profile.bids[agent_b] = config.true_value(agent_b) * d.bid_mult_b;
    profile.executions[agent_b] = config.true_value(agent_b) * d.exec_mult_b;
    mechanism_->run_into(config, profile, ws.scratch_outcome, ws);
    return ws.scratch_outcome.agents[agent_a].utility +
           ws.scratch_outcome.agents[agent_b].utility;
  };

  CoalitionReport report;
  report.agent_a = agent_a;
  report.agent_b = agent_b;
  report.truthful_joint_utility = evaluate(CoalitionDeviation{});

  const auto& bids = options.bid_multipliers;
  const auto& execs = options.exec_multipliers;
  const std::size_t nb = bids.size();
  const std::size_t ne = execs.size();
  const std::size_t per_agent = nb * ne;
  std::vector<CoalitionDeviation> grid(per_agent * per_agent);
  auto body = [&](std::size_t k) {
    const std::size_t ka = k / per_agent;
    const std::size_t kb = k % per_agent;
    CoalitionDeviation d;
    d.bid_mult_a = bids[ka / ne];
    d.exec_mult_a = execs[ka % ne];
    d.bid_mult_b = bids[kb / ne];
    d.exec_mult_b = execs[kb % ne];
    d.joint_utility = evaluate(d);
    grid[k] = d;
  };
  if (options.parallel) {
    util::ThreadPool::global().parallel_for(0, grid.size(), body);
  } else {
    for (std::size_t k = 0; k < grid.size(); ++k) body(k);
  }

  report.best = grid.front();
  for (const auto& d : grid) {
    if (d.joint_utility > report.best.joint_utility) report.best = d;
  }
  report.max_joint_gain =
      report.best.joint_utility - report.truthful_joint_utility;
  return report;
}

std::vector<double> truthful_utilities(const Mechanism& mechanism,
                                       const model::SystemConfig& config) {
  const MechanismOutcome outcome =
      mechanism.run(config, model::BidProfile::truthful(config));
  std::vector<double> utilities;
  utilities.reserve(outcome.agents.size());
  for (const auto& agent : outcome.agents) {
    utilities.push_back(agent.utility);
  }
  return utilities;
}

bool voluntary_participation_holds(const Mechanism& mechanism,
                                   const model::SystemConfig& config,
                                   double tol) {
  for (double u : truthful_utilities(mechanism, config)) {
    if (u < -tol) return false;
  }
  return true;
}

}  // namespace lbmv::core

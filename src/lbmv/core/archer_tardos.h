#pragma once

/// \file archer_tardos.h
/// Archer–Tardos one-parameter truthful baseline — no verification.
///
/// Archer & Tardos (FOCS 2001) show that for agents whose private data is a
/// single scalar t_i and whose cost is t_i * w_i(b) for some "work" measure
/// w_i, an allocation rule is truthfully implementable iff w_i is
/// non-increasing in the agent's own bid, and the (normalised) truthful
/// payment is
///
///     P_i(b) = b_i * w_i(b) + Integral_{b_i}^{inf} w_i(u, b_{-i}) du.
///
/// In the paper's load balancing setting the agent's cost is t_i * x_i^2, so
/// the work curve is w_i = x_i^2; under the PR allocation
/// x_i(u, b_{-i}) = R / (1 + u * s_i) with s_i = sum_{j != i} 1/b_j, which is
/// decreasing in u, and the payment integral has the closed form
///
///     Integral_{b}^{inf} R^2 / (1 + u s)^2 du = R^2 / (s * (1 + b s)).
///
/// Grosu & Chronopoulos used this framework in the companion paper (Cluster
/// 2002) for M/M/1 computers; here it serves as the natural
/// verification-free baseline against the paper's compensation-and-bonus
/// mechanism: truthful in bids, blind to slow execution.

#include <span>
#include <string>

#include "lbmv/core/mechanism.h"

namespace lbmv::core {

/// Closed-form payment integral Integral_{bid}^{inf} w_i du under PR.
/// \p inverse_bid_sum_rest is s_i = sum_{j != i} 1/b_j.
[[nodiscard]] double archer_tardos_tail_integral(double bid,
                                                 double inverse_bid_sum_rest,
                                                 double arrival_rate);

/// The Archer–Tardos mechanism for the PR allocation on linear latencies.
class ArcherTardosMechanism final : public Mechanism {
 public:
  ArcherTardosMechanism();

  [[nodiscard]] std::string name() const override { return "archer-tardos"; }
  [[nodiscard]] bool uses_verification() const override { return false; }
  [[nodiscard]] VectorRule vector_rule() const override {
    return VectorRule::kArcherTardos;
  }

  /// Numeric evaluation of the payment tail integral (adaptive Simpson over
  /// the transformed infinite interval) — used by tests to certify the
  /// closed form.
  [[nodiscard]] static double tail_integral_numeric(
      double bid, double inverse_bid_sum_rest, double arrival_rate,
      double tol = 1e-10);

  /// O(1)-per-deviation closed form (LinearPrRule::kArcherTardos): the
  /// payment b x^2 + R^2/(s_rest (1 + b s_rest)) follows from the same
  /// cached sums as the comp-bonus/VCG contexts, so deviation grids, audits
  /// and best-response dynamics over this baseline ride the fast path (and
  /// the lane-parallel grid kernels) too.  nullptr off the
  /// linear-family/PR-allocator pairing, as for the other mechanisms.
  [[nodiscard]] std::unique_ptr<ProfileUtilityContext> make_profile_context(
      const model::LatencyFamily& family, double arrival_rate,
      const model::BidProfile& base) const override;

 protected:
  void fill_payments(const model::LatencyFamily& family, double arrival_rate,
                     std::span<const double> bids,
                     std::span<const double> executions,
                     const model::Allocation& x, double actual_latency,
                     double reported_latency,
                     std::vector<AgentOutcome>& outcomes,
                     RoundWorkspace& ws) const override;
};

}  // namespace lbmv::core

#include "lbmv/core/family_round.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <type_traits>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/workload_allocator.h"
#include "lbmv/core/batch.h"
#include "lbmv/model/latency.h"
#include "lbmv/util/error.h"
#include "lbmv/util/simd.h"

namespace lbmv::core {
namespace {

namespace v = lbmv::util::simd;
using v::DVec;

// Same transposed publish as the linear engine: four AgentOutcome rows per
// store_records6, so the struct must stay six packed doubles in field order.
static_assert(sizeof(AgentOutcome) == 6 * sizeof(double),
              "AgentOutcome must stay six packed doubles");
static_assert(std::is_standard_layout_v<AgentOutcome>,
              "AgentOutcome must stay standard-layout");
static_assert(offsetof(AgentOutcome, allocation) == 0 &&
                  offsetof(AgentOutcome, compensation) == 8 &&
                  offsetof(AgentOutcome, bonus) == 16 &&
                  offsetof(AgentOutcome, payment) == 24 &&
                  offsetof(AgentOutcome, valuation) == 32 &&
                  offsetof(AgentOutcome, utility) == 40,
              "AgentOutcome field order is part of the publish contract");

/// Publish pass for the all-active M/M/1 round.  Everything per agent is
/// in-register off the mu / a / inv-exec / rate planes: the reported and
/// verified cost terms x * (1/(mu - x)) in the generic path's operand order
/// (cost = x * latency, latency = 1/(mu - x)), and the leave-one-out
/// optimum through the same expressions MM1Allocator's O(1) branch uses,
///
///   rest_a = sum_a - a_i,  c_i = ((sum_mu - mu_i) - R) / rest_a,
///   L_{-i} = rest_a / c_i - (n - 1).
///
/// The caller has already proven every rest set all-active and every c_i
/// safely positive, so no masks are needed here.
template <VectorRule kRule>
void publish_mm1_block(std::size_t n, const double* mu, const double* a,
                       const double* mue, const double* x, double sum_mu,
                       double sum_a, double arrival_rate, double actual_total,
                       double reported_total, AgentOutcome* agents) {
  const DVec vone = v::set1(1.0);
  const DVec vsmu = v::set1(sum_mu);
  const DVec vsa = v::set1(sum_a);
  const DVec vr = v::set1(arrival_rate);
  const DVec vnm1 = v::set1(static_cast<double>(n - 1));
  const DVec vact = v::set1(actual_total);
  const DVec vrep = v::set1(reported_total);
  std::size_t i = 0;
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec vx = v::load(&x[i]);
    const DVec vme = v::load(&mue[i]);
    const DVec costa = v::mul(vx, v::div(vone, v::sub(vme, vx)));
    DVec comp = v::zero();
    DVec bonus = v::zero();
    DVec pay = v::zero();
    if constexpr (kRule != VectorRule::kNoPayment) {
      const DVec vmu = v::load(&mu[i]);
      const DVec va = v::load(&a[i]);
      const DVec rest_a = v::sub(vsa, va);
      const DVec ci = v::div(v::sub(v::sub(vsmu, vmu), vr), rest_a);
      const DVec loo = v::sub(v::div(rest_a, ci), vnm1);
      if constexpr (kRule == VectorRule::kCompBonusExecution) {
        comp = costa;
        bonus = v::sub(loo, vact);
        pay = v::add(comp, bonus);
      } else if constexpr (kRule == VectorRule::kCompBonusBid) {
        comp = v::mul(vx, v::div(vone, v::sub(vmu, vx)));
        bonus = v::sub(loo, vact);
        pay = v::add(comp, bonus);
      } else {
        static_assert(kRule == VectorRule::kVcg, "unsupported M/M/1 rule");
        comp = v::mul(vx, v::div(vone, v::sub(vmu, vx)));
        bonus = v::sub(loo, vrep);
        pay = v::sub(loo, v::sub(vrep, comp));
      }
    }
    const DVec val = v::neg(costa);
    const DVec util = v::add(pay, val);
    v::store_records6(reinterpret_cast<double*>(agents + i), vx, comp, bonus,
                      pay, val, util);
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    const double costa = xi * (1.0 / (mue[i] - xi));
    AgentOutcome& o = agents[i];
    o.allocation = xi;
    if constexpr (kRule == VectorRule::kNoPayment) {
      o.compensation = 0.0;
      o.bonus = 0.0;
      o.payment = 0.0;
    } else {
      const double rest_a = sum_a - a[i];
      const double ci = ((sum_mu - mu[i]) - arrival_rate) / rest_a;
      const double loo = rest_a / ci - static_cast<double>(n - 1);
      if constexpr (kRule == VectorRule::kCompBonusExecution) {
        o.compensation = costa;
        o.bonus = loo - actual_total;
        o.payment = o.compensation + o.bonus;
      } else if constexpr (kRule == VectorRule::kCompBonusBid) {
        o.compensation = xi * (1.0 / (mu[i] - xi));
        o.bonus = loo - actual_total;
        o.payment = o.compensation + o.bonus;
      } else {
        o.compensation = xi * (1.0 / (mu[i] - xi));
        o.bonus = loo - reported_total;
        o.payment = loo - (reported_total - o.compensation);
      }
    }
    o.valuation = -costa;
    o.utility = o.payment + o.valuation;
  }
}

/// Publish pass for the workload round: the reported and verified cost
/// terms x * ((theta x) (1 + gamma x)) in WorkloadLatency's own operand
/// order, the leave-one-out plane precomputed by the warm-started Newton
/// solves.  \p loo may be null for kNoPayment only.
template <VectorRule kRule>
void publish_workload_block(std::size_t n, const double* bids,
                            const double* execs, const double* x,
                            const double* loo, double gamma,
                            double actual_total, double reported_total,
                            AgentOutcome* agents) {
  const DVec vone = v::set1(1.0);
  const DVec vg = v::set1(gamma);
  const DVec vact = v::set1(actual_total);
  const DVec vrep = v::set1(reported_total);
  std::size_t i = 0;
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec vx = v::load(&x[i]);
    const DVec grow = v::add(vone, v::mul(vg, vx));
    const DVec costa =
        v::mul(vx, v::mul(v::mul(v::load(&execs[i]), vx), grow));
    DVec comp = v::zero();
    DVec bonus = v::zero();
    DVec pay = v::zero();
    if constexpr (kRule != VectorRule::kNoPayment) {
      const DVec vloo = v::load(&loo[i]);
      if constexpr (kRule == VectorRule::kCompBonusExecution) {
        comp = costa;
        bonus = v::sub(vloo, vact);
        pay = v::add(comp, bonus);
      } else if constexpr (kRule == VectorRule::kCompBonusBid) {
        comp = v::mul(vx, v::mul(v::mul(v::load(&bids[i]), vx), grow));
        bonus = v::sub(vloo, vact);
        pay = v::add(comp, bonus);
      } else {
        static_assert(kRule == VectorRule::kVcg, "unsupported workload rule");
        comp = v::mul(vx, v::mul(v::mul(v::load(&bids[i]), vx), grow));
        bonus = v::sub(vloo, vrep);
        pay = v::sub(vloo, v::sub(vrep, comp));
      }
    }
    const DVec val = v::neg(costa);
    const DVec util = v::add(pay, val);
    v::store_records6(reinterpret_cast<double*>(agents + i), vx, comp, bonus,
                      pay, val, util);
  }
  for (; i < n; ++i) {
    const double xi = x[i];
    const double grow = 1.0 + gamma * xi;
    const double costa = xi * ((execs[i] * xi) * grow);
    AgentOutcome& o = agents[i];
    o.allocation = xi;
    if constexpr (kRule == VectorRule::kNoPayment) {
      o.compensation = 0.0;
      o.bonus = 0.0;
      o.payment = 0.0;
    } else {
      if constexpr (kRule == VectorRule::kCompBonusExecution) {
        o.compensation = costa;
        o.bonus = loo[i] - actual_total;
        o.payment = o.compensation + o.bonus;
      } else if constexpr (kRule == VectorRule::kCompBonusBid) {
        o.compensation = xi * ((bids[i] * xi) * grow);
        o.bonus = loo[i] - actual_total;
        o.payment = o.compensation + o.bonus;
      } else {
        o.compensation = xi * ((bids[i] * xi) * grow);
        o.bonus = loo[i] - reported_total;
        o.payment = loo[i] - (reported_total - o.compensation);
      }
    }
    o.valuation = -costa;
    o.utility = o.payment + o.valuation;
  }
}

}  // namespace

bool run_mm1_vectorized(VectorRule rule, double arrival_rate,
                        std::span<const double> bids,
                        std::span<const double> executions,
                        MechanismOutcome& out, RoundWorkspace& ws) {
  LBMV_ASSERT(
      rule != VectorRule::kNone && rule != VectorRule::kArcherTardos,
      "the fused M/M/1 engine serves leave-one-out rules and no-payment");
  const std::size_t n = bids.size();
  ws.inv_bids.resize(n);
  ws.sqrt_mu.resize(n);
  ws.inv_execs.resize(n);
  double* const mu = ws.inv_bids.data();
  double* const a = ws.sqrt_mu.data();
  double* const mue = ws.inv_execs.data();

  // ---- P1: mu / a / 1/e planes, sums, positivity masks -------------------
  // Fixed reduction tree (pr_simd.h's idiom): two vector accumulators over
  // 8-agent steps, leftover full vector into the first, hsum, scalar tail
  // in index order.
  const DVec vone = v::set1(1.0);
  const DVec vzero = v::zero();
  DVec vmu0 = v::zero();
  DVec vmu1 = v::zero();
  DVec va0 = v::zero();
  DVec va1 = v::zero();
  DVec bok = v::mask_all();
  DVec eok = v::mask_all();
  std::size_t i = 0;
  for (; i + 2 * v::kLanes <= n; i += 2 * v::kLanes) {
    const DVec b0 = v::load(&bids[i]);
    const DVec b1 = v::load(&bids[i + v::kLanes]);
    bok = v::mask_and(bok, v::mask_greater(b0, vzero));
    bok = v::mask_and(bok, v::mask_greater(b1, vzero));
    const DVec m0 = v::div(vone, b0);
    const DVec m1 = v::div(vone, b1);
    v::store(&mu[i], m0);
    v::store(&mu[i + v::kLanes], m1);
    const DVec s0 = v::sqrt(m0);
    const DVec s1 = v::sqrt(m1);
    v::store(&a[i], s0);
    v::store(&a[i + v::kLanes], s1);
    vmu0 = v::add(vmu0, m0);
    vmu1 = v::add(vmu1, m1);
    va0 = v::add(va0, s0);
    va1 = v::add(va1, s1);
    const DVec e0 = v::load(&executions[i]);
    const DVec e1 = v::load(&executions[i + v::kLanes]);
    eok = v::mask_and(eok, v::mask_greater(e0, vzero));
    eok = v::mask_and(eok, v::mask_greater(e1, vzero));
    v::store(&mue[i], v::div(vone, e0));
    v::store(&mue[i + v::kLanes], v::div(vone, e1));
  }
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec b0 = v::load(&bids[i]);
    bok = v::mask_and(bok, v::mask_greater(b0, vzero));
    const DVec m0 = v::div(vone, b0);
    v::store(&mu[i], m0);
    const DVec s0 = v::sqrt(m0);
    v::store(&a[i], s0);
    vmu0 = v::add(vmu0, m0);
    va0 = v::add(va0, s0);
    const DVec e0 = v::load(&executions[i]);
    eok = v::mask_and(eok, v::mask_greater(e0, vzero));
    v::store(&mue[i], v::div(vone, e0));
  }
  double sum_mu = v::hsum(v::add(vmu0, vmu1));
  double sum_a = v::hsum(v::add(va0, va1));
  bool inputs_ok = v::mask_all_true(bok) && v::mask_all_true(eok);
  for (; i < n; ++i) {
    inputs_ok = inputs_ok && bids[i] > 0.0 && executions[i] > 0.0;
    mu[i] = 1.0 / bids[i];
    a[i] = std::sqrt(mu[i]);
    mue[i] = 1.0 / executions[i];
    sum_mu += mu[i];
    sum_a += a[i];
  }
  if (!inputs_ok) {
    // Re-run the scalar validation loop so the diagnostic names the first
    // offender in the order the generic path would.
    for (std::size_t j = 0; j < n; ++j) {
      LBMV_REQUIRE(bids[j] > 0.0, "bids must be positive");
      LBMV_REQUIRE(executions[j] > 0.0, "execution values must be positive");
    }
  }
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");

  // ---- detection: closed form valid, full + rest sets all-active ---------
  // Any failure returns false and the generic path owns the round: the
  // active-set solver handles dropped computers, and the allocator raises
  // the canonical typed PreconditionError for infeasible / saturated /
  // cancellation-prone configurations.
  if (!(sum_mu < std::numeric_limits<double>::infinity()) ||
      !(sum_a < std::numeric_limits<double>::infinity())) {
    return false;
  }
  if (!(arrival_rate < sum_mu)) return false;
  if (sum_mu - arrival_rate < alloc::kMm1MinRelativeSlack * sum_mu) {
    return false;
  }
  double min_a = std::numeric_limits<double>::infinity();
  double second_a = std::numeric_limits<double>::infinity();
  std::size_t argmin_a = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double aj = a[j];
    if (aj < min_a) {
      second_a = min_a;
      min_a = aj;
      argmin_a = j;
    } else if (aj < second_a) {
      second_a = aj;
    }
  }
  const double c = (sum_mu - arrival_rate) / sum_a;
  if (!(min_a > c)) return false;
  const bool needs_loo = rule != VectorRule::kNoPayment;
  if (needs_loo) {
    for (std::size_t j = 0; j < n; ++j) {
      const double rest_mu = sum_mu - mu[j];
      const double slack = rest_mu - arrival_rate;
      if (slack <= 0.0 || slack < alloc::kMm1MinRelativeSlack * rest_mu) {
        return false;  // generic path throws, naming agent j
      }
      const double rest_a = sum_a - a[j];
      const double cj = slack / rest_a;
      if (!((j == argmin_a ? second_a : min_a) > cj)) return false;
    }
  }

  // ---- P2: rate plane + both latency totals + domain masks ---------------
  // x_i = mu_i - c a_i off the bid planes; the verified latency needs the
  // execution-type domain x_i < 1/e_i, which closed-form feasibility does
  // not imply — on a mask failure the generic path re-derives the round and
  // MM1Latency raises its canonical domain diagnostic.
  std::vector<double> rates = std::move(out.allocation).release();
  rates.resize(n);
  double* const x = rates.data();
  const DVec vc = v::set1(c);
  const DVec vinf = v::set1(std::numeric_limits<double>::infinity());
  DVec vrep0 = v::zero();
  DVec vrep1 = v::zero();
  DVec vact0 = v::zero();
  DVec vact1 = v::zero();
  DVec dok = v::mask_all();
  i = 0;
  for (; i + 2 * v::kLanes <= n; i += 2 * v::kLanes) {
    const DVec m0 = v::load(&mu[i]);
    const DVec m1 = v::load(&mu[i + v::kLanes]);
    const DVec x0 = v::sub(m0, v::mul(vc, v::load(&a[i])));
    const DVec x1 = v::sub(m1, v::mul(vc, v::load(&a[i + v::kLanes])));
    v::store(&x[i], x0);
    v::store(&x[i + v::kLanes], x1);
    dok = v::mask_and(dok, v::mask_greater(vinf, x0));
    dok = v::mask_and(dok, v::mask_greater(vinf, x1));
    dok = v::mask_and(dok, v::mask_greater(x0, vzero));
    dok = v::mask_and(dok, v::mask_greater(x1, vzero));
    const DVec db0 = v::sub(m0, x0);
    const DVec db1 = v::sub(m1, x1);
    dok = v::mask_and(dok, v::mask_greater(db0, vzero));
    dok = v::mask_and(dok, v::mask_greater(db1, vzero));
    vrep0 = v::add(vrep0, v::mul(x0, v::div(vone, db0)));
    vrep1 = v::add(vrep1, v::mul(x1, v::div(vone, db1)));
    const DVec de0 = v::sub(v::load(&mue[i]), x0);
    const DVec de1 = v::sub(v::load(&mue[i + v::kLanes]), x1);
    dok = v::mask_and(dok, v::mask_greater(de0, vzero));
    dok = v::mask_and(dok, v::mask_greater(de1, vzero));
    vact0 = v::add(vact0, v::mul(x0, v::div(vone, de0)));
    vact1 = v::add(vact1, v::mul(x1, v::div(vone, de1)));
  }
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec m0 = v::load(&mu[i]);
    const DVec x0 = v::sub(m0, v::mul(vc, v::load(&a[i])));
    v::store(&x[i], x0);
    dok = v::mask_and(dok, v::mask_greater(vinf, x0));
    dok = v::mask_and(dok, v::mask_greater(x0, vzero));
    const DVec db0 = v::sub(m0, x0);
    dok = v::mask_and(dok, v::mask_greater(db0, vzero));
    vrep0 = v::add(vrep0, v::mul(x0, v::div(vone, db0)));
    const DVec de0 = v::sub(v::load(&mue[i]), x0);
    dok = v::mask_and(dok, v::mask_greater(de0, vzero));
    vact0 = v::add(vact0, v::mul(x0, v::div(vone, de0)));
  }
  double reported_total = v::hsum(v::add(vrep0, vrep1));
  double actual_total = v::hsum(v::add(vact0, vact1));
  bool domain_ok = v::mask_all_true(dok);
  for (; i < n; ++i) {
    const double xi = mu[i] - c * a[i];
    x[i] = xi;
    domain_ok = domain_ok && xi > 0.0 &&
                xi < std::numeric_limits<double>::infinity();
    const double db = mu[i] - xi;
    const double de = mue[i] - xi;
    domain_ok = domain_ok && db > 0.0 && de > 0.0;
    reported_total += xi * (1.0 / db);
    actual_total += xi * (1.0 / de);
  }
  if (!domain_ok) return false;

  // ---- P3: fused payments + transposed AoS publish -----------------------
  out.agents.resize(n);
  AgentOutcome* const agents = out.agents.data();
  switch (rule) {
    case VectorRule::kCompBonusExecution:
      publish_mm1_block<VectorRule::kCompBonusExecution>(
          n, mu, a, mue, x, sum_mu, sum_a, arrival_rate, actual_total,
          reported_total, agents);
      break;
    case VectorRule::kCompBonusBid:
      publish_mm1_block<VectorRule::kCompBonusBid>(
          n, mu, a, mue, x, sum_mu, sum_a, arrival_rate, actual_total,
          reported_total, agents);
      break;
    case VectorRule::kVcg:
      publish_mm1_block<VectorRule::kVcg>(n, mu, a, mue, x, sum_mu, sum_a,
                                          arrival_rate, actual_total,
                                          reported_total, agents);
      break;
    default:
      publish_mm1_block<VectorRule::kNoPayment>(
          n, mu, a, mue, x, sum_mu, sum_a, arrival_rate, actual_total,
          reported_total, agents);
      break;
  }
  out.allocation = model::Allocation::from_validated(std::move(rates));
  out.actual_latency = actual_total;
  out.reported_latency = reported_total;
  return true;
}

FamilyRoundStats run_workload_vectorized(const model::WorkloadFamily& family,
                                         VectorRule rule, double arrival_rate,
                                         std::span<const double> bids,
                                         std::span<const double> executions,
                                         MechanismOutcome& out,
                                         RoundWorkspace& ws) {
  LBMV_ASSERT(
      rule != VectorRule::kNone && rule != VectorRule::kArcherTardos,
      "the fused workload engine serves leave-one-out rules and no-payment");
  const std::size_t n = bids.size();
  for (std::size_t j = 0; j < n; ++j) {
    LBMV_REQUIRE(bids[j] > 0.0, "bids must be positive");
    LBMV_REQUIRE(executions[j] > 0.0, "execution values must be positive");
  }
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  const double gamma = family.gamma();

  FamilyRoundStats stats;
  std::vector<double> rates = std::move(out.allocation).release();
  rates.resize(n);
  const alloc::WorkloadSolve full =
      alloc::workload_solve_into(bids, gamma, arrival_rate, rates);
  stats.newton_iters += full.iterations;
  // The allocation is the exact optimum for the reported types, so the
  // solve's closed-form cost accumulation IS the reported latency total.
  const double reported_total = full.optimal_latency;
  const double* const x = rates.data();

  // Verified latency total: one 4-lane sweep of x * ((e x)(1 + gamma x)),
  // the publish pass's own per-term operand order.
  const DVec vone = v::set1(1.0);
  const DVec vg = v::set1(gamma);
  DVec vact0 = v::zero();
  DVec vact1 = v::zero();
  std::size_t i = 0;
  for (; i + 2 * v::kLanes <= n; i += 2 * v::kLanes) {
    const DVec x0 = v::load(&x[i]);
    const DVec x1 = v::load(&x[i + v::kLanes]);
    vact0 = v::add(vact0,
                   v::mul(x0, v::mul(v::mul(v::load(&executions[i]), x0),
                                     v::add(vone, v::mul(vg, x0)))));
    vact1 = v::add(
        vact1,
        v::mul(x1, v::mul(v::mul(v::load(&executions[i + v::kLanes]), x1),
                          v::add(vone, v::mul(vg, x1)))));
  }
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec x0 = v::load(&x[i]);
    vact0 = v::add(vact0,
                   v::mul(x0, v::mul(v::mul(v::load(&executions[i]), x0),
                                     v::add(vone, v::mul(vg, x0)))));
  }
  double actual_total = v::hsum(v::add(vact0, vact1));
  for (; i < n; ++i) {
    const double xi = x[i];
    actual_total += xi * ((executions[i] * xi) * (1.0 + gamma * xi));
  }

  // Leave-one-out plane: one warm-started monotone Newton per agent.  The
  // rest-set theta scratch follows BidProfile::without's element order —
  // start with agent 0 removed, then writing slot i restores agent i and
  // removes agent i+1 — so one plane serves all n subsystems.
  const double* loo = nullptr;
  if (rule != VectorRule::kNoPayment) {
    ws.leave_one_out.resize(n);
    ws.family_scratch.resize(2 * (n - 1));
    const std::span<double> rest_thetas{ws.family_scratch.data(), n - 1};
    const std::span<double> rest_rates{ws.family_scratch.data() + (n - 1),
                                       n - 1};
    for (std::size_t j = 0; j + 1 < n; ++j) rest_thetas[j] = bids[j + 1];
    for (std::size_t j = 0; j < n; ++j) {
      // g_rest(lambda*) = -x_j(lambda*) <= 0: the full-set multiplier is a
      // valid monotone warm start for every subsystem.
      const alloc::WorkloadSolve rest = alloc::workload_solve_into(
          rest_thetas, gamma, arrival_rate, rest_rates, full.lambda);
      ws.leave_one_out[j] = rest.optimal_latency;
      stats.newton_iters += rest.iterations;
      if (j + 1 < n) rest_thetas[j] = bids[j];
    }
    loo = ws.leave_one_out.data();
  }

  out.agents.resize(n);
  AgentOutcome* const agents = out.agents.data();
  switch (rule) {
    case VectorRule::kCompBonusExecution:
      publish_workload_block<VectorRule::kCompBonusExecution>(
          n, bids.data(), executions.data(), x, loo, gamma, actual_total,
          reported_total, agents);
      break;
    case VectorRule::kCompBonusBid:
      publish_workload_block<VectorRule::kCompBonusBid>(
          n, bids.data(), executions.data(), x, loo, gamma, actual_total,
          reported_total, agents);
      break;
    case VectorRule::kVcg:
      publish_workload_block<VectorRule::kVcg>(n, bids.data(),
                                               executions.data(), x, loo,
                                               gamma, actual_total,
                                               reported_total, agents);
      break;
    default:
      publish_workload_block<VectorRule::kNoPayment>(
          n, bids.data(), executions.data(), x, loo, gamma, actual_total,
          reported_total, agents);
      break;
  }
  out.allocation = model::Allocation::from_validated(std::move(rates));
  out.actual_latency = actual_total;
  out.reported_latency = reported_total;
  return stats;
}

}  // namespace lbmv::core

#include "lbmv/core/no_payment.h"

#include "lbmv/core/family_context.h"
#include "lbmv/core/profile_context.h"

namespace lbmv::core {

NoPaymentMechanism::NoPaymentMechanism()
    : NoPaymentMechanism(default_allocator()) {}

NoPaymentMechanism::NoPaymentMechanism(
    std::shared_ptr<const alloc::Allocator> allocator)
    : Mechanism(std::move(allocator)) {}

void NoPaymentMechanism::fill_payments(
    const model::LatencyFamily&, double, std::span<const double>,
    std::span<const double>, const model::Allocation&, double, double,
    std::vector<AgentOutcome>& outcomes, RoundWorkspace&) const {
  for (auto& agent : outcomes) {
    agent.compensation = 0.0;
    agent.bonus = 0.0;
    agent.payment = 0.0;
  }
}

std::unique_ptr<ProfileUtilityContext> NoPaymentMechanism::make_profile_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base) const {
  if (auto ctx = make_linear_pr_profile_context(
          LinearPrRule::kNoPayment, family, allocator(), arrival_rate, base)) {
    return ctx;
  }
  return make_family_profile_context(LinearPrRule::kNoPayment, family,
                                     allocator(), arrival_rate, base);
}

}  // namespace lbmv::core

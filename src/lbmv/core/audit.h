#pragma once

/// \file audit.h
/// Empirical certification of the mechanism's game-theoretic properties.
///
/// Theorem 3.1 (truthfulness) says that for every agent, every profile of
/// the other agents' bids, and every own deviation (b_i, t~_i), the agent's
/// utility is maximised at b_i = t_i, t~_i = t_i.  Theorem 3.2 (voluntary
/// participation) says the truthful utility is never negative.  The
/// auditors here check both claims by exhaustive grid sweeps over deviation
/// multipliers — the computational analogue of the proofs — and are used by
/// the property-test suites and by the ablation benches to demonstrate
/// where the *unverified* baselines break.

#include <cstddef>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"

namespace lbmv::core {

/// One evaluated deviation of the audited agent.
struct Deviation {
  double bid_mult = 1.0;   ///< bid = bid_mult * true value
  double exec_mult = 1.0;  ///< execution = exec_mult * true value (>= 1)
  double utility = 0.0;    ///< resulting utility of the audited agent
};

/// Grid and execution options for an audit.
struct AuditOptions {
  /// Multipliers applied to the agent's true value to form candidate bids.
  std::vector<double> bid_multipliers{0.1,  0.25, 0.5, 0.75, 0.9, 0.95,
                                      1.0,  1.05, 1.1, 1.25, 1.5, 2.0,
                                      3.0,  5.0,  10.0};
  /// Multipliers forming candidate execution values; values below 1 are
  /// rejected (an agent cannot execute faster than its true capacity).
  std::vector<double> exec_multipliers{1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0};
  bool parallel = true;    ///< evaluate the grid on the global thread pool
  bool keep_grid = false;  ///< retain every Deviation in the report
  /// Use the mechanism's per-audit utility context when it provides one
  /// (O(1) per grid point: only the audited agent's bid changes across a
  /// sweep, so everything else is precomputed).  When false — or when the
  /// mechanism has no fast path — every grid point re-runs the full
  /// mechanism.  The two paths agree to floating-point roundoff; the flag
  /// exists so benches and property tests can compare them.
  bool incremental = true;
};

/// Outcome of auditing one agent.
struct AuditReport {
  std::size_t agent = 0;
  double truthful_utility = 0.0;  ///< U_i at (t_i, t_i) given the base profile
  Deviation best;                 ///< the highest-utility grid point
  double max_gain = 0.0;          ///< best.utility - truthful_utility
  std::vector<Deviation> grid;    ///< full grid if keep_grid was set

  /// Truth-telling is a best response on the grid (up to tolerance, scaled
  /// by the magnitude of the truthful utility).
  [[nodiscard]] bool truthful_dominant(double tol = 1e-9) const;
};

/// Sweeps deviation grids against a mechanism.
class TruthfulnessAuditor {
 public:
  /// The mechanism must outlive the auditor.
  explicit TruthfulnessAuditor(const Mechanism& mechanism)
      : mechanism_(&mechanism) {}

  /// Audit agent \p agent with every other agent truthful.
  [[nodiscard]] AuditReport audit_agent(const model::SystemConfig& config,
                                        std::size_t agent,
                                        const AuditOptions& options = {}) const;

  /// Audit agent \p agent against an arbitrary base profile for the others
  /// (Theorem 3.1 quantifies over all opposing bids, not just truthful
  /// ones); the audited agent's own entries in \p base are ignored.
  [[nodiscard]] AuditReport audit_agent(const model::SystemConfig& config,
                                        std::size_t agent,
                                        const model::BidProfile& base,
                                        const AuditOptions& options) const;

  /// Audit every agent (others truthful).
  [[nodiscard]] std::vector<AuditReport> audit_all(
      const model::SystemConfig& config,
      const AuditOptions& options = {}) const;

 private:
  const Mechanism* mechanism_;
};

/// One evaluated *joint* deviation of a pair of agents.
struct CoalitionDeviation {
  double bid_mult_a = 1.0;
  double exec_mult_a = 1.0;
  double bid_mult_b = 1.0;
  double exec_mult_b = 1.0;
  double joint_utility = 0.0;  ///< U_a + U_b (transferable utility)
};

/// Outcome of auditing a pair for collusion opportunities.
struct CoalitionReport {
  std::size_t agent_a = 0;
  std::size_t agent_b = 0;
  double truthful_joint_utility = 0.0;
  CoalitionDeviation best;
  double max_joint_gain = 0.0;

  /// Whether no joint deviation on the grid beats joint truth-telling.
  [[nodiscard]] bool coalition_proof(double tol = 1e-9) const;
};

/// Sweeps joint deviation grids for pairs of agents.
///
/// Truthfulness (Theorem 3.1) is a *unilateral* guarantee; like VCG, the
/// compensation-and-bonus mechanism is NOT coalition-proof: a pair with
/// transferable utility can coordinate (one inflates the other's
/// leave-one-out counterfactual) and split a strictly positive gain.  The
/// auditor makes that gap measurable (see bench_coalition).
class CoalitionAuditor {
 public:
  explicit CoalitionAuditor(const Mechanism& mechanism)
      : mechanism_(&mechanism) {}

  /// Audit the pair (a, b) with everyone else truthful.  Grids as in
  /// AuditOptions (exec multipliers must be >= 1).
  [[nodiscard]] CoalitionReport audit_pair(
      const model::SystemConfig& config, std::size_t agent_a,
      std::size_t agent_b, const AuditOptions& options = {}) const;

 private:
  const Mechanism* mechanism_;
};

/// Utilities of every agent at the all-truthful profile.
[[nodiscard]] std::vector<double> truthful_utilities(
    const Mechanism& mechanism, const model::SystemConfig& config);

/// Theorem 3.2 check: all truthful utilities >= -tol.
[[nodiscard]] bool voluntary_participation_holds(
    const Mechanism& mechanism, const model::SystemConfig& config,
    double tol = 1e-9);

}  // namespace lbmv::core

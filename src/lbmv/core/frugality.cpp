#include "lbmv/core/frugality.h"

#include <cmath>
#include <limits>

#include "lbmv/core/batch.h"
#include "lbmv/util/error.h"

namespace lbmv::core {

double FrugalityReport::ratio() const {
  if (total_valuation == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return total_payment / total_valuation;
}

FrugalityReport frugality_of(const MechanismOutcome& outcome) {
  FrugalityReport report;
  report.total_payment = outcome.total_payment();
  report.total_valuation = outcome.total_valuation_magnitude();
  return report;
}

std::vector<FrugalitySweepPoint> frugality_arrival_sweep(
    const Mechanism& mechanism, const model::SystemConfig& config,
    std::span<const double> rates) {
  std::vector<FrugalitySweepPoint> points;
  points.reserve(rates.size());
  // The truthful profile depends only on the types, so it is shared by the
  // whole sweep; one hoisted workspace keeps the per-rate rounds
  // allocation-free after the first.
  RoundWorkspace ws;
  ws.scratch_profile = model::BidProfile::truthful(config);
  for (double rate : rates) {
    LBMV_REQUIRE(rate > 0.0, "swept arrival rates must be positive");
    mechanism.run_into(config.family(), rate, ws.scratch_profile,
                       ws.scratch_outcome, ws);
    points.push_back({rate, frugality_of(ws.scratch_outcome)});
  }
  return points;
}

std::vector<FrugalitySweepPoint> frugality_heterogeneity_sweep(
    const Mechanism& mechanism, std::size_t n, double arrival_rate,
    std::span<const double> spreads) {
  LBMV_REQUIRE(n >= 2, "need at least two computers");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  // Same family and arrival rate at every point, only the type vector
  // varies: exactly the shape ProfileBatch was built for.  Each spread's
  // truthful profile is one row of the batch.
  ProfileBatch batch(n);
  batch.reserve(spreads.size());
  std::vector<double> types(n);
  for (double spread : spreads) {
    LBMV_REQUIRE(spread >= 1.0, "spread must be >= 1");
    for (std::size_t i = 0; i < n; ++i) {
      const double frac =
          (n == 1) ? 0.0
                   : static_cast<double>(i) / static_cast<double>(n - 1);
      types[i] = std::pow(spread, frac);  // geometric spacing in [1, spread]
    }
    batch.push_back(types, types);  // truthful: bids == executions == types
  }
  const model::LinearFamily family;  // SystemConfig's default family
  BatchOutcomes outcomes;
  mechanism.run_batch(family, arrival_rate, batch, outcomes);

  std::vector<FrugalitySweepPoint> points;
  points.reserve(spreads.size());
  for (std::size_t k = 0; k < spreads.size(); ++k) {
    points.push_back({spreads[k], frugality_of(outcomes[k])});
  }
  return points;
}

}  // namespace lbmv::core

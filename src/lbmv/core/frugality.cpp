#include "lbmv/core/frugality.h"

#include <cmath>
#include <limits>

#include "lbmv/util/error.h"

namespace lbmv::core {

double FrugalityReport::ratio() const {
  if (total_valuation == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return total_payment / total_valuation;
}

FrugalityReport frugality_of(const MechanismOutcome& outcome) {
  FrugalityReport report;
  report.total_payment = outcome.total_payment();
  report.total_valuation = outcome.total_valuation_magnitude();
  return report;
}

std::vector<FrugalitySweepPoint> frugality_arrival_sweep(
    const Mechanism& mechanism, const model::SystemConfig& config,
    std::span<const double> rates) {
  std::vector<FrugalitySweepPoint> points;
  points.reserve(rates.size());
  for (double rate : rates) {
    LBMV_REQUIRE(rate > 0.0, "swept arrival rates must be positive");
    const model::SystemConfig scaled = config.with_arrival_rate(rate);
    const MechanismOutcome outcome =
        mechanism.run(scaled, model::BidProfile::truthful(scaled));
    points.push_back({rate, frugality_of(outcome)});
  }
  return points;
}

std::vector<FrugalitySweepPoint> frugality_heterogeneity_sweep(
    const Mechanism& mechanism, std::size_t n, double arrival_rate,
    std::span<const double> spreads) {
  LBMV_REQUIRE(n >= 2, "need at least two computers");
  std::vector<FrugalitySweepPoint> points;
  points.reserve(spreads.size());
  for (double spread : spreads) {
    LBMV_REQUIRE(spread >= 1.0, "spread must be >= 1");
    std::vector<double> types(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double frac =
          (n == 1) ? 0.0
                   : static_cast<double>(i) / static_cast<double>(n - 1);
      types[i] = std::pow(spread, frac);  // geometric spacing in [1, spread]
    }
    const model::SystemConfig config(std::move(types), arrival_rate);
    const MechanismOutcome outcome =
        mechanism.run(config, model::BidProfile::truthful(config));
    points.push_back({spread, frugality_of(outcome)});
  }
  return points;
}

}  // namespace lbmv::core

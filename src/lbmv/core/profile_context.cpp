#include "lbmv/core/profile_context.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/archer_tardos.h"
#include "lbmv/obs/monitor.h"
#include "lbmv/util/error.h"

namespace lbmv::core {

LinearPrProfileContext::LinearPrProfileContext(LinearPrRule rule,
                                               double arrival_rate,
                                               model::BidProfile base)
    : rule_(rule), arrival_rate_(arrival_rate), profile_(std::move(base)) {
  LBMV_REQUIRE(profile_.size() >= 2, "mechanisms require at least two agents");
  profile_.validate(profile_.size());
  LBMV_REQUIRE(arrival_rate_ > 0.0 && std::isfinite(arrival_rate_),
               "arrival rate must be positive and finite");
  rebuild_period_ = std::max<std::size_t>(64, profile_.size());
  rebuild();
}

double LinearPrProfileContext::utility(std::size_t agent, double bid,
                                       double execution) const {
  LBMV_ASSERT(agent < profile_.size(), "agent index out of range");
  LBMV_ASSERT(bid > 0.0 && execution > 0.0,
              "deviations must have positive bid and execution");
  const double r = arrival_rate_;
  const double old_inv = 1.0 / profile_.bids[agent];
  const double s_rest = s_ - old_inv;
  const double inv = 1.0 / bid;
  const double s = s_rest + inv;
  const double x = r * inv / s;
  const double x2 = x * x;
  switch (rule_) {
    case LinearPrRule::kCompBonusExecution:
      // C_i = e x^2 cancels the valuation -e x^2, so U = L_{-i} - L'.
      return r * r / s_rest - actual_after(agent, s, inv, execution);
    case LinearPrRule::kCompBonusBid:
      return bid * x2 + (r * r / s_rest -
                         actual_after(agent, s, inv, execution)) -
             execution * x2;
    case LinearPrRule::kVcg: {
      // Others' reported cost at the new bids: sum_{j!=i} b_j x_j'^2 =
      // (R/S')^2 S_rest, so the Clarke payment is
      // L_{-i} - (R^2/S' - b x^2).
      const double payment = r * r / s_rest - r * r / s + bid * x2;
      return payment - execution * x2;
    }
    case LinearPrRule::kNoPayment:
      return -execution * x2;
    case LinearPrRule::kArcherTardos: {
      // P_i = b x^2 + Integral_{b}^{inf} x_i(u)^2 du; the tail depends only
      // on s_rest, so truth-telling in bids is dominant but slow execution
      // (e > t) goes unpunished — the verification-free baseline.
      const double payment =
          bid * x2 + r * r / (s_rest * (1.0 + bid * s_rest));
      return payment - execution * x2;
    }
  }
  LBMV_ASSERT(false, "unreachable payment rule");
  return 0.0;  // unreachable
}

void LinearPrProfileContext::commit(std::size_t agent, double bid,
                                    double execution) {
  LBMV_ASSERT(agent < profile_.size(), "agent index out of range");
  LBMV_ASSERT(bid > 0.0 && execution > 0.0,
              "deviations must have positive bid and execution");
  const double old_bid = profile_.bids[agent];
  const double old_exec = profile_.executions[agent];
  s_ += 1.0 / bid - 1.0 / old_bid;
  w_ += execution / (bid * bid) - old_exec / (old_bid * old_bid);
  profile_.bids[agent] = bid;
  profile_.executions[agent] = execution;
  if (++commits_since_rebuild_ >= rebuild_period_) rebuild();
}

void LinearPrProfileContext::outcome_into(MechanismOutcome& out) const {
  const std::size_t n = profile_.size();
  const double r = arrival_rate_;
  const double rs = r / s_;
  const double actual = rs * rs * w_;
  const double reported = r * r / s_;

  std::vector<double> rates(n);
  for (std::size_t j = 0; j < n; ++j) {
    rates[j] = rs / profile_.bids[j];
  }
  out.allocation = model::Allocation(std::move(rates));
  out.actual_latency = actual;
  out.reported_latency = reported;
  out.agents.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    auto& agent = out.agents[j];
    const double b = profile_.bids[j];
    const double e = profile_.executions[j];
    const double x = rs / b;
    const double x2 = x * x;
    const double l_minus = r * r / (s_ - 1.0 / b);
    agent.allocation = x;
    agent.valuation = -e * x2;
    switch (rule_) {
      case LinearPrRule::kCompBonusExecution:
        agent.compensation = e * x2;
        agent.bonus = l_minus - actual;
        break;
      case LinearPrRule::kCompBonusBid:
        agent.compensation = b * x2;
        agent.bonus = l_minus - actual;
        break;
      case LinearPrRule::kVcg:
        agent.compensation = b * x2;  // own reported cost
        agent.bonus = l_minus - reported;
        break;
      case LinearPrRule::kNoPayment:
        agent.compensation = 0.0;
        agent.bonus = 0.0;
        break;
      case LinearPrRule::kArcherTardos:
        agent.compensation = b * x2;
        agent.bonus =
            archer_tardos_tail_integral(b, s_ - 1.0 / b, r);
        break;
    }
    agent.payment = agent.compensation + agent.bonus;
    if (rule_ == LinearPrRule::kNoPayment) agent.payment = 0.0;
    agent.utility = agent.payment + agent.valuation;
  }
}

double LinearPrProfileContext::actual_latency() const {
  const double rs = arrival_rate_ / s_;
  return rs * rs * w_;
}

double LinearPrProfileContext::actual_after(std::size_t agent, double s,
                                            double inv_bid,
                                            double execution) const {
  const double old_inv = 1.0 / profile_.bids[agent];
  const double w = w_ - profile_.executions[agent] * old_inv * old_inv +
                   execution * inv_bid * inv_bid;
  const double rs = arrival_rate_ / s;
  return rs * rs * w;
}

void LinearPrProfileContext::rebuild() {
  const double incremental_s = s_;
  const double incremental_w = w_;
  const bool periodic = commits_since_rebuild_ > 0;
  s_ = 0.0;
  w_ = 0.0;
  for (std::size_t j = 0; j < profile_.size(); ++j) {
    const double inv = 1.0 / profile_.bids[j];
    s_ += inv;
    w_ += profile_.executions[j] * inv * inv;
  }
  if (periodic && obs::enabled()) {
    // How far the O(1) commit deltas drifted from the exact sums over one
    // rebuild period — the PR-4 drift bound, observed live instead of
    // assumed (the differential suite holds it below 1e-9; the monitor
    // flags any round where accumulated cancellation breaks that).
    const double drift_s = std::fabs(incremental_s - s_) / std::fabs(s_);
    const double drift_w =
        std::fabs(incremental_w - w_) / std::max(std::fabs(w_), 1e-300);
    obs::Monitors::get().context_drift.check(
        std::max(drift_s, drift_w),
        {{"n", static_cast<double>(profile_.size())},
         {"drift_s", drift_s},
         {"drift_w", drift_w}});
  }
  commits_since_rebuild_ = 0;
}

std::unique_ptr<ProfileUtilityContext> make_linear_pr_profile_context(
    LinearPrRule rule, const model::LatencyFamily& family,
    const alloc::Allocator& allocator, double arrival_rate,
    const model::BidProfile& base) {
  // The closed forms are exactly the PR allocation on linear latencies; any
  // other allocator/family pairing must take the slow path.
  if (dynamic_cast<const model::LinearFamily*>(&family) == nullptr ||
      dynamic_cast<const alloc::PRAllocator*>(&allocator) == nullptr) {
    return nullptr;
  }
  return std::make_unique<LinearPrProfileContext>(rule, arrival_rate, base);
}

}  // namespace lbmv::core

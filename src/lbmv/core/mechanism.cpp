#include "lbmv/core/mechanism.h"

#include <cmath>
#include <cstdint>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/alloc/workload_allocator.h"
#include "lbmv/core/batch.h"
#include "lbmv/core/family_round.h"
#include "lbmv/core/invariants.h"
#include "lbmv/core/simd_round.h"
#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"
#include "lbmv/util/thread_pool.h"

namespace lbmv::core {

double MechanismOutcome::total_payment() const {
  double s = 0.0;
  for (const auto& a : agents) s += a.payment;
  return s;
}

double MechanismOutcome::total_valuation_magnitude() const {
  double s = 0.0;
  for (const auto& a : agents) s += std::fabs(a.valuation);
  return s;
}

Mechanism::Mechanism(std::shared_ptr<const alloc::Allocator> allocator)
    : allocator_(std::move(allocator)) {
  LBMV_REQUIRE(allocator_ != nullptr, "mechanism requires an allocator");
}

void Mechanism::run_into(const model::LatencyFamily& family,
                         double arrival_rate, std::span<const double> bids,
                         std::span<const double> executions,
                         MechanismOutcome& out, RoundWorkspace& ws) const {
  run_into(family, arrival_rate, bids, executions, out, ws, RoundOptions{});
}

void Mechanism::run_into(const model::LatencyFamily& family,
                         double arrival_rate, std::span<const double> bids,
                         std::span<const double> executions,
                         MechanismOutcome& out, RoundWorkspace& ws,
                         const RoundOptions& options) const {
  const std::size_t n = bids.size();
  LBMV_REQUIRE(n >= 2, "mechanisms require at least two agents");
  LBMV_REQUIRE(executions.size() == n, "execution vector size mismatch");

  // Classify the round once; payment rules read the flags off the workspace
  // instead of repeating the dynamic_casts per agent.
  ws.linear_fast =
      dynamic_cast<const model::LinearFamily*>(&family) != nullptr;
  ws.pr_closed_form = false;
  ws.inverse_sum = 0.0;

  // The vectorized engine fuses the entire round — validation, PR solve,
  // cost planes, payments — when the round is the paper's configuration
  // (linear family + PR allocator), the mechanism advertises a vectorized
  // payment rule, and the runtime backend selector says vectorized (the
  // default iff LBMV_SIMD was compiled in).  It raises the same diagnostics
  // as the scalar path on invalid input; results agree with the scalar
  // kernels to the DESIGN.md §12 error bound.
  const VectorRule rule = vector_rule();
  if (ws.linear_fast && rule != VectorRule::kNone &&
      kernel_backend() == KernelBackend::kVectorized &&
      dynamic_cast<const alloc::PRAllocator*>(allocator_.get()) != nullptr) {
    const SimdRoundStats stats = run_linear_pr_vectorized(
        rule, arrival_rate, bids, executions, out, ws, options);
    if (obs::enabled()) {
      obs::MechProbes& probes = obs::MechProbes::get();
      probes.rounds.inc();
      probes.linear_fast_rounds.inc();
      probes.allocs_avoided.inc(3 * static_cast<std::uint64_t>(n));
      probes.simd_rounds.inc();
      if (stats.shards > 1) {
        probes.sharded_rounds.inc();
        probes.shard_count.record(static_cast<double>(stats.shards));
      }
      for (const auto& agent : out.agents) {
        probes.round_payment.record(agent.payment);
        probes.round_bonus.record(agent.bonus);
      }
      // The vectorized engine only engages on PR-on-linear rounds, so the
      // full monitor set (feasibility, decomposition, participation, KKT)
      // is armed.
      check_round_invariants(
          bids, executions, arrival_rate, out,
          RoundInvariantOptions{
              /*linear_pr=*/true,
              /*participation_guaranteed=*/
              guarantees_voluntary_participation()});
    }
    return;
  }

  // Nonlinear fused dispatch (family_round.h, DESIGN.md §14): the M/M/1 and
  // workload families get their own fused engines when paired with their
  // exact allocators.  The Archer–Tardos tail integral is linear-family-
  // specific, so that rule stays on the generic path.  The M/M/1 engine
  // declines rounds that need the active-set machinery (some computer
  // dropped, or a closed-form precondition fails) by returning false; the
  // generic path below then owns the round and its canonical diagnostics.
  if (!ws.linear_fast && rule != VectorRule::kNone &&
      rule != VectorRule::kArcherTardos &&
      kernel_backend() == KernelBackend::kVectorized) {
    const FamilyKind kind = classify_family(family);
    if (kind == FamilyKind::kMm1 &&
        dynamic_cast<const alloc::MM1Allocator*>(allocator_.get()) !=
            nullptr) {
      if (run_mm1_vectorized(rule, arrival_rate, bids, executions, out, ws)) {
        if (obs::enabled()) {
          obs::MechProbes& probes = obs::MechProbes::get();
          probes.rounds.inc();
          probes.nonlinear_rounds.inc();
          // The generic path would have built 2n latency functions for the
          // totals plus n more in the payment rule's compensation terms.
          probes.allocs_avoided.inc(3 * static_cast<std::uint64_t>(n));
          for (const auto& agent : out.agents) {
            probes.round_payment.record(agent.payment);
            probes.round_bonus.record(agent.bonus);
          }
          RoundInvariantOptions opts;
          opts.participation_guaranteed =
              guarantees_voluntary_participation();
          opts.mm1_exact = true;
          check_round_invariants(bids, executions, arrival_rate, out, opts);
        }
        return;
      }
    } else if (kind == FamilyKind::kWorkload &&
               dynamic_cast<const alloc::WorkloadAllocator*>(
                   allocator_.get()) != nullptr) {
      const auto& workload =
          static_cast<const model::WorkloadFamily&>(family);
      const FamilyRoundStats stats = run_workload_vectorized(
          workload, rule, arrival_rate, bids, executions, out, ws);
      if (obs::enabled()) {
        obs::MechProbes& probes = obs::MechProbes::get();
        probes.rounds.inc();
        probes.nonlinear_rounds.inc();
        probes.newton_iters.inc(stats.newton_iters);
        probes.allocs_avoided.inc(3 * static_cast<std::uint64_t>(n));
        for (const auto& agent : out.agents) {
          probes.round_payment.record(agent.payment);
          probes.round_bonus.record(agent.bonus);
        }
        RoundInvariantOptions opts;
        opts.participation_guaranteed = guarantees_voluntary_participation();
        opts.workload_exact = true;
        opts.workload_gamma = workload.gamma();
        check_round_invariants(bids, executions, arrival_rate, out, opts);
      }
      return;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    LBMV_REQUIRE(bids[i] > 0.0, "bids must be positive");
    LBMV_REQUIRE(executions[i] > 0.0, "execution values must be positive");
  }
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");

  // Recycle the previous outcome's rate plane instead of allocating a fresh
  // vector: after the first round at this n, resize() is a no-op.
  std::vector<double> rates = std::move(out.allocation).release();
  rates.resize(n);
  if (ws.linear_fast &&
      dynamic_cast<const alloc::PRAllocator*>(allocator_.get()) != nullptr) {
    // Fused PR solve: allocation, S, and L* from one pass over the bids.
    const alloc::PrSolve solve =
        alloc::pr_allocate_into(bids, arrival_rate, rates);
    ws.pr_closed_form = true;
    ws.inverse_sum = solve.inverse_sum;
  } else {
    allocator_->allocate_into(family, bids, arrival_rate, rates);
  }
  out.allocation = model::Allocation(std::move(rates));
  const std::span<const double> x = out.allocation.rates();

  out.agents.resize(n);
  if (ws.linear_fast) {
    // Fused linear fast path: every latency quantity is a closed form in
    // t * x_i^2, so the scalar path's 2n LatencyFamily::make heap
    // allocations (plus their virtual cost() dispatches) disappear.  Each
    // cost term is (t*x)*x — bit-identical to the generic path's
    // x * latency(x) = x*(t*x) — and both totals accumulate in index order,
    // so run_into agrees with the historical run() to the last bit.
    double actual = 0.0;
    double reported = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = x[i];
      const double cost = executions[i] * xi * xi;
      actual += cost;
      reported += bids[i] * xi * xi;
      auto& agent = out.agents[i];
      agent.allocation = xi;
      agent.valuation = -cost;
    }
    out.actual_latency = actual;
    out.reported_latency = reported;
  } else {
    // Generic families: the function objects themselves must come from
    // family.make (unavoidable heap traffic), but the owning planes live in
    // the workspace so the per-round vector churn is gone.  The arena keeps
    // its high-water size — shrinking to exactly n would destroy the tail's
    // slots only to default-construct them again on the next larger round —
    // and the round uses the first n entries.
    if (ws.exec_fns.size() < n) {
      ws.exec_fns.resize(n);
      ws.bid_fns.resize(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ws.exec_fns[i] = family.make(executions[i]);
      ws.bid_fns[i] = family.make(bids[i]);
    }
    out.actual_latency = model::total_latency(
        out.allocation, std::span(ws.exec_fns).first(n));
    out.reported_latency = model::total_latency(
        out.allocation, std::span(ws.bid_fns).first(n));
    for (std::size_t i = 0; i < n; ++i) {
      auto& agent = out.agents[i];
      agent.allocation = x[i];
      const double cost =
          (x[i] == 0.0) ? 0.0 : ws.exec_fns[i]->cost(x[i]);
      agent.valuation = -cost;
    }
  }

  fill_payments(family, arrival_rate, bids, executions, out.allocation,
                out.actual_latency, out.reported_latency, out.agents, ws);

  for (auto& agent : out.agents) {
    agent.utility = agent.payment + agent.valuation;
  }
  if (obs::enabled()) {
    obs::MechProbes& probes = obs::MechProbes::get();
    probes.rounds.inc();
    if (ws.linear_fast) {
      probes.linear_fast_rounds.inc();
      // The scalar path would have built 2n latency functions here plus n
      // more in the payment rule's compensation terms.
      probes.allocs_avoided.inc(3 * static_cast<std::uint64_t>(n));
    }
    for (const auto& agent : out.agents) {
      probes.round_payment.record(agent.payment);
      probes.round_bonus.record(agent.bonus);
    }
    RoundInvariantOptions opts;
    opts.linear_pr = ws.linear_fast && ws.pr_closed_form;
    opts.participation_guaranteed = guarantees_voluntary_participation();
    // Scalar-backend (or fused-declined) rounds on the exact nonlinear
    // allocators still arm the family-specific monitors: the allocation is
    // exactly optimal there too, only the engine differs.
    if (!ws.linear_fast && rule != VectorRule::kNone &&
        rule != VectorRule::kArcherTardos) {
      const FamilyKind kind = classify_family(family);
      opts.mm1_exact = kind == FamilyKind::kMm1 &&
                       dynamic_cast<const alloc::MM1Allocator*>(
                           allocator_.get()) != nullptr;
      if (kind == FamilyKind::kWorkload &&
          dynamic_cast<const alloc::WorkloadAllocator*>(allocator_.get()) !=
              nullptr) {
        opts.workload_exact = true;
        opts.workload_gamma =
            static_cast<const model::WorkloadFamily&>(family).gamma();
      }
    }
    check_round_invariants(bids, executions, arrival_rate, out, opts);
  }
}

void Mechanism::run_into(const model::LatencyFamily& family,
                         double arrival_rate,
                         const model::BidProfile& profile,
                         MechanismOutcome& out, RoundWorkspace& ws) const {
  profile.validate(profile.size());
  run_into(family, arrival_rate, profile.bids, profile.executions, out, ws);
}

void Mechanism::run_into(const model::SystemConfig& config,
                         const model::BidProfile& profile,
                         MechanismOutcome& out, RoundWorkspace& ws) const {
  run_into(config.family(), config.arrival_rate(), profile, out, ws);
}

MechanismOutcome Mechanism::run(const model::LatencyFamily& family,
                                double arrival_rate,
                                const model::BidProfile& profile) const {
  MechanismOutcome outcome;
  run_into(family, arrival_rate, profile, outcome,
           RoundWorkspace::thread_local_instance());
  return outcome;
}

MechanismOutcome Mechanism::run(const model::SystemConfig& config,
                                const model::BidProfile& profile) const {
  return run(config.family(), config.arrival_rate(), profile);
}

void Mechanism::run_batch(const model::LatencyFamily& family,
                          double arrival_rate, const ProfileBatch& batch,
                          BatchOutcomes& out,
                          const BatchRunOptions& options) const {
  const std::size_t count = batch.size();
  out.outcomes.resize(count);
  if (obs::enabled()) {
    obs::MechProbes& probes = obs::MechProbes::get();
    probes.batch_runs.inc();
    probes.batch_size.record(static_cast<double>(count));
  }
  if (count == 0) return;
  // Workers force serial rounds: a round sharding its agent axis over the
  // same pool its profile fan-out runs on would deadlock (parallel_for
  // callers block without draining the queue), and the fixed block grid
  // makes serial rounds bit-identical to sharded ones anyway.
  constexpr RoundOptions kSerialRound{/*shards=*/1, /*pool=*/nullptr};
  const auto body = [&](std::size_t b) {
    run_into(family, arrival_rate, batch.bids(b), batch.executions(b),
             out.outcomes[b], RoundWorkspace::thread_local_instance(),
             kSerialRound);
  };
  if (!options.parallel || count < 2) {
    for (std::size_t b = 0; b < count; ++b) body(b);
    return;
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::global();
  pool.parallel_for(0, count, body, options.grain);
}

void Mechanism::run_batch(const model::LatencyFamily& family,
                          double arrival_rate, const ProfileBatch& batch,
                          BatchOutcomes& out) const {
  run_batch(family, arrival_rate, batch, out, BatchRunOptions{});
}

void Mechanism::run_batch(const model::SystemConfig& config,
                          const ProfileBatch& batch, BatchOutcomes& out,
                          const BatchRunOptions& options) const {
  run_batch(config.family(), config.arrival_rate(), batch, out, options);
}

void Mechanism::run_batch(const model::SystemConfig& config,
                          const ProfileBatch& batch, BatchOutcomes& out) const {
  run_batch(config.family(), config.arrival_rate(), batch, out,
            BatchRunOptions{});
}

void Mechanism::leave_one_out_into_ws(const model::LatencyFamily& family,
                                      double arrival_rate,
                                      std::span<const double> bids,
                                      RoundWorkspace& ws) const {
  if (ws.pr_closed_form) {
    ws.leave_one_out.resize(bids.size());
    if (obs::enabled()) {
      obs::MechProbes& probes = obs::MechProbes::get();
      probes.loo_batches.inc();
      probes.loo_batch_size.record(static_cast<double>(bids.size()));
    }
    alloc::pr_leave_one_out_from_sum(ws.inverse_sum, bids, arrival_rate,
                                     ws.leave_one_out);
    return;
  }
  allocator_->leave_one_out_into(family, bids, arrival_rate,
                                 ws.leave_one_out);
}

namespace {

/// Pins one agent of a ProfileUtilityContext, turning the profile-wide
/// deviation engine into the single-agent audit interface.  The wrapped
/// context is never committed to, so concurrent queries remain safe.
class ProfileAgentContext final : public AgentUtilityContext {
 public:
  ProfileAgentContext(std::unique_ptr<ProfileUtilityContext> context,
                      std::size_t agent)
      : context_(std::move(context)), agent_(agent) {}

  [[nodiscard]] double utility(double bid, double execution) const override {
    return context_->utility(agent_, bid, execution);
  }

 private:
  std::unique_ptr<ProfileUtilityContext> context_;
  std::size_t agent_;
};

}  // namespace

std::unique_ptr<AgentUtilityContext> Mechanism::make_utility_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base, std::size_t agent) const {
  // Any mechanism with a profile-wide fast path gets the per-agent audit
  // fast path for free; without one, audits fall back to run() per
  // deviation.
  auto context = make_profile_context(family, arrival_rate, base);
  if (context == nullptr) return nullptr;
  LBMV_REQUIRE(agent < base.size(), "agent index out of range");
  return std::make_unique<ProfileAgentContext>(std::move(context), agent);
}

std::unique_ptr<ProfileUtilityContext> Mechanism::make_profile_context(
    const model::LatencyFamily&, double, const model::BidProfile&) const {
  return nullptr;  // no closed form; callers fall back to run() per deviation
}

std::shared_ptr<const alloc::Allocator> default_allocator() {
  return std::make_shared<alloc::PRAllocator>();
}

}  // namespace lbmv::core

#include "lbmv/core/mechanism.h"

#include <cmath>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::core {

double MechanismOutcome::total_payment() const {
  double s = 0.0;
  for (const auto& a : agents) s += a.payment;
  return s;
}

double MechanismOutcome::total_valuation_magnitude() const {
  double s = 0.0;
  for (const auto& a : agents) s += std::fabs(a.valuation);
  return s;
}

Mechanism::Mechanism(std::shared_ptr<const alloc::Allocator> allocator)
    : allocator_(std::move(allocator)) {
  LBMV_REQUIRE(allocator_ != nullptr, "mechanism requires an allocator");
}

MechanismOutcome Mechanism::run(const model::LatencyFamily& family,
                                double arrival_rate,
                                const model::BidProfile& profile) const {
  LBMV_REQUIRE(profile.size() >= 2,
               "mechanisms require at least two agents");
  profile.validate(profile.size());
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");

  MechanismOutcome outcome;
  outcome.allocation =
      allocator_->allocate(family, profile.bids, arrival_rate);

  const auto exec_latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(profile.size());
    for (double e : profile.executions) fns.push_back(family.make(e));
    return fns;
  }();
  const auto bid_latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(profile.size());
    for (double b : profile.bids) fns.push_back(family.make(b));
    return fns;
  }();

  outcome.actual_latency =
      model::total_latency(outcome.allocation, exec_latencies);
  outcome.reported_latency =
      model::total_latency(outcome.allocation, bid_latencies);

  outcome.agents.resize(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    auto& agent = outcome.agents[i];
    agent.allocation = outcome.allocation[i];
    const double cost = (agent.allocation == 0.0)
                            ? 0.0
                            : exec_latencies[i]->cost(agent.allocation);
    agent.valuation = -cost;
  }

  fill_payments(family, arrival_rate, profile, outcome.allocation,
                outcome.agents);

  for (auto& agent : outcome.agents) {
    agent.utility = agent.payment + agent.valuation;
  }
  if (obs::enabled()) {
    obs::MechProbes& probes = obs::MechProbes::get();
    probes.rounds.inc();
    for (const auto& agent : outcome.agents) {
      probes.round_payment.record(agent.payment);
      probes.round_bonus.record(agent.bonus);
    }
  }
  return outcome;
}

MechanismOutcome Mechanism::run(const model::SystemConfig& config,
                                const model::BidProfile& profile) const {
  return run(config.family(), config.arrival_rate(), profile);
}

namespace {

/// Pins one agent of a ProfileUtilityContext, turning the profile-wide
/// deviation engine into the single-agent audit interface.  The wrapped
/// context is never committed to, so concurrent queries remain safe.
class ProfileAgentContext final : public AgentUtilityContext {
 public:
  ProfileAgentContext(std::unique_ptr<ProfileUtilityContext> context,
                      std::size_t agent)
      : context_(std::move(context)), agent_(agent) {}

  [[nodiscard]] double utility(double bid, double execution) const override {
    return context_->utility(agent_, bid, execution);
  }

 private:
  std::unique_ptr<ProfileUtilityContext> context_;
  std::size_t agent_;
};

}  // namespace

std::unique_ptr<AgentUtilityContext> Mechanism::make_utility_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base, std::size_t agent) const {
  // Any mechanism with a profile-wide fast path gets the per-agent audit
  // fast path for free; without one, audits fall back to run() per
  // deviation.
  auto context = make_profile_context(family, arrival_rate, base);
  if (context == nullptr) return nullptr;
  LBMV_REQUIRE(agent < base.size(), "agent index out of range");
  return std::make_unique<ProfileAgentContext>(std::move(context), agent);
}

std::unique_ptr<ProfileUtilityContext> Mechanism::make_profile_context(
    const model::LatencyFamily&, double, const model::BidProfile&) const {
  return nullptr;  // no closed form; callers fall back to run() per deviation
}

std::shared_ptr<const alloc::Allocator> default_allocator() {
  return std::make_shared<alloc::PRAllocator>();
}

}  // namespace lbmv::core

#pragma once

/// \file family_context.h
/// Closed-form ProfileUtilityContext for the nonlinear latency families
/// with exact allocators: M/M/1 (alloc/mm1_allocator.h) and the
/// workload-dependent-rate family (alloc/workload_allocator.h).
///
/// These extend the audit/strategy fast path of profile_context.h beyond
/// the linear family (DESIGN.md §14).  The M/M/1 context is O(1) per
/// deviation on the common configuration — all computers active before and
/// after the deviation, rest profile consistent (e_j = b_j for j != i) —
/// because with a = sqrt(mu) the deviation only moves one term of the two
/// sums sum mu_j and sum a_j, and every active queue length is a_j/c - 1.
/// Anything else (active-set churn, inconsistent opponents, saturation)
/// falls back to a full scalar re-solve inside utility(), preserving the
/// allocator's typed PreconditionErrors.  The workload family has no
/// closed-form allocation at all, so its context re-runs the damped-Newton
/// KKT solve per query against a per-call scratch (queries stay safe to
/// issue concurrently); the leave-one-out optima — deviation-independent —
/// are precomputed once per commit with warm-started solves.
///
/// Mm1PrProfileContext is exported (not hidden behind the factory) so the
/// lane-parallel deviation-grid kernels (grid_kernels.h) can read the
/// cached rest-of-profile sums via sweep_state() and evaluate four
/// candidate bids per instruction in utility()'s exact IEEE operand order;
/// utility() itself stays the scalar oracle the differential suite holds
/// them to.

#include <cstddef>
#include <memory>
#include <vector>

#include "lbmv/alloc/allocator.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/core/profile_context.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"

namespace lbmv::core {

/// Closed-form M/M/1 deviation context (file comment above).  Types are
/// mean service times theta = 1/mu, matching MM1Family / MM1Allocator.
class Mm1PrProfileContext final : public ProfileUtilityContext {
 public:
  Mm1PrProfileContext(LinearPrRule rule, double arrival_rate,
                      model::BidProfile base);

  [[nodiscard]] double utility(std::size_t agent, double bid,
                               double execution) const override;
  void commit(std::size_t agent, double bid, double execution) override;
  /// k simultaneous commits, one O(n) re-derivation instead of k: the
  /// rebuild is a pure function of the committed planes, so writing every
  /// entry first and re-scanning once is state-identical to the sequential
  /// loop (whose intermediate rebuilds are discarded by the final one).
  void commit_batch(std::span<const BidDelta> deltas) override;
  void outcome_into(MechanismOutcome& out) const override;
  [[nodiscard]] double actual_latency() const override { return actual_; }
  [[nodiscard]] const model::BidProfile& profile() const override {
    return profile_;
  }

  [[nodiscard]] LinearPrRule rule() const { return rule_; }
  [[nodiscard]] double arrival_rate() const { return arrival_rate_; }
  [[nodiscard]] std::size_t size() const { return profile_.size(); }

  /// Everything a candidate-bid sweep against one agent needs, O(1) from
  /// the caches.  The grid kernels splat these into lanes; utility()'s
  /// fast path reads the identical values, so lane results match the
  /// scalar oracle bit for bit.
  struct SweepState {
    double rest_mu = 0.0;     ///< sum_{j != agent} mu_j
    double rest_a = 0.0;      ///< sum_{j != agent} sqrt(mu_j)
    double rest_min_a = 0.0;  ///< min_{j != agent} sqrt(mu_j)
    double loo = 0.0;         ///< L_{-agent} (0 under kNoPayment)
    /// Every opponent executes exactly as bid — required for the O(1)
    /// actual-latency form sum_{j != i} (a_j/c' - 1).
    bool rest_consistent = false;
  };
  [[nodiscard]] SweepState sweep_state(std::size_t agent) const;

 private:
  /// Full scalar re-solve for deviations off the all-active consistent
  /// fast path.  Allocates locally (concurrent queries stay safe).
  [[nodiscard]] double slow_utility(std::size_t agent, double bid,
                                    double execution) const;
  void rebuild();

  LinearPrRule rule_;
  double arrival_rate_;
  model::BidProfile profile_;
  std::vector<double> mus_;   ///< mu_j = 1/b_j
  std::vector<double> a_;     ///< sqrt(mu_j)
  std::vector<double> mue_;   ///< 1/e_j (verified service rates)
  std::vector<double> rates_; ///< committed allocation
  std::vector<double> loo_;   ///< L_{-j} (empty under kNoPayment)
  std::vector<char> inconsistent_;  ///< e_j != b_j
  double sum_mu_ = 0.0;
  double sum_a_ = 0.0;
  double min_a_ = 0.0;
  double second_a_ = 0.0;
  std::size_t argmin_a_ = 0;
  std::size_t inconsistent_count_ = 0;
  double actual_ = 0.0;
  double reported_ = 0.0;
};

/// Workload-family deviation context: latency theta * x * (1 + gamma x),
/// allocation from the strictly-interior KKT system solved by damped
/// Newton (alloc/workload_allocator.h).  O(n * newton_iters) per query.
class WorkloadProfileContext final : public ProfileUtilityContext {
 public:
  WorkloadProfileContext(LinearPrRule rule, double gamma, double arrival_rate,
                         model::BidProfile base);

  [[nodiscard]] double utility(std::size_t agent, double bid,
                               double execution) const override;
  void commit(std::size_t agent, double bid, double execution) override;
  /// k simultaneous commits, one cold-start Newton re-derivation instead of
  /// k (see Mm1PrProfileContext::commit_batch for the state-identity
  /// argument — rebuild() reads nothing but the committed planes).
  void commit_batch(std::span<const BidDelta> deltas) override;
  void outcome_into(MechanismOutcome& out) const override;
  [[nodiscard]] double actual_latency() const override { return actual_; }
  [[nodiscard]] const model::BidProfile& profile() const override {
    return profile_;
  }

  [[nodiscard]] LinearPrRule rule() const { return rule_; }
  [[nodiscard]] double gamma() const { return gamma_; }
  [[nodiscard]] double arrival_rate() const { return arrival_rate_; }

 private:
  void rebuild();

  LinearPrRule rule_;
  double gamma_;
  double arrival_rate_;
  model::BidProfile profile_;
  double lambda_ = 0.0;        ///< committed KKT multiplier
  std::vector<double> rates_;  ///< committed allocation
  std::vector<double> loo_;    ///< L_{-j} (empty under kNoPayment)
  double actual_ = 0.0;
  double reported_ = 0.0;
};

/// Build the family-specific closed-form context, or nullptr unless
/// (family, allocator) is one of the exact nonlinear pairs — MM1Family
/// with MM1Allocator, or WorkloadFamily with WorkloadAllocator — and the
/// rule has a family-generic form (kArcherTardos is linear-only).  \p base
/// is copied.  Mechanisms chain this after make_linear_pr_profile_context.
[[nodiscard]] std::unique_ptr<ProfileUtilityContext>
make_family_profile_context(LinearPrRule rule,
                            const model::LatencyFamily& family,
                            const alloc::Allocator& allocator,
                            double arrival_rate,
                            const model::BidProfile& base);

}  // namespace lbmv::core

#pragma once

/// \file delta_engine.h
/// Persistent cross-round engine: O(k) recomputation under sparse deltas.
///
/// Every iterated workload in the repro — epochs, protocol rounds, learning
/// dynamics, tournaments — used to re-run a full O(n) mechanism round even
/// when only k << n agents changed since the previous round.  The
/// DeltaRoundEngine lives *across* rounds instead: it owns the committed
/// bid/execution planes plus the family-specific aggregates those planes
/// reduce to,
///
///   linear    S = sum_j 1/b_j,  W = sum_j e_j/b_j^2      (DESIGN.md §10)
///   M/M/1     sum_j mu_j, sum_j sqrt(mu_j), min sqrt(mu_j),
///             #(e_j != b_j)                              (DESIGN.md §14)
///   workload  the committed KKT multiplier as a Newton warm start
///
/// and absorbs a batch of k bid/execution deltas — or membership add/remove
/// deltas — in O(k).  The round scalars (optimal latency, total reported
/// cost, the allocation parameter) then follow in O(1) from the aggregates
/// on the linear and M/M/1 closed forms; the workload family re-runs its
/// Newton solve warm-started at the committed multiplier (the solve itself
/// is irreducibly O(n * iters), the warm start is what the deltas buy).
///
/// Per-agent outcome planes (rates, latencies, leave-one-out, payments) are
/// *lazily* materialized: outcome() delegates to Mechanism::run_into on the
/// committed planes — reusing the PR-5 RoundWorkspace and the PR-6 SIMD
/// publish kernels — and caches the result until the next delta.  That
/// delegation is what makes the engine safe to wire into the hot loops:
/// a materialized outcome is bit-identical to the full-round path by
/// construction, while the incrementally-maintained aggregates only feed
/// the O(1) scalars()/leave_one_out() queries, which the differential suite
/// holds within 1e-9 of a from-scratch rebuild.
///
/// Drift is bounded the PR-4 way: every max(64, n) applied deltas the
/// aggregates are re-summed exactly from the planes (rebuild()), so the
/// accumulated cancellation of the O(1) updates stays far below the 1e-9
/// differential tolerance.  Typed PreconditionErrors are preserved
/// bit-for-bit from the scalar path: apply/add validate with run_into's
/// exact diagnostics, and the infeasible M/M/1 round (R >= sum mu) is
/// re-raised by delegating to the same mm1_solve_into entry point.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "lbmv/core/batch.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"

namespace lbmv::core {

/// O(1)-recomputable summary of the committed round.
struct RoundScalars {
  /// min_x L(x, b): the allocator's optimum at the committed bids.
  double optimal_latency = 0.0;
  /// sum_i x_i l_i^b(x_i) at the committed allocation — equal to
  /// optimal_latency for the exact allocators the fast paths require.
  double total_cost = 0.0;
  /// L(x(b), t~): total latency at the verified execution values.
  double actual_latency = 0.0;
  /// The family's allocation parameter: S (linear PR), c (M/M/1), the KKT
  /// multiplier lambda (workload); 0 on the generic fallback.
  double alloc_parameter = 0.0;
};

/// Cross-round delta engine (file comment above).  The mechanism and family
/// must outlive the engine.
///
/// Membership semantics: add_agent appends at index size(); remove_agent
/// swaps the last agent into the removed slot and pops (O(1)), so the
/// caller's index map must apply the same swap.  Not thread-safe; one
/// engine per round loop, like a RoundWorkspace.
class DeltaRoundEngine {
 public:
  DeltaRoundEngine(const Mechanism& mechanism,
                   std::shared_ptr<const model::LatencyFamily> family,
                   double arrival_rate, std::span<const double> bids,
                   std::span<const double> executions);
  DeltaRoundEngine(const Mechanism& mechanism,
                   std::shared_ptr<const model::LatencyFamily> family,
                   double arrival_rate, const model::BidProfile& initial);

  // ---- deltas ------------------------------------------------------------

  /// Move one agent to (bid, execution): O(1) aggregate update.
  void apply(std::size_t agent, double bid, double execution);

  /// Apply k deltas in order (later entries for the same agent win): O(k).
  void apply(std::span<const BidDelta> deltas);

  /// Diff-apply: move the committed planes to (bids, executions) — same
  /// agent count — touching only the entries that differ.  Returns the
  /// number of changed agents; 0 leaves every cache (including a
  /// materialized outcome) valid, which is what makes quiescent rounds in
  /// an epoch/protocol loop free.
  std::size_t sync(std::span<const double> bids,
                   std::span<const double> executions);

  /// Append an agent at index size(): O(1) aggregate update.  Returns the
  /// new agent's index.
  std::size_t add_agent(double bid, double execution);

  /// Remove one agent, swapping the last agent into its slot: O(1).
  /// Requires at least three agents (mechanisms need two).
  void remove_agent(std::size_t agent);

  // ---- queries -----------------------------------------------------------

  /// Round scalars from the aggregates: O(1) on the linear and M/M/1 closed
  /// forms (M/M/1 actual latency falls back to O(n) only while some agent's
  /// execution differs from its bid), one warm-started Newton solve on the
  /// workload family, a full lazy materialization on the generic fallback.
  /// Cached until the next delta.
  [[nodiscard]] const RoundScalars& scalars();

  /// L_{-agent}: the subsystem optimum with \p agent removed.  O(1) from
  /// the aggregates on the linear and M/M/1 closed forms (guarded against
  /// the catastrophic-cancellation profiles exactly like the batched plane
  /// kernels; those and the remaining families re-solve the subsystem
  /// against a reused O(n) scratch).
  [[nodiscard]] double leave_one_out(std::size_t agent);

  /// Full per-agent outcome at the committed planes, materialized through
  /// Mechanism::run_into (bit-identical to the full-round path) and cached
  /// until the next delta.
  [[nodiscard]] const MechanismOutcome& outcome();

  /// Re-sum every aggregate exactly from the committed planes and reset the
  /// drift counter.  Called automatically every max(64, size()) applied
  /// deltas; idempotent and cheap to call by hand around a tolerance-
  /// critical query.
  void rebuild();

  // ---- accessors ---------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return bids_.size(); }
  [[nodiscard]] std::span<const double> bids() const { return bids_; }
  [[nodiscard]] std::span<const double> executions() const { return execs_; }
  [[nodiscard]] double arrival_rate() const { return arrival_rate_; }
  [[nodiscard]] FamilyKind family_kind() const { return kind_; }
  /// Whether scalars() runs on a family closed form (false: every scalar
  /// query materializes the round through run_into).
  [[nodiscard]] bool closed_form() const {
    return linear_pr_ || mm1_exact_ || workload_exact_;
  }
  /// Deltas absorbed since the last exact rebuild (drift budget consumed).
  [[nodiscard]] std::size_t deltas_since_rebuild() const {
    return deltas_since_rebuild_;
  }

 private:
  void invalidate(std::size_t dirty);
  void note_membership_change();
  /// Recompute min over sqrt_mu_ when a delta retired the previous minimum.
  void ensure_min_a();
  /// O(n) M/M/1 actual latency at the committed planes (inconsistent
  /// profiles only), all computers active at multiplier \p c.
  [[nodiscard]] double mm1_actual(double c) const;
  /// Subsystem re-solve fallback for leave_one_out.
  [[nodiscard]] double loo_slow(std::size_t agent);

  const Mechanism* mechanism_;
  std::shared_ptr<const model::LatencyFamily> family_;
  double arrival_rate_;
  FamilyKind kind_;
  bool linear_pr_ = false;       ///< linear family + PR allocator
  bool mm1_exact_ = false;       ///< M/M/1 family + exact M/M/1 allocator
  bool workload_exact_ = false;  ///< workload family + exact allocator
  double gamma_ = 0.0;           ///< workload congestion coefficient

  // Committed planes.
  std::vector<double> bids_;
  std::vector<double> execs_;

  // Linear aggregates.
  double s_ = 0.0;  ///< S = sum_j 1/b_j
  double w_ = 0.0;  ///< W = sum_j e_j/b_j^2

  // M/M/1 aggregates and planes (mu = 1/b, a = sqrt(mu)).
  std::vector<double> mus_;
  std::vector<double> sqrt_mu_;
  double sum_mu_ = 0.0;
  double sum_a_ = 0.0;
  double min_a_ = 0.0;
  bool min_a_valid_ = false;
  std::size_t inconsistent_count_ = 0;  ///< #(e_j != b_j)

  // Workload aggregate: committed multiplier, valid as a Newton warm start
  // while it still lower-bounds the current optimum (bid increases and
  // removals preserve that; decreases and additions reset to a cold start).
  double lambda_ = 0.0;
  bool lambda_warm_ = false;

  // Drift-bounded rebuild cadence.
  std::size_t rebuild_period_ = 64;
  std::size_t deltas_since_rebuild_ = 0;

  // Lazy caches.
  bool scalars_valid_ = false;
  RoundScalars scalars_;
  bool outcome_valid_ = false;
  MechanismOutcome outcome_;
  RoundWorkspace ws_;
  std::vector<double> scratch_;          ///< leave-one-out / solver scratch
  std::vector<BidDelta> delta_scratch_;  ///< sync's reusable change list
};

}  // namespace lbmv::core

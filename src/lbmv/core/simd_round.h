#pragma once

/// \file simd_round.h
/// The vectorized, agent-sharded round engine (DESIGN.md §12).
///
/// One mechanism round on the paper's configuration — linear family, PR
/// allocator — is two data-parallel passes over contiguous agent planes:
///
///   P1  inv[i] = 1/b_i, S = sum inv, W = sum (e_i inv_i) inv_i
///       (+ positivity validation by mask)
///   P2  everything else, fused: x_i = inv[i]/S * R (the only plane
///       written), the rule's cost and extra terms (leave-one-out optimum /
///       Archer–Tardos tail) in-register, and the transposed vector publish
///       into MechanismOutcome::agents (util::simd::store_records6)
///
/// Two passes suffice because the PR closed form factors both latency
/// totals out of the per-agent sums — L(x,b) = R^2/S and L(x,e) = (R/S)^2 W
/// — so P2 already knows every total it publishes against.
///
/// run_linear_pr_vectorized executes them with the 4-lane kernels of
/// alloc/pr_simd.h, cutting the agent axis into fixed kShardBlock-agent
/// blocks.  Blocks write disjoint plane slices and per-block partial sums
/// into an indexed array; the calling thread reduces the partials in block
/// order after each pass.  Because the block grid and every in-block
/// reduction tree are independent of the fan-out, the outcome is
/// bit-identical for ANY shard count and ANY thread count — the serial path
/// is simply the same block loop run inline.
///
/// Versus the scalar kernels, S is reassociated (tree instead of left
/// fold), the latency totals use the factored closed forms instead of the
/// per-agent left folds, and the rate uses one precomputed share,
/// x = inv * (R/S), instead of the scalar (inv/S)*R — so outcomes agree to
/// a bounded relative error of O(n·eps), the documented contract tested by
/// tests/test_simd_kernels.cpp.  Only the per-agent leave-one-out and
/// Archer–Tardos tail terms, which apply the scalar operand order exactly,
/// still match the scalar kernels bit-for-bit at equal S.

#include <cstddef>
#include <span>

#include "lbmv/core/mechanism.h"

namespace lbmv::core {

class RoundWorkspace;   // batch.h
struct RoundOptions;    // batch.h

/// Which round engine Mechanism::run_into dispatches to on eligible rounds
/// (linear family, PR allocator, a vector_rule() the engine implements).
enum class KernelBackend {
  kScalar,      ///< the historical per-agent loops
  kVectorized,  ///< the blocked SIMD engine of this header
};

/// Process-wide engine selector (relaxed atomic).  Defaults to kVectorized
/// when the AVX2 backend was compiled in (LBMV_SIMD=ON) and kScalar
/// otherwise, so an LBMV_SIMD=OFF build reproduces the historical kernels
/// bit-for-bit by default; tests and benches flip it to compare the two
/// engines — under OFF builds the vectorized engine runs on the emulated
/// 4-lane backend, which produces the same bits as AVX2.
[[nodiscard]] KernelBackend kernel_backend();
void set_kernel_backend(KernelBackend backend);

/// Tag of the vector backend compiled into this binary ("avx2" or
/// "scalar-4lane"), independent of the runtime selector.
[[nodiscard]] const char* vector_backend_name();

/// Agents per shard block.  A multiple of 8 (the kernels' unrolled step, so
/// only the final block ever has a vector tail) sized so one block's working
/// set — the input/reciprocal/rate planes plus its outcome records — stays
/// within L2.  Fixed: the block grid must not depend on thread or shard
/// count, or determinism dies.
inline constexpr std::size_t kShardBlock = 4096;

/// Rounds below this many agents never auto-shard: the fan-out's task
/// latency would exceed the O(n) math it parallelizes.
inline constexpr std::size_t kAutoShardMinAgents = 1u << 16;

/// What the engine actually did, for the caller's obs probes.
struct SimdRoundStats {
  std::size_t shards = 1;  ///< pool tasks the block grid was fanned into
};

/// Run one vectorized round end to end: validation, PR allocation
/// (publishing ws.inverse_sum / ws.pr_closed_form), latency totals,
/// payments, utilities — the full contract of Mechanism::run_into on the
/// fused linear fast path.  \p rule must not be kNone; \p options controls
/// the fan-out (see RoundOptions).  Throws exactly the scalar path's
/// diagnostics on invalid input (validation is re-run scalar on mask
/// failure).
SimdRoundStats run_linear_pr_vectorized(VectorRule rule, double arrival_rate,
                                        std::span<const double> bids,
                                        std::span<const double> executions,
                                        MechanismOutcome& out,
                                        RoundWorkspace& ws,
                                        const RoundOptions& options);

}  // namespace lbmv::core

#include "lbmv/core/vcg.h"

#include "lbmv/core/profile_context.h"

namespace lbmv::core {

VcgMechanism::VcgMechanism() : VcgMechanism(default_allocator()) {}

VcgMechanism::VcgMechanism(std::shared_ptr<const alloc::Allocator> allocator)
    : Mechanism(std::move(allocator)) {}

void VcgMechanism::fill_payments(const model::LatencyFamily& family,
                                 double arrival_rate,
                                 const model::BidProfile& profile,
                                 const model::Allocation& x,
                                 std::vector<AgentOutcome>& outcomes) const {
  // All terms below use the *bids*: VCG never sees execution values.
  const auto bid_latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(profile.size());
    for (double b : profile.bids) fns.push_back(family.make(b));
    return fns;
  }();

  // Everybody's reported cost once (O(n)); each agent's "others" term is
  // then the total minus its own contribution instead of an O(n) re-sum.
  std::vector<double> own_cost(profile.size());
  double total_reported_cost = 0.0;
  for (std::size_t j = 0; j < profile.size(); ++j) {
    own_cost[j] = (x[j] == 0.0) ? 0.0 : bid_latencies[j]->cost(x[j]);
    total_reported_cost += own_cost[j];
  }
  const std::vector<double> latency_without =
      allocator().leave_one_out_latencies(family, profile.bids, arrival_rate);

  for (std::size_t i = 0; i < profile.size(); ++i) {
    auto& agent = outcomes[i];
    const double others_cost = total_reported_cost - own_cost[i];

    // Clarke pivot; for bookkeeping we expose the pivot as "bonus" and the
    // agent's own reported cost as "compensation", mirroring the fact that
    // P_i = c_i(b) + (L_{-i} - L(b)).
    agent.compensation = own_cost[i];
    agent.bonus = latency_without[i] - total_reported_cost;
    agent.payment = latency_without[i] - others_cost;
  }
}

std::unique_ptr<ProfileUtilityContext> VcgMechanism::make_profile_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base) const {
  return make_linear_pr_profile_context(LinearPrRule::kVcg, family,
                                        allocator(), arrival_rate, base);
}

}  // namespace lbmv::core

#include "lbmv/core/vcg.h"

namespace lbmv::core {

VcgMechanism::VcgMechanism() : VcgMechanism(default_allocator()) {}

VcgMechanism::VcgMechanism(std::shared_ptr<const alloc::Allocator> allocator)
    : Mechanism(std::move(allocator)) {}

void VcgMechanism::fill_payments(const model::LatencyFamily& family,
                                 double arrival_rate,
                                 const model::BidProfile& profile,
                                 const model::Allocation& x,
                                 std::vector<AgentOutcome>& outcomes) const {
  // All terms below use the *bids*: VCG never sees execution values.
  const auto bid_latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(profile.size());
    for (double b : profile.bids) fns.push_back(family.make(b));
    return fns;
  }();

  for (std::size_t i = 0; i < profile.size(); ++i) {
    auto& agent = outcomes[i];
    // Reported cost of everybody else under the chosen allocation.
    double others_cost = 0.0;
    for (std::size_t j = 0; j < profile.size(); ++j) {
      if (j == i || x[j] == 0.0) continue;
      others_cost += bid_latencies[j]->cost(x[j]);
    }
    const model::BidProfile rest = profile.without(i);
    const double latency_without_i =
        allocator().optimal_latency(family, rest.bids, arrival_rate);

    // Clarke pivot; for bookkeeping we expose the pivot as "bonus" and the
    // agent's own reported cost as "compensation", mirroring the fact that
    // P_i = c_i(b) + (L_{-i} - L(b)).
    const double own_reported_cost =
        (x[i] == 0.0) ? 0.0 : bid_latencies[i]->cost(x[i]);
    agent.compensation = own_reported_cost;
    agent.bonus = latency_without_i - (others_cost + own_reported_cost);
    agent.payment = latency_without_i - others_cost;
  }
}

}  // namespace lbmv::core

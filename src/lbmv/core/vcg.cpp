#include "lbmv/core/vcg.h"

#include "lbmv/core/batch.h"
#include "lbmv/core/family_context.h"
#include "lbmv/core/profile_context.h"

namespace lbmv::core {

VcgMechanism::VcgMechanism() : VcgMechanism(default_allocator()) {}

VcgMechanism::VcgMechanism(std::shared_ptr<const alloc::Allocator> allocator)
    : Mechanism(std::move(allocator)) {}

void VcgMechanism::fill_payments(const model::LatencyFamily& family,
                                 double arrival_rate,
                                 std::span<const double> bids,
                                 std::span<const double> /*executions*/,
                                 const model::Allocation& x,
                                 double /*actual_latency*/,
                                 double reported_latency,
                                 std::vector<AgentOutcome>& outcomes,
                                 RoundWorkspace& ws) const {
  // All terms below use the *bids*: VCG never sees execution values.  The
  // engine already evaluated L(x, b) = sum_j c_j(x; b_j) with the same
  // per-term forms and summation order, so reported_latency IS the total
  // reported cost; each agent's "others" term is the total minus its own
  // contribution instead of an O(n) re-sum.
  const std::size_t n = bids.size();
  const std::span<const double> rates = x.rates();
  ws.own_cost.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double xj = rates[j];
    if (xj == 0.0) {
      ws.own_cost[j] = 0.0;
    } else if (ws.linear_fast) {
      ws.own_cost[j] = bids[j] * xj * xj;
    } else {
      ws.own_cost[j] = ws.bid_fns[j]->cost(xj);
    }
  }
  leave_one_out_into_ws(family, arrival_rate, bids, ws);

  for (std::size_t i = 0; i < n; ++i) {
    auto& agent = outcomes[i];
    const double others_cost = reported_latency - ws.own_cost[i];

    // Clarke pivot; for bookkeeping we expose the pivot as "bonus" and the
    // agent's own reported cost as "compensation", mirroring the fact that
    // P_i = c_i(b) + (L_{-i} - L(b)).
    agent.compensation = ws.own_cost[i];
    agent.bonus = ws.leave_one_out[i] - reported_latency;
    agent.payment = ws.leave_one_out[i] - others_cost;
  }
}

std::unique_ptr<ProfileUtilityContext> VcgMechanism::make_profile_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base) const {
  if (auto ctx = make_linear_pr_profile_context(LinearPrRule::kVcg, family,
                                                allocator(), arrival_rate,
                                                base)) {
    return ctx;
  }
  return make_family_profile_context(LinearPrRule::kVcg, family, allocator(),
                                     arrival_rate, base);
}

}  // namespace lbmv::core

#include "lbmv/core/invariants.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lbmv/obs/monitor.h"

namespace lbmv::core {

std::size_t check_round_invariants(std::span<const double> bids,
                                   std::span<const double> executions,
                                   double arrival_rate,
                                   const MechanismOutcome& outcome,
                                   const RoundInvariantOptions& options) {
  obs::Monitors& monitors = obs::Monitors::get();
  const std::size_t n = outcome.agents.size();
  const std::span<const double> x = outcome.allocation.rates();
  std::size_t violations = 0;

  // Feasibility: the allocation must ship exactly R.
  {
    double shipped = 0.0;
    for (const double xi : x) shipped += xi;
    const double residual = (shipped - arrival_rate) / arrival_rate;
    if (!monitors.feasibility.check(
            residual, {{"n", static_cast<double>(n)},
                       {"shipped", shipped},
                       {"arrival_rate", arrival_rate}})) {
      ++violations;
    }
  }

  // Payment decomposition: P_i = C_i + B_i, agent by agent.
  {
    double worst = 0.0;
    std::size_t worst_agent = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const AgentOutcome& a = outcome.agents[i];
      const double parts = a.compensation + a.bonus;
      const double scale =
          std::max({1.0, std::fabs(a.payment), std::fabs(parts)});
      const double rel = std::fabs(a.payment - parts) / scale;
      if (rel > worst) {
        worst = rel;
        worst_agent = i;
      }
    }
    if (!monitors.payment_decomposition.check(
            worst, {{"agent", static_cast<double>(worst_agent)},
                    {"payment", outcome.agents[worst_agent].payment},
                    {"parts", outcome.agents[worst_agent].compensation +
                                  outcome.agents[worst_agent].bonus}})) {
      ++violations;
    }
  }

  // Voluntary participation at consistent rounds (file comment: only
  // sound where the allocation is exactly the optimum — PR-on-linear, or
  // a nonlinear family under its exact allocator).
  const bool exact_optimum =
      options.linear_pr || options.mm1_exact || options.workload_exact;
  if (options.participation_guaranteed && exact_optimum) {
    bool consistent = bids.size() == n && executions.size() == n;
    for (std::size_t i = 0; consistent && i < n; ++i) {
      consistent = bids[i] == executions[i];
    }
    if (consistent) {
      double min_utility = 0.0;
      std::size_t min_agent = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (outcome.agents[i].utility < min_utility) {
          min_utility = outcome.agents[i].utility;
          min_agent = i;
        }
      }
      const double scale = std::max(1.0, std::fabs(outcome.reported_latency));
      const double deficit = std::max(0.0, -min_utility) / scale;
      if (!monitors.participation.check(
              deficit, {{"agent", static_cast<double>(min_agent)},
                        {"utility", min_utility},
                        {"reported_latency", outcome.reported_latency}})) {
        ++violations;
      }
    }
  }

  // KKT stationarity: the per-family marginal cost c_j'(x_j) is constant
  // across agents receiving load at the optimum.  Linear: d/dx [b x^2]
  // (tracked as b_j x_j, half the marginal — the spread is scale-free);
  // M/M/1: mu_j / (mu_j - x_j)^2 over active agents only (dropped
  // computers sit at a corner, not the equalised interior condition);
  // workload: 2 b_j x_j + 3 b_j gamma x_j^2, always interior.
  if ((options.linear_pr || options.mm1_exact || options.workload_exact) &&
      bids.size() == n && n > 0) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    std::size_t counted = 0;
    for (std::size_t j = 0; j < n; ++j) {
      double marginal;
      if (options.mm1_exact) {
        if (x[j] == 0.0) continue;
        const double mu = 1.0 / bids[j];
        const double headroom = mu - x[j];
        marginal = mu / (headroom * headroom);
      } else if (options.workload_exact) {
        marginal = 2.0 * bids[j] * x[j] +
                   3.0 * bids[j] * options.workload_gamma * x[j] * x[j];
      } else {
        marginal = bids[j] * x[j];
      }
      lo = std::min(lo, marginal);
      hi = std::max(hi, marginal);
      ++counted;
    }
    if (counted > 0) {
      const double spread = (hi - lo) / std::max(std::fabs(hi), 1e-300);
      if (!monitors.kkt_stationarity.check(
              spread, {{"n", static_cast<double>(n)},
                       {"marginal_min", lo},
                       {"marginal_max", hi}})) {
        ++violations;
      }
    }
  }

  return violations;
}

}  // namespace lbmv::core

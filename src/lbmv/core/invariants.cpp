#include "lbmv/core/invariants.h"

#include <algorithm>
#include <cmath>

#include "lbmv/obs/monitor.h"

namespace lbmv::core {

std::size_t check_round_invariants(std::span<const double> bids,
                                   std::span<const double> executions,
                                   double arrival_rate,
                                   const MechanismOutcome& outcome,
                                   const RoundInvariantOptions& options) {
  obs::Monitors& monitors = obs::Monitors::get();
  const std::size_t n = outcome.agents.size();
  const std::span<const double> x = outcome.allocation.rates();
  std::size_t violations = 0;

  // Feasibility: the allocation must ship exactly R.
  {
    double shipped = 0.0;
    for (const double xi : x) shipped += xi;
    const double residual = (shipped - arrival_rate) / arrival_rate;
    if (!monitors.feasibility.check(
            residual, {{"n", static_cast<double>(n)},
                       {"shipped", shipped},
                       {"arrival_rate", arrival_rate}})) {
      ++violations;
    }
  }

  // Payment decomposition: P_i = C_i + B_i, agent by agent.
  {
    double worst = 0.0;
    std::size_t worst_agent = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const AgentOutcome& a = outcome.agents[i];
      const double parts = a.compensation + a.bonus;
      const double scale =
          std::max({1.0, std::fabs(a.payment), std::fabs(parts)});
      const double rel = std::fabs(a.payment - parts) / scale;
      if (rel > worst) {
        worst = rel;
        worst_agent = i;
      }
    }
    if (!monitors.payment_decomposition.check(
            worst, {{"agent", static_cast<double>(worst_agent)},
                    {"payment", outcome.agents[worst_agent].payment},
                    {"parts", outcome.agents[worst_agent].compensation +
                                  outcome.agents[worst_agent].bonus}})) {
      ++violations;
    }
  }

  // Voluntary participation at consistent rounds (file comment: only
  // sound where the allocation is exactly the optimum, i.e. PR-on-linear).
  if (options.participation_guaranteed && options.linear_pr) {
    bool consistent = bids.size() == n && executions.size() == n;
    for (std::size_t i = 0; consistent && i < n; ++i) {
      consistent = bids[i] == executions[i];
    }
    if (consistent) {
      double min_utility = 0.0;
      std::size_t min_agent = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (outcome.agents[i].utility < min_utility) {
          min_utility = outcome.agents[i].utility;
          min_agent = i;
        }
      }
      const double scale = std::max(1.0, std::fabs(outcome.reported_latency));
      const double deficit = std::max(0.0, -min_utility) / scale;
      if (!monitors.participation.check(
              deficit, {{"agent", static_cast<double>(min_agent)},
                        {"utility", min_utility},
                        {"reported_latency", outcome.reported_latency}})) {
        ++violations;
      }
    }
  }

  // KKT stationarity on linear rounds: b_j x_j constant at the optimum.
  if (options.linear_pr && bids.size() == n && n > 0) {
    double lo = bids[0] * x[0];
    double hi = lo;
    for (std::size_t j = 1; j < n; ++j) {
      const double marginal = bids[j] * x[j];
      lo = std::min(lo, marginal);
      hi = std::max(hi, marginal);
    }
    const double spread = (hi - lo) / std::max(std::fabs(hi), 1e-300);
    if (!monitors.kkt_stationarity.check(
            spread, {{"n", static_cast<double>(n)},
                     {"marginal_min", lo},
                     {"marginal_max", hi}})) {
      ++violations;
    }
  }

  return violations;
}

}  // namespace lbmv::core

#include "lbmv/core/grid_kernels.h"

#include <cmath>
#include <limits>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/util/error.h"
#include "lbmv/util/simd.h"

namespace lbmv::core {
namespace {

namespace simd = lbmv::util::simd;

/// Lane-constant state hoisted once per (agent, execution) sweep.  Every
/// scalar here is computed with the same expression — and therefore the
/// same IEEE result — as the corresponding subexpression of
/// LinearPrProfileContext::utility, so the lane arithmetic consuming them
/// reproduces the oracle bit-exactly.
struct SweepState {
  LinearPrRule rule;
  double r;          ///< arrival rate
  double rr;         ///< r * r (the oracle recomputes it; products are exact-deterministic)
  double s_rest;     ///< S - 1/b_i
  double l_rest;     ///< r * r / s_rest = L_{-i}
  double w_rest;     ///< W - t~_i / b_i^2 (comp-bonus actual-latency delta)
  double execution;  ///< candidate execution value (lane-constant)
};

SweepState make_state(const LinearPrProfileContext& ctx, std::size_t agent,
                      double execution) {
  SweepState st;
  st.rule = ctx.rule();
  st.r = ctx.arrival_rate();
  st.rr = st.r * st.r;
  const double old_inv = 1.0 / ctx.profile().bids[agent];
  st.s_rest = ctx.s() - old_inv;
  st.l_rest = st.r * st.r / st.s_rest;
  st.w_rest = ctx.w() - ctx.profile().executions[agent] * old_inv * old_inv;
  st.execution = execution;
  return st;
}

/// Four candidate utilities per call.  The association of every expression
/// matches LinearPrProfileContext::utility line for line; no FMA, fixed
/// operand order, so both simd backends and the scalar oracle agree bitwise.
simd::DVec utilities4(const SweepState& st, simd::DVec b) {
  const simd::DVec one = simd::set1(1.0);
  const simd::DVec inv = simd::div(one, b);                       // 1/b
  const simd::DVec s = simd::add(simd::set1(st.s_rest), inv);     // s_rest + 1/b
  const simd::DVec x =
      simd::div(simd::mul(simd::set1(st.r), inv), s);             // r*inv/s
  const simd::DVec x2 = simd::mul(x, x);
  switch (st.rule) {
    case LinearPrRule::kCompBonusExecution:
    case LinearPrRule::kCompBonusBid: {
      // actual_after: w = (W - t~_i/b_i^2) + execution*inv*inv, then
      // (r/s)*(r/s)*w — the oracle's exact order.
      const simd::DVec w = simd::add(
          simd::set1(st.w_rest),
          simd::mul(simd::mul(simd::set1(st.execution), inv), inv));
      const simd::DVec rs = simd::div(simd::set1(st.r), s);
      const simd::DVec actual = simd::mul(simd::mul(rs, rs), w);
      const simd::DVec gap = simd::sub(simd::set1(st.l_rest), actual);
      if (st.rule == LinearPrRule::kCompBonusExecution) return gap;
      // bid*x2 + (L_rest - actual) - execution*x2
      return simd::sub(simd::add(simd::mul(b, x2), gap),
                       simd::mul(simd::set1(st.execution), x2));
    }
    case LinearPrRule::kVcg: {
      // (L_rest - r*r/s + bid*x2) - execution*x2
      const simd::DVec payment =
          simd::add(simd::sub(simd::set1(st.l_rest),
                              simd::div(simd::set1(st.rr), s)),
                    simd::mul(b, x2));
      return simd::sub(payment, simd::mul(simd::set1(st.execution), x2));
    }
    case LinearPrRule::kNoPayment:
      // -execution * x2 (unary minus binds to execution in the oracle)
      return simd::mul(simd::set1(-st.execution), x2);
    case LinearPrRule::kArcherTardos: {
      // (bid*x2 + rr/(s_rest*(1 + bid*s_rest))) - execution*x2
      const simd::DVec tail = simd::div(
          simd::set1(st.rr),
          simd::mul(simd::set1(st.s_rest),
                    simd::add(one, simd::mul(b, simd::set1(st.s_rest)))));
      return simd::sub(simd::add(simd::mul(b, x2), tail),
                       simd::mul(simd::set1(st.execution), x2));
    }
  }
  LBMV_ASSERT(false, "unreachable payment rule");
  return simd::zero();
}

/// All-ones lanes where the candidate bid is positive and finite (NaN fails
/// both ordered compares, +inf fails the second).
simd::DVec valid_mask(simd::DVec b) {
  const simd::DVec inf =
      simd::set1(std::numeric_limits<double>::infinity());
  return simd::mask_and(simd::mask_greater(b, simd::zero()),
                        simd::mask_greater(inf, b));
}

/// Single fused driver: utilities plane (when out != nullptr) and/or the
/// running (max, argmax) pair (when best != nullptr), with AND-accumulated
/// validity checked once at the end.
void sweep(const LinearPrProfileContext& ctx, std::size_t agent,
           std::span<const double> bids, double execution, double* out,
           GridBest* best) {
  LBMV_REQUIRE(agent < ctx.profile().size(), "agent index out of range");
  LBMV_REQUIRE(execution > 0.0 && std::isfinite(execution),
               "deviations must have positive finite bid and execution");
  const std::size_t size = bids.size();
  if (size == 0) return;

  const SweepState st = make_state(ctx, agent, execution);
  const double lane_offsets[simd::kLanes] = {0.0, 1.0, 2.0, 3.0};
  const simd::DVec base_idx = simd::load(lane_offsets);
  simd::DVec ok = simd::mask_all();
  simd::DVec best_v =
      simd::set1(-std::numeric_limits<double>::infinity());
  simd::DVec best_i = simd::zero();

  const std::size_t nfull = size - size % simd::kLanes;
  std::size_t k = 0;
  for (; k < nfull; k += simd::kLanes) {
    const simd::DVec b = simd::load(bids.data() + k);
    ok = simd::mask_and(ok, valid_mask(b));
    const simd::DVec u = utilities4(st, b);
    if (out != nullptr) simd::store(out + k, u);
    if (best != nullptr) {
      const simd::DVec idx =
          simd::add(base_idx, simd::set1(static_cast<double>(k)));
      const simd::DVec m = simd::mask_greater(u, best_v);
      best_v = simd::select(m, u, best_v);
      best_i = simd::select(m, idx, best_i);
    }
  }
  if (k < size) {
    // Padded tail block: duplicate the last candidate into the spare lanes.
    // Padded lanes carry indices >= size, strictly larger than the genuine
    // copy's, so the lowest-index tie-break below can never pick one.
    double padded[simd::kLanes];
    for (std::size_t l = 0; l < simd::kLanes; ++l) {
      padded[l] = k + l < size ? bids[k + l] : bids[size - 1];
    }
    const simd::DVec b = simd::load(padded);
    ok = simd::mask_and(ok, valid_mask(b));
    const simd::DVec u = utilities4(st, b);
    if (out != nullptr) {
      double tmp[simd::kLanes];
      simd::store(tmp, u);
      for (std::size_t l = 0; k + l < size; ++l) out[k + l] = tmp[l];
    }
    if (best != nullptr) {
      const simd::DVec idx =
          simd::add(base_idx, simd::set1(static_cast<double>(k)));
      const simd::DVec m = simd::mask_greater(u, best_v);
      best_v = simd::select(m, u, best_v);
      best_i = simd::select(m, idx, best_i);
    }
  }

  if (!simd::mask_all_true(ok)) {
    // Scalar re-validation so the caller sees the canonical typed error for
    // the first offending candidate, not a lane diagnostic.
    for (std::size_t i = 0; i < size; ++i) {
      const double bid = bids[i];
      LBMV_REQUIRE(bid > 0.0 && std::isfinite(bid),
                   "deviations must have positive finite bid and execution");
    }
  }

  if (best != nullptr) {
    // Horizontal resolution: greatest utility, ties to the smallest index —
    // together with the strictly-greater lane updates this reproduces a
    // scalar first-wins scan in index order.
    double bv = simd::lane(best_v, 0);
    double bi = simd::lane(best_i, 0);
    for (std::size_t l = 1; l < simd::kLanes; ++l) {
      const double v = simd::lane(best_v, l);
      const double i = simd::lane(best_i, l);
      if (v > bv || (v == bv && i < bi)) {
        bv = v;
        bi = i;
      }
    }
    best->index = static_cast<std::size_t>(bi);
    best->utility = bv;
  }
}

// ---------------------------------------------------------------------------
// M/M/1 sweep (DESIGN.md §14)

/// Lane-constant state for one (agent, execution) M/M/1 sweep, read off the
/// context through the same sweep_state() accessor utility() itself calls,
/// so every splatted scalar is bit-identical to the oracle's.
struct Mm1Sweep {
  LinearPrRule rule;
  double r;
  double rest_mu;
  double rest_a;
  double rest_min_a;
  double loo;
  double mu_e;  ///< 1.0 / execution, the oracle's exact expression
  double nm1;   ///< static_cast<double>(n - 1)
  double nn;    ///< static_cast<double>(n)
  bool rest_consistent;
};

Mm1Sweep make_mm1_state(const Mm1PrProfileContext& ctx, std::size_t agent,
                        double execution) {
  const Mm1PrProfileContext::SweepState st = ctx.sweep_state(agent);
  Mm1Sweep sw;
  sw.rule = ctx.rule();
  sw.r = ctx.arrival_rate();
  sw.rest_mu = st.rest_mu;
  sw.rest_a = st.rest_a;
  sw.rest_min_a = st.rest_min_a;
  sw.loo = st.loo;
  sw.mu_e = 1.0 / execution;
  sw.nm1 = static_cast<double>(ctx.size() - 1);
  sw.nn = static_cast<double>(ctx.size());
  sw.rest_consistent = st.rest_consistent;
  return sw;
}

/// Four candidate utilities on the all-active consistent fast path, plus an
/// AND-accumulated mask of the lanes the fast path actually covers.  The
/// association of every expression matches Mm1PrProfileContext::utility's
/// fast branch line for line (no FMA, fixed operand order).
simd::DVec mm1_utilities4(const Mm1Sweep& sw, simd::DVec b,
                          simd::DVec* fast_ok) {
  const simd::DVec one = simd::set1(1.0);
  const simd::DVec inf = simd::set1(std::numeric_limits<double>::infinity());
  const simd::DVec mu = simd::div(one, b);                       // 1/b
  const simd::DVec a = simd::sqrt(mu);                           // sqrt(mu)
  const simd::DVec sum_mu = simd::add(simd::set1(sw.rest_mu), mu);
  const simd::DVec sum_a = simd::add(simd::set1(sw.rest_a), a);
  const simd::DVec slack = simd::sub(sum_mu, simd::set1(sw.r));
  // isfinite(sum_mu) && slack > kMm1MinRelativeSlack * sum_mu
  simd::DVec ok = simd::mask_and(
      simd::mask_greater(inf, sum_mu),
      simd::mask_greater(slack, simd::mul(simd::set1(alloc::kMm1MinRelativeSlack),
                                          sum_mu)));
  const simd::DVec c = simd::div(slack, sum_a);
  ok = simd::mask_and(ok, simd::mask_greater(a, c));
  ok = simd::mask_and(ok, simd::mask_greater(simd::set1(sw.rest_min_a), c));
  const simd::DVec x = simd::sub(mu, simd::mul(c, a));
  ok = simd::mask_and(ok, simd::mask_greater(x, simd::zero()));
  const simd::DVec de = simd::sub(simd::set1(sw.mu_e), x);
  ok = simd::mask_and(ok, simd::mask_greater(de, simd::zero()));
  *fast_ok = ok;
  const simd::DVec cost_e = simd::div(x, de);
  // actual = (rest_a / c - nm1) + cost_e
  const simd::DVec actual =
      simd::add(simd::sub(simd::div(simd::set1(sw.rest_a), c),
                          simd::set1(sw.nm1)),
                cost_e);
  switch (sw.rule) {
    case LinearPrRule::kCompBonusExecution:
      return simd::sub(simd::set1(sw.loo), actual);
    case LinearPrRule::kCompBonusBid: {
      const simd::DVec comp = simd::sub(simd::div(a, c), one);
      return simd::sub(
          simd::add(comp, simd::sub(simd::set1(sw.loo), actual)), cost_e);
    }
    case LinearPrRule::kVcg: {
      const simd::DVec comp = simd::sub(simd::div(a, c), one);
      const simd::DVec reported =
          simd::sub(simd::div(sum_a, c), simd::set1(sw.nn));
      return simd::sub(
          simd::sub(simd::set1(sw.loo), simd::sub(reported, comp)), cost_e);
    }
    case LinearPrRule::kNoPayment:
      return simd::sub(simd::zero(), cost_e);
    case LinearPrRule::kArcherTardos:
      break;  // the context rejects the rule at construction
  }
  LBMV_ASSERT(false, "unreachable payment rule");
  return simd::zero();
}

/// Fused M/M/1 sweep driver.  Blocks fully on the fast path use the lane
/// kernel; a block with any off-path lane is re-evaluated through the
/// scalar oracle (all four lanes, so the downstream max/argmax arithmetic
/// is identical either way).
void mm1_sweep(const Mm1PrProfileContext& ctx, std::size_t agent,
               std::span<const double> bids, double execution, double* out,
               GridBest* best) {
  LBMV_REQUIRE(agent < ctx.profile().size(), "agent index out of range");
  LBMV_REQUIRE(execution > 0.0, "execution values must be positive");
  const std::size_t size = bids.size();
  if (size == 0) return;

  const Mm1Sweep sw = make_mm1_state(ctx, agent, execution);
  const double lane_offsets[simd::kLanes] = {0.0, 1.0, 2.0, 3.0};
  const simd::DVec base_idx = simd::load(lane_offsets);
  simd::DVec best_v = simd::set1(-std::numeric_limits<double>::infinity());
  simd::DVec best_i = simd::zero();

  double padded[simd::kLanes];
  double tmp[simd::kLanes];
  for (std::size_t k = 0; k < size; k += simd::kLanes) {
    const bool partial = k + simd::kLanes > size;
    const double* block = bids.data() + k;
    if (partial) {
      // Padded tail: spare lanes duplicate the last candidate; their indices
      // exceed the genuine copy's, so the tie-break can never pick one.
      for (std::size_t l = 0; l < simd::kLanes; ++l) {
        padded[l] = k + l < size ? bids[k + l] : bids[size - 1];
      }
      block = padded;
    }
    const simd::DVec b = simd::load(block);
    simd::DVec fast_ok = simd::zero();
    simd::DVec u = sw.rest_consistent ? mm1_utilities4(sw, b, &fast_ok)
                                      : simd::zero();
    if (!sw.rest_consistent || !simd::mask_all_true(fast_ok)) {
      // Off the fast path somewhere in this block: the scalar oracle owns
      // every lane (slow re-solves and the canonical typed errors alike).
      for (std::size_t l = 0; l < simd::kLanes; ++l) {
        tmp[l] = ctx.utility(agent, block[l], execution);
      }
      u = simd::load(tmp);
    }
    if (out != nullptr) {
      simd::store(tmp, u);
      for (std::size_t l = 0; l < simd::kLanes && k + l < size; ++l) {
        out[k + l] = tmp[l];
      }
    }
    if (best != nullptr) {
      const simd::DVec idx =
          simd::add(base_idx, simd::set1(static_cast<double>(k)));
      const simd::DVec m = simd::mask_greater(u, best_v);
      best_v = simd::select(m, u, best_v);
      best_i = simd::select(m, idx, best_i);
    }
  }

  if (best != nullptr) {
    double bv = simd::lane(best_v, 0);
    double bi = simd::lane(best_i, 0);
    for (std::size_t l = 1; l < simd::kLanes; ++l) {
      const double v = simd::lane(best_v, l);
      const double i = simd::lane(best_i, l);
      if (v > bv || (v == bv && i < bi)) {
        bv = v;
        bi = i;
      }
    }
    best->index = static_cast<std::size_t>(bi);
    best->utility = bv;
  }
}

}  // namespace

std::size_t grid_lanes_padded(std::size_t grid_size) {
  return (simd::kLanes - grid_size % simd::kLanes) % simd::kLanes;
}

void linear_pr_grid_utilities(const LinearPrProfileContext& ctx,
                              std::size_t agent, std::span<const double> bids,
                              double execution, std::span<double> out) {
  LBMV_REQUIRE(out.size() >= bids.size(),
               "output span must cover the candidate grid");
  sweep(ctx, agent, bids, execution, out.data(), nullptr);
}

GridBest linear_pr_grid_best(const LinearPrProfileContext& ctx,
                             std::size_t agent, std::span<const double> bids,
                             double execution) {
  LBMV_REQUIRE(!bids.empty(), "deviation grid must be non-empty");
  GridBest best;
  sweep(ctx, agent, bids, execution, nullptr, &best);
  return best;
}

void mm1_grid_utilities(const Mm1PrProfileContext& ctx, std::size_t agent,
                        std::span<const double> bids, double execution,
                        std::span<double> out) {
  LBMV_REQUIRE(out.size() >= bids.size(),
               "output span must cover the candidate grid");
  mm1_sweep(ctx, agent, bids, execution, out.data(), nullptr);
}

GridBest mm1_grid_best(const Mm1PrProfileContext& ctx, std::size_t agent,
                       std::span<const double> bids, double execution) {
  LBMV_REQUIRE(!bids.empty(), "deviation grid must be non-empty");
  GridBest best;
  mm1_sweep(ctx, agent, bids, execution, nullptr, &best);
  return best;
}

}  // namespace lbmv::core

#pragma once

/// \file frugality.h
/// Frugality analysis of mechanism payments (paper §4, Figure 6).
///
/// A mechanism is frugal when it buys truthfulness cheaply.  The paper
/// measures the total payment handed to the computers against the total
/// (magnitude of) valuation and reports that the compensation-and-bonus
/// mechanism pays at most ~2.5x the total valuation on its testbed, with
/// the total valuation as the lower bound implied by voluntary
/// participation.

#include <span>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/model/system_config.h"

namespace lbmv::core {

/// Payment-vs-valuation summary of one mechanism round.
struct FrugalityReport {
  double total_payment = 0.0;
  double total_valuation = 0.0;  ///< sum_i |V_i|
  /// total_payment / total_valuation (the paper's frugality measure);
  /// +inf when the valuation is zero.
  [[nodiscard]] double ratio() const;
};

/// Summarise an already-computed outcome.
[[nodiscard]] FrugalityReport frugality_of(const MechanismOutcome& outcome);

/// Frugality at the truthful profile for each arrival rate in \p rates.
struct FrugalitySweepPoint {
  double parameter = 0.0;  ///< the swept quantity (rate or spread)
  FrugalityReport report;
};
[[nodiscard]] std::vector<FrugalitySweepPoint> frugality_arrival_sweep(
    const Mechanism& mechanism, const model::SystemConfig& config,
    std::span<const double> rates);

/// Frugality as heterogeneity grows: for each spread s, build a system of
/// \p n computers with true values geometrically spaced in [1, s] and
/// measure the truthful-profile frugality.
[[nodiscard]] std::vector<FrugalitySweepPoint> frugality_heterogeneity_sweep(
    const Mechanism& mechanism, std::size_t n, double arrival_rate,
    std::span<const double> spreads);

}  // namespace lbmv::core

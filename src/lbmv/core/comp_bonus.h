#pragma once

/// \file comp_bonus.h
/// The paper's contribution: the compensation-and-bonus load balancing
/// mechanism with verification (Definition 3.3).
///
/// Allocation: the PR algorithm on the reported bids b.
/// Payment to agent i, handed after execution, P_i = C_i + B_i with
///
///   compensation  C_i(b, t~) = t~_i * x_i(b)^2
///     — exactly the verified cost the agent incurred, so the agent's
///       utility reduces to the bonus; and
///
///   bonus         B_i(b, t~) = L_{-i}(x_{-i}(b_{-i})) - L(x(b), t~)
///     — the agent's contribution to reducing total latency: the optimal
///       total latency when agent i is excluded, minus the total latency
///       actually measured with it.
///
/// With U_i = B_i, truth-telling and full-capacity execution uniquely
/// minimise L(x(b), t~) over the agent's own deviations, so the mechanism is
/// truthful (Theorem 3.1) and the truthful utility
/// L_{-i} - L* >= 0 gives voluntary participation (Theorem 3.2).
///
/// The implementation generalises beyond linear latencies: C_i is the
/// verified cost x_i * l_i^{t~}(x_i) and L_{-i} is computed by the injected
/// allocator, so the construction carries over to any family with an exact
/// allocator (e.g. M/M/1 with MM1Allocator).

#include <memory>
#include <string>

#include "lbmv/core/mechanism.h"

namespace lbmv::core {

/// Which type value the compensation term is evaluated at.
///
/// kExecution is the paper's Definition 3.3 (and the variant for which the
/// truthfulness proof goes through).  kBid is the variant under which the
/// paper's Low2 narrative — "the payment given to C1 is negative" — actually
/// holds numerically; shipped for the ablation study documented in
/// DESIGN.md/EXPERIMENTS.md, *not* as a truthful mechanism.
enum class CompensationBasis {
  kExecution,  ///< C_i = t~_i * x_i^2  (Definition 3.3)
  kBid,        ///< C_i = b_i  * x_i^2  (ablation variant)
};

/// The load balancing mechanism with verification.
class CompBonusMechanism final : public Mechanism {
 public:
  /// Build with the PR allocator (the paper's setting).
  CompBonusMechanism();

  /// Build with an explicit allocator (e.g. ConvexAllocator for non-linear
  /// families) and compensation basis.
  explicit CompBonusMechanism(
      std::shared_ptr<const alloc::Allocator> allocator,
      CompensationBasis basis = CompensationBasis::kExecution);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool uses_verification() const override { return true; }
  [[nodiscard]] CompensationBasis basis() const { return basis_; }
  [[nodiscard]] VectorRule vector_rule() const override {
    return basis_ == CompensationBasis::kExecution
               ? VectorRule::kCompBonusExecution
               : VectorRule::kCompBonusBid;
  }

  /// O(1)-per-deviation profile context for the linear-family / PR-allocator
  /// configuration (the paper's setting); nullptr for other pairings.  Also
  /// powers make_utility_context via the Mechanism base class.
  [[nodiscard]] std::unique_ptr<ProfileUtilityContext> make_profile_context(
      const model::LatencyFamily& family, double arrival_rate,
      const model::BidProfile& base) const override;

 protected:
  void fill_payments(const model::LatencyFamily& family, double arrival_rate,
                     std::span<const double> bids,
                     std::span<const double> executions,
                     const model::Allocation& x, double actual_latency,
                     double reported_latency,
                     std::vector<AgentOutcome>& outcomes,
                     RoundWorkspace& ws) const override;

 private:
  CompensationBasis basis_;
};

}  // namespace lbmv::core

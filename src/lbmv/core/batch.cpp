#include "lbmv/core/batch.h"

#include "lbmv/model/latency.h"
#include "lbmv/util/error.h"

namespace lbmv::core {

FamilyKind classify_family(const model::LatencyFamily& family) {
  if (dynamic_cast<const model::LinearFamily*>(&family) != nullptr) {
    return FamilyKind::kLinear;
  }
  if (dynamic_cast<const model::MM1Family*>(&family) != nullptr) {
    return FamilyKind::kMm1;
  }
  if (dynamic_cast<const model::WorkloadFamily*>(&family) != nullptr) {
    return FamilyKind::kWorkload;
  }
  return FamilyKind::kGeneric;
}

void ProfileBatch::push_back(const model::BidProfile& profile) {
  push_back(profile.bids, profile.executions);
}

void ProfileBatch::push_back(std::span<const double> bids,
                             std::span<const double> executions) {
  LBMV_REQUIRE(agents_ > 0, "set the batch's agent count before appending");
  LBMV_REQUIRE(bids.size() == agents_, "bid vector size mismatch");
  LBMV_REQUIRE(executions.size() == agents_,
               "execution vector size mismatch");
  bids_.insert(bids_.end(), bids.begin(), bids.end());
  executions_.insert(executions_.end(), executions.begin(), executions.end());
}

void ProfileBatch::extract_into(std::size_t b, model::BidProfile& out) const {
  LBMV_REQUIRE(b < size(), "profile index out of range");
  const std::span<const double> bid_slice = bids(b);
  const std::span<const double> exec_slice = executions(b);
  out.bids.assign(bid_slice.begin(), bid_slice.end());
  out.executions.assign(exec_slice.begin(), exec_slice.end());
}

RoundWorkspace& RoundWorkspace::thread_local_instance() {
  thread_local RoundWorkspace ws;
  return ws;
}

}  // namespace lbmv::core

#pragma once

/// \file batch.h
/// Structure-of-arrays profile batches and the reusable round workspace.
///
/// Every experiment in the paper — Table 1/2 rounds, the Fig 3–5 deviation
/// sweeps, the frugality grids — reduces to evaluating the mechanism over
/// many bid profiles.  The scalar path pays per-round plumbing (fresh
/// vectors, one heap-allocated LatencyFunction per agent per round) that
/// dwarfs the O(n) closed-form math.  This header provides the batched,
/// allocation-free counterpart (DESIGN.md §11):
///
///   * ProfileBatch   — B profiles of n agents stored as two contiguous
///                      planes (all bids, then all executions), so a batch
///                      round streams cache lines instead of chasing
///                      pointers and a profile is a pair of spans;
///   * RoundWorkspace — every scratch plane one mechanism round needs
///                      (allocation rates, leave-one-out optima, per-agent
///                      costs, the generic-family latency arena), reused
///                      across rounds so the steady state allocates
///                      nothing on the fused linear fast path;
///   * BatchOutcomes  — per-profile MechanismOutcome slots, written
///                      independently by Mechanism::run_batch workers and
///                      therefore deterministic for any thread count.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "lbmv/core/mechanism.h"
#include "lbmv/model/bids.h"

namespace lbmv::util {
class ThreadPool;
}  // namespace lbmv::util

namespace lbmv::core {

/// The latency families the round engine knows fused kernels for.  The
/// generic virtual-dispatch arena stays the semantic reference; a fused
/// path may only engage when the family AND the allocator match (e.g. kMm1
/// with an exact MM1Allocator), so classification alone never changes
/// behaviour.
enum class FamilyKind {
  kLinear,    ///< l(x) = theta x        — PR closed form (DESIGN.md §11/§12)
  kMm1,       ///< l(x) = 1/(mu - x)     — square-root closed form (§14)
  kWorkload,  ///< l(x) = theta x(1+gx)  — damped-free monotone Newton (§14)
  kGeneric,   ///< anything else: virtual-dispatch arena
};

/// Classify by dynamic type (mirroring the audit fast-path gates).
[[nodiscard]] FamilyKind classify_family(const model::LatencyFamily& family);

/// B bid/execution profiles over a fixed set of n agents, stored
/// structure-of-arrays: profile b's bids occupy the contiguous slice
/// [b*n, (b+1)*n) of one plane, its executions the same slice of another.
class ProfileBatch {
 public:
  ProfileBatch() = default;
  /// Empty batch over \p agents agents (>= 2 once profiles are run).
  explicit ProfileBatch(std::size_t agents) : agents_(agents) {}

  /// Drop all profiles and fix the agent count, keeping plane capacity.
  void reset(std::size_t agents) {
    agents_ = agents;
    clear();
  }

  /// Drop all profiles, keeping the agent count and plane capacity.
  void clear() {
    bids_.clear();
    executions_.clear();
  }

  void reserve(std::size_t profiles) {
    bids_.reserve(profiles * agents_);
    executions_.reserve(profiles * agents_);
  }

  [[nodiscard]] std::size_t agents() const { return agents_; }
  /// Number of profiles B.
  [[nodiscard]] std::size_t size() const {
    return agents_ == 0 ? 0 : bids_.size() / agents_;
  }
  [[nodiscard]] bool empty() const { return bids_.empty(); }

  /// Append one profile; its size must match agents().
  void push_back(const model::BidProfile& profile);
  /// Append one profile from raw planes; sizes must match agents().
  void push_back(std::span<const double> bids,
                 std::span<const double> executions);

  [[nodiscard]] std::span<const double> bids(std::size_t b) const {
    return {bids_.data() + b * agents_, agents_};
  }
  [[nodiscard]] std::span<const double> executions(std::size_t b) const {
    return {executions_.data() + b * agents_, agents_};
  }
  [[nodiscard]] std::span<double> mutable_bids(std::size_t b) {
    return {bids_.data() + b * agents_, agents_};
  }
  [[nodiscard]] std::span<double> mutable_executions(std::size_t b) {
    return {executions_.data() + b * agents_, agents_};
  }

  /// The whole bid plane (B*n values, profile-major).
  [[nodiscard]] std::span<const double> bids_plane() const { return bids_; }
  [[nodiscard]] std::span<const double> executions_plane() const {
    return executions_;
  }

  /// Copy profile \p b into \p out, reusing its capacity.
  void extract_into(std::size_t b, model::BidProfile& out) const;

 private:
  std::size_t agents_ = 0;
  std::vector<double> bids_;        ///< B*n, profile-major
  std::vector<double> executions_;  ///< B*n, profile-major
};

/// Reusable scratch for mechanism rounds.  One workspace per thread (or per
/// long-lived caller) amortises every allocation a round needs; after the
/// first round at a given n, run_into on the fused linear fast path touches
/// the heap zero times.
///
/// The flag/sum trio at the top is written by Mechanism::run_into before it
/// calls fill_payments, letting payment rules pick the fused closed form
/// without re-deriving what the round already knows.  run_into never touches
/// scratch_profile/scratch_outcome, so callers that sweep deviations may
/// hold their working profile and outcome in the same workspace they pass
/// back in.
class RoundWorkspace {
 public:
  RoundWorkspace() = default;
  RoundWorkspace(const RoundWorkspace&) = delete;
  RoundWorkspace& operator=(const RoundWorkspace&) = delete;
  RoundWorkspace(RoundWorkspace&&) = default;
  RoundWorkspace& operator=(RoundWorkspace&&) = default;

  /// One workspace per thread, created on first use.  Mechanism::run_batch
  /// workers use this so repeated batches stay allocation-free per thread.
  static RoundWorkspace& thread_local_instance();

  // ---- round state published by Mechanism::run_into ----------------------
  bool linear_fast = false;    ///< family is linear: e_i*x_i^2 everywhere
  bool pr_closed_form = false; ///< linear_fast && PR allocator: S is valid
  double inverse_sum = 0.0;    ///< S = sum_j 1/b_j when pr_closed_form

  // ---- scratch planes (sized by the engine, reused across rounds) --------
  std::vector<double> leave_one_out;  ///< L_{-i} per agent
  std::vector<double> own_cost;       ///< per-agent reported cost (VCG)

  // ---- vectorized-engine planes (simd_round.cpp; reused across rounds) ---
  std::vector<double> inv_bids;        ///< 1/b_i
  std::vector<double> block_partials;  ///< per-block partials: S, sum (e/b^2)
  std::vector<unsigned char> block_ok; ///< per-block validation masks

  // ---- nonlinear-family planes (family_round.cpp; reused across rounds) --
  std::vector<double> sqrt_mu;         ///< a_i = sqrt(1/b_i) (M/M/1)
  std::vector<double> inv_execs;       ///< 1/e_i (M/M/1 verified rates)
  std::vector<double> family_scratch;  ///< rest-set / Newton scratch

  /// Arena for generic (non-linear) families: the function objects are
  /// rebuilt per round via LatencyFamily::make, but the owning planes
  /// persist so the per-round vector churn of the scalar path disappears.
  /// The linear fast path never touches these.
  std::vector<std::unique_ptr<model::LatencyFunction>> exec_fns;
  std::vector<std::unique_ptr<model::LatencyFunction>> bid_fns;

  // ---- caller-owned scratch (never touched by run_into) ------------------
  model::BidProfile scratch_profile;
  MechanismOutcome scratch_outcome;
};

/// Outcome slots for one batch run, reused across calls.  Slot b holds the
/// outcome of profile b; workers write disjoint slots, so the contents are
/// identical for any thread count (deterministic in-order merge).
struct BatchOutcomes {
  std::vector<MechanismOutcome> outcomes;

  [[nodiscard]] std::size_t size() const { return outcomes.size(); }
  [[nodiscard]] const MechanismOutcome& operator[](std::size_t b) const {
    return outcomes[b];
  }
  [[nodiscard]] MechanismOutcome& operator[](std::size_t b) {
    return outcomes[b];
  }
};

/// Fan-out controls for Mechanism::run_batch.
struct BatchRunOptions {
  bool parallel = true;          ///< fan profiles over a thread pool
  util::ThreadPool* pool = nullptr;  ///< null: the process-global pool
  std::size_t grain = 0;         ///< profiles per task; 0 = automatic
};

/// Fan-out controls for one round's agent axis (the vectorized engine,
/// simd_round.h).  Results never depend on these — the fixed block grid
/// makes every shard/thread count bit-identical — so they tune wall-clock
/// only.  shards == 0 picks automatically: serial below
/// kAutoShardMinAgents or on a single-thread pool, one task per pool
/// thread-quantum above.  shards == 1 forces the serial block loop (what
/// run_batch workers use: nested pool fan-out would deadlock the pool).
/// shards > 1 requests that many tasks (capped at the block count).
struct RoundOptions {
  std::size_t shards = 0;            ///< 0 auto, 1 serial, k explicit tasks
  util::ThreadPool* pool = nullptr;  ///< null: the process-global pool
};

}  // namespace lbmv::core

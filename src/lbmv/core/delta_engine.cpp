#include "lbmv/core/delta_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/alloc/workload_allocator.h"
#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::core {

DeltaRoundEngine::DeltaRoundEngine(
    const Mechanism& mechanism,
    std::shared_ptr<const model::LatencyFamily> family, double arrival_rate,
    std::span<const double> bids, std::span<const double> executions)
    : mechanism_(&mechanism),
      family_(std::move(family)),
      arrival_rate_(arrival_rate),
      kind_(FamilyKind::kGeneric) {
  LBMV_REQUIRE(family_ != nullptr, "delta engine requires a latency family");
  const std::size_t n = bids.size();
  LBMV_REQUIRE(n >= 2, "mechanisms require at least two agents");
  LBMV_REQUIRE(executions.size() == n, "execution vector size mismatch");
  LBMV_REQUIRE(arrival_rate_ > 0.0, "arrival rate must be positive");
  for (std::size_t i = 0; i < n; ++i) {
    LBMV_REQUIRE(bids[i] > 0.0, "bids must be positive");
    LBMV_REQUIRE(executions[i] > 0.0, "execution values must be positive");
  }

  kind_ = classify_family(*family_);
  const alloc::Allocator* allocator = &mechanism_->allocator();
  linear_pr_ =
      kind_ == FamilyKind::kLinear &&
      dynamic_cast<const alloc::PRAllocator*>(allocator) != nullptr;
  mm1_exact_ =
      kind_ == FamilyKind::kMm1 &&
      dynamic_cast<const alloc::MM1Allocator*>(allocator) != nullptr;
  workload_exact_ =
      kind_ == FamilyKind::kWorkload &&
      dynamic_cast<const alloc::WorkloadAllocator*>(allocator) != nullptr;
  if (kind_ == FamilyKind::kWorkload) {
    gamma_ = static_cast<const model::WorkloadFamily&>(*family_).gamma();
  }

  bids_.assign(bids.begin(), bids.end());
  execs_.assign(executions.begin(), executions.end());
  rebuild();
}

DeltaRoundEngine::DeltaRoundEngine(
    const Mechanism& mechanism,
    std::shared_ptr<const model::LatencyFamily> family, double arrival_rate,
    const model::BidProfile& initial)
    : DeltaRoundEngine(mechanism, std::move(family), arrival_rate,
                       initial.bids, initial.executions) {}

void DeltaRoundEngine::rebuild() {
  const std::size_t n = bids_.size();
  rebuild_period_ = std::max<std::size_t>(64, n);
  deltas_since_rebuild_ = 0;
  if (linear_pr_) {
    s_ = 0.0;
    w_ = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double inv = 1.0 / bids_[j];
      s_ += inv;
      w_ += execs_[j] * inv * inv;
    }
  }
  if (mm1_exact_) {
    mus_.resize(n);
    sqrt_mu_.resize(n);
    sum_mu_ = 0.0;
    sum_a_ = 0.0;
    min_a_ = std::numeric_limits<double>::infinity();
    inconsistent_count_ = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const double mu = 1.0 / bids_[j];
      const double a = std::sqrt(mu);
      mus_[j] = mu;
      sqrt_mu_[j] = a;
      sum_mu_ += mu;
      sum_a_ += a;
      min_a_ = std::min(min_a_, a);
      inconsistent_count_ +=
          static_cast<std::size_t>(execs_[j] != bids_[j]);
    }
    min_a_valid_ = true;
  }
  // The workload aggregate (the committed multiplier) is re-derived by the
  // next scalars() solve; there is no incremental sum to re-sum.
  scalars_valid_ = false;
  if (obs::enabled()) obs::CoreProbes::get().full_rebuilds.inc();
}

void DeltaRoundEngine::invalidate(std::size_t dirty) {
  scalars_valid_ = false;
  outcome_valid_ = false;
  if (obs::enabled()) {
    obs::CoreProbes& probes = obs::CoreProbes::get();
    probes.delta_rounds.inc();
    probes.dirty_agents.record(static_cast<double>(dirty));
  }
  deltas_since_rebuild_ += dirty;
  if (deltas_since_rebuild_ >= rebuild_period_) rebuild();
}

void DeltaRoundEngine::apply(std::size_t agent, double bid,
                             double execution) {
  const BidDelta delta{agent, bid, execution};
  apply(std::span<const BidDelta>(&delta, 1));
}

void DeltaRoundEngine::apply(std::span<const BidDelta> deltas) {
  if (deltas.empty()) return;
  for (const BidDelta& d : deltas) {
    LBMV_REQUIRE(d.agent < bids_.size(), "agent index out of range");
    LBMV_REQUIRE(d.bid > 0.0, "bids must be positive");
    LBMV_REQUIRE(d.execution > 0.0, "execution values must be positive");
    const std::size_t j = d.agent;
    const double old_bid = bids_[j];
    const double old_exec = execs_[j];
    if (linear_pr_) {
      s_ += 1.0 / d.bid - 1.0 / old_bid;
      w_ += d.execution / (d.bid * d.bid) -
            old_exec / (old_bid * old_bid);
    }
    if (mm1_exact_) {
      const double mu = 1.0 / d.bid;
      const double a = std::sqrt(mu);
      sum_mu_ += mu - mus_[j];
      sum_a_ += a - sqrt_mu_[j];
      if (min_a_valid_) {
        if (a <= min_a_) {
          min_a_ = a;
        } else if (sqrt_mu_[j] <= min_a_) {
          // The previous minimum moved up; only a re-scan can find the new
          // one, deferred to the next query that needs it.
          min_a_valid_ = false;
        }
      }
      inconsistent_count_ +=
          static_cast<std::size_t>(d.execution != d.bid);
      inconsistent_count_ -=
          static_cast<std::size_t>(old_exec != old_bid);
      mus_[j] = mu;
      sqrt_mu_[j] = a;
    }
    // A faster machine raises the conservation residual at the committed
    // multiplier, so the monotone-from-below Newton contract breaks: reset
    // to the solver's own cold start.  Slower machines keep the committed
    // multiplier a valid lower bound.
    if (workload_exact_ && d.bid < old_bid) lambda_warm_ = false;
    bids_[j] = d.bid;
    execs_[j] = d.execution;
  }
  invalidate(deltas.size());
}

std::size_t DeltaRoundEngine::sync(std::span<const double> bids,
                                   std::span<const double> executions) {
  const std::size_t n = bids_.size();
  LBMV_REQUIRE(bids.size() == n, "sync requires an unchanged agent count");
  LBMV_REQUIRE(executions.size() == n, "execution vector size mismatch");
  delta_scratch_.clear();
  for (std::size_t j = 0; j < n; ++j) {
    if (bids[j] == bids_[j] && executions[j] == execs_[j]) continue;
    delta_scratch_.push_back(BidDelta{j, bids[j], executions[j]});
  }
  if (!delta_scratch_.empty()) apply(delta_scratch_);
  return delta_scratch_.size();
}

std::size_t DeltaRoundEngine::add_agent(double bid, double execution) {
  LBMV_REQUIRE(bid > 0.0, "bids must be positive");
  LBMV_REQUIRE(execution > 0.0, "execution values must be positive");
  bids_.push_back(bid);
  execs_.push_back(execution);
  if (linear_pr_) {
    s_ += 1.0 / bid;
    w_ += execution / (bid * bid);
  }
  if (mm1_exact_) {
    const double mu = 1.0 / bid;
    const double a = std::sqrt(mu);
    mus_.push_back(mu);
    sqrt_mu_.push_back(a);
    sum_mu_ += mu;
    sum_a_ += a;
    if (min_a_valid_) min_a_ = std::min(min_a_, a);
    inconsistent_count_ += static_cast<std::size_t>(execution != bid);
  }
  // Extra capacity lowers the optimal multiplier below the committed one.
  if (workload_exact_) lambda_warm_ = false;
  note_membership_change();
  invalidate(1);
  return bids_.size() - 1;
}

void DeltaRoundEngine::remove_agent(std::size_t agent) {
  LBMV_REQUIRE(agent < bids_.size(), "agent index out of range");
  LBMV_REQUIRE(bids_.size() >= 3, "mechanisms require at least two agents");
  const double bid = bids_[agent];
  const double execution = execs_[agent];
  if (linear_pr_) {
    s_ -= 1.0 / bid;
    w_ -= execution / (bid * bid);
  }
  if (mm1_exact_) {
    sum_mu_ -= mus_[agent];
    sum_a_ -= sqrt_mu_[agent];
    if (min_a_valid_ && sqrt_mu_[agent] <= min_a_) min_a_valid_ = false;
    inconsistent_count_ -= static_cast<std::size_t>(execution != bid);
    mus_[agent] = mus_.back();
    mus_.pop_back();
    sqrt_mu_[agent] = sqrt_mu_.back();
    sqrt_mu_.pop_back();
  }
  // Removal shrinks every rate at a fixed multiplier, so the committed
  // multiplier still lower-bounds the subset optimum: the warm start stays
  // valid (workload_allocator.h's superset rule).
  bids_[agent] = bids_.back();
  bids_.pop_back();
  execs_[agent] = execs_.back();
  execs_.pop_back();
  note_membership_change();
  invalidate(1);
}

void DeltaRoundEngine::note_membership_change() {
  rebuild_period_ = std::max<std::size_t>(64, bids_.size());
}

void DeltaRoundEngine::ensure_min_a() {
  if (min_a_valid_) return;
  min_a_ = std::numeric_limits<double>::infinity();
  for (const double a : sqrt_mu_) min_a_ = std::min(min_a_, a);
  min_a_valid_ = true;
}

double DeltaRoundEngine::mm1_actual(double c) const {
  double actual = 0.0;
  for (std::size_t j = 0; j < bids_.size(); ++j) {
    const double x = mus_[j] - c * sqrt_mu_[j];
    const double mue = 1.0 / execs_[j];
    LBMV_REQUIRE(x >= 0.0 && x < mue,
                 "M/M/1 latency requires 0 <= x < mu");
    actual += x / (mue - x);
  }
  return actual;
}

const RoundScalars& DeltaRoundEngine::scalars() {
  if (scalars_valid_) return scalars_;
  const double r = arrival_rate_;
  const std::size_t n = bids_.size();
  if (linear_pr_) {
    // x_i = (R/S)/b_i, L* = R^2/S (paper eq. (4)); the reported total cost
    // equals the optimum because the PR allocation attains it, and the
    // verified total factors through W (DESIGN.md §10).
    const double optimal = r * r / s_;
    const double rs = r / s_;
    scalars_ = RoundScalars{optimal, optimal, rs * rs * w_, s_};
  } else if (mm1_exact_) {
    ensure_min_a();
    const double slack = sum_mu_ - r;
    const double c = slack / sum_a_;
    if (slack > alloc::kMm1MinRelativeSlack * sum_mu_ && c < min_a_) {
      // All computers active: every queue length is a_j/c - 1, so the
      // optimum is (sum a_j)/c - n, and a fully consistent profile
      // (e_j == b_j everywhere) incurs exactly that.
      const double optimal = sum_a_ / c - static_cast<double>(n);
      const double actual =
          inconsistent_count_ == 0 ? optimal : mm1_actual(c);
      scalars_ = RoundScalars{optimal, optimal, actual, c};
    } else {
      // Active-set churn or near-saturation: delegate to the exact solver,
      // which also re-raises the typed PreconditionError on infeasible
      // rounds (R >= sum mu) with the scalar path's diagnostics.
      scratch_.resize(n);
      const alloc::Mm1Solve solve = alloc::mm1_solve_into(mus_, r, scratch_);
      double actual = solve.optimal_latency;
      if (inconsistent_count_ != 0) {
        actual = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          const double x = scratch_[j];
          if (x == 0.0) continue;
          const double mue = 1.0 / execs_[j];
          LBMV_REQUIRE(x >= 0.0 && x < mue,
                       "M/M/1 latency requires 0 <= x < mu");
          actual += x / (mue - x);
        }
      }
      scalars_ = RoundScalars{solve.optimal_latency, solve.optimal_latency,
                              actual, solve.c};
    }
  } else if (workload_exact_) {
    // Irreducibly O(n * iters): the KKT multiplier couples every rate.  The
    // deltas buy the warm start — a committed multiplier that still
    // lower-bounds the optimum typically converges in one or two Newton
    // refinements instead of a cold solve.
    scratch_.resize(n);
    const double warm = lambda_warm_ ? lambda_ : 0.0;
    const alloc::WorkloadSolve solve =
        alloc::workload_solve_into(bids_, gamma_, r, scratch_, warm);
    lambda_ = solve.lambda;
    lambda_warm_ = true;
    double actual = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double x = scratch_[j];
      actual += x * ((execs_[j] * x) * (1.0 + gamma_ * x));
    }
    scalars_ = RoundScalars{solve.optimal_latency, solve.optimal_latency,
                            actual, solve.lambda};
  } else {
    // Generic fallback: materialize the round and read the totals off it.
    // optimal_latency here is the committed allocation's reported total —
    // the allocator's objective value, which is the optimum exactly when
    // the allocator is exact for the family (the same contract run_into
    // operates under).
    const MechanismOutcome& out = outcome();
    scalars_ =
        RoundScalars{out.reported_latency, out.reported_latency,
                     out.actual_latency,
                     ws_.pr_closed_form ? ws_.inverse_sum : 0.0};
  }
  scalars_valid_ = true;
  return scalars_;
}

double DeltaRoundEngine::leave_one_out(std::size_t agent) {
  LBMV_REQUIRE(agent < bids_.size(), "agent index out of range");
  const double r = arrival_rate_;
  if (linear_pr_) {
    // L_{-i} = R^2 / (S - 1/b_i), guarded against the cancellation profiles
    // exactly like pr_leave_one_out_from_sum: below the gap the closed form
    // carries no correct digits, so re-solve the subsystem exactly instead.
    const double rest = s_ - 1.0 / bids_[agent];
    if (rest > alloc::kLeaveOneOutMinRelativeGap * s_) return r * r / rest;
    return loo_slow(agent);
  }
  if (mm1_exact_) {
    ensure_min_a();
    const double rest_mu = sum_mu_ - mus_[agent];
    const double rest_a = sum_a_ - sqrt_mu_[agent];
    const double slack = rest_mu - r;
    // The O(1) form needs the remaining set all-active (min_{j!=i} a_j >
    // c'); when the removed agent is the minimum itself the rest-minimum is
    // unknown without a re-scan, so fall through to the exact re-solve.
    if (sqrt_mu_[agent] > min_a_ &&
        slack > alloc::kMm1MinRelativeSlack * rest_mu) {
      const double c = slack / rest_a;
      if (c < min_a_) return rest_a / c - static_cast<double>(size() - 1);
    }
    return loo_slow(agent);
  }
  return loo_slow(agent);
}

double DeltaRoundEngine::loo_slow(std::size_t agent) {
  scratch_.clear();
  scratch_.reserve(bids_.size() - 1);
  for (std::size_t j = 0; j < bids_.size(); ++j) {
    if (j != agent) scratch_.push_back(bids_[j]);
  }
  return mechanism_->allocator().optimal_latency(*family_, scratch_,
                                                 arrival_rate_);
}

const MechanismOutcome& DeltaRoundEngine::outcome() {
  if (!outcome_valid_) {
    mechanism_->run_into(*family_, arrival_rate_, bids_, execs_, outcome_,
                         ws_);
    outcome_valid_ = true;
  }
  return outcome_;
}

}  // namespace lbmv::core

#pragma once

/// \file grid_kernels.h
/// Lane-parallel deviation-grid kernels (DESIGN.md §13).
///
/// Every strategic sweep in the repo — best-response scans, audit grids,
/// learning counterfactuals, tournament regret probes — evaluates ONE
/// agent's utility at MANY candidate bids against the same frozen
/// LinearPrProfileContext.  Per candidate b the closed forms need only
///
///   S' = S - 1/b_i + 1/b,   x = R/(b S'),   L' = R^2/S',
///
/// plus a per-rule payment expression, all of it elementwise arithmetic in
/// the *candidate* dimension.  The kernels here evaluate four candidates per
/// instruction over util/simd.h (AVX2 or the bit-identical 4-lane scalar
/// emulation), replicating the exact IEEE operand order of
/// LinearPrProfileContext::utility per lane — so the vectorized utilities
/// equal the scalar oracle bit for bit, not merely to tolerance, and the
/// scalar DeviationEvaluator stays the differential reference.
///
/// Validity is tracked with AND-accumulated lane masks (positive finite
/// bids), checked once per sweep; on failure a scalar re-validation raises
/// the canonical PreconditionError for the first offending candidate.  The
/// best-response reduction keeps a running 4-lane (max, argmax) pair with
/// blend-by-mask updates and resolves ties toward the smallest index, which
/// reproduces a strictly-greater first-wins scalar scan exactly — the
/// tie-break contract minimize_scan and the audits rely on.

#include <cstddef>
#include <span>

#include "lbmv/core/family_context.h"
#include "lbmv/core/profile_context.h"

namespace lbmv::core {

/// Winning candidate of a grid sweep.
struct GridBest {
  std::size_t index = 0;    ///< first index attaining the maximum utility
  double utility = 0.0;     ///< the maximum utility
};

/// Number of padded lanes a sweep of \p grid_size candidates evaluates (the
/// final partial 4-lane block is padded with a duplicate of the last
/// candidate; padded lanes can never win the argmax because the genuine
/// copy has the smaller index).
[[nodiscard]] std::size_t grid_lanes_padded(std::size_t grid_size);

/// out[k] = ctx.utility(agent, bids[k], execution) for every k, four lanes
/// per instruction, bit-identical to the scalar calls.  \p out must be at
/// least bids.size() long; bids and out must not alias.  Throws
/// PreconditionError on a non-positive/non-finite execution or candidate
/// bid (after the sweep's masks flag it).
void linear_pr_grid_utilities(const LinearPrProfileContext& ctx,
                              std::size_t agent, std::span<const double> bids,
                              double execution, std::span<double> out);

/// Max/argmax over the same sweep without materialising the utilities:
/// returns the utility-maximising candidate, ties resolved to the smallest
/// index (identical to a strictly-greater scalar scan in index order).
/// Requires a non-empty grid.
[[nodiscard]] GridBest linear_pr_grid_best(const LinearPrProfileContext& ctx,
                                           std::size_t agent,
                                           std::span<const double> bids,
                                           double execution);

/// M/M/1 sweep (DESIGN.md §14): same contract as linear_pr_grid_utilities
/// against an Mm1PrProfileContext.  Lanes replicate the context's all-active
/// consistent fast path in its exact IEEE operand order; any lane whose
/// fast-path gates fail (active-set churn, saturation, inconsistent rest,
/// domain violation, bad candidate) is re-evaluated through the scalar
/// oracle ctx.utility itself, so the plane is bit-identical to a scalar
/// loop of utility() calls — including which deviations throw.
void mm1_grid_utilities(const Mm1PrProfileContext& ctx, std::size_t agent,
                        std::span<const double> bids, double execution,
                        std::span<double> out);

/// Max/argmax form of the M/M/1 sweep (same tie-break contract as
/// linear_pr_grid_best).  Requires a non-empty grid.
[[nodiscard]] GridBest mm1_grid_best(const Mm1PrProfileContext& ctx,
                                     std::size_t agent,
                                     std::span<const double> bids,
                                     double execution);

}  // namespace lbmv::core

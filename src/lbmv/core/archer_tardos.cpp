#include "lbmv/core/archer_tardos.h"

#include "lbmv/core/batch.h"
#include "lbmv/core/profile_context.h"
#include "lbmv/util/error.h"
#include "lbmv/util/integrate.h"

namespace lbmv::core {

double archer_tardos_tail_integral(double bid, double inverse_bid_sum_rest,
                                   double arrival_rate) {
  LBMV_REQUIRE(bid > 0.0, "bid must be positive");
  LBMV_REQUIRE(inverse_bid_sum_rest > 0.0,
               "the other agents must contribute positive capacity");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  const double s = inverse_bid_sum_rest;
  return arrival_rate * arrival_rate / (s * (1.0 + bid * s));
}

ArcherTardosMechanism::ArcherTardosMechanism()
    : Mechanism(default_allocator()) {}

double ArcherTardosMechanism::tail_integral_numeric(
    double bid, double inverse_bid_sum_rest, double arrival_rate,
    double tol) {
  const double s = inverse_bid_sum_rest;
  const double r2 = arrival_rate * arrival_rate;
  return util::integrate_to_infinity(
      [s, r2](double u) {
        const double d = 1.0 + u * s;
        return r2 / (d * d);
      },
      bid, tol);
}

void ArcherTardosMechanism::fill_payments(
    const model::LatencyFamily& family, double arrival_rate,
    std::span<const double> bids, std::span<const double> /*executions*/,
    const model::Allocation& x, double /*actual_latency*/,
    double /*reported_latency*/, std::vector<AgentOutcome>& outcomes,
    RoundWorkspace& ws) const {
  LBMV_REQUIRE(dynamic_cast<const model::LinearFamily*>(&family) != nullptr,
               "the Archer–Tardos closed form is derived for the linear "
               "family under PR allocation");
  // s_i = sum_{j != i} 1/b_j = S - 1/b_i: one pass for S (or none, when the
  // PR allocation pass already published it) replaces the former O(n^2)
  // per-agent re-sum.
  double inverse_bid_sum = ws.inverse_sum;
  if (!ws.pr_closed_form) {
    inverse_bid_sum = 0.0;
    for (double b : bids) inverse_bid_sum += 1.0 / b;
  }
  const std::span<const double> rates = x.rates();
  for (std::size_t i = 0; i < bids.size(); ++i) {
    auto& agent = outcomes[i];
    const double s = inverse_bid_sum - 1.0 / bids[i];
    const double work = rates[i] * rates[i];
    // Bookkeeping split mirrors the formula: b_i * w_i (the reported cost,
    // analogous to a compensation) plus the tail integral (the incentive
    // term).
    agent.compensation = bids[i] * work;
    agent.bonus = archer_tardos_tail_integral(bids[i], s, arrival_rate);
    agent.payment = agent.compensation + agent.bonus;
  }
}

std::unique_ptr<ProfileUtilityContext>
ArcherTardosMechanism::make_profile_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base) const {
  return make_linear_pr_profile_context(LinearPrRule::kArcherTardos, family,
                                        allocator(), arrival_rate, base);
}

}  // namespace lbmv::core

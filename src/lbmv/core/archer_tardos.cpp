#include "lbmv/core/archer_tardos.h"

#include "lbmv/util/error.h"
#include "lbmv/util/integrate.h"

namespace lbmv::core {

double archer_tardos_tail_integral(double bid, double inverse_bid_sum_rest,
                                   double arrival_rate) {
  LBMV_REQUIRE(bid > 0.0, "bid must be positive");
  LBMV_REQUIRE(inverse_bid_sum_rest > 0.0,
               "the other agents must contribute positive capacity");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  const double s = inverse_bid_sum_rest;
  return arrival_rate * arrival_rate / (s * (1.0 + bid * s));
}

ArcherTardosMechanism::ArcherTardosMechanism()
    : Mechanism(default_allocator()) {}

double ArcherTardosMechanism::tail_integral_numeric(
    double bid, double inverse_bid_sum_rest, double arrival_rate,
    double tol) {
  const double s = inverse_bid_sum_rest;
  const double r2 = arrival_rate * arrival_rate;
  return util::integrate_to_infinity(
      [s, r2](double u) {
        const double d = 1.0 + u * s;
        return r2 / (d * d);
      },
      bid, tol);
}

void ArcherTardosMechanism::fill_payments(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& profile, const model::Allocation& x,
    std::vector<AgentOutcome>& outcomes) const {
  LBMV_REQUIRE(dynamic_cast<const model::LinearFamily*>(&family) != nullptr,
               "the Archer–Tardos closed form is derived for the linear "
               "family under PR allocation");
  for (std::size_t i = 0; i < profile.size(); ++i) {
    auto& agent = outcomes[i];
    double s = 0.0;
    for (std::size_t j = 0; j < profile.size(); ++j) {
      if (j != i) s += 1.0 / profile.bids[j];
    }
    const double work = x[i] * x[i];
    // Bookkeeping split mirrors the formula: b_i * w_i (the reported cost,
    // analogous to a compensation) plus the tail integral (the incentive
    // term).
    agent.compensation = profile.bids[i] * work;
    agent.bonus =
        archer_tardos_tail_integral(profile.bids[i], s, arrival_rate);
    agent.payment = agent.compensation + agent.bonus;
  }
}

}  // namespace lbmv::core

#include "lbmv/core/family_context.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/workload_allocator.h"
#include "lbmv/util/error.h"

namespace lbmv::core {

// ---------------------------------------------------------------------------
// M/M/1

Mm1PrProfileContext::Mm1PrProfileContext(LinearPrRule rule, double arrival_rate,
                                         model::BidProfile base)
    : rule_(rule), arrival_rate_(arrival_rate), profile_(std::move(base)) {
  LBMV_REQUIRE(rule != LinearPrRule::kArcherTardos,
               "the Archer-Tardos payment tail is linear-only");
  const std::size_t n = profile_.size();
  LBMV_REQUIRE(n >= 2, "mechanism rounds need at least two agents");
  profile_.validate(n);
  LBMV_REQUIRE(std::isfinite(arrival_rate) && arrival_rate > 0.0,
               "arrival rate must be positive and finite");
  rebuild();
}

void Mm1PrProfileContext::rebuild() {
  const std::size_t n = profile_.size();
  mus_.resize(n);
  a_.resize(n);
  mue_.resize(n);
  inconsistent_.resize(n);
  sum_mu_ = 0.0;
  sum_a_ = 0.0;
  inconsistent_count_ = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double mu = 1.0 / profile_.bids[j];
    const double aj = std::sqrt(mu);
    mus_[j] = mu;
    a_[j] = aj;
    mue_[j] = 1.0 / profile_.executions[j];
    sum_mu_ += mu;
    sum_a_ += aj;
    const bool mismatch = profile_.executions[j] != profile_.bids[j];
    inconsistent_[j] = mismatch ? 1 : 0;
    if (mismatch) ++inconsistent_count_;
  }
  min_a_ = std::numeric_limits<double>::infinity();
  second_a_ = std::numeric_limits<double>::infinity();
  argmin_a_ = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const double aj = a_[j];
    if (aj < min_a_) {
      second_a_ = min_a_;
      min_a_ = aj;
      argmin_a_ = j;
    } else if (aj < second_a_) {
      second_a_ = aj;
    }
  }

  // Committed solve — raises the allocator's typed PreconditionErrors on
  // infeasible / near-saturated profiles, exactly when Mechanism::run would.
  rates_.resize(n);
  const alloc::Mm1Solve solve =
      alloc::mm1_solve_into(mus_, arrival_rate_, rates_);
  reported_ = solve.optimal_latency;
  actual_ = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double xj = rates_[j];
    if (xj == 0.0) continue;
    const double de = mue_[j] - xj;
    LBMV_REQUIRE(de > 0.0, "M/M/1 latency requires 0 <= x < mu");
    actual_ += xj / de;
  }

  // Leave-one-out plane: deviation-independent, so precomputed eagerly —
  // utility() stays mutation-free and safe to call concurrently.
  if (rule_ != LinearPrRule::kNoPayment) {
    const alloc::MM1Allocator allocator;
    const model::MM1Family family;
    allocator.leave_one_out_into(family, profile_.bids, arrival_rate_, loo_);
  }
}

Mm1PrProfileContext::SweepState Mm1PrProfileContext::sweep_state(
    std::size_t agent) const {
  LBMV_ASSERT(agent < profile_.size(), "agent index out of range");
  SweepState st;
  st.rest_mu = sum_mu_ - mus_[agent];
  st.rest_a = sum_a_ - a_[agent];
  st.rest_min_a = agent == argmin_a_ ? second_a_ : min_a_;
  st.loo = rule_ == LinearPrRule::kNoPayment ? 0.0 : loo_[agent];
  st.rest_consistent =
      inconsistent_count_ == 0 ||
      (inconsistent_count_ == 1 && inconsistent_[agent] != 0);
  return st;
}

double Mm1PrProfileContext::utility(std::size_t agent, double bid,
                                    double execution) const {
  LBMV_REQUIRE(bid > 0.0, "bids must be positive");
  LBMV_REQUIRE(execution > 0.0, "execution values must be positive");
  const SweepState st = sweep_state(agent);
  const double mu_dev = 1.0 / bid;
  const double a_dev = std::sqrt(mu_dev);
  const double sum_mu = st.rest_mu + mu_dev;
  const double sum_a = st.rest_a + a_dev;
  const double slack = sum_mu - arrival_rate_;
  // Fast path: every computer active before and after the deviation, away
  // from saturation, rest profile consistent.  The grid kernels
  // (grid_kernels.h) replicate this branch lane-wise in the same operand
  // order; any lane failing its gates defers to this scalar oracle, which
  // re-solves below and raises the canonical diagnostics.
  if (st.rest_consistent && std::isfinite(sum_mu) &&
      slack > alloc::kMm1MinRelativeSlack * sum_mu) {
    const double c = slack / sum_a;
    if (a_dev > c && st.rest_min_a > c) {
      const double x = mu_dev - c * a_dev;
      if (x > 0.0) {
        const double mu_e = 1.0 / execution;
        const double de = mu_e - x;
        LBMV_REQUIRE(de > 0.0, "M/M/1 latency requires 0 <= x < mu");
        const double cost_e = x / de;
        const double nm1 = static_cast<double>(profile_.size() - 1);
        const double actual = (st.rest_a / c - nm1) + cost_e;
        switch (rule_) {
          case LinearPrRule::kCompBonusExecution:
            // C = cost at execution basis cancels the valuation.
            return st.loo - actual;
          case LinearPrRule::kCompBonusBid: {
            const double comp = a_dev / c - 1.0;
            return comp + (st.loo - actual) - cost_e;
          }
          case LinearPrRule::kVcg: {
            const double comp = a_dev / c - 1.0;
            const double reported =
                sum_a / c - static_cast<double>(profile_.size());
            return (st.loo - (reported - comp)) - cost_e;
          }
          case LinearPrRule::kNoPayment:
            return -cost_e;
          case LinearPrRule::kArcherTardos:
            break;  // rejected at construction
        }
      }
    }
  }
  return slow_utility(agent, bid, execution);
}

double Mm1PrProfileContext::slow_utility(std::size_t agent, double bid,
                                         double execution) const {
  const std::size_t n = profile_.size();
  // Local planes: utility() must stay safe under concurrent queries, so the
  // off-fast-path re-solve never touches shared scratch.
  std::vector<double> mus(mus_);
  mus[agent] = 1.0 / bid;
  std::vector<double> rates(n);
  const alloc::Mm1Solve solve = alloc::mm1_solve_into(mus, arrival_rate_, rates);
  double actual = 0.0;
  double cost_e = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double xj = rates[j];
    if (xj == 0.0) continue;
    const double mu_e = j == agent ? 1.0 / execution : mue_[j];
    const double de = mu_e - xj;
    LBMV_REQUIRE(de > 0.0, "M/M/1 latency requires 0 <= x < mu");
    const double cost = xj / de;
    if (j == agent) cost_e = cost;
    actual += cost;
  }
  const double loo = rule_ == LinearPrRule::kNoPayment ? 0.0 : loo_[agent];
  const double x = rates[agent];
  switch (rule_) {
    case LinearPrRule::kCompBonusExecution:
      return loo - actual;
    case LinearPrRule::kCompBonusBid: {
      const double comp = x / (mus[agent] - x);
      return comp + (loo - actual) - cost_e;
    }
    case LinearPrRule::kVcg: {
      const double comp = x / (mus[agent] - x);
      return (loo - (solve.optimal_latency - comp)) - cost_e;
    }
    case LinearPrRule::kNoPayment:
      return -cost_e;
    case LinearPrRule::kArcherTardos:
      break;
  }
  LBMV_ASSERT(false, "unreachable payment rule");
  return 0.0;
}

void Mm1PrProfileContext::commit(std::size_t agent, double bid,
                                 double execution) {
  LBMV_ASSERT(agent < profile_.size(), "agent index out of range");
  LBMV_REQUIRE(bid > 0.0, "bids must be positive");
  LBMV_REQUIRE(execution > 0.0, "execution values must be positive");
  profile_.bids[agent] = bid;
  profile_.executions[agent] = execution;
  // O(n) rebuild: the min/arg-min pair and the leave-one-out plane cannot
  // be delta-updated without a re-scan anyway, and commits are rare next
  // to queries in every strategy loop.
  rebuild();
}

void Mm1PrProfileContext::commit_batch(std::span<const BidDelta> deltas) {
  if (deltas.empty()) return;
  for (const BidDelta& d : deltas) {
    LBMV_ASSERT(d.agent < profile_.size(), "agent index out of range");
    LBMV_REQUIRE(d.bid > 0.0, "bids must be positive");
    LBMV_REQUIRE(d.execution > 0.0, "execution values must be positive");
    profile_.bids[d.agent] = d.bid;
    profile_.executions[d.agent] = d.execution;
  }
  rebuild();
}

void Mm1PrProfileContext::outcome_into(MechanismOutcome& out) const {
  const std::size_t n = profile_.size();
  std::vector<double> rates = std::move(out.allocation).release();
  rates.assign(rates_.begin(), rates_.end());
  out.allocation = model::Allocation::from_validated(std::move(rates));
  out.agents.resize(n);
  out.actual_latency = actual_;
  out.reported_latency = reported_;
  for (std::size_t j = 0; j < n; ++j) {
    AgentOutcome& ag = out.agents[j];
    const double x = rates_[j];
    ag.allocation = x;
    const double cost_e = x / (mue_[j] - x);  // 0 for dropped computers
    ag.valuation = -cost_e;
    switch (rule_) {
      case LinearPrRule::kCompBonusExecution:
        ag.compensation = cost_e;
        ag.bonus = loo_[j] - actual_;
        ag.payment = ag.compensation + ag.bonus;
        break;
      case LinearPrRule::kCompBonusBid:
        ag.compensation = x / (mus_[j] - x);
        ag.bonus = loo_[j] - actual_;
        ag.payment = ag.compensation + ag.bonus;
        break;
      case LinearPrRule::kVcg:
        ag.compensation = x / (mus_[j] - x);
        ag.bonus = loo_[j] - reported_;
        ag.payment = loo_[j] - (reported_ - ag.compensation);
        break;
      case LinearPrRule::kNoPayment:
      case LinearPrRule::kArcherTardos:
        ag.compensation = 0.0;
        ag.bonus = 0.0;
        ag.payment = 0.0;
        break;
    }
    ag.utility = ag.payment + ag.valuation;
  }
}

// ---------------------------------------------------------------------------
// Workload-dependent rates

WorkloadProfileContext::WorkloadProfileContext(LinearPrRule rule, double gamma,
                                               double arrival_rate,
                                               model::BidProfile base)
    : rule_(rule),
      gamma_(gamma),
      arrival_rate_(arrival_rate),
      profile_(std::move(base)) {
  LBMV_REQUIRE(rule != LinearPrRule::kArcherTardos,
               "the Archer-Tardos payment tail is linear-only");
  const std::size_t n = profile_.size();
  LBMV_REQUIRE(n >= 2, "mechanism rounds need at least two agents");
  profile_.validate(n);
  LBMV_REQUIRE(std::isfinite(arrival_rate) && arrival_rate > 0.0,
               "arrival rate must be positive and finite");
  LBMV_REQUIRE(gamma > 0.0,
               "workload family congestion coefficient must be positive");
  rebuild();
}

void WorkloadProfileContext::rebuild() {
  const std::size_t n = profile_.size();
  rates_.resize(n);
  const alloc::WorkloadSolve solve =
      alloc::workload_solve_into(profile_.bids, gamma_, arrival_rate_, rates_);
  lambda_ = solve.lambda;
  reported_ = solve.optimal_latency;
  actual_ = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double x = rates_[j];
    actual_ += x * ((profile_.executions[j] * x) * (1.0 + gamma_ * x));
  }
  if (rule_ != LinearPrRule::kNoPayment) {
    const alloc::WorkloadAllocator allocator;
    const model::WorkloadFamily family(gamma_);
    allocator.leave_one_out_into(family, profile_.bids, arrival_rate_, loo_);
  }
}

double WorkloadProfileContext::utility(std::size_t agent, double bid,
                                       double execution) const {
  LBMV_ASSERT(agent < profile_.size(), "agent index out of range");
  LBMV_REQUIRE(bid > 0.0, "bids must be positive");
  LBMV_REQUIRE(execution > 0.0, "execution values must be positive");
  const std::size_t n = profile_.size();
  // The conservation constraint couples every rate through the multiplier,
  // so a deviation re-runs the Newton solve against local planes (queries
  // may be concurrent).  The cold start is the solver's own 2R/S estimate:
  // a faster deviated bid would invalidate a warm start at the committed
  // multiplier (g(lambda_) > 0 breaks the monotone-from-below contract).
  std::vector<double> thetas(profile_.bids);
  thetas[agent] = bid;
  std::vector<double> x(n);
  const alloc::WorkloadSolve solve =
      alloc::workload_solve_into(thetas, gamma_, arrival_rate_, x);
  double actual = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double e = j == agent ? execution : profile_.executions[j];
    actual += x[j] * ((e * x[j]) * (1.0 + gamma_ * x[j]));
  }
  const double xa = x[agent];
  const double cost_e = xa * ((execution * xa) * (1.0 + gamma_ * xa));
  const double loo = rule_ == LinearPrRule::kNoPayment ? 0.0 : loo_[agent];
  switch (rule_) {
    case LinearPrRule::kCompBonusExecution:
      return loo - actual;
    case LinearPrRule::kCompBonusBid: {
      const double comp = xa * ((bid * xa) * (1.0 + gamma_ * xa));
      return comp + (loo - actual) - cost_e;
    }
    case LinearPrRule::kVcg: {
      const double comp = xa * ((bid * xa) * (1.0 + gamma_ * xa));
      return (loo - (solve.optimal_latency - comp)) - cost_e;
    }
    case LinearPrRule::kNoPayment:
      return -cost_e;
    case LinearPrRule::kArcherTardos:
      break;
  }
  LBMV_ASSERT(false, "unreachable payment rule");
  return 0.0;
}

void WorkloadProfileContext::commit(std::size_t agent, double bid,
                                    double execution) {
  LBMV_ASSERT(agent < profile_.size(), "agent index out of range");
  LBMV_REQUIRE(bid > 0.0, "bids must be positive");
  LBMV_REQUIRE(execution > 0.0, "execution values must be positive");
  profile_.bids[agent] = bid;
  profile_.executions[agent] = execution;
  rebuild();
}

void WorkloadProfileContext::commit_batch(std::span<const BidDelta> deltas) {
  if (deltas.empty()) return;
  for (const BidDelta& d : deltas) {
    LBMV_ASSERT(d.agent < profile_.size(), "agent index out of range");
    LBMV_REQUIRE(d.bid > 0.0, "bids must be positive");
    LBMV_REQUIRE(d.execution > 0.0, "execution values must be positive");
    profile_.bids[d.agent] = d.bid;
    profile_.executions[d.agent] = d.execution;
  }
  rebuild();
}

void WorkloadProfileContext::outcome_into(MechanismOutcome& out) const {
  const std::size_t n = profile_.size();
  std::vector<double> rates = std::move(out.allocation).release();
  rates.assign(rates_.begin(), rates_.end());
  out.allocation = model::Allocation::from_validated(std::move(rates));
  out.agents.resize(n);
  out.actual_latency = actual_;
  out.reported_latency = reported_;
  for (std::size_t j = 0; j < n; ++j) {
    AgentOutcome& ag = out.agents[j];
    const double x = rates_[j];
    ag.allocation = x;
    const double cost_e =
        x * ((profile_.executions[j] * x) * (1.0 + gamma_ * x));
    ag.valuation = -cost_e;
    switch (rule_) {
      case LinearPrRule::kCompBonusExecution:
        ag.compensation = cost_e;
        ag.bonus = loo_[j] - actual_;
        ag.payment = ag.compensation + ag.bonus;
        break;
      case LinearPrRule::kCompBonusBid:
        ag.compensation = x * ((profile_.bids[j] * x) * (1.0 + gamma_ * x));
        ag.bonus = loo_[j] - actual_;
        ag.payment = ag.compensation + ag.bonus;
        break;
      case LinearPrRule::kVcg:
        ag.compensation = x * ((profile_.bids[j] * x) * (1.0 + gamma_ * x));
        ag.bonus = loo_[j] - reported_;
        ag.payment = loo_[j] - (reported_ - ag.compensation);
        break;
      case LinearPrRule::kNoPayment:
      case LinearPrRule::kArcherTardos:
        ag.compensation = 0.0;
        ag.bonus = 0.0;
        ag.payment = 0.0;
        break;
    }
    ag.utility = ag.payment + ag.valuation;
  }
}

// ---------------------------------------------------------------------------

std::unique_ptr<ProfileUtilityContext> make_family_profile_context(
    LinearPrRule rule, const model::LatencyFamily& family,
    const alloc::Allocator& allocator, double arrival_rate,
    const model::BidProfile& base) {
  if (rule == LinearPrRule::kArcherTardos) return nullptr;
  if (dynamic_cast<const model::MM1Family*>(&family) != nullptr &&
      dynamic_cast<const alloc::MM1Allocator*>(&allocator) != nullptr) {
    return std::make_unique<Mm1PrProfileContext>(rule, arrival_rate, base);
  }
  if (const auto* workload = dynamic_cast<const model::WorkloadFamily*>(&family);
      workload != nullptr &&
      dynamic_cast<const alloc::WorkloadAllocator*>(&allocator) != nullptr) {
    return std::make_unique<WorkloadProfileContext>(rule, workload->gamma(),
                                                    arrival_rate, base);
  }
  return nullptr;
}

}  // namespace lbmv::core

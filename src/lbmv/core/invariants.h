#pragma once

/// \file invariants.h
/// Online verification of a completed mechanism round.
///
/// The residual math for the obs invariant monitors (obs/monitor.h): one
/// pass over a `MechanismOutcome` checks the guarantees the paper proves
/// and the closed forms promise —
///
///   * **feasibility** — the allocation ships exactly the arrival rate,
///     |sum_i x_i - R| / R (PR closed form, Thm 2.1's constraint);
///   * **payment decomposition** — P_i = C_i + B_i for every paying rule
///     (Definition 3.2's additive form);
///   * **voluntary participation** — at a *consistent* round (t~ = b,
///     every agent executing exactly as bid) utilities are nonnegative
///     for any mechanism paying leave-one-out bonuses (Thm 3.2 without
///     even assuming truthful bids: U_i collapses to L_{-i} - L >= 0);
///     checked only when the mechanism guarantees it (no-payment opts
///     out) and the round is the PR-on-linear configuration, where the
///     allocation is exactly optimal;
///   * **KKT stationarity** — on linear rounds the optimum equalises the
///     marginals d/dx_j [b_j x_j^2] = 2 b_j x_j, so the relative spread
///     of b_j x_j across agents is the allocator's epsilon-optimality
///     residual (alloc/kkt.h's certificate, reduced to a closed form
///     cheap enough for every round).
///
/// Callers gate on `obs::enabled()`; the checks are a relaxed-load no-op
/// when obs is off and cost four O(n) passes when on.  Violations land in
/// the monitor counters/histograms plus the flight recorder, so a wrong
/// round is attributable after the fact (see obs/flight_recorder.h).

#include <cstddef>
#include <span>

#include "lbmv/core/mechanism.h"

namespace lbmv::core {

struct RoundInvariantOptions {
  /// The round ran the PR closed form on the linear family (arms the KKT
  /// and participation monitors; the other checks are family-agnostic).
  bool linear_pr = false;
  /// Whether the mechanism guarantees nonnegative utility at consistent
  /// rounds (Mechanism::guarantees_voluntary_participation()).
  bool participation_guaranteed = true;
  /// The round is an M/M/1 round under the exact MM1Allocator: arms the
  /// participation monitor (exact optimum) and the M/M/1 KKT residual —
  /// at the optimum the active marginals mu_j / (mu_j - x_j)^2 with
  /// mu_j = 1/b_j are equalised; dropped computers (x_j = 0) are skipped.
  bool mm1_exact = false;
  /// The round is a workload-family round under the exact
  /// WorkloadAllocator: arms participation and the workload KKT residual —
  /// the marginals 2 b_j x_j + 3 b_j gamma x_j^2 are equalised at the
  /// (always interior) optimum.
  bool workload_exact = false;
  /// Family-level congestion coefficient when workload_exact.
  double workload_gamma = 0.0;
};

/// Feed one completed round through the invariant monitors.  Returns the
/// number of violations recorded (0 on a healthy round).
std::size_t check_round_invariants(std::span<const double> bids,
                                   std::span<const double> executions,
                                   double arrival_rate,
                                   const MechanismOutcome& outcome,
                                   const RoundInvariantOptions& options);

}  // namespace lbmv::core

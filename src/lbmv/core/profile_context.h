#pragma once

/// \file profile_context.h
/// Closed-form ProfileUtilityContext for the paper's setting: linear
/// latencies allocated by the PR algorithm.
///
/// With l_j(x) = b_j * x the PR allocation and the total latency depend on
/// the profile only through two running sums,
///
///   S = sum_j 1/b_j,            W = sum_j t~_j / b_j^2,
///
/// giving x_j = R/(b_j S), reported latency L(x, b) = R^2/S and verified
/// latency L(x, t~) = (R/S)^2 W.  A unilateral deviation of agent i to
/// (b, e) is the O(1) update
///
///   S' = S - 1/b_i + 1/b,       W' = W - t~_i/b_i^2 + e/b^2,
///
/// from which every payment rule built on leave-one-out optima follows in
/// O(1) as well, because L_{-i} = R^2/(S - 1/b_i) (DESIGN.md §10).
///
/// The factory below serves the four mechanisms shipped with the repo
/// (comp-bonus at either compensation basis, VCG, no-payment).  Anything
/// else — non-linear families, non-PR allocators — returns nullptr and the
/// caller falls back to Mechanism::run per deviation.

#include <memory>

#include "lbmv/alloc/allocator.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"

namespace lbmv::core {

/// Payment rule evaluated by the closed-form context.
enum class LinearPrRule {
  kCompBonusExecution,  ///< C_i = t~_i x_i^2, B_i = L_{-i} - L(x, t~)
  kCompBonusBid,        ///< C_i = b_i  x_i^2, B_i = L_{-i} - L(x, t~)
  kVcg,                 ///< Clarke pivot on the *reported* types
  kNoPayment,           ///< P_i = 0
};

/// Build the closed-form context, or nullptr unless \p family is a
/// LinearFamily and \p allocator is a PRAllocator (checked dynamically,
/// mirroring the audit fast-path gate).  \p base is copied.
[[nodiscard]] std::unique_ptr<ProfileUtilityContext>
make_linear_pr_profile_context(LinearPrRule rule,
                               const model::LatencyFamily& family,
                               const alloc::Allocator& allocator,
                               double arrival_rate,
                               const model::BidProfile& base);

}  // namespace lbmv::core

#pragma once

/// \file profile_context.h
/// Closed-form ProfileUtilityContext for the paper's setting: linear
/// latencies allocated by the PR algorithm.
///
/// With l_j(x) = b_j * x the PR allocation and the total latency depend on
/// the profile only through two running sums,
///
///   S = sum_j 1/b_j,            W = sum_j t~_j / b_j^2,
///
/// giving x_j = R/(b_j S), reported latency L(x, b) = R^2/S and verified
/// latency L(x, t~) = (R/S)^2 W.  A unilateral deviation of agent i to
/// (b, e) is the O(1) update
///
///   S' = S - 1/b_i + 1/b,       W' = W - t~_i/b_i^2 + e/b^2,
///
/// from which every payment rule built on leave-one-out optima follows in
/// O(1) as well, because L_{-i} = R^2/(S - 1/b_i) (DESIGN.md §10).
///
/// The factory below serves the five mechanisms shipped with the repo
/// (comp-bonus at either compensation basis, VCG, no-payment, and the
/// Archer–Tardos baseline via its closed-form payment tail).  Anything
/// else — non-linear families, non-PR allocators — returns nullptr and the
/// caller falls back to Mechanism::run per deviation.
///
/// The concrete LinearPrProfileContext is exported (not hidden behind the
/// factory) so the lane-parallel deviation-grid kernels (grid_kernels.h,
/// DESIGN.md §13) can read the cached sums and evaluate four candidate bids
/// per instruction against the same frozen profile.

#include <memory>
#include <vector>

#include "lbmv/alloc/allocator.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"

namespace lbmv::core {

/// Payment rule evaluated by the closed-form context.
enum class LinearPrRule {
  kCompBonusExecution,  ///< C_i = t~_i x_i^2, B_i = L_{-i} - L(x, t~)
  kCompBonusBid,        ///< C_i = b_i  x_i^2, B_i = L_{-i} - L(x, t~)
  kVcg,                 ///< Clarke pivot on the *reported* types
  kNoPayment,           ///< P_i = 0
  kArcherTardos,        ///< b_i x_i^2 + closed-form payment tail integral
};

/// The closed-form context (file comment above).  Maintains the committed
/// profile plus the two running sums S and W; every query is a constant
/// number of flops and every commit is an O(1) delta.  Committed deltas are
/// re-summed from scratch every max(64, n) commits so floating point drift
/// stays far below the 1e-9 differential-test tolerance while the amortised
/// commit cost stays O(1).
///
/// The accessors (rule/arrival_rate/s/w) exist for the grid kernels, which
/// replicate utility()'s exact IEEE operand order lane-wise; utility()
/// itself stays the scalar oracle the differential suite holds them to.
class LinearPrProfileContext final : public ProfileUtilityContext {
 public:
  LinearPrProfileContext(LinearPrRule rule, double arrival_rate,
                         model::BidProfile base);

  [[nodiscard]] double utility(std::size_t agent, double bid,
                               double execution) const override;
  void commit(std::size_t agent, double bid, double execution) override;
  void outcome_into(MechanismOutcome& out) const override;
  [[nodiscard]] double actual_latency() const override;
  [[nodiscard]] const model::BidProfile& profile() const override {
    return profile_;
  }

  [[nodiscard]] LinearPrRule rule() const { return rule_; }
  [[nodiscard]] double arrival_rate() const { return arrival_rate_; }
  /// Cached S = sum_j 1/b_j at the committed profile.
  [[nodiscard]] double s() const { return s_; }
  /// Cached W = sum_j t~_j / b_j^2 at the committed profile.
  [[nodiscard]] double w() const { return w_; }

 private:
  /// Verified total latency after agent i deviates: (R/S')^2 W' with
  /// W' = W - t~_i/b_i^2 + e/b^2.
  [[nodiscard]] double actual_after(std::size_t agent, double s,
                                    double inv_bid, double execution) const;
  void rebuild();

  LinearPrRule rule_;
  double arrival_rate_;
  model::BidProfile profile_;
  double s_ = 0.0;
  double w_ = 0.0;
  std::size_t rebuild_period_ = 64;
  std::size_t commits_since_rebuild_ = 0;
};

/// Build the closed-form context, or nullptr unless \p family is a
/// LinearFamily and \p allocator is a PRAllocator (checked dynamically,
/// mirroring the audit fast-path gate).  \p base is copied.
[[nodiscard]] std::unique_ptr<ProfileUtilityContext>
make_linear_pr_profile_context(LinearPrRule rule,
                               const model::LatencyFamily& family,
                               const alloc::Allocator& allocator,
                               double arrival_rate,
                               const model::BidProfile& base);

}  // namespace lbmv::core

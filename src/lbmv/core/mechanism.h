#pragma once

/// \file mechanism.h
/// Mechanism-design framework for the load balancing problem.
///
/// Formalises the paper's Definition 3.1/3.2.  A mechanism is a pair of
/// functions: an allocation rule x(b) computed from the agents' bids, and a
/// payment rule P(b, t~) handed to the agents — *after* job execution for
/// mechanisms with verification, so the payment may depend on the observed
/// execution values t~.
///
/// Agent i's valuation is the negation of its latency at the rate it was
/// assigned, V_i = -t~_i * x_i^2 in the linear model (generally
/// -x_i * l_i^{t~}(x_i)), and its utility is U_i = P_i + V_i.  Mechanisms
/// never read the agents' true types; everything they see is the bid profile
/// and the verified execution values.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lbmv/alloc/allocator.h"
#include "lbmv/model/allocation.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"
#include "lbmv/model/system_config.h"

namespace lbmv::core {

class RoundWorkspace;    // batch.h
class ProfileBatch;      // batch.h
struct BatchOutcomes;    // batch.h
struct BatchRunOptions;  // batch.h
struct RoundOptions;     // batch.h

/// Payment rules the vectorized round engine (simd_round.h) implements.
/// A mechanism advertises its rule via Mechanism::vector_rule(); kNone means
/// "no vectorized form — always run the scalar kernels".  The engine only
/// engages on rounds it can fuse end to end: linear family, PR allocator,
/// and a rule from this list.
enum class VectorRule {
  kNone,
  kCompBonusExecution,  ///< C_i = t~_i x_i^2, B_i = L_{-i} - L(x, t~)
  kCompBonusBid,        ///< C_i = b_i  x_i^2, B_i = L_{-i} - L(x, t~)
  kVcg,                 ///< Clarke pivot on the reported types
  kArcherTardos,        ///< b_i x_i^2 + closed-form payment tail
  kNoPayment,           ///< P_i = 0
};

/// Economic outcome for a single agent in one mechanism round.
struct AgentOutcome {
  double allocation = 0.0;    ///< x_i, the job rate assigned to the agent
  double compensation = 0.0;  ///< C_i (0 for mechanisms without the term)
  double bonus = 0.0;         ///< B_i (0 for mechanisms without the term)
  double payment = 0.0;       ///< P_i handed to the agent
  double valuation = 0.0;     ///< V_i = -(agent's verified latency cost)
  double utility = 0.0;       ///< U_i = P_i + V_i
};

/// Full outcome of one mechanism round.
struct MechanismOutcome {
  model::Allocation allocation;
  std::vector<AgentOutcome> agents;
  /// L(x(b), t~): total latency actually incurred, at the execution values.
  double actual_latency = 0.0;
  /// L(x(b), b): total latency the bids predict (what an obedient system
  /// would believe).
  double reported_latency = 0.0;

  [[nodiscard]] double total_payment() const;
  /// Sum of |V_i| — the denominator of the paper's frugality measure.
  [[nodiscard]] double total_valuation_magnitude() const;
};

/// Audit fast path: one agent's utility as a function of its own deviation,
/// with everything that does not depend on that agent's bid or execution
/// value precomputed at construction.  Built by
/// Mechanism::make_utility_context for one (base profile, agent) pair; the
/// truthfulness auditor then queries O(grid) points against the same frozen
/// opponents at O(1) each instead of re-running the full mechanism.
/// Implementations must be safe to query concurrently.
class AgentUtilityContext {
 public:
  virtual ~AgentUtilityContext() = default;

  /// Utility of the audited agent when it bids \p bid and executes at
  /// \p execution (both positive), everything else as in the base profile.
  [[nodiscard]] virtual double utility(double bid, double execution) const = 0;
};

/// One agent's pending (bid, execution) change, addressed by index.  The
/// unit of work for batched commits (ProfileUtilityContext::commit_batch)
/// and for the cross-round delta engine (delta_engine.h).
struct BidDelta {
  std::size_t agent = 0;
  double bid = 0.0;
  double execution = 0.0;
};

/// Strategy fast path: the utility of *any* agent under a unilateral
/// deviation from a committed base profile, plus an O(1) way to make a
/// deviation permanent.  Built by Mechanism::make_profile_context once per
/// profile; the strategy layers (best response, learning, tournaments,
/// leader-commitment games) then evaluate O(n * grid) deviations at O(1)
/// each instead of re-running the full mechanism per grid point.
///
/// Contract:
///   * utility() must be safe to call concurrently (pure reads);
///   * commit() permanently moves one agent to (bid, execution) — O(1)
///     amortised for closed-form implementations — and is NOT safe to call
///     concurrently with utility();
///   * outcome_into() reconstructs the full MechanismOutcome at the
///     committed profile, agreeing with Mechanism::run to roundoff.
class ProfileUtilityContext {
 public:
  virtual ~ProfileUtilityContext() = default;

  /// Utility of \p agent when it deviates to (\p bid, \p execution), with
  /// every other agent as committed.  Both values must be positive.
  [[nodiscard]] virtual double utility(std::size_t agent, double bid,
                                       double execution) const = 0;

  /// Make a deviation permanent: agent now bids \p bid and executes at
  /// \p execution for all subsequent queries.
  virtual void commit(std::size_t agent, double bid, double execution) = 0;

  /// Make k deviations permanent in one call.  The default loops commit()
  /// in order, so the final state is exactly the sequential one; contexts
  /// whose per-commit cost is a full O(n) re-derivation override this to
  /// write all k entries first and re-derive once — the re-derivation is
  /// from scratch at the final profile, so the override is state-identical
  /// to the sequential loop with k times less work.  Later entries for the
  /// same agent win (sequential semantics).
  virtual void commit_batch(std::span<const BidDelta> deltas) {
    for (const BidDelta& d : deltas) commit(d.agent, d.bid, d.execution);
  }

  /// Full mechanism outcome at the committed profile, filled into \p out
  /// (reusing its capacity where possible).
  virtual void outcome_into(MechanismOutcome& out) const = 0;

  /// L(x(b), t~) at the committed profile.
  [[nodiscard]] virtual double actual_latency() const = 0;

  /// The committed profile.
  [[nodiscard]] virtual const model::BidProfile& profile() const = 0;
};

/// Base class for load balancing mechanisms (Definition 3.2).
class Mechanism {
 public:
  explicit Mechanism(std::shared_ptr<const alloc::Allocator> allocator);
  virtual ~Mechanism() = default;

  /// Run one round: allocate from the bids, evaluate the verified execution,
  /// compute payments and per-agent utilities.
  ///
  /// Requires at least two agents (marginal-contribution payments remove one
  /// agent at a time) and a validated profile.
  [[nodiscard]] MechanismOutcome run(const model::LatencyFamily& family,
                                     double arrival_rate,
                                     const model::BidProfile& profile) const;

  /// Convenience overload reading family and arrival rate from a config.
  /// The config's true values are *not* consulted.
  [[nodiscard]] MechanismOutcome run(const model::SystemConfig& config,
                                     const model::BidProfile& profile) const;

  /// Allocation-free round kernel: identical results to run() (bit-exact on
  /// the linear family), writing into \p out and drawing every scratch plane
  /// from \p ws.  A warm (out, ws) pair — one that has already seen this
  /// agent count — performs zero heap allocations on the fused
  /// linear-family fast path, and only the unavoidable LatencyFamily::make
  /// calls elsewhere.  \p ws may be RoundWorkspace::thread_local_instance();
  /// ws.scratch_profile / ws.scratch_outcome are never touched, so callers
  /// may pass ws.scratch_outcome as \p out.
  void run_into(const model::LatencyFamily& family, double arrival_rate,
                std::span<const double> bids,
                std::span<const double> executions, MechanismOutcome& out,
                RoundWorkspace& ws) const;

  /// run_into with explicit fan-out control for the vectorized engine (see
  /// RoundOptions in batch.h).  Results are bit-identical for every shard
  /// and thread count; only wall-clock changes.  The overload above uses
  /// RoundOptions{} (auto sharding for large n).
  void run_into(const model::LatencyFamily& family, double arrival_rate,
                std::span<const double> bids,
                std::span<const double> executions, MechanismOutcome& out,
                RoundWorkspace& ws, const RoundOptions& options) const;

  /// run_into over a BidProfile (validates it like run()).
  void run_into(const model::LatencyFamily& family, double arrival_rate,
                const model::BidProfile& profile, MechanismOutcome& out,
                RoundWorkspace& ws) const;

  /// run_into reading family and arrival rate from a config.
  void run_into(const model::SystemConfig& config,
                const model::BidProfile& profile, MechanismOutcome& out,
                RoundWorkspace& ws) const;

  /// Run every profile of \p batch, writing outcome b into out[b].  Profiles
  /// are fanned over a thread pool (per BatchRunOptions) with one reusable
  /// workspace per worker thread; each worker writes only its own outcome
  /// slots, so results are identical for any thread count and bit-exact
  /// against a scalar loop of run() calls.
  void run_batch(const model::LatencyFamily& family, double arrival_rate,
                 const ProfileBatch& batch, BatchOutcomes& out,
                 const BatchRunOptions& options) const;

  /// run_batch with default options (parallel on the global pool).
  void run_batch(const model::LatencyFamily& family, double arrival_rate,
                 const ProfileBatch& batch, BatchOutcomes& out) const;

  /// run_batch reading family and arrival rate from a config.
  void run_batch(const model::SystemConfig& config, const ProfileBatch& batch,
                 BatchOutcomes& out, const BatchRunOptions& options) const;
  void run_batch(const model::SystemConfig& config, const ProfileBatch& batch,
                 BatchOutcomes& out) const;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether the payment rule observes execution values (a "mechanism with
  /// verification", paper Definition 3.2) — if false, payments depend on the
  /// bids alone and slow execution goes unpunished.
  [[nodiscard]] virtual bool uses_verification() const = 0;

  /// Whether the mechanism guarantees nonnegative utility to agents that
  /// execute exactly as bid (voluntary participation, paper Thm 3.2 —
  /// which every leave-one-out bonus rule satisfies at *any* consistent
  /// profile, not just the truthful one).  The online invariant monitors
  /// (core/invariants.h) arm the participation check only when this holds;
  /// the no-payment baseline opts out (agents eat their cost unpaid by
  /// design).
  [[nodiscard]] virtual bool guarantees_voluntary_participation() const {
    return true;
  }

  /// The payment rule the vectorized round engine should apply on eligible
  /// rounds, or kNone (the default) to always run the scalar kernels.  A
  /// mechanism that overrides this promises its fill_payments is exactly the
  /// advertised closed form on linear-family/PR-allocator rounds; the
  /// differential suite (tests/test_simd_kernels.cpp) holds it to that.
  [[nodiscard]] virtual VectorRule vector_rule() const {
    return VectorRule::kNone;
  }

  /// Build an O(1)-per-deviation utility evaluator for audits of \p agent
  /// against \p base, or nullptr when no closed form applies (callers then
  /// fall back to run() per deviation).  The base profile's own entries for
  /// \p agent are irrelevant: every query overrides them.
  [[nodiscard]] virtual std::unique_ptr<AgentUtilityContext>
  make_utility_context(const model::LatencyFamily& family, double arrival_rate,
                       const model::BidProfile& base, std::size_t agent) const;

  /// Build an O(1)-per-deviation evaluator over the whole profile (any agent,
  /// with commit support), or nullptr when no closed form applies — callers
  /// then fall back to run() per deviation.  \p base is copied; the context
  /// does not alias it afterwards.  The default make_utility_context wraps
  /// this, so a mechanism that implements make_profile_context gets the audit
  /// fast path for free.
  [[nodiscard]] virtual std::unique_ptr<ProfileUtilityContext>
  make_profile_context(const model::LatencyFamily& family, double arrival_rate,
                       const model::BidProfile& base) const;

  [[nodiscard]] const alloc::Allocator& allocator() const {
    return *allocator_;
  }

 protected:
  /// Fill compensation / bonus / payment for every agent.  \p outcomes
  /// arrives with allocation and valuation already set, and the round's
  /// latencies are precomputed: \p actual_latency is L(x, t~) and
  /// \p reported_latency is L(x, b), so payment rules never re-derive them.
  /// \p ws carries the round classification (ws.linear_fast,
  /// ws.pr_closed_form + ws.inverse_sum) and, on the generic path, the
  /// latency-function arenas ws.exec_fns / ws.bid_fns already built for this
  /// round; rules may use ws.leave_one_out / ws.own_cost as scratch.
  virtual void fill_payments(const model::LatencyFamily& family,
                             double arrival_rate,
                             std::span<const double> bids,
                             std::span<const double> executions,
                             const model::Allocation& x,
                             double actual_latency, double reported_latency,
                             std::vector<AgentOutcome>& outcomes,
                             RoundWorkspace& ws) const = 0;

  /// Resolve all n leave-one-out optima into ws.leave_one_out.  Uses the
  /// single-pass PR inverse sum published by run_into when valid (satellite
  /// fix: S is accumulated once per round, not once per consumer), else the
  /// allocator's batched solver.
  void leave_one_out_into_ws(const model::LatencyFamily& family,
                             double arrival_rate,
                             std::span<const double> bids,
                             RoundWorkspace& ws) const;

 private:
  std::shared_ptr<const alloc::Allocator> allocator_;
};

/// The default allocation rule used throughout the paper: the PR algorithm.
[[nodiscard]] std::shared_ptr<const alloc::Allocator> default_allocator();

}  // namespace lbmv::core

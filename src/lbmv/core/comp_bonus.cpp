#include "lbmv/core/comp_bonus.h"

#include "lbmv/util/error.h"

namespace lbmv::core {

CompBonusMechanism::CompBonusMechanism()
    : CompBonusMechanism(default_allocator()) {}

CompBonusMechanism::CompBonusMechanism(
    std::shared_ptr<const alloc::Allocator> allocator,
    CompensationBasis basis)
    : Mechanism(std::move(allocator)), basis_(basis) {}

std::string CompBonusMechanism::name() const {
  return basis_ == CompensationBasis::kExecution
             ? "comp-bonus"
             : "comp-bonus(bid-compensation)";
}

void CompBonusMechanism::fill_payments(const model::LatencyFamily& family,
                                       double arrival_rate,
                                       const model::BidProfile& profile,
                                       const model::Allocation& x,
                                       std::vector<AgentOutcome>& outcomes)
    const {
  // Total latency actually measured, at the verified execution values.
  const auto exec_latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(profile.size());
    for (double e : profile.executions) fns.push_back(family.make(e));
    return fns;
  }();
  const double actual_latency = model::total_latency(x, exec_latencies);

  for (std::size_t i = 0; i < profile.size(); ++i) {
    auto& agent = outcomes[i];
    // Compensation: the agent's own cost term, at the chosen basis value.
    const double basis_value = basis_ == CompensationBasis::kExecution
                                   ? profile.executions[i]
                                   : profile.bids[i];
    agent.compensation =
        (x[i] == 0.0) ? 0.0 : family.make(basis_value)->cost(x[i]);

    // Bonus: optimal latency without agent i minus the verified latency.
    const model::BidProfile rest = profile.without(i);
    const double latency_without_i =
        allocator().optimal_latency(family, rest.bids, arrival_rate);
    agent.bonus = latency_without_i - actual_latency;

    agent.payment = agent.compensation + agent.bonus;
  }
}

}  // namespace lbmv::core

#include "lbmv/core/comp_bonus.h"

#include "lbmv/core/batch.h"
#include "lbmv/core/family_context.h"
#include "lbmv/core/profile_context.h"
#include "lbmv/util/error.h"

namespace lbmv::core {

CompBonusMechanism::CompBonusMechanism()
    : CompBonusMechanism(default_allocator()) {}

CompBonusMechanism::CompBonusMechanism(
    std::shared_ptr<const alloc::Allocator> allocator,
    CompensationBasis basis)
    : Mechanism(std::move(allocator)), basis_(basis) {}

std::string CompBonusMechanism::name() const {
  return basis_ == CompensationBasis::kExecution
             ? "comp-bonus"
             : "comp-bonus(bid-compensation)";
}

void CompBonusMechanism::fill_payments(
    const model::LatencyFamily& family, double arrival_rate,
    std::span<const double> bids, std::span<const double> executions,
    const model::Allocation& x, double actual_latency,
    double /*reported_latency*/, std::vector<AgentOutcome>& outcomes,
    RoundWorkspace& ws) const {
  // All n leave-one-out optima in one batch call; on the paper's
  // linear-family / PR-allocator configuration this reuses the inverse sum
  // the allocation pass already accumulated.
  leave_one_out_into_ws(family, arrival_rate, bids, ws);

  const std::span<const double> rates = x.rates();
  for (std::size_t i = 0; i < bids.size(); ++i) {
    auto& agent = outcomes[i];
    const double xi = rates[i];
    // Compensation: the agent's own cost term, at the chosen basis value.
    const double basis_value = basis_ == CompensationBasis::kExecution
                                   ? executions[i]
                                   : bids[i];
    if (xi == 0.0) {
      agent.compensation = 0.0;
    } else if (ws.linear_fast) {
      agent.compensation = basis_value * xi * xi;
    } else {
      agent.compensation = family.make(basis_value)->cost(xi);
    }

    // Bonus: optimal latency without agent i minus the verified latency.
    agent.bonus = ws.leave_one_out[i] - actual_latency;

    agent.payment = agent.compensation + agent.bonus;
  }
}

std::unique_ptr<ProfileUtilityContext> CompBonusMechanism::make_profile_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base) const {
  const LinearPrRule rule = basis_ == CompensationBasis::kExecution
                                ? LinearPrRule::kCompBonusExecution
                                : LinearPrRule::kCompBonusBid;
  if (auto ctx = make_linear_pr_profile_context(rule, family, allocator(),
                                                arrival_rate, base)) {
    return ctx;
  }
  return make_family_profile_context(rule, family, allocator(), arrival_rate,
                                     base);
}

}  // namespace lbmv::core

#include "lbmv/core/comp_bonus.h"

#include "lbmv/core/profile_context.h"
#include "lbmv/util/error.h"

namespace lbmv::core {

CompBonusMechanism::CompBonusMechanism()
    : CompBonusMechanism(default_allocator()) {}

CompBonusMechanism::CompBonusMechanism(
    std::shared_ptr<const alloc::Allocator> allocator,
    CompensationBasis basis)
    : Mechanism(std::move(allocator)), basis_(basis) {}

std::string CompBonusMechanism::name() const {
  return basis_ == CompensationBasis::kExecution
             ? "comp-bonus"
             : "comp-bonus(bid-compensation)";
}

void CompBonusMechanism::fill_payments(const model::LatencyFamily& family,
                                       double arrival_rate,
                                       const model::BidProfile& profile,
                                       const model::Allocation& x,
                                       std::vector<AgentOutcome>& outcomes)
    const {
  // Total latency actually measured, at the verified execution values.
  const auto exec_latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(profile.size());
    for (double e : profile.executions) fns.push_back(family.make(e));
    return fns;
  }();
  const double actual_latency = model::total_latency(x, exec_latencies);

  // All n leave-one-out optima in one batch call: O(n) total for the PR
  // closed form, and one reused scratch buffer (no per-agent profile
  // copies) for generic allocators.
  const std::vector<double> latency_without =
      allocator().leave_one_out_latencies(family, profile.bids, arrival_rate);

  for (std::size_t i = 0; i < profile.size(); ++i) {
    auto& agent = outcomes[i];
    // Compensation: the agent's own cost term, at the chosen basis value.
    const double basis_value = basis_ == CompensationBasis::kExecution
                                   ? profile.executions[i]
                                   : profile.bids[i];
    agent.compensation =
        (x[i] == 0.0) ? 0.0 : family.make(basis_value)->cost(x[i]);

    // Bonus: optimal latency without agent i minus the verified latency.
    agent.bonus = latency_without[i] - actual_latency;

    agent.payment = agent.compensation + agent.bonus;
  }
}

std::unique_ptr<ProfileUtilityContext> CompBonusMechanism::make_profile_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base) const {
  return make_linear_pr_profile_context(
      basis_ == CompensationBasis::kExecution
          ? LinearPrRule::kCompBonusExecution
          : LinearPrRule::kCompBonusBid,
      family, allocator(), arrival_rate, base);
}

}  // namespace lbmv::core

#include "lbmv/core/comp_bonus.h"

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/util/error.h"

namespace lbmv::core {
namespace {

/// O(1)-per-deviation utility for the linear-family / PR-allocator fast
/// path (derivation in DESIGN.md, "Payment complexity").  With the other
/// agents' bids b_j and executions t~_j frozen, precompute
///
///   S_rest = sum_{j != i} 1/b_j,          W_rest = sum_{j != i} t~_j/b_j^2,
///   L_{-i} = R^2 / S_rest,
///
/// and each deviation (b, e) of the audited agent costs only
///
///   S = S_rest + 1/b,   x_i = R/(bS),   L = (R/S)^2 (W_rest + e/b^2),
///   U = C + (L_{-i} - L) - e x_i^2,     C = basis * x_i^2.
class LinearPrUtilityContext final : public AgentUtilityContext {
 public:
  LinearPrUtilityContext(double arrival_rate, const model::BidProfile& base,
                         std::size_t agent, CompensationBasis basis)
      : arrival_rate_(arrival_rate), basis_(basis) {
    for (std::size_t j = 0; j < base.size(); ++j) {
      if (j == agent) continue;
      const double b = base.bids[j];
      LBMV_REQUIRE(b > 0.0, "bids must be positive");
      s_rest_ += 1.0 / b;
      w_rest_ += base.executions[j] / (b * b);
    }
    l_minus_ = arrival_rate * arrival_rate / s_rest_;
  }

  [[nodiscard]] double utility(double bid, double execution) const override {
    const double s = s_rest_ + 1.0 / bid;
    const double xi = arrival_rate_ / (bid * s);
    const double rs = arrival_rate_ / s;
    const double actual = rs * rs * (w_rest_ + execution / (bid * bid));
    const double basis_value =
        basis_ == CompensationBasis::kExecution ? execution : bid;
    const double xi2 = xi * xi;
    return basis_value * xi2 + (l_minus_ - actual) - execution * xi2;
  }

 private:
  double arrival_rate_;
  CompensationBasis basis_;
  double s_rest_ = 0.0;
  double w_rest_ = 0.0;
  double l_minus_ = 0.0;
};

}  // namespace

CompBonusMechanism::CompBonusMechanism()
    : CompBonusMechanism(default_allocator()) {}

CompBonusMechanism::CompBonusMechanism(
    std::shared_ptr<const alloc::Allocator> allocator,
    CompensationBasis basis)
    : Mechanism(std::move(allocator)), basis_(basis) {}

std::string CompBonusMechanism::name() const {
  return basis_ == CompensationBasis::kExecution
             ? "comp-bonus"
             : "comp-bonus(bid-compensation)";
}

void CompBonusMechanism::fill_payments(const model::LatencyFamily& family,
                                       double arrival_rate,
                                       const model::BidProfile& profile,
                                       const model::Allocation& x,
                                       std::vector<AgentOutcome>& outcomes)
    const {
  // Total latency actually measured, at the verified execution values.
  const auto exec_latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(profile.size());
    for (double e : profile.executions) fns.push_back(family.make(e));
    return fns;
  }();
  const double actual_latency = model::total_latency(x, exec_latencies);

  // All n leave-one-out optima in one batch call: O(n) total for the PR
  // closed form, and one reused scratch buffer (no per-agent profile
  // copies) for generic allocators.
  const std::vector<double> latency_without =
      allocator().leave_one_out_latencies(family, profile.bids, arrival_rate);

  for (std::size_t i = 0; i < profile.size(); ++i) {
    auto& agent = outcomes[i];
    // Compensation: the agent's own cost term, at the chosen basis value.
    const double basis_value = basis_ == CompensationBasis::kExecution
                                   ? profile.executions[i]
                                   : profile.bids[i];
    agent.compensation =
        (x[i] == 0.0) ? 0.0 : family.make(basis_value)->cost(x[i]);

    // Bonus: optimal latency without agent i minus the verified latency.
    agent.bonus = latency_without[i] - actual_latency;

    agent.payment = agent.compensation + agent.bonus;
  }
}

std::unique_ptr<AgentUtilityContext> CompBonusMechanism::make_utility_context(
    const model::LatencyFamily& family, double arrival_rate,
    const model::BidProfile& base, std::size_t agent) const {
  // The closed forms below are exactly the PR allocation on linear
  // latencies; any other allocator/family pairing must take the slow path.
  if (dynamic_cast<const model::LinearFamily*>(&family) == nullptr ||
      dynamic_cast<const alloc::PRAllocator*>(&allocator()) == nullptr) {
    return nullptr;
  }
  LBMV_REQUIRE(agent < base.size(), "agent index out of range");
  LBMV_REQUIRE(base.size() >= 2, "mechanisms require at least two agents");
  return std::make_unique<LinearPrUtilityContext>(arrival_rate, base, agent,
                                                  basis_);
}

}  // namespace lbmv::core

#include "lbmv/core/simd_round.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/alloc/pr_simd.h"
#include "lbmv/core/archer_tardos.h"
#include "lbmv/core/batch.h"
#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"
#include "lbmv/util/simd.h"
#include "lbmv/util/thread_pool.h"

namespace lbmv::core {
namespace {

namespace v = lbmv::util::simd;
using v::DVec;

// The fused publish below writes four AgentOutcome rows per transposed
// vector store, so the struct must be exactly its six doubles in field
// order (store_records6's record layout).
static_assert(sizeof(AgentOutcome) == 6 * sizeof(double),
              "AgentOutcome must stay six packed doubles");
static_assert(std::is_standard_layout_v<AgentOutcome>,
              "AgentOutcome must stay standard-layout");
static_assert(offsetof(AgentOutcome, allocation) == 0 &&
                  offsetof(AgentOutcome, compensation) == 8 &&
                  offsetof(AgentOutcome, bonus) == 16 &&
                  offsetof(AgentOutcome, payment) == 24 &&
                  offsetof(AgentOutcome, valuation) == 32 &&
                  offsetof(AgentOutcome, utility) == 40,
              "AgentOutcome field order is part of the publish contract");

std::atomic<KernelBackend>& backend_state() {
  static std::atomic<KernelBackend> state{util::simd::kAvx2
                                              ? KernelBackend::kVectorized
                                              : KernelBackend::kScalar};
  return state;
}

/// Tasks to fan the block grid into.  Never affects results (fixed grid,
/// block-order reduction) — only wall-clock.
std::size_t resolve_shards(std::size_t n, std::size_t nblocks,
                           const RoundOptions& options,
                           const util::ThreadPool& pool) {
  if (nblocks <= 1 || options.shards == 1) return 1;
  if (options.shards > 1) return std::min(options.shards, nblocks);
  if (n < kAutoShardMinAgents || pool.thread_count() <= 1) return 1;
  // One task per pool thread-quantum (4 chunks/thread, matching the pool's
  // own auto grain) keeps stragglers short without drowning in task churn.
  return std::min(nblocks, pool.thread_count() * 4);
}

/// Slack appended to the reciprocal plane so its start can slide by up to
/// one 4 KiB page (see dodge_4k_offset).
constexpr std::size_t kPlanePadDoubles = 512;

/// Start offset (in doubles, 64-byte steps) for the reciprocal plane inside
/// its padded buffer, chosen so no streaming load the kernels issue sits in
/// the 4K-alias shadow of a plane they are simultaneously storing to.
///
/// Both passes pair a load stream with a store stream at the same index:
/// P1 loads bids/executions while storing inv, P2 loads inv while storing
/// the rate plane x.  Out-of-order execution runs the loads a few hundred
/// bytes ahead of the stores, and the core flags a false dependence whenever
/// a younger load matches an in-flight older store in address bits [11:0] —
/// so if two planes' bases coincide modulo 4 KiB (common: same-sized heap
/// blocks land at the same page offset), EVERY iteration stalls.  The load
/// at q[j] conflicts with the store at p[i<=j] when (q - p) mod 4096 falls
/// in [0, window); sliding inv — the one plane the engine owns on both
/// sides — clears all three pairs at once.  Pure memory placement: the
/// kernels compute identical values at any offset.
std::size_t dodge_4k_offset(const double* plane, const double* x_hint,
                            const double* bids, const double* execs) {
  const auto page = [](const double* p) {
    return static_cast<std::uintptr_t>(reinterpret_cast<std::uintptr_t>(p) &
                                       4095u);
  };
  // Speculation depth (~store-buffer reach) plus one vector on each side.
  constexpr std::uintptr_t kWindow = 576 + 32;
  const auto clear_of = [&](const double* other, std::uintptr_t inv_page) {
    if (other == nullptr) return true;
    const std::uintptr_t d = (page(other) + 4096u - inv_page) & 4095u;
    return d > kWindow && d < 4096u - 32u;
  };
  const std::uintptr_t base = page(plane);
  for (std::size_t off = 0; off < kPlanePadDoubles; off += 8) {
    const std::uintptr_t inv_page = (base + 8 * off) & 4095u;
    if (clear_of(x_hint, inv_page) && clear_of(bids, inv_page) &&
        clear_of(execs, inv_page)) {
      return off;
    }
  }
  return 0;  // unreachable: 3 windows exclude < 64 of the 64 candidates
}

/// Run body(b) over every block, inline when serial so the fast path does
/// not touch the pool (or the heap) at all.
template <typename Body>
void for_blocks(std::size_t nblocks, std::size_t shards,
                util::ThreadPool& pool, const Body& body) {
  if (shards <= 1) {
    for (std::size_t b = 0; b < nblocks; ++b) body(b);
    return;
  }
  const std::size_t grain = (nblocks + shards - 1) / shards;
  pool.parallel_for(0, nblocks, body, grain);
}

// ---- fused allocate + rule + publish kernels -----------------------------
//
// One pass per block turns the reciprocal plane into everything the round
// outputs: the rate x_i = inv_i / S * R (stored — it is the outcome's
// allocation plane), the rule's cost and extra terms in-register, and the
// six AgentOutcome fields through the transposed store.  No cost or
// leave-one-out plane is ever materialized; per agent the pass reads
// 16–24 bytes of planes and writes its 8-byte rate plus one 48-byte record.
//
// The rate uses one precomputed reciprocal share, x = inv * (R/S), which
// replaces the scalar kernels' per-agent division (inv/S)*R — the round's
// hottest divider work — at a cost of <= 2 ulp on x.  Every other value
// applies exactly the scalar fill_payments' operand order on that x —
// ca = (e*x)*x, cr = (b*x)*x, loo = R^2/(S - inv) — so the leave-one-out /
// tail terms still match the scalar kernels bit-for-bit at equal S, while
// x-derived values and the closed-form latency totals (see
// run_linear_pr_vectorized) sit within the DESIGN.md §12 ulp bound.  The
// <4-agent tail mirrors the vector body in scalar, in index order.
//
// Validation is by mask: bit 0 of the returned status is the rule guard
// (leave-one-out cancellation gap / Archer–Tardos tail positivity), bit 1
// is "every rate finite" (1/b can overflow to inf for subnormal bids, and
// the scalar path's Allocation constructor rejects that).  On a clear bit
// the published lanes are garbage; the caller re-runs the scalar check and
// throws its canonical diagnostic, discarding them.
//
// Rates are positive by construction (positive inv, S, R), so "finite" is
// the single ordered compare x < inf, which NaN also fails.

inline constexpr unsigned char kGuardOk = 1u;
inline constexpr unsigned char kRatesFinite = 2u;

/// Comp-bonus (both bases): comp = basis_i = (basis * x) * x with basis the
/// execution value (verified cost) or the bid (reported cost), bonus =
/// L_{-i} - L(x, e).  All pointers are offset to the block start.
template <bool kExecBasis>
[[nodiscard]] unsigned char publish_comp_bonus_block(
    std::size_t n, const double* inv, const double* bids, const double* execs,
    double inverse_sum, double share, double arrival_rate, double min_gap,
    double actual_total, double* x_out, AgentOutcome* agents) {
  const double r2 = arrival_rate * arrival_rate;
  const DVec vs = v::set1(inverse_sum);
  const DVec vshare = v::set1(share);
  const DVec vgap = v::set1(min_gap);
  const DVec vr2 = v::set1(r2);
  const DVec vtotal = v::set1(actual_total);
  const DVec vinf = v::set1(std::numeric_limits<double>::infinity());
  // Validity is AND-accumulated as lane masks and tested once per block:
  // one uop per check per step instead of a movemask + branch chain.
  DVec gmask = v::mask_all();
  DVec xmask = v::mask_all();
  std::size_t i = 0;
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec r = v::load(&inv[i]);
    const DVec x = v::mul(r, vshare);
    v::store(&x_out[i], x);
    xmask = v::mask_and(xmask, v::mask_greater(vinf, x));
    const DVec ca = v::mul(v::mul(v::load(&execs[i]), x), x);
    const DVec comp =
        kExecBasis ? ca : v::mul(v::mul(v::load(&bids[i]), x), x);
    const DVec denom = v::sub(vs, r);
    gmask = v::mask_and(gmask, v::mask_greater(denom, vgap));
    const DVec loo = v::div(vr2, denom);
    const DVec bonus = v::sub(loo, vtotal);
    const DVec pay = v::add(comp, bonus);
    const DVec val = v::neg(ca);
    const DVec util = v::add(pay, val);
    v::store_records6(reinterpret_cast<double*>(agents + i), x, comp, bonus,
                      pay, val, util);
  }
  bool gok = v::mask_all_true(gmask);
  bool xok = v::mask_all_true(xmask);
  for (; i < n; ++i) {
    const double r = inv[i];
    const double xi = r * share;
    x_out[i] = xi;
    xok = xok && xi < std::numeric_limits<double>::infinity();
    const double ca = (execs[i] * xi) * xi;
    const double denom = inverse_sum - r;
    gok = gok && denom > min_gap;
    AgentOutcome& a = agents[i];
    a.allocation = xi;
    a.compensation = kExecBasis ? ca : (bids[i] * xi) * xi;
    a.bonus = r2 / denom - actual_total;
    a.payment = a.compensation + a.bonus;
    a.valuation = -ca;
    a.utility = a.payment + a.valuation;
  }
  return static_cast<unsigned char>((gok ? kGuardOk : 0u) |
                                    (xok ? kRatesFinite : 0u));
}

/// VCG: comp = (b*x)*x, bonus = L_{-i} - L(x, b),
/// payment = L_{-i} - (L(x, b) - comp).
[[nodiscard]] unsigned char publish_vcg_block(
    std::size_t n, const double* inv, const double* bids, const double* execs,
    double inverse_sum, double share, double arrival_rate, double min_gap,
    double reported_total, double* x_out, AgentOutcome* agents) {
  const double r2 = arrival_rate * arrival_rate;
  const DVec vs = v::set1(inverse_sum);
  const DVec vshare = v::set1(share);
  const DVec vgap = v::set1(min_gap);
  const DVec vr2 = v::set1(r2);
  const DVec vtotal = v::set1(reported_total);
  const DVec vinf = v::set1(std::numeric_limits<double>::infinity());
  DVec gmask = v::mask_all();
  DVec xmask = v::mask_all();
  std::size_t i = 0;
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec r = v::load(&inv[i]);
    const DVec x = v::mul(r, vshare);
    v::store(&x_out[i], x);
    xmask = v::mask_and(xmask, v::mask_greater(vinf, x));
    const DVec ca = v::mul(v::mul(v::load(&execs[i]), x), x);
    const DVec comp = v::mul(v::mul(v::load(&bids[i]), x), x);
    const DVec denom = v::sub(vs, r);
    gmask = v::mask_and(gmask, v::mask_greater(denom, vgap));
    const DVec loo = v::div(vr2, denom);
    const DVec bonus = v::sub(loo, vtotal);
    const DVec pay = v::sub(loo, v::sub(vtotal, comp));
    const DVec val = v::neg(ca);
    const DVec util = v::add(pay, val);
    v::store_records6(reinterpret_cast<double*>(agents + i), x, comp, bonus,
                      pay, val, util);
  }
  bool gok = v::mask_all_true(gmask);
  bool xok = v::mask_all_true(xmask);
  for (; i < n; ++i) {
    const double r = inv[i];
    const double xi = r * share;
    x_out[i] = xi;
    xok = xok && xi < std::numeric_limits<double>::infinity();
    const double ca = (execs[i] * xi) * xi;
    const double denom = inverse_sum - r;
    gok = gok && denom > min_gap;
    const double loo = r2 / denom;
    AgentOutcome& a = agents[i];
    a.allocation = xi;
    a.compensation = (bids[i] * xi) * xi;
    a.bonus = loo - reported_total;
    a.payment = loo - (reported_total - a.compensation);
    a.valuation = -ca;
    a.utility = a.payment + a.valuation;
  }
  return static_cast<unsigned char>((gok ? kGuardOk : 0u) |
                                    (xok ? kRatesFinite : 0u));
}

/// Archer–Tardos: comp = b * (x*x), bonus = R^2 / (s * (1 + b*s)) with
/// s = S - inv (the closed form of archer_tardos_tail_integral).
[[nodiscard]] unsigned char publish_archer_tardos_block(
    std::size_t n, const double* inv, const double* bids, const double* execs,
    double inverse_sum, double share, double arrival_rate, double* x_out,
    AgentOutcome* agents) {
  const double r2 = arrival_rate * arrival_rate;
  const DVec vs = v::set1(inverse_sum);
  const DVec vshare = v::set1(share);
  const DVec vzero = v::zero();
  const DVec vone = v::set1(1.0);
  const DVec vr2 = v::set1(r2);
  const DVec vinf = v::set1(std::numeric_limits<double>::infinity());
  DVec gmask = v::mask_all();
  DVec xmask = v::mask_all();
  std::size_t i = 0;
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec r = v::load(&inv[i]);
    const DVec x = v::mul(r, vshare);
    v::store(&x_out[i], x);
    xmask = v::mask_and(xmask, v::mask_greater(vinf, x));
    const DVec b = v::load(&bids[i]);
    const DVec s = v::sub(vs, r);
    gmask = v::mask_and(gmask, v::mask_greater(s, vzero));
    const DVec bonus = v::div(vr2, v::mul(s, v::add(vone, v::mul(b, s))));
    const DVec comp = v::mul(b, v::mul(x, x));
    const DVec pay = v::add(comp, bonus);
    const DVec val = v::neg(v::mul(v::mul(v::load(&execs[i]), x), x));
    const DVec util = v::add(pay, val);
    v::store_records6(reinterpret_cast<double*>(agents + i), x, comp, bonus,
                      pay, val, util);
  }
  bool gok = v::mask_all_true(gmask);
  bool xok = v::mask_all_true(xmask);
  for (; i < n; ++i) {
    const double r = inv[i];
    const double xi = r * share;
    x_out[i] = xi;
    xok = xok && xi < std::numeric_limits<double>::infinity();
    const double s = inverse_sum - r;
    gok = gok && s > 0.0;
    AgentOutcome& a = agents[i];
    a.allocation = xi;
    const double work = xi * xi;
    a.compensation = bids[i] * work;
    a.bonus = r2 / (s * (1.0 + bids[i] * s));
    a.payment = a.compensation + a.bonus;
    a.valuation = -((execs[i] * xi) * xi);
    a.utility = a.payment + a.valuation;
  }
  return static_cast<unsigned char>((gok ? kGuardOk : 0u) |
                                    (xok ? kRatesFinite : 0u));
}

/// No-payment baseline: all transfers zero, utility is the raw cost.
[[nodiscard]] unsigned char publish_no_payment_block(
    std::size_t n, const double* inv, const double* execs, double share,
    double* x_out, AgentOutcome* agents) {
  const DVec vshare = v::set1(share);
  const DVec vzero = v::zero();
  const DVec vinf = v::set1(std::numeric_limits<double>::infinity());
  DVec xmask = v::mask_all();
  std::size_t i = 0;
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec x = v::mul(v::load(&inv[i]), vshare);
    v::store(&x_out[i], x);
    xmask = v::mask_and(xmask, v::mask_greater(vinf, x));
    const DVec val = v::neg(v::mul(v::mul(v::load(&execs[i]), x), x));
    const DVec util = v::add(vzero, val);
    v::store_records6(reinterpret_cast<double*>(agents + i), x, vzero, vzero,
                      vzero, val, util);
  }
  bool xok = v::mask_all_true(xmask);
  for (; i < n; ++i) {
    const double xi = inv[i] * share;
    x_out[i] = xi;
    xok = xok && xi < std::numeric_limits<double>::infinity();
    AgentOutcome& a = agents[i];
    a.allocation = xi;
    a.compensation = 0.0;
    a.bonus = 0.0;
    a.payment = 0.0;
    a.valuation = -((execs[i] * xi) * xi);
    a.utility = a.payment + a.valuation;
  }
  return static_cast<unsigned char>(kGuardOk | (xok ? kRatesFinite : 0u));
}

}  // namespace

KernelBackend kernel_backend() {
  return backend_state().load(std::memory_order_relaxed);
}

void set_kernel_backend(KernelBackend backend) {
  backend_state().store(backend, std::memory_order_relaxed);
}

const char* vector_backend_name() { return util::simd::backend_name(); }

SimdRoundStats run_linear_pr_vectorized(VectorRule rule, double arrival_rate,
                                        std::span<const double> bids,
                                        std::span<const double> executions,
                                        MechanismOutcome& out,
                                        RoundWorkspace& ws,
                                        const RoundOptions& options) {
  LBMV_REQUIRE(rule != VectorRule::kNone,
               "vectorized round requires a payment rule");
  const std::size_t n = bids.size();
  const std::size_t nblocks = (n + kShardBlock - 1) / kShardBlock;
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::global();
  const std::size_t shards = resolve_shards(n, nblocks, options, pool);

  ws.inv_bids.resize(n + kPlanePadDoubles);
  ws.block_partials.resize(2 * nblocks);
  ws.block_ok.resize(nblocks);
  // Slide the reciprocal plane clear of 4K-alias shadows (dodge_4k_offset).
  // The rate-plane hint is last round's buffer — the recycle below reuses
  // it whenever capacity allows, and a stale hint costs only that one
  // round's placement, never correctness.
  const std::size_t inv_off = dodge_4k_offset(
      ws.inv_bids.data(), out.allocation.rates().data(), bids.data(),
      executions.data());

  // ---- P1: reciprocal plane, reductions, validation masks ----------------
  const std::span<double> inv{ws.inv_bids.data() + inv_off, n};
  for_blocks(nblocks, shards, pool, [&](std::size_t b) {
    const std::size_t lo = b * kShardBlock;
    const std::size_t len = std::min(n - lo, kShardBlock);
    const alloc::simd::ReciprocalPartial part = alloc::simd::pr_reciprocal_block(
        bids.subspan(lo, len), executions.subspan(lo, len),
        inv.subspan(lo, len));
    ws.block_partials[2 * b] = part.inverse_sum;
    ws.block_partials[2 * b + 1] = part.exec_weight;
    ws.block_ok[b] =
        static_cast<unsigned char>((part.bids_positive ? 1u : 0u) |
                                   (part.executions_positive ? 2u : 0u));
  });
  bool inputs_ok = true;
  for (std::size_t b = 0; b < nblocks; ++b) {
    inputs_ok = inputs_ok && ws.block_ok[b] == 3u;
  }
  if (!inputs_ok) {
    // Re-run the scalar validation loop so the diagnostic names the first
    // offender in the same order the scalar path would.
    for (std::size_t i = 0; i < n; ++i) {
      LBMV_REQUIRE(bids[i] > 0.0, "bids must be positive");
      LBMV_REQUIRE(executions[i] > 0.0, "execution values must be positive");
    }
  }
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  double inverse_sum = 0.0;
  double exec_weight = 0.0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    inverse_sum += ws.block_partials[2 * b];
    exec_weight += ws.block_partials[2 * b + 1];
  }
  ws.pr_closed_form = true;
  ws.inverse_sum = inverse_sum;

  // Latency totals in closed form: with x_i = inv_i/S * R the sums factor,
  //   L(x, b) = sum (b_i x_i) x_i = R^2 / S              (the PR optimum L*)
  //   L(x, e) = sum (e_i x_i) x_i = (R/S)^2 * W,   W = sum (e_i inv_i) inv_i
  // so no second reduction pass over the planes is needed.  Versus the
  // scalar left folds both totals are within the DESIGN.md §12 error bound.
  const double share = arrival_rate / inverse_sum;
  const double actual_total = (share * share) * exec_weight;
  const double reported_total = share * arrival_rate;

  // ---- P2: fused allocation + rule terms + transposed AoS publish --------
  const bool needs_loo = rule == VectorRule::kCompBonusExecution ||
                         rule == VectorRule::kCompBonusBid ||
                         rule == VectorRule::kVcg;
  const bool needs_tail = rule == VectorRule::kArcherTardos;
  if (needs_loo && obs::enabled()) {
    obs::MechProbes& probes = obs::MechProbes::get();
    probes.loo_batches.inc();
    probes.loo_batch_size.record(static_cast<double>(n));
  }
  const double min_gap = inverse_sum * alloc::kLeaveOneOutMinRelativeGap;
  // Recycle the previous outcome's rate plane: after the first round at
  // this n, resize() is a no-op and the pass allocates nothing.
  std::vector<double> rates = std::move(out.allocation).release();
  rates.resize(n);
  double* const x = rates.data();
  out.agents.resize(n);
  AgentOutcome* const agents = out.agents.data();
  for_blocks(nblocks, shards, pool, [&](std::size_t b) {
    const std::size_t lo = b * kShardBlock;
    const std::size_t len = std::min(n - lo, kShardBlock);
    unsigned char status = kGuardOk | kRatesFinite;
    switch (rule) {
      case VectorRule::kCompBonusExecution:
        status = publish_comp_bonus_block<true>(
            len, inv.data() + lo, bids.data() + lo, executions.data() + lo,
            inverse_sum, share, arrival_rate, min_gap, actual_total, x + lo,
            agents + lo);
        break;
      case VectorRule::kCompBonusBid:
        status = publish_comp_bonus_block<false>(
            len, inv.data() + lo, bids.data() + lo, executions.data() + lo,
            inverse_sum, share, arrival_rate, min_gap, actual_total, x + lo,
            agents + lo);
        break;
      case VectorRule::kVcg:
        status = publish_vcg_block(len, inv.data() + lo, bids.data() + lo,
                                   executions.data() + lo, inverse_sum, share,
                                   arrival_rate, min_gap, reported_total,
                                   x + lo, agents + lo);
        break;
      case VectorRule::kArcherTardos:
        status = publish_archer_tardos_block(
            len, inv.data() + lo, bids.data() + lo, executions.data() + lo,
            inverse_sum, share, arrival_rate, x + lo, agents + lo);
        break;
      case VectorRule::kNoPayment:
        status = publish_no_payment_block(len, inv.data() + lo,
                                          executions.data() + lo, share,
                                          x + lo, agents + lo);
        break;
      case VectorRule::kNone:
        break;  // dispatch never sends kNone here
    }
    ws.block_ok[b] = status;
  });
  bool rates_finite = true;
  bool guards_ok = true;
  for (std::size_t b = 0; b < nblocks; ++b) {
    rates_finite = rates_finite && (ws.block_ok[b] & kRatesFinite) != 0u;
    guards_ok = guards_ok && (ws.block_ok[b] & kGuardOk) != 0u;
  }
  if (!rates_finite) {
    // The checked constructor raises the scalar path's diagnostic (it
    // validates before any payment guard fires there too).
    out.allocation = model::Allocation(std::move(rates));
  } else {
    out.allocation = model::Allocation::from_validated(std::move(rates));
  }
  out.actual_latency = actual_total;
  out.reported_latency = reported_total;
  if ((needs_loo || needs_tail) && !guards_ok) {
    // Re-run the scalar guard on the same operands to raise the canonical
    // diagnostic naming the first offending agent.
    if (needs_loo) {
      ws.leave_one_out.resize(n);
      alloc::pr_leave_one_out_from_sum(inverse_sum, bids, arrival_rate,
                                       ws.leave_one_out);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        (void)archer_tardos_tail_integral(bids[i], inverse_sum - inv[i],
                                          arrival_rate);
      }
    }
  }
  return SimdRoundStats{shards};
}

}  // namespace lbmv::core

#pragma once

/// \file family_round.h
/// Fused vectorized rounds for the nonlinear latency families (DESIGN.md
/// §14).
///
/// The generic round path handles any convex family by building 2n latency
/// function objects per round and dispatching virtually per agent — correct
/// everywhere, but the heap traffic and call overhead dwarf the O(n)
/// closed-form math for the two nonlinear families the repo ships exact
/// allocators for.  This header provides their fused counterparts, modelled
/// on the linear engine (simd_round.h): 4-lane kernels over contiguous
/// workspace planes, AND-accumulated validity masks tested once per pass,
/// the transposed util::simd::store_records6 publish, and zero steady-state
/// heap allocations once the workspace planes have grown to n.
///
/// **M/M/1** (run_mm1_vectorized).  With mu_i = 1/b_i and a_i = sqrt(mu_i)
/// the square-root closed form makes every round quantity a few vector ops
/// per agent when every computer stays active — in the full set AND in all
/// n leave-one-out subsystems, each an O(1) test against the cached
/// min/second-min of the a plane:
///
///   x_i    = mu_i - c a_i,          c   = (sum mu - R) / sum a
///   L_{-i} = rest_a_i / c_i - (n-1),  c_i = (rest_mu_i - R) / rest_a_i
///
/// The engine returns false — publishing nothing — whenever any active set
/// is a strict subset or any closed-form precondition fails, and the caller
/// falls through to the generic path, whose allocator raises the canonical
/// typed PreconditionError (capacity exceeded, saturation guard, or the
/// leave-one-out message naming the agent whose departure overloads the
/// rest).  Heavily loaded heterogeneous profiles where slow machines drop
/// out therefore still work; they just take the generic path.
///
/// **Workload-dependent rates** (run_workload_vectorized).  The family
/// l(x) = theta x (1 + gamma x) is always interior, so the fused round
/// always succeeds: one monotone damped-free Newton solve on the KKT
/// conservation residual for the full set (alloc/workload_allocator.h),
/// then n warm-started solves for the leave-one-out plane — every residual
/// evaluation a 4-lane sweep — and one fused publish pass.  The Newton
/// iteration count is returned so the caller can feed the
/// lbmv_mech_newton_iters_total probe.
///
/// Both engines run the agent axis serial: at the n these families target
/// the 4-lane kernels are already memory-lean, and a serial fixed-order
/// pass keeps results trivially independent of thread count.  Outcomes
/// agree with the generic path to a bounded relative error (reassociated
/// reductions), the contract the differential suite in
/// tests/test_nonlinear_kernels.cpp enforces at 1e-9.

#include <cstddef>
#include <span>

#include "lbmv/core/mechanism.h"

namespace lbmv::model {
class WorkloadFamily;
}  // namespace lbmv::model

namespace lbmv::core {

class RoundWorkspace;  // batch.h

/// What a fused nonlinear round actually did, for the caller's obs probes.
struct FamilyRoundStats {
  std::size_t newton_iters = 0;  ///< KKT Newton iterations (workload only)
};

/// Run one fused M/M/1 round end to end (validation, closed-form
/// allocation, latency totals, payments, utilities) and return true, or
/// return false without touching \p out when the round needs the generic
/// active-set machinery (some computer would be dropped, or a closed-form
/// precondition fails and the generic path owns the canonical diagnostic).
/// \p rule must be a leave-one-out rule or kNoPayment — never kNone or
/// kArcherTardos (whose tail integral is linear-family-specific).
/// Bids and executions are mean service times (MM1Family's convention);
/// invalid inputs throw the scalar path's diagnostics.
[[nodiscard]] bool run_mm1_vectorized(VectorRule rule, double arrival_rate,
                                      std::span<const double> bids,
                                      std::span<const double> executions,
                                      MechanismOutcome& out,
                                      RoundWorkspace& ws);

/// Run one fused workload-family round end to end.  Always succeeds on
/// valid input (the KKT solution is interior at every R > 0); throws the
/// scalar path's diagnostics otherwise.  Same rule domain as the M/M/1
/// engine.
FamilyRoundStats run_workload_vectorized(const model::WorkloadFamily& family,
                                         VectorRule rule, double arrival_rate,
                                         std::span<const double> bids,
                                         std::span<const double> executions,
                                         MechanismOutcome& out,
                                         RoundWorkspace& ws);

}  // namespace lbmv::core

#pragma once

/// \file no_payment.h
/// The classical, payment-free protocol — the paper's motivating baseline.
///
/// Traditional load balancing assumes obedient participants: the scheduler
/// asks every computer for its speed, runs the PR algorithm, and pays
/// nothing.  With selfish agents this collapses: an agent's utility is just
/// its (negative) latency cost -t~_i x_i^2, so every agent prefers *fewer*
/// jobs and overbidding (pretending to be slow) strictly raises its utility
/// while degrading the system optimum.  The dynamics bench (A5) and the
/// verification ablation (A3) quantify the collapse.

#include <string>

#include "lbmv/core/mechanism.h"

namespace lbmv::core {

/// PR allocation from the bids; all payments identically zero.
class NoPaymentMechanism final : public Mechanism {
 public:
  NoPaymentMechanism();
  explicit NoPaymentMechanism(
      std::shared_ptr<const alloc::Allocator> allocator);

  [[nodiscard]] std::string name() const override { return "no-payment"; }
  [[nodiscard]] bool uses_verification() const override { return false; }
  /// Unpaid agents eat their execution cost, so utility is negative by
  /// design — the participation monitor must not flag this baseline.
  [[nodiscard]] bool guarantees_voluntary_participation() const override {
    return false;
  }
  [[nodiscard]] VectorRule vector_rule() const override {
    return VectorRule::kNoPayment;
  }

  /// O(1)-per-deviation profile context for the linear-family / PR-allocator
  /// configuration; nullptr for other pairings.
  [[nodiscard]] std::unique_ptr<ProfileUtilityContext> make_profile_context(
      const model::LatencyFamily& family, double arrival_rate,
      const model::BidProfile& base) const override;

 protected:
  void fill_payments(const model::LatencyFamily& family, double arrival_rate,
                     std::span<const double> bids,
                     std::span<const double> executions,
                     const model::Allocation& x, double actual_latency,
                     double reported_latency,
                     std::vector<AgentOutcome>& outcomes,
                     RoundWorkspace& ws) const override;
};

}  // namespace lbmv::core

#pragma once

/// \file vcg.h
/// VCG (Vickrey–Clarke–Groves) baseline mechanism — no verification.
///
/// The classical truthful mechanism for objectives that are sums of agent
/// costs (Nisan & Ronen 2001, §related work in the paper).  Allocation
/// minimises the reported total latency; agent i is paid its *externality*:
///
///     P_i = L_{-i}(x_{-i}(b_{-i})) - sum_{j != i} c_j(x(b); b_j)
///
/// i.e. the Clarke pivot.  Payments are a function of bids only: VCG is
/// truthful with respect to the *reported* types but, having no verification
/// step, cannot react when an agent executes slower than it bid.  The
/// ablation bench (A3) demonstrates exactly this failure mode and why the
/// paper's verification step matters.

#include <string>

#include "lbmv/core/mechanism.h"

namespace lbmv::core {

/// Clarke-pivot VCG mechanism over the injected allocator.
class VcgMechanism final : public Mechanism {
 public:
  VcgMechanism();
  explicit VcgMechanism(std::shared_ptr<const alloc::Allocator> allocator);

  [[nodiscard]] std::string name() const override { return "vcg"; }
  [[nodiscard]] bool uses_verification() const override { return false; }
  [[nodiscard]] VectorRule vector_rule() const override {
    return VectorRule::kVcg;
  }

  /// O(1)-per-deviation profile context for the linear-family / PR-allocator
  /// configuration; nullptr for other pairings.
  [[nodiscard]] std::unique_ptr<ProfileUtilityContext> make_profile_context(
      const model::LatencyFamily& family, double arrival_rate,
      const model::BidProfile& base) const override;

 protected:
  void fill_payments(const model::LatencyFamily& family, double arrival_rate,
                     std::span<const double> bids,
                     std::span<const double> executions,
                     const model::Allocation& x, double actual_latency,
                     double reported_latency,
                     std::vector<AgentOutcome>& outcomes,
                     RoundWorkspace& ws) const override;
};

}  // namespace lbmv::core

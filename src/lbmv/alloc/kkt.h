#pragma once

/// \file kkt.h
/// Independent Karush–Kuhn–Tucker certification of allocations.
///
/// The paper's Theorem 2.1 is proved through the Kuhn–Tucker conditions:
/// an allocation is optimal iff there exists lambda with
///   * c_i'(x_i) = lambda for every computer with x_i > 0, and
///   * c_i'(0) >= lambda for every idle computer,
/// together with feasibility.  check_kkt verifies these conditions for any
/// allocation without re-running a solver, so tests can certify both the
/// closed forms and the numeric solver against first principles.

#include <memory>
#include <span>
#include <string>

#include "lbmv/model/allocation.h"
#include "lbmv/model/latency.h"

namespace lbmv::alloc {

/// Outcome of a KKT check.
struct KktReport {
  bool positivity_ok = false;     ///< x_i >= -tol
  bool conservation_ok = false;   ///< |sum x_i - R| small
  bool stationarity_ok = false;   ///< marginals equalised / dominated
  double lambda = 0.0;            ///< estimated multiplier (mean active marginal)
  double conservation_error = 0.0;
  double max_stationarity_violation = 0.0;  ///< relative

  [[nodiscard]] bool optimal() const {
    return positivity_ok && conservation_ok && stationarity_ok;
  }
  [[nodiscard]] std::string describe() const;
};

/// Check the KKT conditions of \p x for the curves \p latencies at total
/// rate \p arrival_rate.  \p tol is a relative tolerance applied to each
/// condition.  Computers with x_i below tol * R / n are treated as idle.
[[nodiscard]] KktReport check_kkt(
    const model::Allocation& x,
    std::span<const std::unique_ptr<model::LatencyFunction>> latencies,
    double arrival_rate, double tol = 1e-7);

}  // namespace lbmv::alloc

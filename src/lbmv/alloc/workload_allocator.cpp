#include "lbmv/alloc/workload_allocator.h"

#include <cmath>

#include "lbmv/util/error.h"
#include "lbmv/util/simd.h"

namespace lbmv::alloc {

namespace {

namespace simd = util::simd;

/// One evaluation of the conservation residual g(lambda) = sum x_i - R and
/// its derivative g'(lambda) = sum 1/(2 theta_i s_i), s_i = sqrt(1 + 3
/// gamma lambda / theta_i), in a single 4-lane pass over the theta plane.
struct Residual {
  double g = 0.0;
  double gp = 0.0;
};

Residual eval_residual(std::span<const double> thetas, double gamma,
                       double arrival_rate, double lambda) {
  const std::size_t n = thetas.size();
  const double k3gl = 3.0 * gamma * lambda;
  const double inv3g = 1.0 / (3.0 * gamma);
  const simd::DVec one = simd::set1(1.0);
  simd::DVec vg = simd::zero();
  simd::DVec vgp = simd::zero();
  std::size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const simd::DVec t = simd::load(&thetas[i]);
    const simd::DVec s =
        simd::sqrt(simd::add(one, simd::div(simd::set1(k3gl), t)));
    vg = simd::add(vg, simd::mul(simd::sub(s, one), simd::set1(inv3g)));
    vgp = simd::add(
        vgp, simd::div(one, simd::mul(simd::set1(2.0), simd::mul(t, s))));
  }
  Residual r;
  r.g = simd::hsum(vg);
  r.gp = simd::hsum(vgp);
  for (; i < n; ++i) {
    const double s = std::sqrt(1.0 + k3gl / thetas[i]);
    r.g += (s - 1.0) * inv3g;
    r.gp += 1.0 / (2.0 * thetas[i] * s);
  }
  r.g -= arrival_rate;
  return r;
}

}  // namespace

WorkloadSolve workload_solve_into(std::span<const double> thetas, double gamma,
                                  double arrival_rate,
                                  std::span<double> rates_out,
                                  double warm_start_lambda) {
  const std::size_t n = thetas.size();
  LBMV_REQUIRE(n > 0, "need at least one computer");
  LBMV_REQUIRE(gamma > 0.0, "workload congestion coefficient must be positive");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  LBMV_REQUIRE(rates_out.size() == n, "rates_out size mismatch");

  double lambda = warm_start_lambda;
  if (!(lambda > 0.0)) {
    // Linear-model estimate: x_i ~ lambda/(2 theta_i) overestimates the true
    // x_i(lambda), so g(2R/S) <= 0 and the monotone Newton applies.
    double inv_sum = 0.0;
    for (double t : thetas) {
      LBMV_REQUIRE(t > 0.0, "types must be positive");
      inv_sum += 1.0 / t;
    }
    lambda = 2.0 * arrival_rate / inv_sum;
  }

  WorkloadSolve solve;
  for (std::size_t iter = 0; iter < kWorkloadNewtonMaxIters; ++iter) {
    const Residual r = eval_residual(thetas, gamma, arrival_rate, lambda);
    ++solve.iterations;
    if (r.g == 0.0) break;
    const double next = lambda - r.g / r.gp;
    // Fixed point: the step rounded away (or a warm start overshot by a few
    // ulps, making the "correction" non-positive) — lambda is converged.
    if (!(next > lambda)) break;
    lambda = next;
  }
  solve.lambda = lambda;

  // Fill pass: rates and the optimum's total latency in the same 4-lane
  // sweep, cost accumulated in the latency function's own operation order
  // x * (theta * x * (1 + gamma * x)).
  const double k3gl = 3.0 * gamma * lambda;
  const double inv3g = 1.0 / (3.0 * gamma);
  const simd::DVec one = simd::set1(1.0);
  simd::DVec vl = simd::zero();
  std::size_t i = 0;
  for (; i + simd::kLanes <= n; i += simd::kLanes) {
    const simd::DVec t = simd::load(&thetas[i]);
    const simd::DVec s =
        simd::sqrt(simd::add(one, simd::div(simd::set1(k3gl), t)));
    const simd::DVec x = simd::mul(simd::sub(s, one), simd::set1(inv3g));
    simd::store(&rates_out[i], x);
    const simd::DVec lat = simd::mul(
        t, simd::mul(x, simd::add(one, simd::mul(simd::set1(gamma), x))));
    vl = simd::add(vl, simd::mul(x, lat));
  }
  solve.optimal_latency = simd::hsum(vl);
  for (; i < n; ++i) {
    const double s = std::sqrt(1.0 + k3gl / thetas[i]);
    const double x = (s - 1.0) * inv3g;
    rates_out[i] = x;
    solve.optimal_latency += x * (thetas[i] * x * (1.0 + gamma * x));
  }
  return solve;
}

namespace {

double family_gamma(const model::LatencyFamily& family) {
  const auto* workload = dynamic_cast<const model::WorkloadFamily*>(&family);
  LBMV_REQUIRE(workload != nullptr,
               "WorkloadAllocator requires the workload latency family");
  return workload->gamma();
}

}  // namespace

model::Allocation WorkloadAllocator::allocate(
    const model::LatencyFamily& family, std::span<const double> types,
    double arrival_rate) const {
  std::vector<double> rates(types.size(), 0.0);
  workload_solve_into(types, family_gamma(family), arrival_rate, rates);
  return model::Allocation(std::move(rates));
}

void WorkloadAllocator::allocate_into(const model::LatencyFamily& family,
                                      std::span<const double> types,
                                      double arrival_rate,
                                      std::vector<double>& rates) const {
  rates.resize(types.size());
  workload_solve_into(types, family_gamma(family), arrival_rate, rates);
}

double WorkloadAllocator::optimal_latency(const model::LatencyFamily& family,
                                          std::span<const double> types,
                                          double arrival_rate) const {
  std::vector<double> scratch(types.size(), 0.0);
  return workload_solve_into(types, family_gamma(family), arrival_rate,
                             scratch)
      .optimal_latency;
}

void WorkloadAllocator::leave_one_out_into(const model::LatencyFamily& family,
                                           std::span<const double> types,
                                           double arrival_rate,
                                           std::vector<double>& out) const {
  const std::size_t n = types.size();
  LBMV_REQUIRE(n >= 2, "leave-one-out requires at least two computers");
  const double gamma = family_gamma(family);
  std::vector<double> rates(n, 0.0);
  const WorkloadSolve full =
      workload_solve_into(types, gamma, arrival_rate, rates);
  // Single reused scratch, BidProfile::without element order: starts as the
  // profile with agent 0 removed; writing scratch[i] = types[i] afterwards
  // turns it into the profile with agent i+1 removed.
  std::vector<double> scratch(types.begin() + 1, types.end());
  std::vector<double> rest_rates(n - 1, 0.0);
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // The full-set multiplier satisfies g_rest(lambda*) = -x_i(lambda*) <= 0,
    // so it is a valid monotone warm start for every subsystem.
    out[i] = workload_solve_into(scratch, gamma, arrival_rate, rest_rates,
                                 full.lambda)
                 .optimal_latency;
    if (i + 1 < n) scratch[i] = types[i];
  }
}

}  // namespace lbmv::alloc

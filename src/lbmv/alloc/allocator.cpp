#include "lbmv/alloc/allocator.h"

#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::alloc {

void Allocator::allocate_into(const model::LatencyFamily& family,
                              std::span<const double> types,
                              double arrival_rate,
                              std::vector<double>& rates) const {
  const model::Allocation x = allocate(family, types, arrival_rate);
  rates.assign(x.rates().begin(), x.rates().end());
}

double Allocator::optimal_latency(const model::LatencyFamily& family,
                                  std::span<const double> types,
                                  double arrival_rate) const {
  const model::Allocation x = allocate(family, types, arrival_rate);
  const auto latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(types.size());
    for (double t : types) fns.push_back(family.make(t));
    return fns;
  }();
  return model::total_latency(x, latencies);
}

std::vector<double> Allocator::leave_one_out_latencies(
    const model::LatencyFamily& family, std::span<const double> types,
    double arrival_rate) const {
  std::vector<double> out;
  leave_one_out_into(family, types, arrival_rate, out);
  return out;
}

void Allocator::leave_one_out_into(const model::LatencyFamily& family,
                                   std::span<const double> types,
                                   double arrival_rate,
                                   std::vector<double>& out) const {
  const std::size_t n = types.size();
  LBMV_REQUIRE(n >= 2, "leave-one-out requires at least two computers");
  if (obs::enabled()) {
    obs::MechProbes& probes = obs::MechProbes::get();
    probes.loo_batches.inc();
    probes.loo_batch_size.record(static_cast<double>(n));
  }
  // One scratch buffer serves every subsystem: it starts as the profile
  // with agent 0 removed, and after solving subsystem i the single write
  // scratch[i] = types[i] turns it into the profile with agent i+1 removed.
  // The element order matches BidProfile::without, so the numeric results
  // are identical to the per-agent-copy formulation.
  std::vector<double> scratch(types.begin() + 1, types.end());
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = optimal_latency(family, scratch, arrival_rate);
    if (i + 1 < n) scratch[i] = types[i];
  }
}

}  // namespace lbmv::alloc

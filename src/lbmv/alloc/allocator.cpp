#include "lbmv/alloc/allocator.h"

namespace lbmv::alloc {

double Allocator::optimal_latency(const model::LatencyFamily& family,
                                  std::span<const double> types,
                                  double arrival_rate) const {
  const model::Allocation x = allocate(family, types, arrival_rate);
  const auto latencies = [&] {
    std::vector<std::unique_ptr<model::LatencyFunction>> fns;
    fns.reserve(types.size());
    for (double t : types) fns.push_back(family.make(t));
    return fns;
  }();
  return model::total_latency(x, latencies);
}

}  // namespace lbmv::alloc

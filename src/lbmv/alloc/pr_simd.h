#pragma once

/// \file pr_simd.h
/// Vectorized block kernels for the PR closed forms (DESIGN.md §12).
///
/// Each function processes one contiguous block of agents with the 4-lane
/// vectors of util/simd.h and a *fixed* in-block reduction tree: two vector
/// accumulators over 8-agent steps, one leftover full vector into the first
/// accumulator, the fixed horizontal sum (l0+l1)+(l2+l3) of their lane-wise
/// total, then any <4-agent tail appended scalar in index order.  Because
/// the tree depends only on the block's length — never on thread or shard
/// count — the sharded round engine (core/simd_round.h) gets bit-identical
/// results for any fan-out by cutting agents into fixed-size blocks and
/// reducing the returned partials in block order.
///
/// Validation is by mask, not by throw: kernels report "every lane positive"
/// / "every denominator safe" flags and the caller re-runs the scalar
/// validation loop on failure so the diagnostic (message, offending agent)
/// is byte-identical to the scalar path's.  NaNs fail the ordered compares
/// and are flagged like non-positive values.

#include <cstddef>
#include <span>

namespace lbmv::alloc::simd {

/// Result of one reciprocal block: the block's partial sums under the fixed
/// tree, plus the positivity masks of both input planes.
struct ReciprocalPartial {
  double inverse_sum = 0.0;  ///< partial S      = sum 1/b_i
  double exec_weight = 0.0;  ///< partial W      = sum (e_i * inv_i) * inv_i
  bool bids_positive = true;
  bool executions_positive = true;
};

/// inv_out[i] = 1.0 / bids[i] for the whole block (the same IEEE division
/// the scalar kernels perform, so downstream consumers of 1/b_i see the same
/// bits), accumulating the block's partial inverse sum AND the partial
/// execution weight W = sum (e_i * inv_i) * inv_i.  W is what makes the
/// round engine single-reduction: with the PR closed form x_i = inv_i/S * R,
/// the verified latency total factors as L(x, e) = (R/S)^2 * W, so the
/// engine needs no second reduction pass over the planes.  All three spans
/// must have the block's length.
[[nodiscard]] ReciprocalPartial pr_reciprocal_block(
    std::span<const double> bids, std::span<const double> executions,
    std::span<double> inv_out);

/// loo_out[i] = R^2 / (S - inv[i]) for the block.  Returns false when any
/// denominator fails the cancellation guard (denom > min_gap, the scalar
/// kernel's test); the caller then re-runs pr_leave_one_out_from_sum to
/// throw the canonical diagnostic.  Elementwise this is the scalar formula
/// on the same operands, so the plane matches the scalar kernel bit-for-bit
/// at equal S.
[[nodiscard]] bool pr_leave_one_out_block(std::span<const double> inv,
                                          double inverse_sum,
                                          double arrival_rate, double min_gap,
                                          std::span<double> loo_out);

/// Archer–Tardos payment tail for the block:
///
///   s_i        = S - inv[i]
///   bonus_i    = R^2 / (s_i * (1 + b_i * s_i))
///
/// (the closed-form integral of archer_tardos_tail_integral, same operand
/// order).  Returns false when any s_i fails the strict positivity the
/// scalar kernel requires; the caller re-runs the scalar loop to throw its
/// diagnostic.
[[nodiscard]] bool archer_tardos_tail_block(std::span<const double> bids,
                                            std::span<const double> inv,
                                            double inverse_sum,
                                            double arrival_rate,
                                            std::span<double> bonus_out);

}  // namespace lbmv::alloc::simd

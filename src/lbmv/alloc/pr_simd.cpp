#include "lbmv/alloc/pr_simd.h"

#include "lbmv/util/simd.h"

namespace lbmv::alloc::simd {

namespace v = lbmv::util::simd;
using v::DVec;

// Every kernel below walks its block in the same shape: 8-agent steps with
// two independent accumulators (hiding the 4-cycle add latency), one
// leftover full 4-vector folded into the first accumulator, the fixed
// horizontal sum, then a scalar tail in index order.  The shape IS the
// numeric contract — see the header — so keep the four loops structurally
// in lock-step when editing.

ReciprocalPartial pr_reciprocal_block(std::span<const double> bids,
                                      std::span<const double> executions,
                                      std::span<double> inv_out) {
  const std::size_t n = bids.size();
  const DVec zero = v::zero();
  const DVec one = v::set1(1.0);
  DVec acc0 = v::zero();
  DVec acc1 = v::zero();
  DVec wacc0 = v::zero();
  DVec wacc1 = v::zero();
  // Validity is AND-accumulated as lane masks and tested once per block:
  // one uop per check per step instead of a movemask + branch chain.
  DVec bmask = v::mask_all();
  DVec emask = v::mask_all();
  std::size_t i = 0;
  for (; i + 2 * v::kLanes <= n; i += 2 * v::kLanes) {
    const DVec b0 = v::load(&bids[i]);
    const DVec b1 = v::load(&bids[i + v::kLanes]);
    bmask = v::mask_and(bmask, v::mask_and(v::mask_greater(b0, zero),
                                           v::mask_greater(b1, zero)));
    const DVec e0 = v::load(&executions[i]);
    const DVec e1 = v::load(&executions[i + v::kLanes]);
    emask = v::mask_and(emask, v::mask_and(v::mask_greater(e0, zero),
                                           v::mask_greater(e1, zero)));
    const DVec r0 = v::div(one, b0);
    const DVec r1 = v::div(one, b1);
    v::store(&inv_out[i], r0);
    v::store(&inv_out[i + v::kLanes], r1);
    acc0 = v::add(acc0, r0);
    acc1 = v::add(acc1, r1);
    wacc0 = v::add(wacc0, v::mul(v::mul(e0, r0), r0));
    wacc1 = v::add(wacc1, v::mul(v::mul(e1, r1), r1));
  }
  if (i + v::kLanes <= n) {
    const DVec b0 = v::load(&bids[i]);
    bmask = v::mask_and(bmask, v::mask_greater(b0, zero));
    const DVec e0 = v::load(&executions[i]);
    emask = v::mask_and(emask, v::mask_greater(e0, zero));
    const DVec r0 = v::div(one, b0);
    v::store(&inv_out[i], r0);
    acc0 = v::add(acc0, r0);
    wacc0 = v::add(wacc0, v::mul(v::mul(e0, r0), r0));
    i += v::kLanes;
  }
  bool bids_ok = v::mask_all_true(bmask);
  bool execs_ok = v::mask_all_true(emask);
  double partial = v::hsum(v::add(acc0, acc1));
  double weight = v::hsum(v::add(wacc0, wacc1));
  for (; i < n; ++i) {
    bids_ok = bids_ok && bids[i] > 0.0;
    execs_ok = execs_ok && executions[i] > 0.0;
    const double r = 1.0 / bids[i];
    inv_out[i] = r;
    partial += r;
    weight += (executions[i] * r) * r;
  }
  return {partial, weight, bids_ok, execs_ok};
}

bool pr_leave_one_out_block(std::span<const double> inv, double inverse_sum,
                            double arrival_rate, double min_gap,
                            std::span<double> loo_out) {
  const std::size_t n = inv.size();
  const double r2 = arrival_rate * arrival_rate;
  const DVec vs = v::set1(inverse_sum);
  const DVec vgap = v::set1(min_gap);
  const DVec vr2 = v::set1(r2);
  bool ok = true;
  std::size_t i = 0;
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec denom = v::sub(vs, v::load(&inv[i]));
    ok = ok && v::all_greater(denom, vgap);
    v::store(&loo_out[i], v::div(vr2, denom));
  }
  for (; i < n; ++i) {
    const double denom = inverse_sum - inv[i];
    ok = ok && denom > min_gap;
    loo_out[i] = r2 / denom;
  }
  return ok;
}

bool archer_tardos_tail_block(std::span<const double> bids,
                              std::span<const double> inv, double inverse_sum,
                              double arrival_rate,
                              std::span<double> bonus_out) {
  const std::size_t n = inv.size();
  const double r2 = arrival_rate * arrival_rate;
  const DVec vs = v::set1(inverse_sum);
  const DVec vzero = v::zero();
  const DVec vone = v::set1(1.0);
  const DVec vr2 = v::set1(r2);
  bool ok = true;
  std::size_t i = 0;
  for (; i + v::kLanes <= n; i += v::kLanes) {
    const DVec s = v::sub(vs, v::load(&inv[i]));
    ok = ok && v::all_greater(s, vzero);
    const DVec denom = v::mul(s, v::add(vone, v::mul(v::load(&bids[i]), s)));
    v::store(&bonus_out[i], v::div(vr2, denom));
  }
  for (; i < n; ++i) {
    const double s = inverse_sum - inv[i];
    ok = ok && s > 0.0;
    bonus_out[i] = r2 / (s * (1.0 + bids[i] * s));
  }
  return ok;
}

}  // namespace lbmv::alloc::simd

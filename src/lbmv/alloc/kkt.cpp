#include "lbmv/alloc/kkt.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "lbmv/util/error.h"

namespace lbmv::alloc {

std::string KktReport::describe() const {
  std::ostringstream os;
  os << "kkt{positivity=" << (positivity_ok ? "ok" : "FAIL")
     << ", conservation=" << (conservation_ok ? "ok" : "FAIL")
     << " (err=" << conservation_error << ")"
     << ", stationarity=" << (stationarity_ok ? "ok" : "FAIL")
     << " (max viol=" << max_stationarity_violation << ")"
     << ", lambda=" << lambda << "}";
  return os.str();
}

KktReport check_kkt(
    const model::Allocation& x,
    std::span<const std::unique_ptr<model::LatencyFunction>> latencies,
    double arrival_rate, double tol) {
  LBMV_REQUIRE(x.size() == latencies.size(),
               "allocation and latency vector must have equal size");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  LBMV_REQUIRE(tol > 0.0, "tolerance must be positive");

  KktReport report;
  const std::size_t n = x.size();
  const double idle_threshold =
      tol * arrival_rate / static_cast<double>(std::max<std::size_t>(n, 1));

  report.positivity_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] < -idle_threshold) report.positivity_ok = false;
  }
  report.conservation_error =
      std::fabs(x.total_rate() - arrival_rate) /
      std::max(1.0, std::fabs(arrival_rate));
  report.conservation_ok = report.conservation_error <= tol;

  // Estimate lambda as the mean marginal over the active set.
  double lambda_sum = 0.0;
  std::size_t actives = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > idle_threshold) {
      lambda_sum += latencies[i]->marginal_cost(x[i]);
      ++actives;
    }
  }
  if (actives == 0) {
    report.stationarity_ok = false;  // a feasible allocation has active mass
    return report;
  }
  report.lambda = lambda_sum / static_cast<double>(actives);
  const double scale = std::max(std::fabs(report.lambda), 1.0);

  report.stationarity_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    double violation = 0.0;
    if (x[i] > idle_threshold) {
      violation =
          std::fabs(latencies[i]->marginal_cost(x[i]) - report.lambda) / scale;
    } else {
      // Idle computers must not want load: marginal at 0 >= lambda.
      violation = std::max(
          0.0, (report.lambda - latencies[i]->marginal_cost(0.0)) / scale);
    }
    report.max_stationarity_violation =
        std::max(report.max_stationarity_violation, violation);
  }
  if (report.max_stationarity_violation > tol) report.stationarity_ok = false;
  return report;
}

}  // namespace lbmv::alloc

#pragma once

/// \file workload_allocator.h
/// Exact allocation for workload-dependent service rates.
///
/// For the WorkloadFamily latency l_i(x) = theta_i * x * (1 + gamma * x)
/// the cost theta_i * x^2 * (1 + gamma * x) is a strictly convex cubic, so
/// the KKT system is: find a multiplier lambda with
///
///     c_i'(x_i) = 2 theta_i x_i + 3 theta_i gamma x_i^2 = lambda,
///     sum_i x_i = R,
///
/// and every agent interior (the marginal cost at x = 0 is 0 < lambda, so
/// no agent is ever dropped — unlike M/M/1 there is no capacity bound and
/// no active-set search).  Inverting the quadratic gives the closed form
///
///     x_i(lambda) = (sqrt(1 + 3 gamma lambda / theta_i) - 1) / (3 gamma),
///
/// and the conservation residual g(lambda) = sum_i x_i(lambda) - R is
/// increasing and concave in lambda.  The solver is an undamped Newton
/// iteration on g started at the linear-model estimate lambda_0 = 2R / S
/// (S = sum 1/theta_i): since x_i(lambda) <= lambda/(2 theta_i), the start
/// satisfies g(lambda_0) <= 0, and for a concave increasing g every Newton
/// step from a point with g <= 0 lands again at g <= 0 — the iteration is
/// monotone from below, never overshoots, and needs no bracket or damping.
/// Termination is a fixed point (the step rounds to zero), g == 0 exactly,
/// or a 128-iteration cap, all deterministic: results depend only on the
/// inputs, never on timing or thread count.  The g/g' reductions run on the
/// 4-lane util/simd.h vectors, whose AVX2 and emulated backends are
/// bit-identical by construction.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "lbmv/alloc/allocator.h"

namespace lbmv::alloc {

/// Hard cap on Newton iterations; the monotone iteration converges
/// quadratically, so hitting this means the inputs are degenerate (and the
/// result at the cap is still the best lower approximation found).
inline constexpr std::size_t kWorkloadNewtonMaxIters = 128;

/// Everything one workload-family KKT solve derives.
struct WorkloadSolve {
  double lambda = 0.0;           ///< KKT multiplier (marginal cost at optimum)
  double optimal_latency = 0.0;  ///< min sum_i x_i * l_i(x_i)
  std::size_t iterations = 0;    ///< Newton iterations consumed
};

/// Fused solve: fills rates_out[i] = x_i(lambda*) (thetas.size() slots) and
/// returns the solve summary.  Pass \p warm_start_lambda > 0 to start the
/// Newton iteration there instead of at 2R/S — only valid when
/// g(warm_start) <= 0, which holds for any multiplier of a superset of the
/// agents (leave-one-out re-solves warm-start at the full-set lambda*).
WorkloadSolve workload_solve_into(std::span<const double> thetas, double gamma,
                                  double arrival_rate,
                                  std::span<double> rates_out,
                                  double warm_start_lambda = 0.0);

/// Allocator-interface wrapper.  Requires the WorkloadFamily (the gamma is
/// read off the family); exact, so the compensation-and-bonus construction
/// applies.  leave_one_out_into warm-starts each subsystem's Newton at the
/// full-set multiplier, so the whole vector costs a few O(n) refinement
/// passes per agent instead of n cold solves.
class WorkloadAllocator final : public Allocator {
 public:
  [[nodiscard]] model::Allocation allocate(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const override;
  void allocate_into(const model::LatencyFamily& family,
                     std::span<const double> types, double arrival_rate,
                     std::vector<double>& rates) const override;
  [[nodiscard]] double optimal_latency(const model::LatencyFamily& family,
                                       std::span<const double> types,
                                       double arrival_rate) const override;
  void leave_one_out_into(const model::LatencyFamily& family,
                          std::span<const double> types, double arrival_rate,
                          std::vector<double>& out) const override;
  [[nodiscard]] std::string name() const override { return "workload"; }
};

}  // namespace lbmv::alloc

#include "lbmv/alloc/pr_allocator.h"

#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::alloc {
namespace {

double inverse_sum(std::span<const double> types) {
  double s = 0.0;
  for (double t : types) {
    LBMV_REQUIRE(t > 0.0, "PR algorithm requires positive types");
    s += 1.0 / t;
  }
  return s;
}

}  // namespace

model::Allocation pr_allocate(std::span<const double> types,
                              double arrival_rate) {
  LBMV_REQUIRE(!types.empty(), "PR algorithm requires at least one computer");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  const double denom = inverse_sum(types);
  std::vector<double> x(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    x[i] = (1.0 / types[i]) / denom * arrival_rate;
  }
  return model::Allocation(std::move(x));
}

double pr_optimal_latency(std::span<const double> types, double arrival_rate) {
  LBMV_REQUIRE(!types.empty(), "PR algorithm requires at least one computer");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  return arrival_rate * arrival_rate / inverse_sum(types);
}

std::vector<double> pr_leave_one_out_latencies(std::span<const double> types,
                                               double arrival_rate) {
  LBMV_REQUIRE(types.size() >= 2,
               "leave-one-out requires at least two computers");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  if (obs::enabled()) {
    obs::MechProbes& probes = obs::MechProbes::get();
    probes.loo_batches.inc();
    probes.loo_batch_size.record(static_cast<double>(types.size()));
  }
  const double s = inverse_sum(types);
  const double r2 = arrival_rate * arrival_rate;
  std::vector<double> out(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    out[i] = r2 / (s - 1.0 / types[i]);
  }
  return out;
}

model::Allocation PRAllocator::allocate(const model::LatencyFamily&,
                                        std::span<const double> types,
                                        double arrival_rate) const {
  return pr_allocate(types, arrival_rate);
}

double PRAllocator::optimal_latency(const model::LatencyFamily& family,
                                    std::span<const double> types,
                                    double arrival_rate) const {
  // Only the linear family admits the closed form; elsewhere evaluate the
  // proportional split against the family's actual latency curves.
  if (dynamic_cast<const model::LinearFamily*>(&family) != nullptr) {
    return pr_optimal_latency(types, arrival_rate);
  }
  return Allocator::optimal_latency(family, types, arrival_rate);
}

std::vector<double> PRAllocator::leave_one_out_latencies(
    const model::LatencyFamily& family, std::span<const double> types,
    double arrival_rate) const {
  if (dynamic_cast<const model::LinearFamily*>(&family) != nullptr) {
    return pr_leave_one_out_latencies(types, arrival_rate);
  }
  return Allocator::leave_one_out_latencies(family, types, arrival_rate);
}

}  // namespace lbmv::alloc

#include "lbmv/alloc/pr_allocator.h"

#include <string>

#include "lbmv/obs/probes.h"
#include "lbmv/util/error.h"

namespace lbmv::alloc {
namespace {

double inverse_sum(std::span<const double> types) {
  double s = 0.0;
  for (double t : types) {
    LBMV_REQUIRE(t > 0.0, "PR algorithm requires positive types");
    s += 1.0 / t;
  }
  return s;
}

}  // namespace

PrSolve pr_allocate_into(std::span<const double> types, double arrival_rate,
                         std::span<double> rates_out) {
  LBMV_REQUIRE(!types.empty(), "PR algorithm requires at least one computer");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  LBMV_REQUIRE(rates_out.size() == types.size(),
               "rates_out must have one slot per computer");
  const double s = inverse_sum(types);
  for (std::size_t i = 0; i < types.size(); ++i) {
    rates_out[i] = (1.0 / types[i]) / s * arrival_rate;
  }
  return PrSolve{s, arrival_rate * arrival_rate / s};
}

model::Allocation pr_allocate(std::span<const double> types,
                              double arrival_rate) {
  std::vector<double> x(types.size());
  (void)pr_allocate_into(types, arrival_rate, x);
  return model::Allocation(std::move(x));
}

double pr_optimal_latency(std::span<const double> types, double arrival_rate) {
  LBMV_REQUIRE(!types.empty(), "PR algorithm requires at least one computer");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  return arrival_rate * arrival_rate / inverse_sum(types);
}

void pr_leave_one_out_from_sum(double inverse_bid_sum,
                               std::span<const double> types,
                               double arrival_rate, std::span<double> out) {
  LBMV_REQUIRE(types.size() >= 2,
               "leave-one-out requires at least two computers");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  LBMV_REQUIRE(out.size() == types.size(),
               "out must have one slot per computer");
  const double r2 = arrival_rate * arrival_rate;
  const double min_gap = inverse_bid_sum * kLeaveOneOutMinRelativeGap;
  for (std::size_t i = 0; i < types.size(); ++i) {
    const double denom = inverse_bid_sum - 1.0 / types[i];
    LBMV_REQUIRE(
        denom > min_gap,
        "leave-one-out optimum is numerically unresolvable: one agent is so "
        "much faster than the rest combined that S - 1/t_i cancels "
        "catastrophically (agent " +
            std::to_string(i) + " of " + std::to_string(types.size()) + ")");
    out[i] = r2 / denom;
  }
}

void pr_leave_one_out_into(std::span<const double> types, double arrival_rate,
                           std::span<double> out) {
  LBMV_REQUIRE(types.size() >= 2,
               "leave-one-out requires at least two computers");
  if (obs::enabled()) {
    obs::MechProbes& probes = obs::MechProbes::get();
    probes.loo_batches.inc();
    probes.loo_batch_size.record(static_cast<double>(types.size()));
  }
  pr_leave_one_out_from_sum(inverse_sum(types), types, arrival_rate, out);
}

std::vector<double> pr_leave_one_out_latencies(std::span<const double> types,
                                               double arrival_rate) {
  std::vector<double> out(types.size());
  pr_leave_one_out_into(types, arrival_rate, out);
  return out;
}

model::Allocation PRAllocator::allocate(const model::LatencyFamily&,
                                        std::span<const double> types,
                                        double arrival_rate) const {
  return pr_allocate(types, arrival_rate);
}

void PRAllocator::allocate_into(const model::LatencyFamily&,
                                std::span<const double> types,
                                double arrival_rate,
                                std::vector<double>& rates) const {
  rates.resize(types.size());
  (void)pr_allocate_into(types, arrival_rate, rates);
}

double PRAllocator::optimal_latency(const model::LatencyFamily& family,
                                    std::span<const double> types,
                                    double arrival_rate) const {
  // Only the linear family admits the closed form; elsewhere evaluate the
  // proportional split against the family's actual latency curves.
  if (dynamic_cast<const model::LinearFamily*>(&family) != nullptr) {
    return pr_optimal_latency(types, arrival_rate);
  }
  return Allocator::optimal_latency(family, types, arrival_rate);
}

void PRAllocator::leave_one_out_into(const model::LatencyFamily& family,
                                     std::span<const double> types,
                                     double arrival_rate,
                                     std::vector<double>& out) const {
  if (dynamic_cast<const model::LinearFamily*>(&family) != nullptr) {
    out.resize(types.size());
    pr_leave_one_out_into(types, arrival_rate, out);
    return;
  }
  Allocator::leave_one_out_into(family, types, arrival_rate, out);
}

}  // namespace lbmv::alloc

#include "lbmv/alloc/convex_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lbmv/util/error.h"
#include "lbmv/util/roots.h"

namespace lbmv::alloc {
namespace {

/// Solve marginal_cost(x) = lambda for x in (0, max_rate), assuming
/// marginal_cost(0) < lambda and an increasing marginal.
double invert_marginal(const model::LatencyFunction& f, double lambda) {
  const double cap = f.max_rate();
  double hi;
  if (std::isfinite(cap)) {
    // Approach the capacity from below until the marginal exceeds lambda;
    // the marginal blows up at the cap for queueing-style latencies.
    double delta = 0.5 * cap;
    hi = cap - delta;
    while (f.marginal_cost(hi) < lambda && delta > cap * 1e-15) {
      delta *= 0.5;
      hi = cap - delta;
    }
    if (f.marginal_cost(hi) < lambda) return hi;  // effectively saturated
  } else {
    hi = 1.0;
    while (f.marginal_cost(hi) < lambda && hi < 1e300) hi *= 2.0;
    LBMV_ASSERT(f.marginal_cost(hi) >= lambda,
                "marginal cost failed to reach lambda — non-coercive cost?");
  }
  auto g = [&](double x) { return f.marginal_cost(x) - lambda; };
  const double xtol = std::max(hi * 1e-15, 1e-300);
  const auto root = util::bisect(g, 0.0, hi, xtol, 0.0, 300);
  return root.x;
}

}  // namespace

model::Allocation convex_allocate(
    std::span<const std::unique_ptr<model::LatencyFunction>> latencies,
    double arrival_rate, double tol) {
  LBMV_REQUIRE(!latencies.empty(), "need at least one computer");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  LBMV_REQUIRE(tol > 0.0, "tolerance must be positive");

  double total_cap = 0.0;
  bool finite_cap = true;
  for (const auto& f : latencies) {
    LBMV_REQUIRE(f != nullptr, "latency function must not be null");
    if (std::isfinite(f->max_rate())) {
      total_cap += f->max_rate();
    } else {
      finite_cap = false;
    }
  }
  LBMV_REQUIRE(!finite_cap || arrival_rate < total_cap,
               "arrival rate exceeds the total service capacity");

  const std::size_t n = latencies.size();
  auto rates_at = [&](double lambda, std::vector<double>& x) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double m0 = latencies[i]->marginal_cost(0.0);
      x[i] = (lambda <= m0) ? 0.0 : invert_marginal(*latencies[i], lambda);
      total += x[i];
    }
    return total;
  };

  // Bracket lambda.  At lambda = min marginal at 0 the total is 0; expand
  // upward until the total covers the arrival rate.
  double lambda_lo = std::numeric_limits<double>::infinity();
  for (const auto& f : latencies) {
    lambda_lo = std::min(lambda_lo, f->marginal_cost(0.0));
  }
  std::vector<double> x(n);
  double lambda_hi = std::max(1.0, lambda_lo * 2.0 + 1.0);
  int expansions = 0;
  while (rates_at(lambda_hi, x) < arrival_rate) {
    lambda_hi *= 2.0;
    LBMV_ASSERT(++expansions < 2000, "failed to bracket the multiplier");
  }

  // Bisection on the conservation residual.
  const double target_tol = tol * std::max(1.0, arrival_rate);
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lambda_lo + lambda_hi);
    const double total = rates_at(mid, x);
    if (std::fabs(total - arrival_rate) <= target_tol) break;
    if (total < arrival_rate) {
      lambda_lo = mid;
    } else {
      lambda_hi = mid;
    }
    if (lambda_hi - lambda_lo <=
        1e-16 * std::max(1.0, std::fabs(lambda_hi))) {
      break;
    }
  }

  // Make conservation exact: spread the residual over the active computers
  // proportionally (an O(tol) perturbation of the optimum).
  double total = rates_at(0.5 * (lambda_lo + lambda_hi), x);
  LBMV_ASSERT(total > 0.0, "degenerate allocation from bisection");
  const double scale = arrival_rate / total;
  for (double& xi : x) xi *= scale;
  return model::Allocation(std::move(x));
}

model::Allocation ConvexAllocator::allocate(const model::LatencyFamily& family,
                                            std::span<const double> types,
                                            double arrival_rate) const {
  std::vector<std::unique_ptr<model::LatencyFunction>> latencies;
  latencies.reserve(types.size());
  for (double t : types) latencies.push_back(family.make(t));
  return convex_allocate(latencies, arrival_rate, tol_);
}

}  // namespace lbmv::alloc

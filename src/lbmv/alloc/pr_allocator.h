#pragma once

/// \file pr_allocator.h
/// The paper's PR (proportional-rate) allocation algorithm.
///
/// Theorem 2.1: for linear latencies l_i(x) = t_i * x, the total latency
/// L(x) = sum_i t_i x_i^2 is minimised subject to sum x_i = R, x_i >= 0 by
///
///     x_i* = (1/t_i) / (sum_j 1/t_j) * R        (paper eq. (3))
///
/// i.e. jobs are allocated in proportion to processing rates, giving
///
///     L* = R^2 / sum_j (1/t_j).                 (paper eq. (4))

#include <span>
#include <string>
#include <vector>

#include "lbmv/alloc/allocator.h"

namespace lbmv::alloc {

/// Closed-form PR allocation.  Requires positive types and arrival rate.
[[nodiscard]] model::Allocation pr_allocate(std::span<const double> types,
                                            double arrival_rate);

/// Closed-form optimal total latency R^2 / sum(1/t_j) (paper eq. (4)).
[[nodiscard]] double pr_optimal_latency(std::span<const double> types,
                                        double arrival_rate);

/// All n leave-one-out optima in O(n) total: from eq. (4),
///
///     L_{-i} = R^2 / (S - 1/t_i)   with   S = sum_j 1/t_j,
///
/// so one pass accumulates S and a second reads off every subsystem optimum
/// — the quadratic blow-up of re-solving n subsystems never materialises.
/// Requires at least two computers (removing the only one is undefined).
[[nodiscard]] std::vector<double> pr_leave_one_out_latencies(
    std::span<const double> types, double arrival_rate);

/// Allocator-interface wrapper around pr_allocate.
///
/// Exact (optimal) for the LinearFamily; for other families it still returns
/// the proportional split, which is what a system running the paper's
/// protocol on the wrong model would do — useful in ablations, but the
/// generic ConvexAllocator should be preferred off the linear path.
class PRAllocator final : public Allocator {
 public:
  [[nodiscard]] model::Allocation allocate(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const override;
  [[nodiscard]] double optimal_latency(const model::LatencyFamily& family,
                                       std::span<const double> types,
                                       double arrival_rate) const override;
  [[nodiscard]] std::vector<double> leave_one_out_latencies(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const override;
  [[nodiscard]] std::string name() const override { return "pr"; }
};

}  // namespace lbmv::alloc

#pragma once

/// \file pr_allocator.h
/// The paper's PR (proportional-rate) allocation algorithm.
///
/// Theorem 2.1: for linear latencies l_i(x) = t_i * x, the total latency
/// L(x) = sum_i t_i x_i^2 is minimised subject to sum x_i = R, x_i >= 0 by
///
///     x_i* = (1/t_i) / (sum_j 1/t_j) * R        (paper eq. (3))
///
/// i.e. jobs are allocated in proportion to processing rates, giving
///
///     L* = R^2 / sum_j (1/t_j).                 (paper eq. (4))

#include <span>
#include <string>
#include <vector>

#include "lbmv/alloc/allocator.h"

namespace lbmv::alloc {

/// Minimum fraction of S = sum_j 1/t_j the leave-one-out denominator
/// S - 1/t_i must retain.  Below this the subtraction has cancelled ~9
/// decimal digits and the accumulated roundoff of S (itself O(n * eps * S))
/// dominates the result, so the "closed form" would return noise — or, when
/// 1/t_i absorbs S entirely, infinity.  Shared between the scalar kernel and
/// the vectorized guard mask (pr_simd.h) so both reject the same profiles.
inline constexpr double kLeaveOneOutMinRelativeGap = 1e-9;

/// Everything the PR closed form derives from one pass over the types.
/// Returned by pr_allocate_into so callers that need the allocation, the
/// optimum, and the leave-one-out vector never accumulate S twice.
struct PrSolve {
  double inverse_sum = 0.0;      ///< S = sum_j 1/t_j
  double optimal_latency = 0.0;  ///< L* = R^2 / S (paper eq. (4))
};

/// Fused single-pass solve: fills rates_out[i] = (1/t_i)/S * R and returns
/// {S, R^2/S}.  This is the allocation-free kernel entry point — no heap
/// traffic, \p rates_out must already have types.size() slots.  Both
/// pr_allocate and pr_optimal_latency reduce to it, so the inverse sum is
/// accumulated exactly once however many PR quantities a round needs.
PrSolve pr_allocate_into(std::span<const double> types, double arrival_rate,
                         std::span<double> rates_out);

/// Closed-form PR allocation.  Requires positive types and arrival rate.
[[nodiscard]] model::Allocation pr_allocate(std::span<const double> types,
                                            double arrival_rate);

/// Closed-form optimal total latency R^2 / sum(1/t_j) (paper eq. (4)).
[[nodiscard]] double pr_optimal_latency(std::span<const double> types,
                                        double arrival_rate);

/// All n leave-one-out optima in O(n) total: from eq. (4),
///
///     L_{-i} = R^2 / (S - 1/t_i)   with   S = sum_j 1/t_j,
///
/// so one pass accumulates S and a second reads off every subsystem optimum
/// — the quadratic blow-up of re-solving n subsystems never materialises.
/// Requires at least two computers (removing the only one is undefined).
[[nodiscard]] std::vector<double> pr_leave_one_out_latencies(
    std::span<const double> types, double arrival_rate);

/// Allocation-free variant writing into \p out (must have types.size()
/// slots).
void pr_leave_one_out_into(std::span<const double> types, double arrival_rate,
                           std::span<double> out);

/// Leave-one-out optima when S = sum_j 1/t_j is already known (e.g. from
/// pr_allocate_into in the same round): skips the accumulation pass.
///
/// Guards against catastrophic cancellation: when one agent is so fast that
/// S - 1/t_i underflows to a value carrying no correct digits (the
/// subtraction cancels more than ~9 significant decimal digits), the old
/// formulation silently returned a garbage — or infinite — subsystem
/// optimum.  Such a profile now fails an LBMV_REQUIRE with a diagnostic
/// naming the dominant agent instead.
void pr_leave_one_out_from_sum(double inverse_sum,
                               std::span<const double> types,
                               double arrival_rate, std::span<double> out);

/// Allocator-interface wrapper around pr_allocate.
///
/// Exact (optimal) for the LinearFamily; for other families it still returns
/// the proportional split, which is what a system running the paper's
/// protocol on the wrong model would do — useful in ablations, but the
/// generic ConvexAllocator should be preferred off the linear path.
class PRAllocator final : public Allocator {
 public:
  [[nodiscard]] model::Allocation allocate(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const override;
  void allocate_into(const model::LatencyFamily& family,
                     std::span<const double> types, double arrival_rate,
                     std::vector<double>& rates) const override;
  [[nodiscard]] double optimal_latency(const model::LatencyFamily& family,
                                       std::span<const double> types,
                                       double arrival_rate) const override;
  void leave_one_out_into(const model::LatencyFamily& family,
                          std::span<const double> types, double arrival_rate,
                          std::vector<double>& out) const override;
  [[nodiscard]] std::string name() const override { return "pr"; }
};

}  // namespace lbmv::alloc

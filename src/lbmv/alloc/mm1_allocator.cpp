#include "lbmv/alloc/mm1_allocator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "lbmv/util/error.h"

namespace lbmv::alloc {

model::Allocation mm1_allocate(std::span<const double> mus,
                               double arrival_rate) {
  LBMV_REQUIRE(!mus.empty(), "need at least one computer");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  double total_mu = 0.0;
  for (double mu : mus) {
    LBMV_REQUIRE(mu > 0.0, "service rates must be positive");
    total_mu += mu;
  }
  LBMV_REQUIRE(arrival_rate < total_mu,
               "arrival rate exceeds the total service capacity");

  // Indices sorted by decreasing service rate; the active set is always a
  // prefix of this order.
  std::vector<std::size_t> order(mus.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return mus[a] > mus[b]; });

  std::size_t active = order.size();
  double c = 0.0;
  for (;;) {
    double sum_mu = 0.0;
    double sum_sqrt = 0.0;
    for (std::size_t k = 0; k < active; ++k) {
      sum_mu += mus[order[k]];
      sum_sqrt += std::sqrt(mus[order[k]]);
    }
    c = (sum_mu - arrival_rate) / sum_sqrt;
    LBMV_ASSERT(c > 0.0, "active set lost the capacity to absorb the load");
    // Drop trailing computers whose load would be non-positive.
    std::size_t keep = active;
    while (keep > 1 && std::sqrt(mus[order[keep - 1]]) <= c) --keep;
    if (keep == active) break;
    active = keep;
  }

  std::vector<double> x(mus.size(), 0.0);
  for (std::size_t k = 0; k < active; ++k) {
    const std::size_t i = order[k];
    x[i] = mus[i] - c * std::sqrt(mus[i]);
    LBMV_ASSERT(x[i] > 0.0 && x[i] < mus[i],
                "closed-form M/M/1 allocation left its feasible domain");
  }
  return model::Allocation(std::move(x));
}

model::Allocation MM1Allocator::allocate(const model::LatencyFamily& family,
                                         std::span<const double> types,
                                         double arrival_rate) const {
  LBMV_REQUIRE(dynamic_cast<const model::MM1Family*>(&family) != nullptr,
               "MM1Allocator requires the MM1 latency family");
  std::vector<double> mus(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    LBMV_REQUIRE(types[i] > 0.0, "types must be positive");
    mus[i] = 1.0 / types[i];
  }
  return mm1_allocate(mus, arrival_rate);
}

}  // namespace lbmv::alloc

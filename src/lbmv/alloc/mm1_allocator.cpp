#include "lbmv/alloc/mm1_allocator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "lbmv/util/error.h"

namespace lbmv::alloc {

Mm1Solve mm1_solve_into(std::span<const double> mus, double arrival_rate,
                        std::span<double> rates_out) {
  LBMV_REQUIRE(!mus.empty(), "need at least one computer");
  LBMV_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  LBMV_REQUIRE(rates_out.size() == mus.size(), "rates_out size mismatch");
  double total_mu = 0.0;
  for (double mu : mus) {
    LBMV_REQUIRE(mu > 0.0, "service rates must be positive");
    total_mu += mu;
  }
  LBMV_REQUIRE(arrival_rate < total_mu,
               "arrival rate exceeds the total service capacity");
  LBMV_REQUIRE(total_mu - arrival_rate >= kMm1MinRelativeSlack * total_mu,
               "arrival rate sits within 1e-9 of the total service capacity: "
               "the M/M/1 closed form would return only cancelled digits");

  // Indices sorted by decreasing service rate; the active set is always a
  // prefix of this order.
  std::vector<std::size_t> order(mus.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return mus[a] > mus[b]; });

  std::size_t active = order.size();
  double c = 0.0;
  double sum_sqrt = 0.0;
  for (;;) {
    double sum_mu = 0.0;
    sum_sqrt = 0.0;
    for (std::size_t k = 0; k < active; ++k) {
      sum_mu += mus[order[k]];
      sum_sqrt += std::sqrt(mus[order[k]]);
    }
    c = (sum_mu - arrival_rate) / sum_sqrt;
    LBMV_ASSERT(c > 0.0, "active set lost the capacity to absorb the load");
    // Drop trailing computers whose load would be non-positive.
    std::size_t keep = active;
    while (keep > 1 && std::sqrt(mus[order[keep - 1]]) <= c) --keep;
    if (keep == active) break;
    active = keep;
  }

  std::fill(rates_out.begin(), rates_out.end(), 0.0);
  for (std::size_t k = 0; k < active; ++k) {
    const std::size_t i = order[k];
    rates_out[i] = mus[i] - c * std::sqrt(mus[i]);
    LBMV_ASSERT(rates_out[i] > 0.0 && rates_out[i] < mus[i],
                "closed-form M/M/1 allocation left its feasible domain");
  }

  Mm1Solve solve;
  solve.c = c;
  solve.active = active;
  solve.sum_sqrt_active = sum_sqrt;
  // Active queue lengths collapse to x/(mu - x) = sqrt(mu)/c - 1; dropped
  // computers carry no load and so no latency.
  solve.optimal_latency = sum_sqrt / c - static_cast<double>(active);
  return solve;
}

model::Allocation mm1_allocate(std::span<const double> mus,
                               double arrival_rate) {
  std::vector<double> x(mus.size(), 0.0);
  mm1_solve_into(mus, arrival_rate, x);
  return model::Allocation(std::move(x));
}

double mm1_optimal_latency(std::span<const double> mus, double arrival_rate) {
  std::vector<double> scratch(mus.size(), 0.0);
  return mm1_solve_into(mus, arrival_rate, scratch).optimal_latency;
}

namespace {

void types_to_mus(const model::LatencyFamily& family,
                  std::span<const double> types, std::vector<double>& mus) {
  LBMV_REQUIRE(dynamic_cast<const model::MM1Family*>(&family) != nullptr,
               "MM1Allocator requires the MM1 latency family");
  mus.resize(types.size());
  for (std::size_t i = 0; i < types.size(); ++i) {
    LBMV_REQUIRE(types[i] > 0.0, "types must be positive");
    mus[i] = 1.0 / types[i];
  }
}

}  // namespace

model::Allocation MM1Allocator::allocate(const model::LatencyFamily& family,
                                         std::span<const double> types,
                                         double arrival_rate) const {
  std::vector<double> mus;
  types_to_mus(family, types, mus);
  return mm1_allocate(mus, arrival_rate);
}

void MM1Allocator::allocate_into(const model::LatencyFamily& family,
                                 std::span<const double> types,
                                 double arrival_rate,
                                 std::vector<double>& rates) const {
  std::vector<double> mus;
  types_to_mus(family, types, mus);
  rates.resize(types.size());
  mm1_solve_into(mus, arrival_rate, rates);
}

double MM1Allocator::optimal_latency(const model::LatencyFamily& family,
                                     std::span<const double> types,
                                     double arrival_rate) const {
  std::vector<double> mus;
  types_to_mus(family, types, mus);
  return mm1_optimal_latency(mus, arrival_rate);
}

void MM1Allocator::leave_one_out_into(const model::LatencyFamily& family,
                                      std::span<const double> types,
                                      double arrival_rate,
                                      std::vector<double>& out) const {
  const std::size_t n = types.size();
  LBMV_REQUIRE(n >= 2, "leave-one-out requires at least two computers");
  std::vector<double> mus;
  types_to_mus(family, types, mus);

  double sum_mu = 0.0;
  double sum_a = 0.0;
  // min / second-min of a_j = sqrt(mu_j): min over j != i is the global min
  // unless i is the argmin, in which case it is the runner-up.
  double min_a = std::numeric_limits<double>::infinity();
  double second_a = std::numeric_limits<double>::infinity();
  std::size_t argmin_a = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = std::sqrt(mus[i]);
    sum_mu += mus[i];
    sum_a += a;
    if (a < min_a) {
      second_a = min_a;
      min_a = a;
      argmin_a = i;
    } else if (a < second_a) {
      second_a = a;
    }
  }

  out.resize(n);
  std::vector<double> rest;      // lazy: only built when a rest set is not
  std::vector<double> scratch;   // all-active and needs the full solver
  for (std::size_t i = 0; i < n; ++i) {
    const double rest_mu = sum_mu - mus[i];
    const double slack = rest_mu - arrival_rate;
    if (slack <= 0.0 || slack < kMm1MinRelativeSlack * rest_mu) {
      std::ostringstream os;
      os << "leave-one-out subsystem without computer " << i
         << " cannot absorb the arrival rate (sum of remaining service "
            "rates "
         << rest_mu << " vs arrival rate " << arrival_rate
         << "): the M/M/1 closed form is undefined there";
      throw util::PreconditionError(os.str());
    }
    const double rest_a = sum_a - std::sqrt(mus[i]);
    const double c = slack / rest_a;
    const double rest_min_a = i == argmin_a ? second_a : min_a;
    if (rest_min_a > c) {
      // Every remaining computer stays active: O(1) closed form.
      out[i] = rest_a / c - static_cast<double>(n - 1);
    } else {
      // Some computer drops out of the rest set; run the full active-set
      // solve on the subsystem.
      rest.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) rest.push_back(mus[j]);
      }
      scratch.resize(rest.size());
      out[i] = mm1_solve_into(rest, arrival_rate, scratch).optimal_latency;
    }
  }
}

}  // namespace lbmv::alloc

#pragma once

/// \file convex_allocator.h
/// General convex-latency allocation by marginal-cost equalisation.
///
/// For any family of convex costs c_i(x) = x * l_i(x) with strictly
/// increasing marginals, the KKT conditions of
///
///     minimise sum_i c_i(x_i)  s.t.  sum_i x_i = R,  x_i >= 0
///
/// state that there exists a multiplier lambda with c_i'(x_i) = lambda on
/// the active set and c_i'(0) >= lambda for idle computers (paper Appendix,
/// Kuhn–Tucker argument of Theorem 2.1).  The solver searches lambda by
/// bisection, inverting each marginal numerically; this recovers the PR
/// closed form on linear latencies to ~1e-12 and extends to M/M/1, M/G/1
/// and power-law latencies unchanged.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lbmv/alloc/allocator.h"

namespace lbmv::alloc {

/// Water-filling solver over explicit latency curves.
///
/// Requires arrival_rate < sum of max_rate() over the curves (finite-capacity
/// families such as M/M/1 must be able to absorb the load).
[[nodiscard]] model::Allocation convex_allocate(
    std::span<const std::unique_ptr<model::LatencyFunction>> latencies,
    double arrival_rate, double tol = 1e-12);

/// Allocator-interface wrapper instantiating curves from a family.
class ConvexAllocator final : public Allocator {
 public:
  /// \p tol is the relative tolerance on the conservation constraint.
  explicit ConvexAllocator(double tol = 1e-12) : tol_(tol) {}

  [[nodiscard]] model::Allocation allocate(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const override;
  [[nodiscard]] std::string name() const override { return "convex"; }

 private:
  double tol_;
};

}  // namespace lbmv::alloc

#pragma once

/// \file mm1_allocator.h
/// Closed-form optimal allocation for M/M/1 computers.
///
/// Extension beyond the paper: its companion (Grosu & Chronopoulos,
/// "Algorithmic Mechanism Design for Load Balancing in Distributed Systems",
/// Cluster 2002) models computers as M/M/1 queues with expected response
/// time 1/(mu_i - x_i).  Minimising sum_i x_i/(mu_i - x_i) subject to
/// sum x_i = R gives the square-root allocation
///
///     x_i = mu_i - sqrt(mu_i) * (sum_A mu_j - R) / sum_A sqrt(mu_j)
///
/// over the active set A = { i : sqrt(mu_i) > (sum_A mu_j - R)/sum_A sqrt(mu_j) },
/// found by iteratively dropping computers that would receive negative load.
///
/// With a = sqrt(mu) the per-computer queue length collapses to
/// x_i/(mu_i - x_i) = a_i/c - 1 for active computers, so the optimal total
/// latency is (sum_A a_j)/c - |A| — every derived quantity the mechanism
/// needs (optimum, leave-one-out vector) is closed-form too.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "lbmv/alloc/allocator.h"

namespace lbmv::alloc {

/// Minimum fraction of the remaining capacity sum the leave-one-out slack
/// sum_{j != i} mu_j - R must retain (mirroring kLeaveOneOutMinRelativeGap
/// for the PR closed form): below this the subtraction has cancelled ~9
/// decimal digits and the closed form would return noise, so such profiles
/// fail a typed PreconditionError naming the dominant agent instead.
inline constexpr double kMm1MinRelativeSlack = 1e-9;

/// Everything one M/M/1 closed-form solve derives.
struct Mm1Solve {
  double c = 0.0;            ///< (sum_A mu_j - R) / sum_A sqrt(mu_j)
  std::size_t active = 0;    ///< |A|: computers receiving positive load
  double sum_sqrt_active = 0.0;  ///< sum_A sqrt(mu_j)
  double optimal_latency = 0.0;  ///< min sum_i x_i/(mu_i - x_i)
};

/// Fused solve: fills rates_out[i] (mus.size() slots, zero for dropped
/// computers) and returns the solve summary including the closed-form
/// optimum.  Throws PreconditionError when arrival_rate >= sum(mus).
Mm1Solve mm1_solve_into(std::span<const double> mus, double arrival_rate,
                        std::span<double> rates_out);

/// Closed-form allocation for service rates \p mus.  Requires
/// 0 < arrival_rate < sum(mus).
[[nodiscard]] model::Allocation mm1_allocate(std::span<const double> mus,
                                             double arrival_rate);

/// Closed-form optimal total latency min sum_i x_i/(mu_i - x_i).
[[nodiscard]] double mm1_optimal_latency(std::span<const double> mus,
                                         double arrival_rate);

/// Allocator-interface wrapper.  Interprets types as mean service times
/// theta_i = 1/mu_i (matching MM1Family); rejects other families.  Exact,
/// so the compensation-and-bonus truthfulness construction applies, and the
/// closed-form overrides below keep the batched payment engine O(n) per
/// leave-one-out vector instead of O(n^2 log n) re-solves.
class MM1Allocator final : public Allocator {
 public:
  [[nodiscard]] model::Allocation allocate(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const override;
  void allocate_into(const model::LatencyFamily& family,
                     std::span<const double> types, double arrival_rate,
                     std::vector<double>& rates) const override;
  [[nodiscard]] double optimal_latency(const model::LatencyFamily& family,
                                       std::span<const double> types,
                                       double arrival_rate) const override;
  void leave_one_out_into(const model::LatencyFamily& family,
                          std::span<const double> types, double arrival_rate,
                          std::vector<double>& out) const override;
  [[nodiscard]] std::string name() const override { return "mm1"; }
};

}  // namespace lbmv::alloc

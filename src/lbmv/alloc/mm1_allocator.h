#pragma once

/// \file mm1_allocator.h
/// Closed-form optimal allocation for M/M/1 computers.
///
/// Extension beyond the paper: its companion (Grosu & Chronopoulos,
/// "Algorithmic Mechanism Design for Load Balancing in Distributed Systems",
/// Cluster 2002) models computers as M/M/1 queues with expected response
/// time 1/(mu_i - x_i).  Minimising sum_i x_i/(mu_i - x_i) subject to
/// sum x_i = R gives the square-root allocation
///
///     x_i = mu_i - sqrt(mu_i) * (sum_A mu_j - R) / sum_A sqrt(mu_j)
///
/// over the active set A = { i : sqrt(mu_i) > (sum_A mu_j - R)/sum_A sqrt(mu_j) },
/// found by iteratively dropping computers that would receive negative load.

#include <span>
#include <string>

#include "lbmv/alloc/allocator.h"

namespace lbmv::alloc {

/// Closed-form allocation for service rates \p mus.  Requires
/// 0 < arrival_rate < sum(mus).
[[nodiscard]] model::Allocation mm1_allocate(std::span<const double> mus,
                                             double arrival_rate);

/// Allocator-interface wrapper.  Interprets types as mean service times
/// theta_i = 1/mu_i (matching MM1Family); rejects other families.
class MM1Allocator final : public Allocator {
 public:
  [[nodiscard]] model::Allocation allocate(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const override;
  [[nodiscard]] std::string name() const override { return "mm1"; }
};

}  // namespace lbmv::alloc

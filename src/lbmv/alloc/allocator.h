#pragma once

/// \file allocator.h
/// Interface shared by all allocation solvers.
///
/// Mechanisms (lbmv/core) are written against this interface so the
/// compensation-and-bonus construction works for any latency family with an
/// exact-optimal allocator: the mechanism's truthfulness proof only needs
/// the allocation rule to minimise total latency for the reported types.

#include <span>
#include <string>
#include <vector>

#include "lbmv/model/allocation.h"
#include "lbmv/model/latency.h"

namespace lbmv::alloc {

/// An exact or numeric minimiser of total latency over feasible allocations.
class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Allocation minimising sum_i x_i * l_i(x_i) over x >= 0, sum x = R,
  /// where l_i = family.make(types[i]).
  [[nodiscard]] virtual model::Allocation allocate(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const = 0;

  /// Allocation-free variant of allocate for batched round kernels: fills
  /// \p rates (resized to types.size()) reusing its capacity.  The default
  /// wraps allocate; closed-form allocators override so a warm caller's
  /// steady state performs no heap allocation at all.
  virtual void allocate_into(const model::LatencyFamily& family,
                             std::span<const double> types,
                             double arrival_rate,
                             std::vector<double>& rates) const;

  /// Minimum total latency for the given types.  The default evaluates the
  /// allocation; closed-form allocators override with the direct formula.
  [[nodiscard]] virtual double optimal_latency(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const;

  /// All n leave-one-out optima in one call: result[i] is the minimum total
  /// latency of the subsystem with agent i removed, at the same arrival
  /// rate.  This is the payment engine's hot loop — every marginal-payment
  /// rule (compensation-and-bonus, VCG) needs the full vector once per
  /// round.  Implemented on top of leave_one_out_into.  Requires n >= 2.
  [[nodiscard]] std::vector<double> leave_one_out_latencies(
      const model::LatencyFamily& family, std::span<const double> types,
      double arrival_rate) const;

  /// Allocation-free leave-one-out: fills \p out (resized to types.size())
  /// reusing its capacity.  The default re-solves each subsystem against a
  /// single reused scratch buffer (n solves, no per-agent profile copies);
  /// closed-form allocators override with an O(n)-total formula.
  virtual void leave_one_out_into(const model::LatencyFamily& family,
                                  std::span<const double> types,
                                  double arrival_rate,
                                  std::vector<double>& out) const;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace lbmv::alloc

// The `lbmv` command-line tool.  All behaviour lives in lbmv::cli::run_cli
// (src/lbmv/cli/commands.cpp) so it can be unit tested; this is only the
// process entry point.

#include <iostream>
#include <string>
#include <vector>

#include "lbmv/cli/commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return lbmv::cli::run_cli(args, std::cout, std::cerr);
}

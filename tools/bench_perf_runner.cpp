// Records the repo's performance trajectory: times the payment-engine and
// audit hot paths at n = 64 / 256 / 1024 and writes BENCH_perf.json.  Run
// from the repo root after a perf-relevant change and commit the file so
// regressions (or wins) are visible in history:
//
//     ./build/tools/lbmv_bench_perf [output.json]
//
// Measured series:
//   * pr_allocate              closed-form PR allocation            O(n)
//   * leave_one_out_batch      batch L_{-i} engine (closed form)    O(n)
//   * leave_one_out_per_agent  seed formulation: re-solve per agent O(n^2)
//   * comp_bonus_round         full mechanism round                 O(n)
//   * audit_all                incremental audit, parallel agents
//   * audit_all_legacy         full mechanism re-run per grid point
//                              (n <= 256: the quadratic path is the point)

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"
#include "lbmv/util/json.h"
#include "lbmv/util/rng.h"

namespace {

using lbmv::util::JsonValue;

std::vector<double> random_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
  }
  return t;
}

/// Seconds per call: warm up once, then repeat until the total exceeds
/// min_seconds (and at least min_reps calls) so fast paths are not measured
/// off a single clock tick.
template <typename F>
double seconds_per_call(F&& f, double min_seconds = 0.2, int min_reps = 5) {
  using clock = std::chrono::steady_clock;
  f();  // warm-up
  int reps = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds || reps < min_reps) {
    f();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
    if (reps >= 1000000) break;
  }
  return elapsed / reps;
}

struct Result {
  std::string name;
  std::size_t n;
  double seconds;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "BENCH_perf.json";
  const double arrival_rate = 20.0;
  const std::vector<std::size_t> sizes{64, 256, 1024};

  const lbmv::model::LinearFamily family;
  const lbmv::alloc::PRAllocator allocator;
  std::vector<Result> results;
  double audit_incremental_256 = 0.0;
  double audit_legacy_256 = 0.0;

  for (std::size_t n : sizes) {
    const auto types = random_types(n, 42);
    const lbmv::model::SystemConfig config(types, arrival_rate);
    const lbmv::core::CompBonusMechanism mechanism;
    const auto profile = lbmv::model::BidProfile::truthful(config);

    results.push_back({"pr_allocate", n, seconds_per_call([&] {
                         (void)lbmv::alloc::pr_allocate(types, arrival_rate);
                       })});

    results.push_back(
        {"leave_one_out_batch", n, seconds_per_call([&] {
           (void)allocator.leave_one_out_latencies(family, types,
                                                   arrival_rate);
         })});

    results.push_back(
        {"leave_one_out_per_agent", n, seconds_per_call([&] {
           std::vector<double> out(n);
           std::vector<double> rest;
           for (std::size_t i = 0; i < n; ++i) {
             rest.assign(types.begin(), types.end());
             rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i));
             out[i] = allocator.optimal_latency(family, rest, arrival_rate);
           }
         })});

    results.push_back({"comp_bonus_round", n, seconds_per_call([&] {
                         (void)mechanism.run(config, profile);
                       })});

    const lbmv::core::TruthfulnessAuditor auditor(mechanism);
    lbmv::core::AuditOptions incremental;
    const double audit_seconds = seconds_per_call(
        [&] { (void)auditor.audit_all(config, incremental); }, 0.5, 3);
    results.push_back({"audit_all", n, audit_seconds});
    if (n == 256) audit_incremental_256 = audit_seconds;

    if (n <= 256) {
      lbmv::core::AuditOptions legacy;
      legacy.incremental = false;
      const double legacy_seconds = seconds_per_call(
          [&] { (void)auditor.audit_all(config, legacy); }, 0.5, 3);
      results.push_back({"audit_all_legacy", n, legacy_seconds});
      if (n == 256) audit_legacy_256 = legacy_seconds;
    }
  }

  JsonValue::Array series;
  for (const auto& r : results) {
    JsonValue::Object entry;
    entry["name"] = r.name;
    entry["n"] = static_cast<double>(r.n);
    entry["seconds_per_call"] = r.seconds;
    series.emplace_back(std::move(entry));
    std::cout << r.name << " n=" << r.n << ": " << r.seconds * 1e6
              << " us/call\n";
  }

  JsonValue::Object derived;
  if (audit_incremental_256 > 0.0 && audit_legacy_256 > 0.0) {
    derived["audit_all_speedup_n256"] =
        audit_legacy_256 / audit_incremental_256;
    std::cout << "audit_all speedup at n=256: "
              << audit_legacy_256 / audit_incremental_256 << "x\n";
  }

  JsonValue::Object doc;
  doc["schema"] = "lbmv-bench-perf-v1";
  doc["arrival_rate"] = arrival_rate;
  doc["results"] = std::move(series);
  doc["derived"] = std::move(derived);

  std::ofstream out(output);
  if (!out) {
    std::cerr << "cannot open " << output << " for writing\n";
    return 1;
  }
  out << JsonValue(std::move(doc)).dump(2) << "\n";
  std::cout << "wrote " << output << "\n";
  return 0;
}

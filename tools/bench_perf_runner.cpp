// Records the repo's performance trajectory: times the payment-engine and
// audit hot paths at n = 64 / 256 / 1024 and writes BENCH_perf.json.  Run
// from the repo root after a perf-relevant change and commit the file so
// regressions (or wins) are visible in history:
//
//     ./build/tools/lbmv_bench_perf [output.json]
//
// Measured series:
//   * pr_allocate              closed-form PR allocation            O(n)
//   * leave_one_out_batch      batch L_{-i} engine (closed form)    O(n)
//   * leave_one_out_per_agent  seed formulation: re-solve per agent O(n^2)
//   * comp_bonus_round         full mechanism round                 O(n)
//   * audit_all                incremental audit, parallel agents
//   * audit_all_legacy         full mechanism re-run per grid point
//                              (n <= 256: the quadratic path is the point)
//
// plus a `sim_throughput` section comparing the typed calendar-queue event
// loop (engine.h) with the preserved seed std::function loop
// (legacy_engine.h) in the same run: pure dispatch events/sec at several
// pending-event populations, full queueing-stack events/sec, and
// replications/sec at 1/4/8 pool threads,
//
// plus an `obs_overhead` section measuring the observability layer's cost
// on the same dispatch ring: events/sec with recording off (probes are one
// relaxed load) and with recording on (counters + gauges live), side by
// side so the off-state stays within the run-to-run noise of the plain
// numbers above,
//
// plus a `strategy_throughput` section for the single-deviation game
// engine: one best-response round through the O(1) DeviationEvaluator vs
// the naive re-run-the-mechanism baseline measured in this same run,
// tournament instance and learning replication rates at 1 and 8 pool
// threads, and a differential cross-check (incremental vs naive utilities
// across all four mechanisms including boundary bids) whose failure makes
// the runner exit non-zero.
//
// plus a `batch_round_throughput` section for the allocation-free batched
// round kernels (DESIGN.md §11): rounds/sec through the preserved seed
// formulation (fresh allocations every round), the current scalar run()
// loop, and ProfileBatch::run_batch serial/parallel, with a differential
// cross-check against the seed formulation that also gates the exit code.
//
// plus a `deviation_grid` section for the lane-parallel deviation-grid
// kernels (DESIGN.md §13): full candidate-bid sweeps (grid = 1000 bids per
// agent over [0.05 t, 20 t]) through the scalar per-point
// DeviationEvaluator loop, the 4-lane GridEvaluator serial, and the
// GridEvaluator fanned over an 8-thread pool — all in this same run — with
// a 1e-9 vectorized-vs-scalar differential gate on the exit code.
//
// plus an `obs_timeseries` section for the live-telemetry pipeline
// (DESIGN.md §9): the single-round hot path timed with recording disabled
// vs enabled (probes + invariant monitors live), the time-series sampler's
// per-scrape cost, and a zero-violations monitor gate on the exit code
// that dumps the flight recorder as JSONL when it fails,
//
// plus a `nonlinear_round` section for the fused nonlinear-family round
// kernels (DESIGN.md §14): one M/M/1 round and one workload-family round
// at n = 256 / 1024 / 10000 through the generic virtual-dispatch arena
// (kScalar backend, the scalar oracle) and the fused engines (kVectorized)
// on the same mechanisms in this same run, with a fused-vs-generic outcome
// differential and a Newton-vs-long-double-bisection check on the workload
// KKT multiplier, both gating the exit code at 1e-9.
//
// plus a `delta_round` section for the cross-round delta engine
// (DESIGN.md §15): the k = 1 changed-bid round scalars at n = 1024 through
// a persistent DeltaRoundEngine (one O(1) apply + the O(1) closed-form
// scalars) vs a full run_into round measured in this same run, with a
// delta-vs-full-rebuild scalar differential across all three latency
// families — after hundreds of random deltas each — gating the exit code
// at 1e-9.
//
// The emitted document carries a top-level `sections` manifest listing
// every section key actually written, so consumers (the CI perf-smoke
// check) can assert the documented shape matches the real one instead of
// trusting prose notes that drift.  Run configuration (arrival rate, smoke
// mode) is nested under a `config` object, never as stray top-level keys.
//
// `--smoke` shrinks every workload (CI-sized: n = 64, short timing
// windows, sim/obs sections skipped) while still emitting the
// strategy_throughput, batch_round_throughput, deviation_grid,
// obs_timeseries, nonlinear_round, and delta_round sections
// (deviation_grid keeping its n = 256 row and nonlinear_round/delta_round
// their n = 1024 rows so the speedup gates stay meaningful) and running
// the full cross-checks.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <span>
#include <fstream>
#include <limits>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/alloc/workload_allocator.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/batch.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/delta_engine.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"
#include "lbmv/model/system_config.h"
#include "lbmv/obs/flight_recorder.h"
#include "lbmv/obs/metrics.h"
#include "lbmv/obs/monitor.h"
#include "lbmv/obs/obs.h"
#include "lbmv/obs/sampler.h"
#include "lbmv/sim/engine.h"
#include "lbmv/sim/job_source.h"
#include "lbmv/sim/legacy_engine.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/sim/replication.h"
#include "lbmv/sim/server.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/simd_round.h"
#include "lbmv/core/vcg.h"
#include "lbmv/strategy/best_response.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/grid.h"
#include "lbmv/strategy/grid_eval.h"
#include "lbmv/strategy/learning.h"
#include "lbmv/strategy/strategy.h"
#include "lbmv/strategy/tournament.h"
#include "lbmv/util/simd.h"
#include "lbmv/util/json.h"
#include "lbmv/util/rng.h"
#include "lbmv/util/thread_pool.h"

namespace {

using lbmv::util::JsonValue;

std::vector<double> random_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = std::exp(rng.uniform(std::log(0.2), std::log(20.0)));
  }
  return t;
}

/// Mean service times in a narrow band (mu = 1/theta in [1, 2]): at
/// R = half the total capacity every computer stays active in the full set
/// and in all n leave-one-out subsystems, so the fused M/M/1 engine owns
/// the round and the generic/fused comparison times identical all-active
/// work (heterogeneous profiles that drop computers take the generic path
/// by design; see family_round.h).
std::vector<double> narrow_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) {
    ti = rng.uniform(0.5, 1.0);
  }
  return t;
}

/// Long-double bisection oracle for the workload-family KKT solve: brackets
/// the conservation residual g(lambda) = sum_i x_i(lambda) - R from the
/// guaranteed-below start 2R/S, bisects to long-double convergence, and
/// returns the max relative error of the Newton rates against the oracle
/// rates x_i(lambda*).
double workload_bisection_max_rel_err(std::span<const double> thetas,
                                      double gamma, double arrival_rate,
                                      std::span<const double> newton_rates) {
  const long double g3 = 3.0L * static_cast<long double>(gamma);
  const auto rate_at = [&](long double lambda, double theta) {
    return (std::sqrt(1.0L + g3 * lambda / static_cast<long double>(theta)) -
            1.0L) /
           g3;
  };
  const auto residual = [&](long double lambda) {
    long double sum = 0.0L;
    for (double theta : thetas) sum += rate_at(lambda, theta);
    return sum - static_cast<long double>(arrival_rate);
  };
  long double inv_sum = 0.0L;
  for (double theta : thetas) inv_sum += 1.0L / theta;
  // x_i(lambda) <= lambda / (2 theta_i), so g(2R/S) <= 0: a valid lower
  // bracket (the same start the Newton solver uses).
  long double lo = 2.0L * static_cast<long double>(arrival_rate) / inv_sum;
  long double hi = lo > 0.0L ? 2.0L * lo : 1.0L;
  while (residual(hi) <= 0.0L) hi *= 2.0L;
  for (int it = 0; it < 200; ++it) {
    const long double mid = 0.5L * (lo + hi);
    if (residual(mid) <= 0.0L) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const long double lambda = 0.5L * (lo + hi);
  double max_err = 0.0;
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const long double oracle = rate_at(lambda, thetas[i]);
    const double err = static_cast<double>(
        std::fabs(static_cast<long double>(newton_rates[i]) - oracle) /
        std::fmax(1.0L, std::fabs(oracle)));
    max_err = std::max(max_err, err);
  }
  return max_err;
}

/// Seconds per call: warm up once, then repeat until the total exceeds
/// min_seconds (and at least min_reps calls) so fast paths are not measured
/// off a single clock tick.
template <typename F>
double seconds_per_call(F&& f, double min_seconds = 0.2, int min_reps = 5) {
  using clock = std::chrono::steady_clock;
  f();  // warm-up
  int reps = 0;
  const auto start = clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds || reps < min_reps) {
    f();
    ++reps;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
    if (reps >= 1000000) break;
  }
  return elapsed / reps;
}

struct Result {
  std::string name;
  std::size_t n;
  double seconds;
};

// ---- sim throughput workloads ---------------------------------------------

/// Per-sink re-schedule increment, log-spread over two decades to mirror
/// the paper's heterogeneous service rates.
double ring_increment(std::size_t i) {
  return 0.1 * std::pow(100.0, static_cast<double>(i % 997) / 997.0);
}

/// Typed-loop dispatch: a ring of sinks re-scheduling themselves; returns
/// events/sec with `ring` events pending throughout.
double typed_dispatch_events_per_sec(std::size_t ring) {
  struct Ticker final : lbmv::sim::EventSink {
    double increment = 1.0;
    std::size_t* budget = nullptr;
    void on_sim_event(lbmv::sim::Simulation& sim,
                      lbmv::sim::EventKind) override {
      if (*budget > 0) {
        --*budget;
        sim.schedule_event_after(increment,
                                 lbmv::sim::EventKind::kServiceCompletion,
                                 this);
      }
    }
  };
  const std::size_t events = ring * 8;
  lbmv::sim::Simulation sim;
  sim.reserve(ring + 8);
  std::vector<Ticker> sinks(ring);
  std::size_t budget = 0;
  for (std::size_t i = 0; i < ring; ++i) {
    sinks[i].increment = ring_increment(i);
    sinks[i].budget = &budget;
  }
  const double seconds = seconds_per_call(
      [&] {
        sim.reset();
        budget = events;
        for (auto& s : sinks) {
          sim.schedule_event_after(
              s.increment, lbmv::sim::EventKind::kServiceCompletion, &s);
        }
        sim.run();
      },
      0.5, 3);
  return static_cast<double>(events) / seconds;
}

/// Seed-loop dispatch on the identical ring workload; each event is a
/// std::function whose capture (object + Job + service time, 40 bytes)
/// forces a heap allocation, as the seed server's completion lambda did.
double function_dispatch_events_per_sec(std::size_t ring) {
  struct Ticker {
    lbmv::sim::legacy::Simulation* sim;
    double increment;
    std::size_t* budget;
    lbmv::sim::Job job;
    void tick() {
      if (*budget > 0) {
        --*budget;
        Ticker self = *this;
        sim->schedule_after(increment, [self]() mutable { self.tick(); });
      }
    }
  };
  const std::size_t events = ring * 8;
  const double seconds = seconds_per_call(
      [&] {
        lbmv::sim::legacy::Simulation sim;
        std::size_t budget = events;
        std::vector<Ticker> sinks(ring);
        for (std::size_t i = 0; i < ring; ++i) {
          sinks[i] = Ticker{&sim, ring_increment(i), &budget,
                            lbmv::sim::Job{}};
          sinks[i].tick();
        }
        budget += ring;  // priming consumed budget
        sim.run();
      },
      0.5, 3);
  return static_cast<double>(events) / seconds;
}

/// Full queueing stack (Poisson source + FCFS servers) on either loop;
/// returns events/sec.  Shared costs (RNG draws, queue bookkeeping)
/// dominate here, so this understates the pure loop win by design.
template <typename Sim, typename Server, typename Source>
double stack_events_per_sec() {
  const std::vector<double> exec{0.02, 0.05, 0.11, 0.4};
  const std::vector<double> rates{2.0, 1.5, 1.0, 0.5};
  std::size_t events = 0;
  const double seconds = seconds_per_call(
      [&] {
        lbmv::util::Rng rng(11);
        Sim sim;
        std::vector<std::unique_ptr<Server>> servers;
        std::vector<Server*> ptrs;
        for (std::size_t i = 0; i < exec.size(); ++i) {
          servers.push_back(std::make_unique<Server>(
              sim, "C", exec[i], lbmv::sim::ServiceModel::kExponential,
              rng.split(i + 1)));
          ptrs.push_back(servers.back().get());
        }
        Source source(sim, ptrs, rates, 2000.0, rng.split(0));
        source.start();
        sim.run();
        events = sim.processed();
      },
      0.5, 3);
  return static_cast<double>(events) / seconds;
}

// ---- batch round workloads -------------------------------------------------

/// Faithful reproduction of the seed comp-bonus round (the pre-batch-kernel
/// Mechanism::run + CompBonusMechanism::fill_payments): a fresh allocation,
/// three freshly heap-allocated vectors of per-agent latency functions plus
/// one make() per agent for the compensation basis, and a fresh
/// leave-one-out vector — every call.  Kept here, like the audit/sim legacy
/// baselines, so batch_round_throughput measures its speedup in the same
/// run and cross-checks the kernels against the original formulation.
lbmv::core::MechanismOutcome seed_comp_bonus_round(
    const lbmv::model::LatencyFamily& family,
    const lbmv::alloc::Allocator& allocator, double arrival_rate,
    const lbmv::model::BidProfile& profile) {
  lbmv::core::MechanismOutcome outcome;
  outcome.allocation = allocator.allocate(family, profile.bids, arrival_rate);
  const auto make_fns = [&](const std::vector<double>& thetas) {
    std::vector<std::unique_ptr<lbmv::model::LatencyFunction>> fns;
    fns.reserve(thetas.size());
    for (double theta : thetas) fns.push_back(family.make(theta));
    return fns;
  };
  const auto exec_fns = make_fns(profile.executions);
  const auto bid_fns = make_fns(profile.bids);
  outcome.actual_latency =
      lbmv::model::total_latency(outcome.allocation, exec_fns);
  outcome.reported_latency =
      lbmv::model::total_latency(outcome.allocation, bid_fns);
  // fill_payments rebuilt the execution latencies for its own actual-latency
  // term; reproduce that extra pass too.
  const auto payment_exec_fns = make_fns(profile.executions);
  const double actual =
      lbmv::model::total_latency(outcome.allocation, payment_exec_fns);
  const std::vector<double> latency_without =
      allocator.leave_one_out_latencies(family, profile.bids, arrival_rate);
  outcome.agents.resize(profile.size());
  for (std::size_t i = 0; i < profile.size(); ++i) {
    auto& agent = outcome.agents[i];
    agent.allocation = outcome.allocation[i];
    const double cost = (agent.allocation == 0.0)
                            ? 0.0
                            : exec_fns[i]->cost(agent.allocation);
    agent.valuation = -cost;
    agent.compensation =
        (agent.allocation == 0.0)
            ? 0.0
            : family.make(profile.executions[i])->cost(agent.allocation);
    agent.bonus = latency_without[i] - actual;
    agent.payment = agent.compensation + agent.bonus;
    agent.utility = agent.payment + agent.valuation;
  }
  return outcome;
}

/// Relative difference between two outcomes across every per-agent field.
double outcome_max_rel_err(const lbmv::core::MechanismOutcome& a,
                           const lbmv::core::MechanismOutcome& b) {
  const auto rel = [](double x, double y) {
    return std::fabs(x - y) / std::max(1.0, std::fabs(y));
  };
  double err = rel(a.actual_latency, b.actual_latency);
  err = std::max(err, rel(a.reported_latency, b.reported_latency));
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    err = std::max(err, rel(a.allocation[i], b.allocation[i]));
    err = std::max(err, rel(a.agents[i].compensation, b.agents[i].compensation));
    err = std::max(err, rel(a.agents[i].bonus, b.agents[i].bonus));
    err = std::max(err, rel(a.agents[i].payment, b.agents[i].payment));
    err = std::max(err, rel(a.agents[i].utility, b.agents[i].utility));
  }
  return err;
}

/// Replicated protocol rounds per second on a pool of `threads` workers.
double replications_per_sec(std::size_t threads) {
  const lbmv::model::SystemConfig config({0.01, 0.02, 0.04}, 2.0);
  const lbmv::core::CompBonusMechanism mechanism;
  lbmv::sim::ProtocolOptions options;
  options.horizon = 500.0;
  const lbmv::sim::VerifiedProtocol protocol(mechanism, options);
  lbmv::util::ThreadPool pool(threads);
  lbmv::sim::ReplicationOptions replication;
  replication.replications = 8;
  replication.pool = &pool;
  const auto intents = lbmv::model::BidProfile::truthful(config);
  const double seconds = seconds_per_call(
      [&] { (void)protocol.run_replicated(config, intents, replication); },
      0.5, 3);
  return static_cast<double>(replication.replications) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string output = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      output = arg;
    }
  }
  const double arrival_rate = 20.0;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{64, 256, 1024};

  const lbmv::model::LinearFamily family;
  const lbmv::alloc::PRAllocator allocator;
  std::vector<Result> results;
  double audit_incremental_256 = 0.0;
  double audit_legacy_256 = 0.0;

  for (std::size_t n : sizes) {
    const auto types = random_types(n, 42);
    const lbmv::model::SystemConfig config(types, arrival_rate);
    const lbmv::core::CompBonusMechanism mechanism;
    const auto profile = lbmv::model::BidProfile::truthful(config);

    results.push_back({"pr_allocate", n, seconds_per_call([&] {
                         (void)lbmv::alloc::pr_allocate(types, arrival_rate);
                       })});

    results.push_back(
        {"leave_one_out_batch", n, seconds_per_call([&] {
           (void)allocator.leave_one_out_latencies(family, types,
                                                   arrival_rate);
         })});

    results.push_back(
        {"leave_one_out_per_agent", n, seconds_per_call([&] {
           std::vector<double> out(n);
           std::vector<double> rest;
           for (std::size_t i = 0; i < n; ++i) {
             rest.assign(types.begin(), types.end());
             rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i));
             out[i] = allocator.optimal_latency(family, rest, arrival_rate);
           }
         })});

    results.push_back({"comp_bonus_round", n, seconds_per_call([&] {
                         (void)mechanism.run(config, profile);
                       })});

    const lbmv::core::TruthfulnessAuditor auditor(mechanism);
    lbmv::core::AuditOptions incremental;
    const double audit_seconds = seconds_per_call(
        [&] { (void)auditor.audit_all(config, incremental); }, 0.5, 3);
    results.push_back({"audit_all", n, audit_seconds});
    if (n == 256) audit_incremental_256 = audit_seconds;

    if (n <= 256) {
      lbmv::core::AuditOptions legacy;
      legacy.incremental = false;
      const double legacy_seconds = seconds_per_call(
          [&] { (void)auditor.audit_all(config, legacy); }, 0.5, 3);
      results.push_back({"audit_all_legacy", n, legacy_seconds});
      if (n == 256) audit_legacy_256 = legacy_seconds;
    }
  }

  JsonValue::Array series;
  for (const auto& r : results) {
    JsonValue::Object entry;
    entry["name"] = r.name;
    entry["n"] = static_cast<double>(r.n);
    entry["seconds_per_call"] = r.seconds;
    series.emplace_back(std::move(entry));
    std::cout << r.name << " n=" << r.n << ": " << r.seconds * 1e6
              << " us/call\n";
  }

  JsonValue::Object derived;
  if (audit_incremental_256 > 0.0 && audit_legacy_256 > 0.0) {
    derived["audit_all_speedup_n256"] =
        audit_legacy_256 / audit_incremental_256;
    std::cout << "audit_all speedup at n=256: "
              << audit_legacy_256 / audit_incremental_256 << "x\n";
  }

  // Simulation throughput: typed calendar-queue loop vs the seed
  // std::function loop, measured back to back in this same run.
  JsonValue::Object sim_throughput;
  if (!smoke) {
    JsonValue::Array dispatch;
    double best_speedup = 0.0;
    for (std::size_t ring : {64ul, 4096ul, 65536ul}) {
      const double typed = typed_dispatch_events_per_sec(ring);
      const double fn = function_dispatch_events_per_sec(ring);
      JsonValue::Object entry;
      entry["pending_events"] = static_cast<double>(ring);
      entry["typed_events_per_sec"] = typed;
      entry["function_loop_events_per_sec"] = fn;
      entry["speedup"] = typed / fn;
      dispatch.emplace_back(std::move(entry));
      best_speedup = std::max(best_speedup, typed / fn);
      std::cout << "event_loop_dispatch pending=" << ring << ": typed "
                << typed / 1e6 << "M ev/s, function-loop " << fn / 1e6
                << "M ev/s (" << typed / fn << "x)\n";
    }
    sim_throughput["event_loop_dispatch"] = std::move(dispatch);
    sim_throughput["event_loop_best_speedup"] = best_speedup;

    const double stack_typed =
        stack_events_per_sec<lbmv::sim::Simulation, lbmv::sim::Server,
                             lbmv::sim::JobSource>();
    const double stack_legacy =
        stack_events_per_sec<lbmv::sim::legacy::Simulation,
                             lbmv::sim::legacy::Server,
                             lbmv::sim::legacy::JobSource>();
    JsonValue::Object stack;
    stack["typed_events_per_sec"] = stack_typed;
    stack["function_loop_events_per_sec"] = stack_legacy;
    stack["speedup"] = stack_typed / stack_legacy;
    sim_throughput["full_stack"] = std::move(stack);
    std::cout << "full_stack: typed " << stack_typed / 1e6
              << "M ev/s, function-loop " << stack_legacy / 1e6 << "M ev/s ("
              << stack_typed / stack_legacy << "x)\n";

    JsonValue::Array reps;
    for (std::size_t threads : {1ul, 4ul, 8ul}) {
      const double rate = replications_per_sec(threads);
      JsonValue::Object entry;
      entry["threads"] = static_cast<double>(threads);
      entry["replications_per_sec"] = rate;
      std::cout << "replications threads=" << threads << ": " << rate
                << " reps/s\n";
      reps.emplace_back(std::move(entry));
    }
    sim_throughput["replicated_rounds"] = std::move(reps);
    sim_throughput["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    sim_throughput["threads_used"] = 8.0;  // widest replication pool above
    sim_throughput["note"] =
        "dispatch = self-rescheduling sink ring (pure event-loop cost, no "
        "RNG); full_stack shares RNG/queue bookkeeping between both loops, "
        "so its ratio is diluted by design; replication scaling is bounded "
        "by hardware_concurrency";
  }

  // Observability overhead on the pure dispatch ring: recording off must
  // track the plain typed numbers (same code path, probes compiled in but
  // gated on one relaxed load); recording on shows the live probe cost.
  JsonValue::Object obs_overhead;
  if (!smoke) {
    JsonValue::Array dispatch;
    for (std::size_t ring : {64ul, 4096ul, 65536ul}) {
      lbmv::obs::set_enabled(false);
      const double off = typed_dispatch_events_per_sec(ring);
      lbmv::obs::set_enabled(true);
      const double on = typed_dispatch_events_per_sec(ring);
      lbmv::obs::set_enabled(false);
      JsonValue::Object entry;
      entry["pending_events"] = static_cast<double>(ring);
      entry["disabled_events_per_sec"] = off;
      entry["enabled_events_per_sec"] = on;
      entry["disabled_over_enabled"] = off / on;
      dispatch.emplace_back(std::move(entry));
      std::cout << "obs_overhead pending=" << ring << ": off " << off / 1e6
                << "M ev/s, on " << on / 1e6 << "M ev/s (on costs "
                << (off / on - 1.0) * 100.0 << "%)\n";
    }
    lbmv::obs::Registry::global().reset();
    obs_overhead["event_loop_dispatch"] = std::move(dispatch);
    obs_overhead["compiled_in"] = lbmv::obs::kCompiledIn;
    obs_overhead["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    obs_overhead["threads_used"] = 1.0;  // single-threaded dispatch ring
    obs_overhead["note"] =
        "disabled_events_per_sec uses the identical ring workload as "
        "sim_throughput.event_loop_dispatch.typed_events_per_sec; with "
        "recording disabled every probe is one relaxed atomic load, so the "
        "two series must agree within run-to-run noise";
  }

  // Single-deviation game engine: one best-response round through the O(1)
  // DeviationEvaluator against the naive re-run baseline in this same run,
  // thread scaling for tournaments/learning, and a differential cross-check
  // that gates the exit code.
  JsonValue::Object strategy_throughput;
  bool cross_check_pass = true;
  {
    using lbmv::strategy::DeviationEvaluator;
    const double tmin = smoke ? 0.05 : 0.5;
    const int treps = smoke ? 2 : 3;

    const std::size_t n = smoke ? 64 : 256;
    const int grid = 100;
    const lbmv::model::SystemConfig config(random_types(n, 7), arrival_rate);
    const lbmv::core::CompBonusMechanism mechanism;
    const auto round_seconds = [&](bool incremental) {
      lbmv::strategy::BestResponseOptions opts;
      opts.max_rounds = 1;
      opts.bid_grid = grid;
      opts.use_incremental = incremental;
      // The naive round re-runs the whole mechanism per grid point, so a
      // single timed repetition is already seconds-scale at n = 256.
      return seconds_per_call(
          [&] {
            (void)lbmv::strategy::best_response_dynamics(mechanism, config,
                                                         opts);
          },
          incremental ? tmin : 0.0, incremental ? treps : 1);
    };
    const double incremental_round = round_seconds(true);
    const double naive_round = round_seconds(false);
    JsonValue::Object round;
    round["n"] = static_cast<double>(n);
    round["bid_grid"] = static_cast<double>(grid);
    round["incremental_seconds"] = incremental_round;
    round["naive_seconds"] = naive_round;
    round["speedup"] = naive_round / incremental_round;
    strategy_throughput["best_response_round"] = std::move(round);
    std::cout << "best_response_round n=" << n << " grid=" << grid
              << ": incremental " << incremental_round * 1e3
              << " ms, naive " << naive_round * 1e3 << " ms ("
              << naive_round / incremental_round << "x)\n";

    const lbmv::strategy::TruthfulStrategy truthful;
    const lbmv::strategy::ScalingStrategy low2(0.5, 2.0);
    const lbmv::strategy::RandomBidStrategy noisy(0.5, 3.0);
    const std::vector<const lbmv::strategy::Strategy*> strategies{
        &truthful, &low2, &noisy};
    lbmv::strategy::TournamentOptions topts;
    topts.instances = smoke ? 64 : 256;
    topts.agents = 16;
    JsonValue::Array tournament_rates;
    for (std::size_t threads : {1ul, 8ul}) {
      lbmv::util::ThreadPool pool(threads);
      topts.pool = &pool;
      const double secs = seconds_per_call(
          [&] { (void)lbmv::strategy::run_tournament(mechanism, strategies,
                                                     topts); },
          tmin, treps);
      JsonValue::Object entry;
      entry["threads"] = static_cast<double>(threads);
      entry["instances_per_sec"] =
          static_cast<double>(topts.instances) / secs;
      std::cout << "tournament threads=" << threads << ": "
                << static_cast<double>(topts.instances) / secs
                << " instances/s\n";
      tournament_rates.emplace_back(std::move(entry));
    }
    strategy_throughput["tournament"] = std::move(tournament_rates);

    const lbmv::model::SystemConfig learn_config(random_types(16, 9),
                                                 arrival_rate);
    lbmv::strategy::LearningOptions lopts;
    lopts.rounds = smoke ? 60 : 200;
    const std::size_t learn_reps = 8;
    JsonValue::Array learning_rates;
    for (std::size_t threads : {1ul, 8ul}) {
      lbmv::util::ThreadPool pool(threads);
      const double secs = seconds_per_call(
          [&] {
            (void)lbmv::strategy::run_learning_replicated(
                mechanism, learn_config, lopts, learn_reps, &pool);
          },
          tmin, treps);
      JsonValue::Object entry;
      entry["threads"] = static_cast<double>(threads);
      entry["replications_per_sec"] =
          static_cast<double>(learn_reps) / secs;
      std::cout << "learning threads=" << threads << ": "
                << static_cast<double>(learn_reps) / secs << " reps/s\n";
      learning_rates.emplace_back(std::move(entry));
    }
    strategy_throughput["learning"] = std::move(learning_rates);

    // Differential cross-check: the closed-form utilities must match the
    // naive re-run path across every mechanism, at interior and boundary
    // bids.  A mismatch fails the run (non-zero exit).
    double max_err = 0.0;
    const std::size_t cn = 12;
    const lbmv::model::SystemConfig check_config(random_types(cn, 21),
                                                 arrival_rate);
    std::vector<std::unique_ptr<lbmv::core::Mechanism>> mechanisms;
    mechanisms.push_back(std::make_unique<lbmv::core::CompBonusMechanism>());
    mechanisms.push_back(std::make_unique<lbmv::core::CompBonusMechanism>(
        lbmv::core::default_allocator(),
        lbmv::core::CompensationBasis::kBid));
    mechanisms.push_back(std::make_unique<lbmv::core::VcgMechanism>());
    mechanisms.push_back(std::make_unique<lbmv::core::NoPaymentMechanism>());
    for (const auto& m : mechanisms) {
      const DeviationEvaluator fast(*m, check_config);
      const DeviationEvaluator naive(*m, check_config,
                                     DeviationEvaluator::Mode::kNaive);
      if (!fast.incremental()) {
        cross_check_pass = false;
        std::cerr << "cross-check: " << m->name()
                  << " has no incremental path\n";
        continue;
      }
      for (std::size_t i = 0; i < cn; ++i) {
        const double t = check_config.true_value(i);
        for (double bid_mult : {0.05, 0.7, 1.0, 3.0, 20.0}) {
          for (double exec_mult : {1.0, 2.0}) {
            const double a = fast.utility(i, bid_mult * t, exec_mult * t);
            const double b = naive.utility(i, bid_mult * t, exec_mult * t);
            const double err =
                std::fabs(a - b) / std::max(1.0, std::fabs(b));
            max_err = std::max(max_err, err);
          }
        }
      }
    }
    if (max_err >= 1e-9) cross_check_pass = false;
    strategy_throughput["utilities_cross_check_max_abs_err"] = max_err;
    strategy_throughput["cross_check_pass"] = cross_check_pass;
    strategy_throughput["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    strategy_throughput["threads_used"] =
        8.0;  // widest tournament/learning pool above
    strategy_throughput["note"] =
        "naive_seconds re-runs the full mechanism per grid point "
        "(use_incremental = false) in the same process as the incremental "
        "timing, which now rides the 4-lane deviation-grid kernels (the "
        "deviation_grid section isolates that lane-level win against the "
        "scalar per-point closed form); tournament/learning thread scaling "
        "is bounded by hardware_concurrency (1 on the recording container)";
    std::cout << "utilities cross-check: max rel err " << max_err << " -> "
              << (cross_check_pass ? "pass" : "FAIL") << "\n";
  }

  // Batched round kernels (DESIGN.md §11): rounds/sec through the seed
  // formulation (fresh allocation, per-agent heap-allocated latency
  // functions and a fresh leave-one-out vector each round — reproduced
  // above as seed_comp_bonus_round), the current scalar run() loop, and
  // run_batch serial/parallel over the same profiles, plus a differential
  // cross-check of the fused kernels against the seed formulation that
  // gates the exit code.
  JsonValue::Object batch_round_throughput;
  bool batch_check_pass = true;
  {
    const std::size_t profiles = smoke ? 64 : 256;
    const lbmv::core::CompBonusMechanism mechanism;
    const double tmin = smoke ? 0.05 : 0.3;
    const int treps = smoke ? 2 : 3;
    JsonValue::Array batch_series;
    double max_err = 0.0;
    double best_speedup_n256 = 0.0;
    for (std::size_t n : sizes) {
      lbmv::core::ProfileBatch batch(n);
      batch.reserve(profiles);
      for (std::size_t b = 0; b < profiles; ++b) {
        const auto bids = random_types(n, 1000 + b);
        auto execs = bids;
        for (double& e : execs) e *= 1.25;
        batch.push_back(bids, execs);
      }
      std::vector<lbmv::model::BidProfile> rounds(profiles);
      for (std::size_t b = 0; b < profiles; ++b) {
        batch.extract_into(b, rounds[b]);
      }

      const double seed_secs = seconds_per_call(
          [&] {
            for (const auto& p : rounds) {
              (void)seed_comp_bonus_round(family, allocator, arrival_rate, p);
            }
          },
          tmin, treps);
      const double run_secs = seconds_per_call(
          [&] {
            for (const auto& p : rounds) {
              (void)mechanism.run(family, arrival_rate, p);
            }
          },
          tmin, treps);
      lbmv::core::BatchOutcomes outcomes;
      lbmv::core::BatchRunOptions serial_options;
      serial_options.parallel = false;
      const double serial_secs = seconds_per_call(
          [&] {
            mechanism.run_batch(family, arrival_rate, batch, outcomes,
                                serial_options);
          },
          tmin, treps);
      const double parallel_secs = seconds_per_call(
          [&] { mechanism.run_batch(family, arrival_rate, batch, outcomes); },
          tmin, treps);

      // Differential cross-check: the fused kernels are bit-exact against
      // the seed formulation on the linear family by construction; the
      // gate leaves roundoff headroom for other platforms.
      mechanism.run_batch(family, arrival_rate, batch, outcomes);
      for (std::size_t b = 0; b < profiles; ++b) {
        const auto reference = seed_comp_bonus_round(family, allocator,
                                                     arrival_rate, rounds[b]);
        max_err = std::max(max_err,
                           outcome_max_rel_err(outcomes[b], reference));
      }

      const double count = static_cast<double>(profiles);
      const double serial_speedup = seed_secs / serial_secs;
      const double parallel_speedup = seed_secs / parallel_secs;
      JsonValue::Object entry;
      entry["n"] = static_cast<double>(n);
      entry["profiles"] = count;
      entry["seed_rounds_per_sec"] = count / seed_secs;
      entry["run_rounds_per_sec"] = count / run_secs;
      entry["batch_serial_rounds_per_sec"] = count / serial_secs;
      entry["batch_parallel_rounds_per_sec"] = count / parallel_secs;
      entry["serial_speedup_vs_seed"] = serial_speedup;
      entry["parallel_speedup_vs_seed"] = parallel_speedup;
      batch_series.emplace_back(std::move(entry));
      if (n == 256) {
        best_speedup_n256 = std::max(serial_speedup, parallel_speedup);
      }
      std::cout << "batch_round n=" << n << ": seed " << count / seed_secs
                << " rounds/s, run() " << count / run_secs
                << ", batch serial " << count / serial_secs << " ("
                << serial_speedup << "x), batch parallel "
                << count / parallel_secs << " (" << parallel_speedup
                << "x)\n";
    }
    // Single-round series (DESIGN.md §12): ONE round at large n through the
    // scalar kernels, the vectorized engine serial, and the vectorized
    // engine with the agent axis auto-sharded over the global pool — all in
    // this same process, with a differential cross-check between the two
    // engines that shares the exit-code gate.
    JsonValue::Array single_series;
    double single_max_err = 0.0;
    double simd_speedup_n1024 = 0.0;
    const lbmv::core::KernelBackend entry_backend =
        lbmv::core::kernel_backend();
    const std::vector<std::size_t> single_sizes =
        smoke ? std::vector<std::size_t>{1024, 10'000}
              : std::vector<std::size_t>{1024, 10'000, 100'000, 1'000'000};
    for (std::size_t n : single_sizes) {
      const auto bids = random_types(n, 77);
      auto execs = bids;
      for (double& e : execs) e *= 1.25;
      lbmv::core::RoundWorkspace ws;
      lbmv::core::MechanismOutcome scalar_outcome;
      lbmv::core::MechanismOutcome simd_outcome;
      constexpr lbmv::core::RoundOptions serial_round{/*shards=*/1,
                                                      /*pool=*/nullptr};
      constexpr lbmv::core::RoundOptions auto_round{};

      lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kScalar);
      const double scalar_secs = seconds_per_call(
          [&] {
            mechanism.run_into(family, arrival_rate, bids, execs,
                               scalar_outcome, ws, serial_round);
          },
          tmin, treps);
      lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kVectorized);
      const double simd_secs = seconds_per_call(
          [&] {
            mechanism.run_into(family, arrival_rate, bids, execs,
                               simd_outcome, ws, serial_round);
          },
          tmin, treps);
      single_max_err = std::max(
          single_max_err, outcome_max_rel_err(simd_outcome, scalar_outcome));
      const double sharded_secs = seconds_per_call(
          [&] {
            mechanism.run_into(family, arrival_rate, bids, execs,
                               simd_outcome, ws, auto_round);
          },
          tmin, treps);

      JsonValue::Object entry;
      entry["n"] = static_cast<double>(n);
      entry["scalar_serial_rounds_per_sec"] = 1.0 / scalar_secs;
      entry["simd_serial_rounds_per_sec"] = 1.0 / simd_secs;
      entry["simd_sharded_rounds_per_sec"] = 1.0 / sharded_secs;
      entry["simd_serial_speedup_vs_scalar"] = scalar_secs / simd_secs;
      entry["sharded_speedup_vs_scalar"] = scalar_secs / sharded_secs;
      single_series.emplace_back(std::move(entry));
      if (n == 1024) simd_speedup_n1024 = scalar_secs / simd_secs;
      std::cout << "single_round n=" << n << ": scalar "
                << 1.0 / scalar_secs << " rounds/s, simd serial "
                << 1.0 / simd_secs << " (" << scalar_secs / simd_secs
                << "x), simd sharded " << 1.0 / sharded_secs << " ("
                << scalar_secs / sharded_secs << "x)\n";
    }
    lbmv::core::set_kernel_backend(entry_backend);

    if (max_err >= 1e-9) batch_check_pass = false;
    if (single_max_err >= 1e-9) batch_check_pass = false;
    batch_round_throughput["series"] = std::move(batch_series);
    batch_round_throughput["single_round"] = std::move(single_series);
    batch_round_throughput["differential_max_rel_err"] = max_err;
    batch_round_throughput["simd_differential_max_rel_err"] = single_max_err;
    batch_round_throughput["vector_backend"] =
        std::string(lbmv::core::vector_backend_name());
    batch_round_throughput["cross_check_pass"] = batch_check_pass;
    if (best_speedup_n256 > 0.0) {
      batch_round_throughput["best_speedup_n256"] = best_speedup_n256;
      derived["batch_round_speedup_n256"] = best_speedup_n256;
    }
    if (simd_speedup_n1024 > 0.0) {
      derived["simd_round_speedup_n1024"] = simd_speedup_n1024;
    }
    batch_round_throughput["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    batch_round_throughput["threads_used"] = static_cast<double>(
        lbmv::util::ThreadPool::global().thread_count());
    batch_round_throughput["note"] =
        "seed_rounds_per_sec re-runs the original per-round formulation "
        "(fresh allocation, per-agent heap-allocated latency functions, "
        "fresh leave-one-out vector) in this same process; run() now rides "
        "the fused kernel with a thread-local workspace, so its rate "
        "tracks batch_serial; single_round compares the scalar kernels "
        "against the vectorized engine (vector_backend) serial and "
        "auto-sharded on the global pool; parallel scaling is bounded by "
        "threads_used (the global pool) and hardware_concurrency";
    std::cout << "batch kernels cross-check: max rel err " << max_err
              << ", simd " << single_max_err << " -> "
              << (batch_check_pass ? "pass" : "FAIL") << "\n";
  }

  // Deviation-grid kernels (DESIGN.md §13): sweep grid = 1000 candidate
  // bids per agent (linear over [0.05 t_i, 20 t_i]) for every agent, through
  // three paths in this same process: the scalar per-point
  // DeviationEvaluator::utility scan (the pre-kernel formulation, kept
  // verbatim as the oracle), the 4-lane GridEvaluator serial, and the
  // GridEvaluator with its candidate axis fanned over an 8-thread pool.
  // All three produce bit-identical argmaxes by construction; the
  // differential check below compares the vectorized utilities against the
  // scalar oracle point by point and gates the exit code at 1e-9.
  JsonValue::Object deviation_grid;
  bool grid_check_pass = true;
  {
    using lbmv::strategy::DeviationEvaluator;
    using lbmv::strategy::GridEvaluator;
    const std::size_t grid_points = 1000;
    const double tmin = smoke ? 0.05 : 0.3;
    const int treps = smoke ? 2 : 3;
    // Smoke keeps the n = 256 row: the CI perf-smoke check asserts the
    // >= 3x serial speedup there, so the gated configuration must exist in
    // the smoke document too (the sweep is milliseconds-scale).
    const std::vector<std::size_t> grid_sizes =
        smoke ? std::vector<std::size_t>{64, 256}
              : std::vector<std::size_t>{64, 256, 1024};
    JsonValue::Array grid_series;
    double max_err = 0.0;
    double serial_speedup_n256 = 0.0;
    lbmv::util::ThreadPool pool(8);
    const lbmv::core::CompBonusMechanism mechanism;
    for (std::size_t n : grid_sizes) {
      const lbmv::model::SystemConfig config(random_types(n, 13),
                                             arrival_rate);
      const DeviationEvaluator evaluator(mechanism, config);
      const GridEvaluator serial_eval(evaluator);
      const GridEvaluator pooled_eval(evaluator, &pool);
      // Per-agent candidate grids, built once outside the timed regions so
      // all three paths sweep the identical candidates.
      std::vector<std::vector<double>> grids(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double t = config.true_value(i);
        lbmv::strategy::make_bid_grid_into(
            0.05 * t, 20.0 * t, grid_points,
            lbmv::strategy::GridSpacing::kLinear, grids[i]);
      }
      double sink = 0.0;  // consumed below so the sweeps cannot be elided
      const double scalar_secs = seconds_per_call(
          [&] {
            for (std::size_t i = 0; i < n; ++i) {
              const double t = config.true_value(i);
              double best = -std::numeric_limits<double>::infinity();
              for (double bid : grids[i]) {
                const double u = evaluator.utility(i, bid, t);
                if (u > best) best = u;
              }
              sink += best;
            }
          },
          tmin, treps);
      const double serial_secs = seconds_per_call(
          [&] {
            for (std::size_t i = 0; i < n; ++i) {
              sink += serial_eval
                          .best_response(i, grids[i], config.true_value(i))
                          .utility;
            }
          },
          tmin, treps);
      const double pooled_secs = seconds_per_call(
          [&] {
            for (std::size_t i = 0; i < n; ++i) {
              sink += pooled_eval
                          .best_response(i, grids[i], config.true_value(i))
                          .utility;
            }
          },
          tmin, treps);

      // Differential cross-check: vectorized utilities vs the scalar
      // oracle, every agent, every candidate.
      std::vector<double> utilities(grid_points);
      for (std::size_t i = 0; i < n; ++i) {
        const double t = config.true_value(i);
        serial_eval.utilities_into(i, grids[i], t, utilities);
        for (std::size_t j = 0; j < grid_points; ++j) {
          const double reference = evaluator.utility(i, grids[i][j], t);
          const double err = std::fabs(utilities[j] - reference) /
                             std::max(1.0, std::fabs(reference));
          max_err = std::max(max_err, err);
        }
      }

      const double evals = static_cast<double>(n * grid_points);
      const double serial_speedup = scalar_secs / serial_secs;
      const double pooled_speedup = scalar_secs / pooled_secs;
      if (n == 256) serial_speedup_n256 = serial_speedup;
      JsonValue::Object entry;
      entry["n"] = static_cast<double>(n);
      entry["grid_points"] = static_cast<double>(grid_points);
      entry["scalar_evals_per_sec"] = evals / scalar_secs;
      entry["vector_serial_evals_per_sec"] = evals / serial_secs;
      entry["vector_pooled_evals_per_sec"] = evals / pooled_secs;
      entry["serial_speedup_vs_scalar"] = serial_speedup;
      entry["pooled_speedup_vs_scalar"] = pooled_speedup;
      grid_series.emplace_back(std::move(entry));
      std::cout << "deviation_grid n=" << n << " grid=" << grid_points
                << ": scalar " << evals / scalar_secs / 1e6
                << "M evals/s, vector serial " << evals / serial_secs / 1e6
                << "M (" << serial_speedup << "x), vector pooled "
                << evals / pooled_secs / 1e6 << "M (" << pooled_speedup
                << "x)\n";
      if (sink == 0.0) std::cout << "";  // keep `sink` observable
    }
    if (max_err >= 1e-9) grid_check_pass = false;
    if (serial_speedup_n256 > 0.0) {
      deviation_grid["serial_speedup_n256"] = serial_speedup_n256;
      derived["deviation_grid_speedup_n256"] = serial_speedup_n256;
    }
    deviation_grid["series"] = std::move(grid_series);
    deviation_grid["differential_max_rel_err"] = max_err;
    deviation_grid["cross_check_pass"] = grid_check_pass;
    deviation_grid["vector_backend"] =
        std::string(lbmv::util::simd::backend_name());
    deviation_grid["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    deviation_grid["threads_used"] = 8.0;  // the pooled sweep's fixed pool
    deviation_grid["note"] =
        "scalar_evals_per_sec scans the same per-agent candidate grids "
        "through DeviationEvaluator::utility one point at a time in this "
        "same process (the differential oracle); vector rows ride the "
        "4-lane grid kernels (vector_backend), serial and with the "
        "candidate axis fanned over an 8-thread pool in fixed 1024-wide "
        "blocks; all three paths return bit-identical argmaxes, and pooled "
        "scaling is bounded by hardware_concurrency";
    std::cout << "deviation grid cross-check: max rel err " << max_err
              << " -> " << (grid_check_pass ? "pass" : "FAIL") << "\n";
  }

  // Live-telemetry pipeline (DESIGN.md §9): runtime cost of the invariant
  // monitors on the single-round hot path (recording disabled vs enabled in
  // this same process), the time-series sampler's per-scrape cost, and a
  // zero-violations gate over every monitored round in the timed windows.
  // A gate failure dumps the flight recorder next to the document so the
  // offending rounds are attributable.
  JsonValue::Object obs_timeseries;
  bool obs_check_pass = true;
  {
    const std::size_t n = smoke ? 64 : 256;
    const double tmin = smoke ? 0.05 : 0.3;
    const int treps = smoke ? 2 : 3;
    const lbmv::core::CompBonusMechanism mechanism;
    const auto bids = random_types(n, 31);
    const auto execs = bids;  // consistent: arms the participation monitor
    lbmv::core::RoundWorkspace ws;
    lbmv::core::MechanismOutcome outcome;
    constexpr lbmv::core::RoundOptions serial_round{/*shards=*/1,
                                                    /*pool=*/nullptr};
    const auto one_round = [&] {
      mechanism.run_into(family, arrival_rate, bids, execs, outcome, ws,
                         serial_round);
    };

    lbmv::obs::Registry::global().reset();
    lbmv::obs::FlightRecorder::global().clear();
    lbmv::obs::set_enabled(false);
    const double disabled_secs = seconds_per_call(one_round, tmin, treps);
    lbmv::obs::set_enabled(true);
    const double enabled_secs = seconds_per_call(one_round, tmin, treps);

    // Sampler cost: one scrape of the registry the run above populated
    // (shard merge + ring append per live metric).
    lbmv::obs::TimeSeriesSampler sampler;
    const double sample_secs =
        seconds_per_call([&] { sampler.sample(); }, tmin, treps);
    lbmv::obs::set_enabled(false);

    const lbmv::obs::MetricsSnapshot snap =
        lbmv::obs::Registry::global().snapshot();
    const lbmv::obs::MonitorTotals totals = lbmv::obs::monitor_totals(snap);
    if (lbmv::obs::kCompiledIn &&
        (totals.checks == 0 || totals.violations != 0)) {
      obs_check_pass = false;
      const std::string dump = "BENCH_flight_fail.jsonl";
      (void)lbmv::obs::FlightRecorder::global().dump_jsonl(dump);
      std::cerr << "obs monitors: " << totals.violations << " violations in "
                << totals.checks << " checks -> " << dump << "\n";
    }
    lbmv::obs::Registry::global().reset();
    lbmv::obs::FlightRecorder::global().clear();

    obs_timeseries["n"] = static_cast<double>(n);
    obs_timeseries["disabled_rounds_per_sec"] = 1.0 / disabled_secs;
    obs_timeseries["enabled_rounds_per_sec"] = 1.0 / enabled_secs;
    obs_timeseries["enabled_over_disabled_cost"] =
        enabled_secs / disabled_secs;
    obs_timeseries["sampler_seconds_per_sample"] = sample_secs;
    obs_timeseries["sampled_series"] =
        static_cast<double>(sampler.series().size());
    obs_timeseries["monitor_checks"] = static_cast<double>(totals.checks);
    obs_timeseries["monitor_violations"] =
        static_cast<double>(totals.violations);
    obs_timeseries["compiled_in"] = lbmv::obs::kCompiledIn;
    obs_timeseries["cross_check_pass"] = obs_check_pass;
    obs_timeseries["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    obs_timeseries["threads_used"] = 1.0;  // serial single-round hot path
    obs_timeseries["note"] =
        "disabled/enabled time the identical single-round hot path with "
        "recording off (one relaxed load per probe and monitor site) and on "
        "(probes + the four round-invariant monitors live), so their ratio "
        "is the runtime telemetry cost; sampler_seconds_per_sample is one "
        "registry scrape into the ring-buffered timeseries; the gate "
        "requires every monitored round in the timed windows to be "
        "violation-free";
    std::cout << "obs_timeseries n=" << n << ": disabled "
              << 1.0 / disabled_secs << " rounds/s, enabled "
              << 1.0 / enabled_secs << " (cost "
              << (enabled_secs / disabled_secs - 1.0) * 100.0
              << "%), sampler " << sample_secs * 1e6 << " us/sample, "
              << totals.checks << " checks / " << totals.violations
              << " violations -> " << (obs_check_pass ? "pass" : "FAIL")
              << "\n";
  }

  // Fused nonlinear-family rounds (DESIGN.md §14): one full mechanism round
  // on the M/M/1 and workload-dependent-rate families through the generic
  // virtual-dispatch arena (kScalar backend — the scalar oracle, fresh
  // active-set machinery and per-agent virtual latency calls) and the fused
  // engines (kVectorized — closed form / damped-free Newton on workspace
  // planes), same mechanisms, same profiles, same process.  Differential
  // gates on the exit code: fused vs generic outcomes at 1e-9 for both
  // families, and the workload Newton rates against a long-double bisection
  // oracle on the KKT multiplier at 1e-9.
  JsonValue::Object nonlinear_round;
  bool nonlinear_check_pass = true;
  {
    const double tmin = smoke ? 0.05 : 0.3;
    const int treps = smoke ? 2 : 3;
    // Smoke keeps the n = 1024 row: the CI perf-smoke check asserts the
    // >= 3x fused speedup there, so the gated configuration must exist in
    // the smoke document too.
    const std::vector<std::size_t> nl_sizes =
        smoke ? std::vector<std::size_t>{256, 1024}
              : std::vector<std::size_t>{256, 1024, 10'000};
    const lbmv::model::MM1Family mm1_family;
    const double gamma = 0.5;
    const lbmv::model::WorkloadFamily workload_family(gamma);
    const lbmv::core::CompBonusMechanism mm1_mechanism(
        std::make_shared<const lbmv::alloc::MM1Allocator>());
    const lbmv::core::CompBonusMechanism workload_mechanism(
        std::make_shared<const lbmv::alloc::WorkloadAllocator>());
    const lbmv::core::KernelBackend entry_backend =
        lbmv::core::kernel_backend();
    constexpr lbmv::core::RoundOptions serial_round{/*shards=*/1,
                                                    /*pool=*/nullptr};
    JsonValue::Array nl_series;
    double mm1_max_err = 0.0;
    double workload_max_err = 0.0;
    double bisect_max_err = 0.0;
    double mm1_speedup_n1024 = 0.0;
    std::uint64_t fused_rounds_probed = 0;
    std::uint64_t newton_iters_probed = 0;
    for (std::size_t n : nl_sizes) {
      const auto thetas = narrow_types(n, 57);
      auto execs = thetas;
      for (double& e : execs) e *= 1.05;  // keeps x_i < mu~_i (stable queues)
      double sum_mu = 0.0;
      for (double theta : thetas) sum_mu += 1.0 / theta;
      const double mm1_rate = 0.5 * sum_mu;  // half capacity: all active

      lbmv::core::RoundWorkspace ws;
      lbmv::core::MechanismOutcome generic_outcome;
      lbmv::core::MechanismOutcome fused_outcome;

      lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kScalar);
      const double mm1_generic_secs = seconds_per_call(
          [&] {
            mm1_mechanism.run_into(mm1_family, mm1_rate, thetas, execs,
                                   generic_outcome, ws, serial_round);
          },
          tmin, treps);
      lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kVectorized);
      const double mm1_fused_secs = seconds_per_call(
          [&] {
            mm1_mechanism.run_into(mm1_family, mm1_rate, thetas, execs,
                                   fused_outcome, ws, serial_round);
          },
          tmin, treps);
      mm1_max_err = std::max(
          mm1_max_err, outcome_max_rel_err(fused_outcome, generic_outcome));

      const double workload_rate = static_cast<double>(n);
      lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kScalar);
      const double workload_generic_secs = seconds_per_call(
          [&] {
            workload_mechanism.run_into(workload_family, workload_rate,
                                        thetas, execs, generic_outcome, ws,
                                        serial_round);
          },
          tmin, treps);
      lbmv::core::set_kernel_backend(lbmv::core::KernelBackend::kVectorized);
      const double workload_fused_secs = seconds_per_call(
          [&] {
            workload_mechanism.run_into(workload_family, workload_rate,
                                        thetas, execs, fused_outcome, ws,
                                        serial_round);
          },
          tmin, treps);
      workload_max_err = std::max(
          workload_max_err,
          outcome_max_rel_err(fused_outcome, generic_outcome));

      // Probe-verified engagement, outside the timed regions: with
      // recording on, one fused round per family must bump
      // lbmv_mech_nonlinear_rounds_total (a silent fall-through to the
      // generic path would make the fused timings above a lie).
      lbmv::obs::Registry::global().reset();
      lbmv::obs::set_enabled(true);
      mm1_mechanism.run_into(mm1_family, mm1_rate, thetas, execs,
                             fused_outcome, ws, serial_round);
      workload_mechanism.run_into(workload_family, workload_rate, thetas,
                                  execs, fused_outcome, ws, serial_round);
      lbmv::obs::set_enabled(false);
      {
        const lbmv::obs::MetricsSnapshot snap =
            lbmv::obs::Registry::global().snapshot();
        const auto counter = [&](const char* name) -> std::uint64_t {
          const auto it = snap.counters.find(name);
          return it == snap.counters.end() ? 0 : it->second;
        };
        fused_rounds_probed = counter("lbmv_mech_nonlinear_rounds_total");
        newton_iters_probed = counter("lbmv_mech_newton_iters_total");
        if (lbmv::obs::kCompiledIn && fused_rounds_probed != 2) {
          nonlinear_check_pass = false;
          std::cerr << "nonlinear rounds fell through to the generic path "
                       "(probed "
                    << fused_rounds_probed << " fused rounds, expected 2)\n";
        }
        lbmv::obs::Registry::global().reset();
      }

      // Newton vs long-double bisection on the workload KKT system.
      std::vector<double> newton_rates(n);
      const lbmv::alloc::WorkloadSolve solve = lbmv::alloc::workload_solve_into(
          thetas, gamma, workload_rate, newton_rates);
      bisect_max_err = std::max(
          bisect_max_err, workload_bisection_max_rel_err(
                              thetas, gamma, workload_rate, newton_rates));

      const double mm1_speedup = mm1_generic_secs / mm1_fused_secs;
      const double workload_speedup =
          workload_generic_secs / workload_fused_secs;
      if (n == 1024) mm1_speedup_n1024 = mm1_speedup;
      JsonValue::Object entry;
      entry["n"] = static_cast<double>(n);
      entry["mm1_generic_rounds_per_sec"] = 1.0 / mm1_generic_secs;
      entry["mm1_fused_rounds_per_sec"] = 1.0 / mm1_fused_secs;
      entry["mm1_fused_speedup"] = mm1_speedup;
      entry["workload_generic_rounds_per_sec"] = 1.0 / workload_generic_secs;
      entry["workload_fused_rounds_per_sec"] = 1.0 / workload_fused_secs;
      entry["workload_fused_speedup"] = workload_speedup;
      entry["workload_newton_iters"] = static_cast<double>(solve.iterations);
      nl_series.emplace_back(std::move(entry));
      std::cout << "nonlinear_round n=" << n << ": mm1 generic "
                << 1.0 / mm1_generic_secs << " rounds/s, fused "
                << 1.0 / mm1_fused_secs << " (" << mm1_speedup
                << "x); workload generic " << 1.0 / workload_generic_secs
                << " rounds/s, fused " << 1.0 / workload_fused_secs << " ("
                << workload_speedup << "x, " << solve.iterations
                << " Newton iters)\n";
    }
    lbmv::core::set_kernel_backend(entry_backend);

    if (mm1_max_err >= 1e-9) nonlinear_check_pass = false;
    if (workload_max_err >= 1e-9) nonlinear_check_pass = false;
    if (bisect_max_err >= 1e-9) nonlinear_check_pass = false;
    if (mm1_speedup_n1024 > 0.0) {
      derived["nonlinear_round_speedup_n1024"] = mm1_speedup_n1024;
    }
    nonlinear_round["series"] = std::move(nl_series);
    nonlinear_round["mm1_differential_max_rel_err"] = mm1_max_err;
    nonlinear_round["workload_differential_max_rel_err"] = workload_max_err;
    nonlinear_round["newton_vs_bisection_max_rel_err"] = bisect_max_err;
    nonlinear_round["fused_rounds_probed"] =
        static_cast<double>(fused_rounds_probed);
    nonlinear_round["newton_iters_probed"] =
        static_cast<double>(newton_iters_probed);
    nonlinear_round["cross_check_pass"] = nonlinear_check_pass;
    nonlinear_round["vector_backend"] =
        std::string(lbmv::core::vector_backend_name());
    nonlinear_round["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    nonlinear_round["threads_used"] = 1.0;  // both engines run agent-serial
    nonlinear_round["note"] =
        "generic rows run the virtual-dispatch arena path (kScalar backend) "
        "on the same MM1Allocator/WorkloadAllocator mechanisms as the fused "
        "rows (kVectorized), so the ratio isolates the §14 fused engines; "
        "narrow service-rate band keeps every computer active (profiles "
        "that drop computers take the generic path by design); "
        "newton_vs_bisection re-solves the workload KKT system with a "
        "long-double bisection oracle; probe fields are from one recorded "
        "fused round per family (outside the timed regions) at the largest "
        "n, asserting the fused engines actually engaged";
    std::cout << "nonlinear cross-check: mm1 max rel err " << mm1_max_err
              << ", workload " << workload_max_err << ", bisection "
              << bisect_max_err << " -> "
              << (nonlinear_check_pass ? "pass" : "FAIL") << "\n";
  }

  // Cross-round delta engine (DESIGN.md §15): the k = 1 changed-bid round
  // through a persistent DeltaRoundEngine (O(1) apply + O(1) closed-form
  // scalars) vs a full run_into round absorbing the identical bid toggle,
  // plus a delta-vs-full-rebuild aggregate differential per latency family.
  JsonValue::Object delta_round;
  bool delta_check_pass = true;
  {
    const double tmin = smoke ? 0.05 : 0.3;
    const int treps = smoke ? 2 : 3;
    // Smoke keeps the n = 1024 row: the CI perf-smoke check asserts the
    // >= 5x delta speedup there, so the gated configuration must exist in
    // the smoke document too.
    const std::size_t n = 1024;
    const auto types = random_types(n, 93);
    const lbmv::model::SystemConfig config(types, arrival_rate);
    const lbmv::core::CompBonusMechanism mechanism;
    auto profile = lbmv::model::BidProfile::truthful(config);

    lbmv::core::RoundWorkspace ws;
    lbmv::core::MechanismOutcome outcome;
    // Full-round baseline: the same one-bid toggle, absorbed by re-running
    // the whole O(n) round every time.
    bool flip = false;
    const double full_secs = seconds_per_call(
        [&] {
          flip = !flip;
          profile.bids[0] = flip ? types[0] * 1.01 : types[0];
          mechanism.run_into(config, profile, outcome, ws);
        },
        tmin, treps);
    // Delta path: one O(1) aggregate update plus the O(1) scalars, with the
    // engine's own drift-bounded exact rebuilds amortised into the timing.
    profile.bids[0] = types[0];
    lbmv::core::DeltaRoundEngine engine(mechanism, config.family_ptr(),
                                        arrival_rate, profile);
    flip = false;
    const double delta_secs = seconds_per_call(
        [&] {
          flip = !flip;
          engine.apply(0, flip ? types[0] * 1.01 : types[0],
                       profile.executions[0]);
          (void)engine.scalars();
        },
        tmin, treps);
    const double delta_speedup = full_secs / delta_secs;

    // Differential: drift an engine through hundreds of random deltas plus
    // membership churn, then compare its O(1) scalars and leave-one-out
    // values against a freshly-built engine (exact re-sum) per family.
    double diff_max_err = 0.0;
    const auto rel_err = [](double a, double b) {
      return std::fabs(a - b) / std::max({1.0, std::fabs(a), std::fabs(b)});
    };
    const auto drift_check =
        [&](const lbmv::core::Mechanism& mech,
            const std::shared_ptr<const lbmv::model::LatencyFamily>& fam,
            double rate, std::uint64_t seed) {
          const std::size_t dn = 257;
          const auto base = narrow_types(dn, seed);
          lbmv::core::DeltaRoundEngine drifted(mech, fam, rate, base, base);
          lbmv::util::Rng rng(seed + 1);
          for (int d = 0; d < 400; ++d) {
            const std::size_t agent = static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(drifted.size()) - 1));
            const double b = base[agent % dn] * (0.8 + 0.4 * rng.uniform());
            drifted.apply(agent, b, b * (1.0 + 0.1 * rng.uniform()));
          }
          (void)drifted.add_agent(base[0], base[0]);
          drifted.remove_agent(1);
          lbmv::core::DeltaRoundEngine fresh(mech, fam, rate, drifted.bids(),
                                             drifted.executions());
          const lbmv::core::RoundScalars a = drifted.scalars();
          const lbmv::core::RoundScalars b = fresh.scalars();
          diff_max_err = std::max(
              {diff_max_err, rel_err(a.optimal_latency, b.optimal_latency),
               rel_err(a.total_cost, b.total_cost),
               rel_err(a.actual_latency, b.actual_latency),
               rel_err(a.alloc_parameter, b.alloc_parameter)});
          for (std::size_t i = 0; i < drifted.size(); i += 37) {
            diff_max_err = std::max(diff_max_err,
                                    rel_err(drifted.leave_one_out(i),
                                            fresh.leave_one_out(i)));
          }
        };
    {
      const auto lin_types = narrow_types(257, 71);
      const lbmv::model::SystemConfig lin_config(lin_types, arrival_rate);
      drift_check(mechanism, lin_config.family_ptr(), arrival_rate, 71);
      double sum_mu = 0.0;
      for (double t : narrow_types(257, 72)) sum_mu += 1.0 / t;
      const lbmv::core::CompBonusMechanism mm1_mechanism(
          std::make_shared<const lbmv::alloc::MM1Allocator>());
      drift_check(mm1_mechanism,
                  std::make_shared<const lbmv::model::MM1Family>(),
                  0.5 * sum_mu, 72);
      const lbmv::core::CompBonusMechanism workload_mechanism(
          std::make_shared<const lbmv::alloc::WorkloadAllocator>());
      drift_check(workload_mechanism,
                  std::make_shared<const lbmv::model::WorkloadFamily>(0.5),
                  257.0, 73);
    }
    if (diff_max_err >= 1e-9) delta_check_pass = false;

    JsonValue::Array dr_series;
    JsonValue::Object entry;
    entry["n"] = static_cast<double>(n);
    entry["k"] = 1.0;
    entry["full_rounds_per_sec"] = 1.0 / full_secs;
    entry["delta_rounds_per_sec"] = 1.0 / delta_secs;
    entry["delta_speedup"] = delta_speedup;
    dr_series.emplace_back(std::move(entry));
    derived["delta_round_speedup_n1024"] = delta_speedup;
    delta_round["series"] = std::move(dr_series);
    delta_round["differential_max_rel_err"] = diff_max_err;
    delta_round["rebuild_period"] =
        static_cast<double>(std::max<std::size_t>(64, n));
    delta_round["cross_check_pass"] = delta_check_pass;
    delta_round["note"] =
        "full rows re-run the whole mechanism round through run_into for a "
        "one-bid toggle; delta rows absorb the same toggle through the "
        "persistent DeltaRoundEngine (O(1) apply + O(1) closed-form "
        "scalars, exact aggregate rebuild every max(64, n) deltas "
        "amortised into the timing); the differential drifts an engine "
        "through 400 random deltas plus membership churn per latency "
        "family and compares scalars and leave-one-out values against a "
        "freshly-built engine";
    std::cout << "delta_round n=" << n << ": full "
              << 1.0 / full_secs << " rounds/s, delta "
              << 1.0 / delta_secs << " (" << delta_speedup
              << "x); differential max rel err " << diff_max_err << " -> "
              << (delta_check_pass ? "pass" : "FAIL") << "\n";
  }

  JsonValue::Object doc;
  doc["schema"] = "lbmv-bench-perf-v1";
  {
    // Run configuration rides under one nested object — stray top-level
    // scalar keys (the old `arrival_rate`) polluted the document shape.
    JsonValue::Object run_config;
    run_config["arrival_rate"] = arrival_rate;
    run_config["smoke"] = smoke;
    doc["config"] = std::move(run_config);
  }
  doc["results"] = std::move(series);
  doc["derived"] = std::move(derived);
  if (!smoke) {
    doc["sim_throughput"] = std::move(sim_throughput);
    doc["obs_overhead"] = std::move(obs_overhead);
  }
  doc["strategy_throughput"] = std::move(strategy_throughput);
  doc["batch_round_throughput"] = std::move(batch_round_throughput);
  doc["deviation_grid"] = std::move(deviation_grid);
  doc["obs_timeseries"] = std::move(obs_timeseries);
  doc["nonlinear_round"] = std::move(nonlinear_round);
  doc["delta_round"] = std::move(delta_round);

  // Machine-checkable shape manifest: every composite (object/array)
  // section actually present in this document, in dump order.  The CI
  // perf-smoke check asserts this list matches the real top-level keys, so
  // the documented shape can no longer drift from what the runner emits.
  {
    JsonValue::Array sections;
    for (const auto& [key, value] : doc) {
      if (value.is_object() || value.is_array()) sections.emplace_back(key);
    }
    doc["sections"] = std::move(sections);
  }

  std::ofstream out(output);
  if (!out) {
    std::cerr << "cannot open " << output << " for writing\n";
    return 1;
  }
  out << JsonValue(std::move(doc)).dump(2) << "\n";
  std::cout << "wrote " << output << "\n";
  if (!cross_check_pass) {
    std::cerr << "strategy utilities cross-check FAILED\n";
    return 1;
  }
  if (!batch_check_pass) {
    std::cerr << "batch round kernels cross-check FAILED\n";
    return 1;
  }
  if (!grid_check_pass) {
    std::cerr << "deviation grid kernels cross-check FAILED\n";
    return 1;
  }
  if (!obs_check_pass) {
    std::cerr << "obs invariant-monitor gate FAILED\n";
    return 1;
  }
  if (!nonlinear_check_pass) {
    std::cerr << "nonlinear round kernels cross-check FAILED\n";
    return 1;
  }
  if (!delta_check_pass) {
    std::cerr << "delta round engine cross-check FAILED\n";
    return 1;
  }
  return 0;
}

// verified_protocol_demo: one full round of the paper's protocol, with the
// execution actually simulated and the execution values *estimated* from
// observed completions instead of assumed known.
//
//   protocol:  collect bids -> allocate (PR) -> execute jobs (DES) ->
//              estimate execution values -> pay (compensation + bonus)
//
//   ./verified_protocol_demo

#include <cstdio>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/sim/protocol.h"

int main() {
  using namespace lbmv;

  // Light-load types (the M/G/1 realisation of the linear latency model is
  // a light-traffic approximation; see DESIGN.md).
  const model::SystemConfig config({0.01, 0.01, 0.02, 0.04}, 5.0);

  // C2 secretly executes 2x slower than its capacity; C3 overbids 1.5x but
  // runs honestly at its bid.  C1 and C4 are truthful.
  model::BidProfile intents = model::BidProfile::truthful(config);
  intents.executions[1] = 0.02;  // slacker
  intents.bids[2] = 0.03;        // overbidder
  intents.executions[2] = 0.03;

  core::CompBonusMechanism mechanism;
  sim::ProtocolOptions options;
  options.horizon = 40000.0;  // simulated seconds of execution
  options.seed = 7;
  sim::VerifiedProtocol protocol(mechanism, options);

  const sim::RoundReport report = protocol.run_round(config, intents);

  std::printf("protocol messages: %zu (= 3n, O(n) as the paper claims)\n",
              report.messages);
  std::printf("jobs executed: %zu over %.0f simulated seconds\n\n",
              report.metrics.total_jobs(), options.horizon);

  std::printf("%-4s %10s %12s %12s %12s %12s\n", "", "jobs/s", "true t",
              "secret t~", "estimated", "payment");
  for (std::size_t i = 0; i < config.size(); ++i) {
    std::printf("C%-3zu %10.3f %12.4f %12.4f %12.4f %12.4f\n", i + 1,
                report.allocation[i], config.true_value(i),
                intents.executions[i], report.estimated_execution[i],
                report.outcome.agents[i].payment);
  }

  std::printf(
      "\npayment error vs the paper's oracle (exact t~ known): \n");
  for (std::size_t i = 0; i < config.size(); ++i) {
    const double est = report.outcome.agents[i].payment;
    const double oracle = report.oracle_outcome.agents[i].payment;
    std::printf("  C%zu: estimated %8.4f  oracle %8.4f  (diff %+.2f%%)\n",
                i + 1, est, oracle, (est / oracle - 1.0) * 100.0);
  }

  std::printf(
      "\nmeasured total latency %.4f vs analytic model %.4f\n",
      report.metrics.measured_total_latency,
      report.oracle_outcome.actual_latency);
  std::printf(
      "\nThe estimator exposes C2's slack (estimated ~2x its true value)\n"
      "without being told; every bonus — and therefore every utility — is\n"
      "then computed from the *measured* total latency rather than the\n"
      "reported one, which is what 'mechanism with verification' means.\n");
  return 0;
}

// grid_market: best-response dynamics in a computational-grid market.
//
// Machines repeatedly adjust their bids to maximise their own utility
// (boundedly rational participants in a grid market, cf. the POPCORN /
// G-commerce systems the paper cites).  Under the verified mechanism the
// market converges to truth-telling and the optimal latency; under the
// classical no-payment protocol every machine inflates its bid to dodge
// work and the system degrades.
//
//   ./grid_market

#include <cstdio>

#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/strategy/best_response.h"

namespace {

void report(const char* title, const lbmv::model::SystemConfig& config,
            const lbmv::strategy::BestResponseResult& result) {
  std::printf("=== %s ===\n", title);
  std::printf("rounds: %d, converged: %s\n", result.rounds,
              result.converged ? "yes" : "no");
  std::printf("bid trajectory (bid / true value, per round):\n");
  for (std::size_t round = 0; round < result.bid_trajectory.size();
       ++round) {
    std::printf("  round %2zu:", round + 1);
    for (std::size_t i = 0; i < config.size(); ++i) {
      std::printf(" %6.2f",
                  result.bid_trajectory[round][i] / config.true_value(i));
    }
    std::printf("\n");
  }
  std::printf("final latency: %.3f, max untruthfulness: %.2f%%\n\n",
              result.final_actual_latency,
              result.max_relative_untruthfulness * 100.0);
}

}  // namespace

int main() {
  using namespace lbmv;
  const model::SystemConfig config({1.0, 1.5, 2.0, 5.0, 8.0}, 15.0);
  const double optimal = alloc::pr_optimal_latency(
      std::vector<double>(config.true_values().begin(),
                          config.true_values().end()),
      config.arrival_rate());
  std::printf("market: 5 machines, R = 15 jobs/s, optimal latency %.3f\n\n",
              optimal);

  strategy::BestResponseOptions options;
  options.max_rounds = 15;

  core::CompBonusMechanism verified;
  report("verified mechanism (compensation & bonus)", config,
         strategy::best_response_dynamics(verified, config, options));

  core::NoPaymentMechanism classical;
  options.optimize_execution = false;
  report("classical protocol (no payments)", config,
         strategy::best_response_dynamics(classical, config, options));

  std::printf(
      "Under the verified mechanism the bid ratios settle at 1.00 (truth)\n"
      "and the final latency equals the optimum; without payments the\n"
      "ratios run to the bid ceiling and latency degrades.\n");
  return 0;
}

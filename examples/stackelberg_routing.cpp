// stackelberg_routing: when you can't pay, control part of the flow.
//
// The paper's mechanism uses *payments* to fix selfish behaviour.  Its
// reference [19] (Roughgarden) offers the orthogonal lever for the same
// parallel-link system: centrally control a fraction of the jobs and let
// the rest route selfishly.  This example contrasts the two worlds:
//   * pure linear links (the paper's model): selfish routing is already
//     optimal — only misreporting computers can hurt you, hence the
//     mechanism;
//   * affine links: selfish routing itself is inefficient, and a
//     Largest-Latency-First leader buys the optimum back with a modest
//     control share.
//
//   ./stackelberg_routing

#include <cstdio>
#include <memory>
#include <vector>

#include "lbmv/game/stackelberg.h"
#include "lbmv/model/latency.h"

int main() {
  using namespace lbmv;
  using game::StackelbergStrategy;

  std::printf("=== the paper's world: pure linear links ===\n");
  {
    std::vector<std::unique_ptr<model::LatencyFunction>> links;
    links.push_back(std::make_unique<model::LinearLatency>(1.0));
    links.push_back(std::make_unique<model::LinearLatency>(2.0));
    links.push_back(std::make_unique<model::LinearLatency>(5.0));
    const auto poa = game::price_of_anarchy(links, 10.0);
    std::printf(
        "selfish L = %.4f, optimal L = %.4f, PoA = %.4f\n"
        "-> routing needs no leader here; the threat is lying machines.\n\n",
        poa.equilibrium_latency, poa.optimal_latency,
        poa.price_of_anarchy());
  }

  std::printf("=== affine links: control fraction vs inefficiency ===\n");
  std::vector<std::unique_ptr<model::LatencyFunction>> links;
  links.push_back(std::make_unique<model::AffineLatency>(3.0, 0.1));
  links.push_back(std::make_unique<model::AffineLatency>(1.0, 0.5));
  links.push_back(std::make_unique<model::LinearLatency>(1.5));
  const double demand = 6.0;
  std::printf("%6s %14s %14s\n", "alpha", "LLF latency", "inefficiency");
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto report = game::stackelberg(
        links, demand, alpha, StackelbergStrategy::kLargestLatencyFirst);
    std::printf("%6.2f %14.4f %14.4f\n", alpha, report.total_latency,
                report.inefficiency());
  }
  std::printf(
      "\nPayments (the paper) and partial central control (ref. [19]) are\n"
      "complementary tools for the same system model.\n");
  return 0;
}

// distributed_payments: the paper's future work, running.
//
// One round of the mechanism on each distributed deployment.  All four
// produce the same allocation and payments; the private deployment does so
// without any party ever observing another agent's bid — bids enter the
// computation only as additive secret shares, and only the two aggregates
// (sum of inverse bids, measured total latency) ever become public.
//
//   ./distributed_payments

#include <cstdio>

#include "lbmv/dist/protocols.h"
#include "lbmv/model/bids.h"

int main() {
  using namespace lbmv;
  using dist::Topology;

  const model::SystemConfig config({1.0, 1.0, 2.0, 5.0}, 10.0);
  // Computer 2 overbids consistently (claims 2x slower, runs at the bid).
  const auto intents = model::BidProfile::deviate(config, 2, 2.0, 2.0);

  std::printf("system: 4 computers, R = 10 jobs/s; C3 overbids 2x\n\n");
  for (Topology topology :
       {Topology::kStar, Topology::kBroadcast, Topology::kTree,
        Topology::kPrivate}) {
    const auto report =
        dist::run_distributed_round(topology, config, intents);
    std::printf("=== %s ===\n", report.protocol.c_str());
    std::printf("messages: %zu, doubles on the wire: %zu, time: %.3fs\n",
                report.messages, report.doubles_transferred,
                report.completion_time);
    std::printf("  %-4s %10s %10s %10s\n", "", "jobs/s", "payment",
                "utility");
    for (std::size_t i = 0; i < config.size(); ++i) {
      std::printf("  C%-3zu %10.4f %10.4f %10.4f\n", i + 1,
                  report.allocation[i], report.payments[i],
                  report.utilities[i]);
    }
    std::printf("\n");
  }
  std::printf(
      "Identical economics, different trust models: pick star for\n"
      "simplicity, tree for O(n) decentralisation, broadcast for\n"
      "auditability, private when bids are business secrets.\n");
  return 0;
}

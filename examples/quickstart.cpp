// Quickstart: the library in ~40 lines.
//
// Build a small heterogeneous system, run the paper's load balancing
// mechanism with verification on a profile where one computer lies, and
// print the allocation, payments and utilities.
//
//   ./quickstart

#include <cstdio>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/system_config.h"

int main() {
  using namespace lbmv;

  // Four computers; true value t_i is inversely proportional to speed
  // (latency per job at rate x is t_i * x).  Jobs arrive at 10 jobs/s.
  const model::SystemConfig config({1.0, 1.0, 2.0, 4.0},
                                   /*arrival_rate=*/10.0);

  // The mechanism: PR allocation + compensation-and-bonus payments with
  // verification (Grosu & Chronopoulos, IPDPS'03).
  core::CompBonusMechanism mechanism;

  // Computer 0 claims to be 3x slower than it is, and then also executes
  // its jobs 1.5x slower than its capacity.  Everyone else is truthful.
  const model::BidProfile profile =
      model::BidProfile::deviate(config, 0, /*bid_mult=*/3.0,
                                 /*exec_mult=*/1.5);

  const core::MechanismOutcome outcome = mechanism.run(config, profile);

  std::printf("total latency (actual):   %8.3f\n", outcome.actual_latency);
  std::printf("total latency (reported): %8.3f\n\n",
              outcome.reported_latency);
  std::printf("%-4s %10s %12s %10s %10s %10s\n", "", "jobs/s", "compensation",
              "bonus", "payment", "utility");
  for (std::size_t i = 0; i < outcome.agents.size(); ++i) {
    const auto& a = outcome.agents[i];
    std::printf("C%-3zu %10.3f %12.3f %10.3f %10.3f %10.3f\n", i + 1,
                a.allocation, a.compensation, a.bonus, a.payment, a.utility);
  }

  // Compare with the all-truthful outcome: the liar's utility must drop.
  const auto truthful =
      mechanism.run(config, model::BidProfile::truthful(config));
  std::printf("\nC1 utility: %.3f (lying)  vs  %.3f (truthful) — lying %s\n",
              outcome.agents[0].utility, truthful.agents[0].utility,
              outcome.agents[0].utility < truthful.agents[0].utility
                  ? "does not pay"
                  : "paid?!");
  return 0;
}

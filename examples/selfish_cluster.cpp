// selfish_cluster: a cluster of selfish machines under three regimes.
//
// The scenario the paper's introduction motivates: computational resources
// owned by self-interested organisations.  We run the same mixed population
// (truthful machines, an overbidder, an underbidder, an execution slacker)
// under (a) the classical no-payment protocol, (b) VCG without
// verification, and (c) the paper's mechanism with verification, and report
// what each agent earns and what the system loses.
//
//   ./selfish_cluster

#include <cstdio>
#include <memory>
#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/vcg.h"
#include "lbmv/strategy/strategy.h"
#include "lbmv/util/rng.h"

int main() {
  using namespace lbmv;

  // Eight machines across three speed classes; R = 24 jobs/s.
  const model::SystemConfig config({1.0, 1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 4.0},
                                   24.0);

  strategy::TruthfulStrategy truthful;
  strategy::ScalingStrategy overbidder(3.0, 3.0);   // claims 3x slower
  strategy::ScalingStrategy underbidder(0.5, 1.0);  // claims 2x faster
  strategy::SlackExecutionStrategy slacker(2.0);    // runs at half speed
  const std::vector<const strategy::Strategy*> population{
      &truthful, &overbidder, &underbidder, &slacker,
      &truthful, &truthful,   &truthful,    &truthful};
  const char* roles[] = {"truthful", "overbidder", "underbidder", "slacker",
                         "truthful", "truthful",   "truthful",    "truthful"};

  util::Rng rng(2026);
  const model::BidProfile profile =
      strategy::apply_strategies(config, population, rng);

  const core::NoPaymentMechanism no_payment;
  const core::VcgMechanism vcg;
  const core::CompBonusMechanism verified;
  const core::Mechanism* mechanisms[] = {&no_payment, &vcg, &verified};

  const double optimal =
      verified.run(config, model::BidProfile::truthful(config))
          .actual_latency;
  std::printf("optimal total latency (all truthful): %.3f\n\n", optimal);

  for (const auto* mechanism : mechanisms) {
    const auto outcome = mechanism->run(config, profile);
    std::printf("=== %s%s ===\n", mechanism->name().c_str(),
                mechanism->uses_verification() ? "  [with verification]"
                                               : "");
    std::printf("total latency: %.3f (+%.1f%% over optimal)\n",
                outcome.actual_latency,
                (outcome.actual_latency / optimal - 1.0) * 100.0);
    std::printf("%-4s %-12s %10s %10s %10s\n", "", "role", "jobs/s",
                "payment", "utility");
    for (std::size_t i = 0; i < config.size(); ++i) {
      const auto& a = outcome.agents[i];
      std::printf("C%-3zu %-12s %10.3f %10.3f %10.3f\n", i + 1, roles[i],
                  a.allocation, a.payment, a.utility);
    }
    std::printf("\n");
  }

  // The claim that matters is per-agent and counterfactual: would each
  // deviator have done better by being truthful, holding everyone else's
  // behaviour fixed?
  std::printf(
      "=== comp-bonus: deviators vs their truthful counterfactuals ===\n");
  const auto achieved = verified.run(config, profile);
  for (std::size_t i = 1; i <= 3; ++i) {  // the three deviators
    model::BidProfile counterfactual = profile;
    counterfactual.bids[i] = config.true_value(i);
    counterfactual.executions[i] = config.true_value(i);
    const auto honest = verified.run(config, counterfactual);
    std::printf("C%zu (%s): achieved %8.3f, truthful %8.3f -> %s\n", i + 1,
                roles[i], achieved.agents[i].utility,
                honest.agents[i].utility,
                achieved.agents[i].utility <= honest.agents[i].utility + 1e-9
                    ? "lying did not pay"
                    : "lying paid (inconsistent-opponent boundary case, "
                      "see EXPERIMENTS.md)");
  }

  std::printf(
      "\nReading the output: under no-payment, deviators profit (utility\n"
      "closer to 0 than truthful peers).  Under VCG every payment is\n"
      "computed from the bids alone, so the slacker's damage never enters\n"
      "the books.  Under the verified mechanism all utilities are anchored\n"
      "to the *measured* latency, and the counterfactual table shows the\n"
      "incentive the paper proves: each deviator would have earned at\n"
      "least as much by being truthful against the same opponents.\n");
  return 0;
}

// Unit tests for lbmv/util/thread_pool.h.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "lbmv/util/thread_pool.h"

namespace {

using lbmv::util::parallel_for;
using lbmv::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesTaskExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.submit([] { throw std::runtime_error("task exploded"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor must wait for queued work
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SingleThreadPoolIsSequentialAndCorrect) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // FIFO on one thread
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  parallel_for(pool, 7, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RangeSmallerThanPoolStillWorks) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  parallel_for(pool, 0, 3, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, RethrowsFirstBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 42) {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
}

TEST(ParallelFor, GlobalPoolOverloadWorks) {
  std::atomic<std::size_t> sum{0};
  parallel_for(0, 1000, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 999u * 1000u / 2u);
}

TEST(ParallelFor, MemberGrainZeroAutoChunks) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, [&](std::size_t i) { ++hits[i]; }, /*grain=*/0);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, ExplicitGrainCoversEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1003;  // not a multiple of any grain below
  for (const std::size_t grain : {1ul, 7ul, 64ul, 5000ul}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(0, n, [&](std::size_t i) { ++hits[i]; }, grain);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ParallelFor, GrainAtLeastRangeRunsInline) {
  // One chunk means no task handoff: the body sees the calling thread.
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(0, seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); },
                    /*grain=*/seen.size());
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, CoarseGrainRethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 99) {
                                     throw std::runtime_error("boom");
                                   }
                                 },
                                 /*grain=*/8),
               std::runtime_error);
}

TEST(ParallelFor, ParallelSumMatchesSequential) {
  ThreadPool pool(6);
  const std::size_t n = 4096;
  std::vector<double> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double total = 0.0;
  for (double v : out) total += v;
  EXPECT_DOUBLE_EQ(total, 0.5 * static_cast<double>(n - 1) *
                              static_cast<double>(n) / 2.0);
}

}  // namespace

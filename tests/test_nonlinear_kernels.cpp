// Differential and boundary suite for the fused nonlinear-family kernels
// (core/family_round.h, core/family_context.h, DESIGN.md §14).
//
// Contracts under test:
//   * Capacity boundaries surface as typed PreconditionErrors — infeasible
//     R >= sum mu, the near-saturation cancellation guard, leave-one-out
//     subsystems that cannot absorb the load (naming the offending agent),
//     and execution-side overload x_i >= mu~_i — identically on the fused
//     (kVectorized) and generic (kScalar) paths.
//   * The workload-family Newton solve agrees with a long-double bisection
//     oracle on the KKT multiplier to 1e-9 relative.
//   * Fused rounds agree with the generic virtual-dispatch path to 1e-9
//     relative across both families, every payment rule, and lane-tail
//     sizes.
//   * The M/M/1 deviation-grid kernels (GridEvaluator) are bit-identical to
//     the scalar DeviationEvaluator oracle at any thread count, and
//     audit_all grids are bit-identical parallel vs serial; both families
//     stay truthful-dominant under audit_all.
//
// The whole file runs under the ASan/UBSan and LBMV_SIMD=OFF CI legs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/workload_allocator.h"
#include "lbmv/core/audit.h"
#include "lbmv/core/batch.h"
#include "lbmv/core/comp_bonus.h"
#include "lbmv/core/family_context.h"
#include "lbmv/core/mechanism.h"
#include "lbmv/core/no_payment.h"
#include "lbmv/core/simd_round.h"
#include "lbmv/core/vcg.h"
#include "lbmv/model/bids.h"
#include "lbmv/model/latency.h"
#include "lbmv/model/system_config.h"
#include "lbmv/strategy/deviation.h"
#include "lbmv/strategy/grid.h"
#include "lbmv/strategy/grid_eval.h"
#include "lbmv/util/error.h"
#include "lbmv/util/rng.h"
#include "lbmv/util/thread_pool.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::core::CompensationBasis;
using lbmv::core::KernelBackend;
using lbmv::core::Mechanism;
using lbmv::core::MechanismOutcome;
using lbmv::core::NoPaymentMechanism;
using lbmv::core::RoundWorkspace;
using lbmv::core::VcgMechanism;
using lbmv::model::BidProfile;
using lbmv::model::MM1Family;
using lbmv::model::SystemConfig;
using lbmv::model::WorkloadFamily;
using lbmv::strategy::DeviationEvaluator;
using lbmv::strategy::GridEvaluator;
using lbmv::util::PreconditionError;

/// Backend save/restore so every test leaves the process default intact.
class BackendGuard {
 public:
  BackendGuard() : saved_(lbmv::core::kernel_backend()) {}
  ~BackendGuard() { lbmv::core::set_kernel_backend(saved_); }

 private:
  KernelBackend saved_;
};

/// Mean service times with mu = 1/theta in [1, 2]: at arrival rates up to
/// roughly half the total capacity every computer stays active in the full
/// set and all leave-one-out subsystems, so the fused M/M/1 engine owns the
/// round (heterogeneous drop-out profiles take the generic path by design).
std::vector<double> narrow_types(std::size_t n, std::uint64_t seed) {
  lbmv::util::Rng rng(seed);
  std::vector<double> t(n);
  for (double& ti : t) ti = rng.uniform(0.5, 1.0);
  return t;
}

double sum_mu(std::span<const double> thetas) {
  double s = 0.0;
  for (double t : thetas) s += 1.0 / t;
  return s;
}

/// Half the capacity of the weakest leave-one-out subsystem: feasible (with
/// 2x slack) in the full set and every rest set, down to n = 2.
double feasible_rate(std::span<const double> thetas) {
  double max_mu = 0.0;
  for (double t : thetas) max_mu = std::max(max_mu, 1.0 / t);
  return 0.5 * (sum_mu(thetas) - max_mu);
}

/// Every mechanism the fused engines serve, bound to \p allocator.
std::vector<std::unique_ptr<Mechanism>> family_mechanisms(
    const std::shared_ptr<const lbmv::alloc::Allocator>& allocator) {
  std::vector<std::unique_ptr<Mechanism>> ms;
  ms.push_back(std::make_unique<CompBonusMechanism>(allocator));
  ms.push_back(
      std::make_unique<CompBonusMechanism>(allocator, CompensationBasis::kBid));
  ms.push_back(std::make_unique<VcgMechanism>(allocator));
  ms.push_back(std::make_unique<NoPaymentMechanism>(allocator));
  return ms;
}

double rel_err(double a, double b) {
  return std::fabs(a - b) / std::max(1.0, std::fabs(b));
}

double outcome_rel_err(const MechanismOutcome& a, const MechanismOutcome& b) {
  EXPECT_EQ(a.agents.size(), b.agents.size());
  double err = rel_err(a.actual_latency, b.actual_latency);
  err = std::max(err, rel_err(a.reported_latency, b.reported_latency));
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    err = std::max(err, rel_err(a.allocation[i], b.allocation[i]));
    err = std::max(err, rel_err(a.agents[i].compensation,
                                b.agents[i].compensation));
    err = std::max(err, rel_err(a.agents[i].bonus, b.agents[i].bonus));
    err = std::max(err, rel_err(a.agents[i].payment, b.agents[i].payment));
    err = std::max(err, rel_err(a.agents[i].utility, b.agents[i].utility));
  }
  return err;
}

// ---------------------------------------------------------------------------
// Capacity boundaries: typed PreconditionErrors on both backends.

TEST(Mm1Boundary, InfeasibleArrivalRateThrowsTypedOnBothBackends) {
  const MM1Family family;
  const CompBonusMechanism mechanism(
      std::make_shared<const lbmv::alloc::MM1Allocator>());
  const std::vector<double> thetas{0.5, 0.5, 1.0};  // sum mu = 5
  RoundWorkspace ws;
  MechanismOutcome out;
  BackendGuard guard;
  for (KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kVectorized}) {
    lbmv::core::set_kernel_backend(backend);
    for (double rate : {5.0, 7.5}) {  // R == sum mu and R > sum mu
      EXPECT_THROW(
          mechanism.run_into(family, rate, thetas, thetas, out, ws),
          PreconditionError)
          << "rate " << rate;
    }
  }
}

TEST(Mm1Boundary, NearSaturationCancellationGuardThrowsTyped) {
  // R within 1e-9 of sum mu: the closed form would return only cancelled
  // digits, so the allocator refuses instead of returning noise.
  const std::vector<double> mus{2.0, 2.0, 1.0};
  std::vector<double> rates(mus.size());
  const double total = 5.0;
  EXPECT_THROW(
      (void)lbmv::alloc::mm1_solve_into(mus, total * (1.0 - 1e-12), rates),
      PreconditionError);
  // Just outside the guard the solve succeeds.
  EXPECT_NO_THROW(
      (void)lbmv::alloc::mm1_solve_into(mus, total * (1.0 - 1e-6), rates));
}

TEST(Mm1Boundary, LeaveOneOutOverloadNamesTheOffendingAgent) {
  // Removing the dominant computer 0 (mu = 10) leaves capacity 2 < R = 5:
  // the leave-one-out subsystem is infeasible and the error must say whose
  // departure caused it.
  const MM1Family family;
  const lbmv::alloc::MM1Allocator allocator;
  const std::vector<double> thetas{0.1, 1.0, 1.0};
  std::vector<double> loo;
  try {
    allocator.leave_one_out_into(family, thetas, 5.0, loo);
    FAIL() << "infeasible leave-one-out subsystem did not throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("without computer 0"),
              std::string::npos)
        << e.what();
  }
}

TEST(Mm1Boundary, ExecutionOverloadThrowsTypedOnBothBackends) {
  // Underbid-and-slack: computer 0 bids fast (mu = 10) but executes slow
  // (mu~ = 1).  Its assignment x_0 approaches the bid capacity from below —
  // far beyond the *actual* capacity, x_0 >= mu~_0 — so the actual-latency
  // pass must throw the typed domain error on both backends (the fused
  // engine declines such rounds; the generic path owns the diagnostic).
  const MM1Family family;
  const CompBonusMechanism mechanism(
      std::make_shared<const lbmv::alloc::MM1Allocator>());
  const std::vector<double> bids{0.1, 0.5, 0.5};
  const std::vector<double> execs{1.0, 0.5, 0.5};
  RoundWorkspace ws;
  MechanismOutcome out;
  BackendGuard guard;
  for (KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kVectorized}) {
    lbmv::core::set_kernel_backend(backend);
    try {
      mechanism.run_into(family, 10.0, bids, execs, out, ws);
      FAIL() << "overloaded execution did not throw";
    } catch (const PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find("0 <= x < mu"), std::string::npos)
          << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Workload Newton vs long-double bisection oracle.

double bisection_max_rel_err(std::span<const double> thetas, double gamma,
                             double arrival_rate,
                             std::span<const double> newton_rates) {
  const long double g3 = 3.0L * static_cast<long double>(gamma);
  const auto rate_at = [&](long double lambda, double theta) {
    return (std::sqrt(1.0L + g3 * lambda / static_cast<long double>(theta)) -
            1.0L) /
           g3;
  };
  const auto residual = [&](long double lambda) {
    long double sum = 0.0L;
    for (double theta : thetas) sum += rate_at(lambda, theta);
    return sum - static_cast<long double>(arrival_rate);
  };
  long double inv_sum = 0.0L;
  for (double theta : thetas) inv_sum += 1.0L / theta;
  // x_i(lambda) <= lambda/(2 theta_i), so g(2R/S) <= 0: a valid lower
  // bracket (the same start the Newton solver uses).
  long double lo = 2.0L * static_cast<long double>(arrival_rate) / inv_sum;
  long double hi = lo > 0.0L ? 2.0L * lo : 1.0L;
  while (residual(hi) <= 0.0L) hi *= 2.0L;
  for (int it = 0; it < 200; ++it) {
    const long double mid = 0.5L * (lo + hi);
    (residual(mid) <= 0.0L ? lo : hi) = mid;
  }
  const long double lambda = 0.5L * (lo + hi);
  double max_err = 0.0;
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const long double oracle = rate_at(lambda, thetas[i]);
    max_err = std::max(
        max_err,
        static_cast<double>(
            std::fabs(static_cast<long double>(newton_rates[i]) - oracle) /
            std::fmax(1.0L, std::fabs(oracle))));
  }
  return max_err;
}

TEST(WorkloadNewton, MatchesLongDoubleBisectionOracle) {
  for (std::size_t n : {2u, 5u, 64u, 257u}) {
    for (double gamma : {0.1, 0.5, 2.0}) {
      const auto thetas = narrow_types(n, 31 * n + 7);
      for (double rate : {0.5, static_cast<double>(n), 10.0 * n}) {
        std::vector<double> rates(n);
        const lbmv::alloc::WorkloadSolve solve =
            lbmv::alloc::workload_solve_into(thetas, gamma, rate, rates);
        EXPECT_LE(solve.iterations, lbmv::alloc::kWorkloadNewtonMaxIters);
        EXPECT_LE(bisection_max_rel_err(thetas, gamma, rate, rates), 1e-9)
            << "n=" << n << " gamma=" << gamma << " R=" << rate;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fused vs generic differential across rules, families, and lane tails.

TEST(FusedDifferential, Mm1FusedRoundsMatchGenericPath) {
  const MM1Family family;
  const auto allocator = std::make_shared<const lbmv::alloc::MM1Allocator>();
  RoundWorkspace ws;
  MechanismOutcome fused;
  MechanismOutcome generic;
  BackendGuard guard;
  for (std::size_t n : {2u, 5u, 64u, 257u}) {  // covers every lane tail
    const auto thetas = narrow_types(n, 17 * n + 1);
    auto execs = thetas;
    for (double& e : execs) e *= 1.05;
    const double rate = feasible_rate(thetas);
    for (const auto& mechanism : family_mechanisms(allocator)) {
      lbmv::core::set_kernel_backend(KernelBackend::kScalar);
      mechanism->run_into(family, rate, thetas, execs, generic, ws);
      lbmv::core::set_kernel_backend(KernelBackend::kVectorized);
      mechanism->run_into(family, rate, thetas, execs, fused, ws);
      EXPECT_LE(outcome_rel_err(fused, generic), 1e-9)
          << mechanism->name() << " n=" << n;
    }
  }
}

TEST(FusedDifferential, WorkloadFusedRoundsMatchGenericPath) {
  const WorkloadFamily family(0.5);
  const auto allocator =
      std::make_shared<const lbmv::alloc::WorkloadAllocator>();
  RoundWorkspace ws;
  MechanismOutcome fused;
  MechanismOutcome generic;
  BackendGuard guard;
  for (std::size_t n : {2u, 5u, 64u, 257u}) {
    const auto thetas = narrow_types(n, 23 * n + 5);
    auto execs = thetas;
    for (double& e : execs) e *= 1.4;
    const double rate = static_cast<double>(n);
    for (const auto& mechanism : family_mechanisms(allocator)) {
      lbmv::core::set_kernel_backend(KernelBackend::kScalar);
      mechanism->run_into(family, rate, thetas, execs, generic, ws);
      lbmv::core::set_kernel_backend(KernelBackend::kVectorized);
      mechanism->run_into(family, rate, thetas, execs, fused, ws);
      EXPECT_LE(outcome_rel_err(fused, generic), 1e-9)
          << mechanism->name() << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// M/M/1 grid kernels: bit-identical to the scalar oracle at any thread
// count.

TEST(Mm1Grid, GridEvaluatorBitIdenticalToScalarOracle) {
  const std::size_t n = 9;
  const double rate = 0.4 * sum_mu(narrow_types(n, 3));
  const SystemConfig config(narrow_types(n, 3), rate,
                            std::make_shared<const MM1Family>());
  const CompBonusMechanism mechanism(
      std::make_shared<const lbmv::alloc::MM1Allocator>());
  const DeviationEvaluator evaluator(mechanism, config);
  ASSERT_TRUE(evaluator.incremental());
  ASSERT_NE(dynamic_cast<const lbmv::core::Mm1PrProfileContext*>(
                evaluator.profile_context()),
            nullptr);

  for (std::size_t threads : {1u, 2u, 8u}) {
    lbmv::util::ThreadPool pool(threads);
    const GridEvaluator grid_eval(evaluator, &pool);
    EXPECT_TRUE(grid_eval.vectorized());
    for (std::size_t agent = 0; agent < n; ++agent) {
      const double truth = config.true_value(agent);
      // Wide grid: interior candidates ride the all-active fast path while
      // very slow bids (8x truth) drop the deviator out of the active set
      // and defer whole lane blocks to the scalar oracle — both must match
      // bit for bit.  The fast edge stays at 0.9x truth: faster bids win an
      // assignment beyond the agent's true capacity, where the domain
      // REQUIRE fires (covered by Mm1Boundary).  Sizes off the lane
      // multiple cover tail padding.
      for (std::size_t points : {2u, 6u, 103u}) {
        const std::vector<double> bids = lbmv::strategy::make_bid_grid(
            0.9 * truth, 8.0 * truth, points,
            lbmv::strategy::GridSpacing::kLinear);
        std::vector<double> fast(points);
        grid_eval.utilities_into(agent, bids, truth, fast);
        double best_u = evaluator.utility(agent, bids[0], truth);
        std::size_t best_k = 0;
        for (std::size_t k = 0; k < points; ++k) {
          const double oracle = evaluator.utility(agent, bids[k], truth);
          EXPECT_EQ(fast[k], oracle)  // bit-identical, not just close
              << "agent " << agent << " candidate " << k;
          if (oracle > best_u) {
            best_u = oracle;
            best_k = k;
          }
        }
        const GridEvaluator::Best best =
            grid_eval.best_response(agent, bids, truth);
        EXPECT_EQ(best.index, best_k);
        EXPECT_EQ(best.utility, best_u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// audit_all: both families truthful-dominant, grids bit-identical parallel
// vs serial.

TEST(FamilyAudit, Mm1AuditAllTruthfulDominantAndThreadInvariant) {
  const SystemConfig config({0.1, 0.1, 0.2, 0.5, 0.5}, 12.0,
                            std::make_shared<const MM1Family>());
  const CompBonusMechanism mechanism(
      std::make_shared<const lbmv::alloc::MM1Allocator>());
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions serial;
  serial.bid_multipliers = {0.85, 0.9, 1.0, 1.2, 1.5, 2.0, 3.0};
  serial.exec_multipliers = {1.0, 1.1, 1.2};
  serial.parallel = false;
  serial.keep_grid = true;
  lbmv::core::AuditOptions parallel = serial;
  parallel.parallel = true;

  const auto serial_reports = auditor.audit_all(config, serial);
  const auto parallel_reports = auditor.audit_all(config, parallel);
  ASSERT_EQ(serial_reports.size(), config.size());
  for (std::size_t i = 0; i < serial_reports.size(); ++i) {
    EXPECT_TRUE(serial_reports[i].truthful_dominant(1e-6))
        << "agent " << i << " gains " << serial_reports[i].max_gain;
    ASSERT_EQ(serial_reports[i].grid.size(), parallel_reports[i].grid.size());
    for (std::size_t k = 0; k < serial_reports[i].grid.size(); ++k) {
      EXPECT_EQ(serial_reports[i].grid[k].utility,
                parallel_reports[i].grid[k].utility)
          << "agent " << i << " grid point " << k;
    }
  }
}

TEST(FamilyAudit, WorkloadAuditAllTruthfulDominantAndThreadInvariant) {
  const SystemConfig config({0.2, 0.3, 0.5, 0.8}, 6.0,
                            std::make_shared<const WorkloadFamily>(0.5));
  const CompBonusMechanism mechanism(
      std::make_shared<const lbmv::alloc::WorkloadAllocator>());
  const lbmv::core::TruthfulnessAuditor auditor(mechanism);
  lbmv::core::AuditOptions serial;
  serial.bid_multipliers = {0.5, 0.8, 1.0, 1.3, 2.0};
  serial.exec_multipliers = {1.0, 1.5};
  serial.parallel = false;
  serial.keep_grid = true;
  lbmv::core::AuditOptions parallel = serial;
  parallel.parallel = true;

  const auto serial_reports = auditor.audit_all(config, serial);
  const auto parallel_reports = auditor.audit_all(config, parallel);
  for (std::size_t i = 0; i < serial_reports.size(); ++i) {
    EXPECT_TRUE(serial_reports[i].truthful_dominant(1e-6))
        << "agent " << i << " gains " << serial_reports[i].max_gain;
    for (std::size_t k = 0; k < serial_reports[i].grid.size(); ++k) {
      EXPECT_EQ(serial_reports[i].grid[k].utility,
                parallel_reports[i].grid[k].utility)
          << "agent " << i << " grid point " << k;
    }
  }
}

}  // namespace

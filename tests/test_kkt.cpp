// Tests for the KKT optimality verifier and the M/M/1 closed form.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lbmv/alloc/kkt.h"
#include "lbmv/alloc/mm1_allocator.h"
#include "lbmv/alloc/pr_allocator.h"
#include "lbmv/model/latency.h"
#include "lbmv/util/error.h"

namespace {

using namespace lbmv::model;
using lbmv::alloc::check_kkt;
using lbmv::alloc::mm1_allocate;
using lbmv::alloc::MM1Allocator;
using lbmv::alloc::pr_allocate;

std::vector<std::unique_ptr<LatencyFunction>> linear_curves(
    const std::vector<double>& t) {
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  for (double ti : t) fns.push_back(std::make_unique<LinearLatency>(ti));
  return fns;
}

TEST(Kkt, CertifiesPrAllocation) {
  const std::vector<double> t{1.0, 2.0, 5.0, 10.0};
  const double R = 20.0;
  const auto x = pr_allocate(t, R);
  const auto fns = linear_curves(t);
  const auto report = check_kkt(x, fns, R);
  EXPECT_TRUE(report.optimal()) << report.describe();
  // For linear latencies the multiplier is 2R / sum(1/t); here
  // sum(1/t) = 1 + 1/2 + 1/5 + 1/10 = 1.8.
  EXPECT_NEAR(report.lambda, 2.0 * R / 1.8, 1e-9);
}

TEST(Kkt, RejectsSuboptimalFeasibleAllocation) {
  const std::vector<double> t{1.0, 2.0};
  const double R = 9.0;
  const auto fns = linear_curves(t);
  // Feasible but not proportional: marginals differ.
  const Allocation bad({4.5, 4.5});
  const auto report = check_kkt(bad, fns, R);
  EXPECT_TRUE(report.conservation_ok);
  EXPECT_TRUE(report.positivity_ok);
  EXPECT_FALSE(report.stationarity_ok);
  EXPECT_FALSE(report.optimal());
}

TEST(Kkt, RejectsInfeasibleAllocation) {
  const std::vector<double> t{1.0, 2.0};
  const auto fns = linear_curves(t);
  const Allocation wrong_total({1.0, 1.0});
  EXPECT_FALSE(check_kkt(wrong_total, fns, 9.0).conservation_ok);
  const Allocation negative({10.0, -1.0});
  EXPECT_FALSE(check_kkt(negative, fns, 9.0).positivity_ok);
}

TEST(Kkt, AcceptsIdleComputersWithDominatedMarginals) {
  // M/M/1 where the slow machine is optimally idle.
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  fns.push_back(std::make_unique<MM1Latency>(100.0));
  fns.push_back(std::make_unique<MM1Latency>(0.5));
  const Allocation x({0.05, 0.0});
  EXPECT_TRUE(check_kkt(x, fns, 0.05, 1e-5).optimal());
}

TEST(Kkt, FlagsIdleComputerThatWantsLoad) {
  // Both machines identical but one idles: the idle one's marginal at zero
  // is below the active one's marginal, violating stationarity.
  const std::vector<double> t{1.0, 1.0};
  const auto fns = linear_curves(t);
  const Allocation x({2.0, 0.0});
  EXPECT_FALSE(check_kkt(x, fns, 2.0).optimal());
}

TEST(Kkt, DescribeMentionsEachCondition) {
  const std::vector<double> t{1.0};
  const auto fns = linear_curves(t);
  const auto report = check_kkt(Allocation({1.0}), fns, 1.0);
  const std::string text = report.describe();
  EXPECT_NE(text.find("positivity"), std::string::npos);
  EXPECT_NE(text.find("conservation"), std::string::npos);
  EXPECT_NE(text.find("stationarity"), std::string::npos);
}

TEST(Mm1ClosedForm, DropsSlowServerWhenLoadIsLight) {
  // mu = (4, 1), R = 1.  With both active c = 4/3 and x_2 < 0, so server 2
  // is dropped; then c = (4 - 1)/2 = 1.5 and x_1 = 4 - 1.5*2 = 1.
  const std::vector<double> mus{4.0, 1.0};
  const Allocation x = mm1_allocate(mus, 1.0);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(Mm1ClosedForm, AllServersActiveUnderHeavyLoad) {
  const std::vector<double> mus{4.0, 1.0};
  const double R = 4.0;
  const Allocation x = mm1_allocate(mus, R);
  EXPECT_GT(x[0], 0.0);
  EXPECT_GT(x[1], 0.0);
  EXPECT_TRUE(x.is_feasible(R, 1e-12));
  // Verify against KKT on the actual curves.
  std::vector<std::unique_ptr<LatencyFunction>> fns;
  for (double mu : mus) fns.push_back(std::make_unique<MM1Latency>(mu));
  EXPECT_TRUE(check_kkt(x, fns, R, 1e-9).optimal());
}

TEST(Mm1ClosedForm, RejectsOverload) {
  EXPECT_THROW((void)mm1_allocate(std::vector<double>{1.0, 2.0}, 3.0),
               lbmv::util::PreconditionError);
}

TEST(Mm1AllocatorInterface, InterpretsTypesAsMeanServiceTimes) {
  MM1Allocator allocator;
  MM1Family family;
  const std::vector<double> theta{0.25, 1.0};  // mu = 4, 1
  const Allocation via = allocator.allocate(family, theta, 4.0);
  const Allocation direct = mm1_allocate(std::vector<double>{4.0, 1.0}, 4.0);
  EXPECT_NEAR(via[0], direct[0], 1e-12);
  EXPECT_NEAR(via[1], direct[1], 1e-12);
}

TEST(Mm1AllocatorInterface, RejectsWrongFamily) {
  MM1Allocator allocator;
  LinearFamily family;
  EXPECT_THROW(
      (void)allocator.allocate(family, std::vector<double>{1.0, 2.0}, 1.0),
      lbmv::util::PreconditionError);
}

}  // namespace

// Tests for the parallel Monte-Carlo replication harness: deterministic
// stream splitting, thread-count invariance, and the merged protocol/epoch
// summaries built on top of it.

#include <gtest/gtest.h>

#include <vector>

#include "lbmv/core/comp_bonus.h"
#include "lbmv/model/bids.h"
#include "lbmv/sim/epochs.h"
#include "lbmv/sim/protocol.h"
#include "lbmv/sim/replication.h"
#include "lbmv/util/error.h"
#include "lbmv/util/thread_pool.h"

namespace {

using lbmv::core::CompBonusMechanism;
using lbmv::model::BidProfile;
using lbmv::model::SystemConfig;
using lbmv::sim::EpochOptions;
using lbmv::sim::ProtocolOptions;
using lbmv::sim::ReplicatedRoundReport;
using lbmv::sim::ReplicationOptions;
using lbmv::sim::ReplicationRunner;
using lbmv::sim::VerifiedProtocol;
using lbmv::util::ThreadPool;

TEST(ReplicationRunner, StreamsAreDeterministicAndDistinct) {
  ReplicationOptions options;
  options.root_seed = 77;
  const ReplicationRunner runner(options);
  auto a0 = runner.stream(0);
  auto a0_again = runner.stream(0);
  auto a1 = runner.stream(1);
  EXPECT_EQ(a0.seed(), a0_again.seed());
  EXPECT_NE(a0.seed(), a1.seed());
  // Same stream => same draws.
  EXPECT_DOUBLE_EQ(a0.uniform(), a0_again.uniform());
}

TEST(ReplicationRunner, ResultsIndependentOfThreadCount) {
  auto collect = [](std::size_t threads, std::size_t grain) {
    ThreadPool pool(threads);
    ReplicationOptions options;
    options.replications = 16;
    options.root_seed = 5;
    options.pool = &pool;
    options.grain = grain;
    const ReplicationRunner runner(options);
    return runner.map<double>(
        [](std::size_t rep, lbmv::util::Rng& rng) {
          double sum = static_cast<double>(rep);
          for (int k = 0; k < 100; ++k) sum += rng.uniform();
          return sum;
        });
  };
  const auto serial = collect(1, 16);  // one chunk: fully serial
  const auto fine = collect(4, 1);
  const auto coarse = collect(4, 4);
  EXPECT_EQ(serial, fine);
  EXPECT_EQ(serial, coarse);
}

TEST(ReplicationRunner, MapPreservesReplicationOrder) {
  ReplicationOptions options;
  options.replications = 8;
  const ReplicationRunner runner(options);
  const auto reps = runner.map<std::size_t>(
      [](std::size_t rep, lbmv::util::Rng&) { return rep; });
  for (std::size_t r = 0; r < reps.size(); ++r) EXPECT_EQ(reps[r], r);
}

TEST(ReplicationRunner, ValidatesOptions) {
  ReplicationOptions bad;
  bad.replications = 0;
  EXPECT_THROW(ReplicationRunner{bad}, lbmv::util::PreconditionError);
  bad = ReplicationOptions{};
  bad.grain = 0;
  EXPECT_THROW(ReplicationRunner{bad}, lbmv::util::PreconditionError);
}

TEST(ReplicatedProtocol, MergesPerReplicationMetrics) {
  const SystemConfig config({0.01, 0.02}, 2.0);
  CompBonusMechanism mechanism;
  ProtocolOptions options;
  options.horizon = 2000.0;
  const VerifiedProtocol protocol(mechanism, options);

  ReplicationOptions replication;
  replication.replications = 4;
  replication.root_seed = 9;
  const ReplicatedRoundReport merged = protocol.run_replicated(
      config, BidProfile::truthful(config), replication);

  ASSERT_EQ(merged.rounds.size(), 4u);
  EXPECT_EQ(merged.measured_latency.count(), 4u);
  ASSERT_EQ(merged.estimated_execution.size(), config.size());
  EXPECT_EQ(merged.estimated_execution[0].count(), 4u);
  // Merged mean equals the mean over the kept per-replication reports.
  double sum = 0.0;
  for (const auto& round : merged.rounds) {
    sum += round.metrics.measured_total_latency;
  }
  EXPECT_NEAR(merged.measured_latency.mean(), sum / 4.0, 1e-12);
  // Replications are genuinely different runs.
  EXPECT_NE(merged.rounds[0].metrics.total_jobs(),
            merged.rounds[1].metrics.total_jobs());
}

TEST(ReplicatedProtocol, DeterministicAcrossThreadCounts) {
  const SystemConfig config({0.01, 0.02}, 2.0);
  CompBonusMechanism mechanism;
  ProtocolOptions options;
  options.horizon = 1000.0;
  const VerifiedProtocol protocol(mechanism, options);

  auto run_with = [&](std::size_t threads) {
    ThreadPool pool(threads);
    ReplicationOptions replication;
    replication.replications = 6;
    replication.root_seed = 31;
    replication.pool = &pool;
    return protocol.run_replicated(config, BidProfile::truthful(config),
                                   replication);
  };
  const auto a = run_with(1);
  const auto b = run_with(4);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].metrics.total_jobs(),
              b.rounds[r].metrics.total_jobs());
    EXPECT_DOUBLE_EQ(a.rounds[r].estimated_execution[0],
                     b.rounds[r].estimated_execution[0]);
  }
  EXPECT_DOUBLE_EQ(a.measured_latency.mean(), b.measured_latency.mean());
}

TEST(ReplicatedEpochs, IndependentDriftPathsMerge) {
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  CompBonusMechanism mechanism;
  EpochOptions options;
  options.epochs = 10;
  options.drift_sigma = 0.2;
  options.bid_lags = {2, 2, 2};  // staleness so efficiency varies per path

  ReplicationOptions replication;
  replication.replications = 5;
  replication.root_seed = 13;
  const auto merged =
      run_epochs_replicated(mechanism, config, options, replication);

  ASSERT_EQ(merged.runs.size(), 5u);
  EXPECT_EQ(merged.mean_efficiency.count(), 5u);
  ASSERT_EQ(merged.cumulative_utility.size(), config.size());
  // Distinct drift paths: the final true values differ between runs.
  EXPECT_NE(merged.runs[0].records.back().true_values,
            merged.runs[1].records.back().true_values);
  // Efficiency stays a mean of values in (0, 1].
  EXPECT_GT(merged.mean_efficiency.mean(), 0.0);
  EXPECT_LE(merged.mean_efficiency.mean(), 1.0 + 1e-12);
}

TEST(ReplicatedEpochs, DeterministicForFixedRootSeed) {
  const SystemConfig config({1.0, 2.0, 5.0}, 10.0);
  CompBonusMechanism mechanism;
  EpochOptions options;
  options.epochs = 8;
  options.drift_sigma = 0.15;

  ReplicationOptions replication;
  replication.replications = 3;
  replication.root_seed = 21;
  const auto a = run_epochs_replicated(mechanism, config, options, replication);
  const auto b = run_epochs_replicated(mechanism, config, options, replication);
  EXPECT_DOUBLE_EQ(a.mean_efficiency.mean(), b.mean_efficiency.mean());
  EXPECT_EQ(a.runs[2].records.back().true_values,
            b.runs[2].records.back().true_values);
}

}  // namespace
